"""Unit tests for the rule-based packet filter."""

import pytest

from repro.apps.firewall import ALLOW_WEB_POLICY, Action, Firewall, Rule
from repro.apps.traffic import Flow


def flow(src="client-1", vip="10.1.0.1", port=80):
    return Flow(1, vip, src, port, 1000.0)


def test_default_deny():
    fw = Firewall()
    assert not fw.permits(flow())
    assert fw.denied == 1


def test_allow_web_policy():
    fw = Firewall(list(ALLOW_WEB_POLICY))
    assert fw.permits(flow(port=80))
    assert not fw.permits(flow(port=22))
    assert fw.allowed == 1
    assert fw.denied == 1


def test_first_match_wins():
    fw = Firewall(
        [
            Rule(Action.DENY, src="client-666*"),
            Rule(Action.ALLOW, dst_port=80),
        ]
    )
    assert not fw.permits(flow(src="client-666"))
    assert fw.permits(flow(src="client-7"))


def test_glob_matching_on_src_and_vip():
    fw = Firewall([Rule(Action.ALLOW, src="client-*", vip="10.1.*")])
    assert fw.permits(flow(src="client-9", vip="10.1.0.2"))
    assert not fw.permits(flow(src="attacker", vip="10.1.0.2"))
    assert not fw.permits(flow(src="client-9", vip="192.168.0.1"))


def test_wildcard_fields_match_anything():
    fw = Firewall([Rule(Action.ALLOW)])
    assert fw.permits(flow(src="anyone", vip="anywhere", port=12345))


def test_invalid_action_rejected():
    with pytest.raises(ValueError):
        Rule("permit")


def test_add_rule_appends():
    fw = Firewall([Rule(Action.DENY, dst_port=23)])
    fw.add_rule(Rule(Action.ALLOW, dst_port=80))
    assert fw.permits(flow(port=80))
    assert not fw.permits(flow(port=23))
