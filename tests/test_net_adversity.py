"""Unit tests for the adversarial network models (repro.net.adversity)."""

import random

import pytest

from repro.net.adversity import GilbertElliott
from repro.net.topology import Segment


# ----------------------------------------------------------------------
# Gilbert–Elliott burst-loss channel
# ----------------------------------------------------------------------
def test_gilbert_elliott_validates_probabilities():
    with pytest.raises(ValueError):
        GilbertElliott(p_enter_burst=1.5, p_exit_burst=0.5)
    with pytest.raises(ValueError):
        GilbertElliott(p_enter_burst=0.1, p_exit_burst=-0.1)
    with pytest.raises(ValueError):
        GilbertElliott(p_enter_burst=0.1, p_exit_burst=0.5, loss_bad=2.0)


def test_gilbert_elliott_losses_cluster_in_bursts():
    """Same long-run loss rate, very different clustering: consecutive
    losses are far more likely under the bursty channel than independent
    drops at the equivalent uniform rate."""
    rng = random.Random(7)
    ge = GilbertElliott(p_enter_burst=0.02, p_exit_burst=0.25)
    draws = [ge.sample(rng) for _ in range(40_000)]
    loss_rate = sum(draws) / len(draws)
    assert 0.01 < loss_rate < 0.25
    pairs = sum(1 for a, b in zip(draws, draws[1:]) if a and b)
    # Under independent losses at the same rate, P(two in a row) would be
    # loss_rate**2; the burst channel correlates consecutive losses.
    independent_pairs = loss_rate**2 * (len(draws) - 1)
    assert pairs > 4 * independent_pairs


def test_gilbert_elliott_degenerate_channels():
    rng = random.Random(1)
    never = GilbertElliott(p_enter_burst=0.0, p_exit_burst=1.0)
    assert not any(never.sample(rng) for _ in range(1000))
    always = GilbertElliott(
        p_enter_burst=1.0, p_exit_burst=0.0, loss_good=1.0, loss_bad=1.0
    )
    assert all(always.sample(rng) for _ in range(1000))


def test_gilbert_elliott_is_deterministic_given_rng():
    ge1 = GilbertElliott(p_enter_burst=0.05, p_exit_burst=0.3)
    ge2 = GilbertElliott(p_enter_burst=0.05, p_exit_burst=0.3)
    r1, r2 = random.Random(99), random.Random(99)
    assert [ge1.sample(r1) for _ in range(500)] == [
        ge2.sample(r2) for _ in range(500)
    ]


# ----------------------------------------------------------------------
# Segment adversity knobs
# ----------------------------------------------------------------------
def test_segment_validates_adversity_probabilities():
    with pytest.raises(ValueError):
        Segment(name="bad", duplicate=1.5)
    with pytest.raises(ValueError):
        Segment(name="bad", spike_prob=-0.1)


def test_segment_clear_adversities():
    seg = Segment(
        name="net0",
        duplicate=0.3,
        spike_prob=0.1,
        spike_extra=0.01,
        burst=GilbertElliott(p_enter_burst=0.1, p_exit_burst=0.5),
    )
    seg.clear_adversities()
    assert seg.duplicate == 0.0
    assert seg.spike_prob == 0.0
    assert seg.spike_extra == 0.0
    assert seg.burst is None


def test_clear_link_faults_heals_everything(abcd):
    """Topology.clear_link_faults undoes partitions, blocked pairs, NIC
    downs and adversities — but not crashed nodes (protocol state)."""
    topo = abcd.topology
    abcd.faults.partition(["A", "B"], ["C", "D"])
    abcd.faults.cut_link("A", "C")
    addr = abcd.faults.unplug_cable("B")
    abcd.faults.set_duplication(0.5)
    abcd.faults.crash_node("D")
    topo.clear_link_faults()
    assert topo.nic_up(addr) is True
    for seg in topo.segments():
        assert seg.duplicate == 0.0
    # A partitioned/blocked pair can reach each other again.
    assert topo.can_deliver(
        topo.addresses_of("A")[0], topo.addresses_of("C")[0]
    )
    # The crashed node stays down: recovery is a protocol action.
    assert abcd.node("D").state.value == "down"
