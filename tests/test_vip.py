"""Tests for the Virtual IP Manager (paper §3.1)."""

import pytest

from repro.apps.vip import ArpSubnet, VirtualIPManager, compute_assignment
from repro.data.shared_dict import SharedDict
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration

VIPS = ["10.1.0.1", "10.1.0.2", "10.1.0.3", "10.1.0.4"]


def make_vip_cluster(ids="ABCD", vips=None, **kw):
    vips = vips if vips is not None else list(VIPS)
    c = make_cluster(ids, **kw)
    subnet = ArpSubnet()
    mans = {}
    for nid in ids:
        node = c.node(nid)
        shared = SharedDict(node)
        mans[nid] = VirtualIPManager(node, shared, subnet, vips)
    c.start_all()
    c.run(1.0)  # let the initial assignment settle and ARP
    return c, subnet, mans


# ----------------------------------------------------------------------
# the pure assignment function
# ----------------------------------------------------------------------
def test_assignment_covers_all_vips():
    a = compute_assignment(VIPS, {}, ("A", "B"))
    assert set(a) == set(VIPS)
    assert set(a.values()) <= {"A", "B"}


def test_assignment_is_balanced():
    a = compute_assignment(VIPS, {}, ("A", "B"))
    owners = list(a.values())
    assert owners.count("A") == owners.count("B") == 2


def test_assignment_stable_for_live_owners():
    current = {"10.1.0.1": "A", "10.1.0.2": "B", "10.1.0.3": "A", "10.1.0.4": "B"}
    a = compute_assignment(VIPS, current, ("A", "B"))
    assert a == current


def test_assignment_moves_only_orphans():
    current = {"10.1.0.1": "A", "10.1.0.2": "B", "10.1.0.3": "A", "10.1.0.4": "B"}
    a = compute_assignment(VIPS, current, ("A", "C"))
    assert a["10.1.0.1"] == "A"
    assert a["10.1.0.3"] == "A"
    assert a["10.1.0.2"] == "C"
    assert a["10.1.0.4"] == "C"


def test_assignment_rebalances_on_growth():
    current = {v: "A" for v in VIPS}
    a = compute_assignment(VIPS, current, ("A", "B"))
    owners = list(a.values())
    assert owners.count("A") == 2 and owners.count("B") == 2


def test_assignment_empty_without_members():
    assert compute_assignment(VIPS, {}, ()) == {}


def test_assignment_deterministic():
    a1 = compute_assignment(VIPS, {}, ("B", "A", "C"))
    a2 = compute_assignment(VIPS, {}, ("B", "A", "C"))
    assert a1 == a2


# ----------------------------------------------------------------------
# the live manager
# ----------------------------------------------------------------------
def test_every_vip_owned_by_exactly_one_member():
    c, subnet, mans = make_vip_cluster()
    table = mans["A"].assignment()
    assert set(table) == set(VIPS)
    assert set(table.values()) <= set("ABCD")
    # installed sets partition the pool
    installed = [v for nid in "ABCD" for v in mans[nid].owned_vips()]
    assert sorted(installed) == sorted(VIPS)


def test_replicated_tables_agree():
    c, subnet, mans = make_vip_cluster()
    tables = [mans[nid].assignment() for nid in "ABCD"]
    assert all(t == tables[0] for t in tables)


def test_arp_reflects_assignment():
    c, subnet, mans = make_vip_cluster()
    table = mans["A"].assignment()
    for vip, owner in table.items():
        assert subnet.resolve(vip) == owner


def test_failover_moves_only_victims_vips():
    c, subnet, mans = make_vip_cluster()
    before = mans["A"].assignment()
    victim = before[VIPS[0]]
    untouched = {v: o for v, o in before.items() if o != victim}
    c.faults.crash_node(victim)
    c.run(5.0)
    survivors = [n for n in "ABCD" if n != victim]
    after = mans[survivors[0]].assignment()
    assert set(after.values()) <= set(survivors)
    for vip, owner in untouched.items():
        assert after[vip] == owner  # survivors' VIPs never moved


def test_failover_rearps_moved_vips():
    c, subnet, mans = make_vip_cluster()
    before = mans["A"].assignment()
    victim = before[VIPS[0]]
    c.faults.crash_node(victim)
    c.run(5.0)
    for vip in VIPS:
        resolved = subnet.resolve(vip)
        assert resolved is not None and resolved != victim


def test_vips_never_unowned_longer_than_failover_bound():
    """P10: the pool stays fully available through a failure (paper: 'the
    virtual IPs never disappear as long as at least one physical node is
    functional')."""
    c, subnet, mans = make_vip_cluster()
    victim = mans["A"].assignment()[VIPS[0]]
    c.faults.crash_node(victim)
    # After the 2-second fail-over budget every VIP must resolve to a live node.
    c.run(2.0)
    live = {n.node_id for n in c.live_nodes()}
    for vip in VIPS:
        assert subnet.resolve(vip) in live


def test_rebalance_spreads_after_mass_failover():
    c, subnet, mans = make_vip_cluster()
    c.faults.crash_node("C")
    c.faults.crash_node("D")
    c.run(5.0)
    table = mans["A"].assignment()
    owners = list(table.values())
    assert sorted(set(owners)) == ["A", "B"]
    assert abs(owners.count("A") - owners.count("B")) <= 1


def test_recovered_node_gets_vips_back():
    c, subnet, mans = make_vip_cluster()
    c.faults.crash_node("B")
    c.run(4.0)
    c.faults.recover_node("B")
    c.run(6.0)
    table = mans["A"].assignment()
    owners = list(table.values())
    assert owners.count("B") >= 1  # growth rebalancing pulled VIPs onto B


def test_explicit_rebalance_levels_ownership():
    """Paper: "The Virtual IPs can also be moved for load balancing"."""
    c, subnet, mans = make_vip_cluster()
    # Skew ownership by crashing and recovering two members: their VIPs
    # concentrated on the survivors.
    c.faults.crash_node("C")
    c.faults.crash_node("D")
    c.run(5.0)
    c.faults.recover_node("C")
    c.faults.recover_node("D")
    c.run(6.0)
    coordinator = min(n.node_id for n in c.live_nodes())
    mans[coordinator].rebalance()
    c.run(3.0)
    owners = list(mans[coordinator].assignment().values())
    counts = {nid: owners.count(nid) for nid in "ABCD"}
    assert all(v == 1 for v in counts.values()), counts


def test_requires_nonempty_pool():
    c = make_cluster("AB")
    node = c.node("A")
    shared = SharedDict(node)
    with pytest.raises(ValueError):
        VirtualIPManager(node, shared, ArpSubnet(), [])
