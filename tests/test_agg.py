"""Tests for repro.obs.agg: bounded-state streaming aggregation.

The determinism contract: a rollup is a pure function of the probe stream
content, never of how the stream was partitioned — merging per-shard
rollups produces the byte-identical document a serial run would, at any
shard count.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.obs.agg import (
    BoundedHistogram,
    StreamAggregator,
    merge_rollups,
    render_rollup,
    rollup_json,
)
from repro.obs.probe import ProbeEvent
from repro.obs.scenario import run_quickstart


def make_event(n, at, node, kind, args):
    # Synthetic stream for exercising reducer edge cases (ties, drop
    # sites) that a live bus reaches only probabilistically.
    return ProbeEvent(n, at, node, kind, tuple(args))  # raincheck: disable=RC402 -- synthetic test stream with chosen timestamps


# ----------------------------------------------------------------------
# BoundedHistogram
# ----------------------------------------------------------------------
def test_histogram_state_is_bounded():
    h = BoundedHistogram()
    for i in range(10_000):
        h.observe(i * 1e-5)
    assert len(h.counts) == len(h.edges) + 1
    assert h.count == 10_000
    assert h.vmin == 0.0
    assert h.vmax == pytest.approx(0.09999)


def test_histogram_bucketing_and_quantiles():
    h = BoundedHistogram(edges=(0.01, 0.1, 1.0))
    for v in (0.005, 0.005, 0.05, 0.5, 5.0):
        h.observe(v)
    assert h.counts == [2, 1, 1, 1]
    assert h.quantile(0.0) == 0.01  # rank clamps to 1 -> first bucket edge
    assert h.quantile(0.40) == 0.01  # ceil(2.0) = 2nd obs, first bucket
    assert h.quantile(0.60) == 0.1
    assert h.quantile(1.0) == 5.0  # overflow bucket reports the true max


def test_histogram_quantile_empty():
    assert BoundedHistogram().quantile(0.95) == 0.0


def test_histogram_merge_matches_single_pass():
    values = [0.0003, 0.004, 0.004, 0.03, 0.3, 3.0, 30.0]
    whole = BoundedHistogram()
    left, right = BoundedHistogram(), BoundedHistogram()
    for i, v in enumerate(values):
        whole.observe(v)
        (left if i % 2 == 0 else right).observe(v)
    merged = BoundedHistogram.merge_dicts([left.to_dict(), right.to_dict()])
    assert merged == whole.to_dict()
    assert BoundedHistogram.merge_dicts([]) == BoundedHistogram().to_dict()


# ----------------------------------------------------------------------
# StreamAggregator over a real probe stream
# ----------------------------------------------------------------------
def test_counts_match_the_stream():
    run = run_quickstart(nodes=4, seed=2024, duration=1.0, crash=True)
    agg = StreamAggregator()
    agg.observe_all(run.events)
    assert agg.events == len(run.events)
    assert agg.by_kind == dict(Counter(e.kind for e in run.events))
    rollup = agg.to_dict()
    sends = [e for e in run.events if e.kind == "net.send"]
    assert rollup["totals"]["packets_sent"] == len(sends)
    assert rollup["totals"]["bytes_sent"] == sum(e.args[3] for e in sends)
    accepts = Counter(e.node for e in run.events if e.kind == "token.accept")
    for node, count in accepts.items():
        assert rollup["per_node"][node]["token_accepts"] == count


def test_attach_subscribes_to_live_bus():
    from repro.cluster.harness import RaincoreCluster

    cluster = RaincoreCluster(["A", "B", "C"], seed=3)
    agg = StreamAggregator().attach(cluster.enable_probes())
    cluster.start_all()
    cluster.run(0.5)
    assert agg.events == cluster.probes.events_emitted
    assert agg.to_dict()["totals"]["token_accepts"] > 0


def test_rollup_independent_of_node_placement():
    """Partitioning the stream by node (what the shard engine does: each
    node's whole stream lives on exactly one worker) and merging the
    parts' rollups reproduces the unsplit rollup byte-for-byte."""
    run = run_quickstart(nodes=4, seed=7, duration=1.0, crash=False)
    whole = StreamAggregator()
    whole.observe_all(run.events)
    nodes = sorted({e.node for e in run.events})
    for split in (1, 2, len(nodes) - 1):
        left_nodes = set(nodes[:split])
        a, b = StreamAggregator(), StreamAggregator()
        a.observe_all(e for e in run.events if e.node in left_nodes)
        b.observe_all(e for e in run.events if e.node not in left_nodes)
        merged = merge_rollups([a.to_dict(), b.to_dict()])
        assert rollup_json(merged) == rollup_json(whole.to_dict())


def test_overlapping_merge_sums_counters():
    """Re-aggregating a split of one node's stream sums counters and
    histogram buckets (the cross-cut inter-arrival gap is legitimately
    absent — overlap merges are for counter recovery, not gap timing)."""
    run = run_quickstart(nodes=4, seed=7, duration=1.0, crash=False)
    whole = StreamAggregator()
    whole.observe_all(run.events)
    cut = len(run.events) // 2
    a, b = StreamAggregator(), StreamAggregator()
    a.observe_all(run.events[:cut])
    b.observe_all(run.events[cut:])
    merged = merge_rollups([a.to_dict(), b.to_dict()])
    assert merged["events"] == whole.events
    assert merged["by_kind"] == whole.to_dict()["by_kind"]
    assert merged["totals"] == whole.to_dict()["totals"]
    for node, d in merged["per_node"].items():
        reference = whole.to_dict()["per_node"][node]
        for key in ("events", "packets_sent", "bytes_sent", "token_accepts"):
            assert d[key] == reference[key]


def test_merge_rejects_foreign_schema():
    agg = StreamAggregator()
    good = agg.to_dict()
    with pytest.raises(ValueError, match="schema"):
        merge_rollups([good, {"schema": 99}])


def test_top_talkers_tie_break_is_node_order():
    agg = StreamAggregator()
    # Same byte count from two nodes: the tie breaks by node name.
    agg.observe(make_event(1, 0.0, "zz", "net.send", ("s1", "d1", "F", 100)))
    agg.observe(make_event(2, 0.1, "aa", "net.send", ("s2", "d2", "F", 100)))
    agg.observe(make_event(3, 0.2, "mm", "net.send", ("s3", "d3", "F", 50)))
    talkers = agg.to_dict()["top_talkers"]
    assert [t["node"] for t in talkers] == ["aa", "zz", "mm"]
    # top_k bounds the list; silent nodes never appear.
    agg.observe(make_event(4, 0.3, "quiet", "core.wakeup", ()))
    talkers = agg.to_dict(top_k=2)["top_talkers"]
    assert [t["node"] for t in talkers] == ["aa", "zz"]


def test_drop_sites_are_tallied():
    agg = StreamAggregator()
    agg.observe(make_event(1, 0.0, "A", "net.drop", ("s", "d", "F", 9, "loss")))
    agg.observe(make_event(2, 0.1, "A", "net.drop", ("s", "d", "F", 9, "loss")))
    agg.observe(make_event(3, 0.2, "B", "net.drop", ("s", "d", "F", 4, "unbound")))
    rollup = agg.to_dict()
    assert rollup["drops_by_where"] == {"loss": 2, "unbound": 1}
    assert rollup["per_node"]["A"]["bytes_dropped"] == 18
    assert rollup["totals"]["packets_dropped"] == 3


def test_token_gap_histogram_tracks_laps():
    agg = StreamAggregator()
    for i, at in enumerate((0.0, 0.04, 0.08, 0.12)):
        agg.observe(make_event(i + 1, at, "A", "token.accept", ("B", "g.1", i, 0)))
    gap = agg.to_dict()["per_node"]["A"]["token_gap"]
    assert gap["count"] == 3  # 4 accepts -> 3 inter-arrival gaps
    assert gap["min"] == pytest.approx(0.04)
    assert gap["max"] == pytest.approx(0.04)


def test_rollup_json_is_canonical():
    agg = StreamAggregator()
    agg.observe(make_event(1, 0.0, "A", "core.wakeup", ()))
    text = rollup_json(agg.to_dict())
    assert text == rollup_json(agg.to_dict())
    assert ": " not in text  # compact separators
    assert render_rollup(agg.to_dict()).startswith("rollup: 1 probe events")


# ----------------------------------------------------------------------
# cross-shard byte identity (the acceptance criterion)
# ----------------------------------------------------------------------
def test_sharded_rollup_byte_identical_across_shard_counts():
    from repro.parallel import ParallelSimulator

    texts = {}
    for shards, mode in ((1, "serial"), (2, "process"), (4, "process")):
        sim = ParallelSimulator(
            "multi_ring", seed=7, params={"rings": 4, "ring_size": 3}
        )
        result = sim.run(
            2.0, shards=shards, mode=mode, probes=True, aggregate=True
        )
        texts[shards] = result.rollup_jsonl()
        # The rollup rides its own channel: the probe stream is intact.
        assert result.rollup["events"] > 0
    assert texts[1] == texts[2] == texts[4]


def test_rollup_jsonl_requires_aggregate():
    from repro.parallel import ParallelSimulator

    sim = ParallelSimulator("multi_ring", seed=7, params={"rings": 2, "ring_size": 3})
    result = sim.run(0.2, shards=1, mode="serial")
    with pytest.raises(ValueError, match="aggregate=True"):
        result.rollup_jsonl()
