"""Tests for the rainspec subsystem (repro.spec).

Three layers, mirroring the spec pipeline:

* **spec structure** — the declarative spec is self-consistent and agrees
  with the live registries: every registered message kind has an
  exchange, every state name is a real ``NodeState``, and the lifecycle
  table is exactly ``VALID_TRANSITIONS``;
* **conformance** — the AST extractor recovers the implemented machine
  from the real tree with zero drift, and a seeded drift (deleting one
  dispatch arm) is reported as RC501 + RC503 with nonzero CLI exit;
* **model checking** — the fault-envelope suite explores the correct
  spec to exhaustion with zero counterexamples, each broken-spec fixture
  trips its expected safety property, and the counterexample renders as
  a chaos trace the replay engine accepts.

The render golden pins ``repro spec render`` byte-for-byte: any spec
edit must update ``tests/data/golden_spec_render.md`` in the same commit.
"""

from __future__ import annotations

import pathlib
import re
import subprocess
import sys

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro
from repro.chaos.engine import ChaosEngine
from repro.core.states import NodeState, VALID_TRANSITIONS
from repro.spec.extract import diff_against_spec, extract_from_sources
from repro.spec.model import (
    BROKEN_FIXTURES,
    broken_spec,
    check_envelopes,
    counterexample_schedule,
    default_envelopes,
    format_counterexample,
)
from repro.spec.protocol import LIFECYCLE, PROTOCOL_SPEC, SPEC_MODULES, validate_spec
from repro.spec.render import render_spec
from repro.transport.messages import registered_kinds

SRC_ROOT = pathlib.Path(repro.__file__).resolve().parent.parent
GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_spec_render.md"


def real_tree_sources() -> list[tuple[str, str]]:
    """(relative path, source) for every module under ``src/repro``."""
    pkg = SRC_ROOT / "repro"
    out = []
    for path in sorted(pkg.rglob("*.py")):
        rel = path.relative_to(SRC_ROOT).as_posix()
        if "lint_fixtures" in rel:
            continue
        out.append((rel, path.read_text()))
    return out


# ----------------------------------------------------------------------
# spec structure
# ----------------------------------------------------------------------
def test_spec_is_structurally_valid():
    assert validate_spec(PROTOCOL_SPEC) == []


def test_every_registered_kind_has_an_exchange():
    spec_kinds = {ex.kind for ex in PROTOCOL_SPEC if ex.kind is not None}
    missing = set(registered_kinds()) - spec_kinds
    assert not missing, f"registered kinds without a spec exchange: {sorted(missing)}"


def test_lifecycle_table_is_exactly_valid_transitions():
    implemented = {
        (src.name, dst.name)
        for src, dsts in VALID_TRANSITIONS.items()
        for dst in dsts
    }
    assert set(LIFECYCLE) == implemented


@given(ex=st.sampled_from(PROTOCOL_SPEC))
def test_spec_states_are_node_states(ex):
    names = {state.name for state in NodeState}
    for state in ex.guard_states + ex.transitions:
        assert state in names, f"{ex.name}: {state!r} is not a NodeState"


@given(ex=st.sampled_from(PROTOCOL_SPEC))
def test_spec_facts_are_sorted_and_kinds_known(ex):
    # Determinism: fact tuples are sorted, so renders and diffs are stable.
    for field in (ex.guard_states, ex.transitions, ex.emits, ex.delegates):
        assert tuple(sorted(field)) == field
    known = set(registered_kinds()) | {
        "ResyncAck", "ResyncDelta", "ResyncSnapshot", "SyncRequest",
    }
    for kind in ex.emits:
        assert kind in known, f"{ex.name} emits unknown kind {kind!r}"


def test_rule_tables_put_catch_all_last():
    # "ok" is the catch-all guard: anywhere but last it would shadow the
    # remaining rules, so the first-match interpreter never reaches them.
    for ex in PROTOCOL_SPEC:
        for guard, _effect in ex.rules[:-1]:
            assert guard != "ok", f"{ex.name}: catch-all shadows later rules"


# ----------------------------------------------------------------------
# render golden
# ----------------------------------------------------------------------
def test_protocol_md_embeds_current_tables():
    # docs/PROTOCOL.md §9 carries the generated tables between rainspec
    # markers; a spec change must regenerate them in the same commit.
    from repro.spec.render import render_exchanges, render_lifecycle

    doc = (SRC_ROOT.parent / "docs" / "PROTOCOL.md").read_text()
    assert "<!-- rainspec:begin" in doc and "<!-- rainspec:end -->" in doc
    embedded = doc.split("<!-- rainspec:begin", 1)[1]
    assert render_lifecycle() in embedded
    assert render_exchanges() in embedded


def test_render_matches_golden():
    assert render_spec() == GOLDEN.read_text(), (
        "spec render drifted; regenerate tests/data/golden_spec_render.md "
        "with `repro spec render --out tests/data/golden_spec_render.md`"
    )


# ----------------------------------------------------------------------
# conformance: extractor vs the real tree
# ----------------------------------------------------------------------
def test_real_tree_has_zero_drift():
    extraction = extract_from_sources(real_tree_sources())
    assert extraction.modules_present == frozenset(SPEC_MODULES)
    findings = diff_against_spec(extraction)
    assert findings == [], "\n".join(
        f"{f.rule} {f.path}:{f.line} {f.message}" for f in findings
    )


def test_seeded_drift_is_reported():
    # Delete the BodyOdor dispatch arm from session.py: the registered
    # kind loses its arm (RC501) and the bodyodor exchange its
    # implementation (RC503).  This is the CI drift gate's tripwire.
    sources = []
    for rel, text in real_tree_sources():
        if rel.endswith("core/session.py"):
            mutated, n = re.subn(
                r"\n[ \t]+elif isinstance\(payload, BodyOdor\):"
                r"\n[ \t]+self\.merge\.handle_bodyodor\(payload\)",
                "",
                text,
            )
            assert n == 1, "BodyOdor arm not found in session.py"
            text = mutated
        sources.append((rel, text))
    findings = diff_against_spec(extract_from_sources(sources))
    rules = {f.rule for f in findings}
    assert {"RC501", "RC503"} <= rules, findings
    assert any("BodyOdor" in f.message for f in findings)


def test_spec_check_cli_is_clean_on_real_tree():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "spec", "check"],
        capture_output=True,
        text=True,
        cwd=SRC_ROOT.parent,
        env={"PYTHONPATH": str(SRC_ROOT), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 problem(s)" in proc.stdout


# ----------------------------------------------------------------------
# model checking
# ----------------------------------------------------------------------
def test_correct_spec_explores_clean_to_exhaustion():
    results = check_envelopes(PROTOCOL_SPEC, nodes=2)
    assert set(results) == set(default_envelopes(2))
    for name, result in results.items():
        assert result.exhausted and not result.truncated, name
        assert result.ok, f"{name}: {format_counterexample(result.violations[0])}"
        assert result.states > 0 and result.transitions >= result.states - 1


@pytest.mark.parametrize("fixture", sorted(BROKEN_FIXTURES))
def test_broken_fixture_trips_expected_property(fixture):
    exchange, guard, effect, expected = BROKEN_FIXTURES[fixture]
    spec = broken_spec(exchange, guard, effect)
    results = check_envelopes(spec, nodes=2)
    violations = [v for r in results.values() for v in r.violations]
    assert any(v.prop == expected for v in violations), (
        f"{fixture}: no {expected!r} violation in "
        f"{sorted({v.prop for v in violations})}"
    )


def test_broken_spec_rejects_unknown_rebinding():
    with pytest.raises(ValueError, match="unknown exchange"):
        broken_spec("no-such-exchange", "ok", "drop")
    with pytest.raises(ValueError, match="not found"):
        broken_spec("token-accept", "no-such-guard", "drop")


# ----------------------------------------------------------------------
# counterexample → chaos trace round trip
# ----------------------------------------------------------------------
def first_violation(fixture: str):
    exchange, guard, effect, expected = BROKEN_FIXTURES[fixture]
    results = check_envelopes(broken_spec(exchange, guard, effect), nodes=2)
    for result in results.values():
        for violation in result.violations:
            if violation.prop == expected:
                return violation
    raise AssertionError(f"fixture {fixture} produced no {expected} violation")


def test_counterexample_renders_and_replays():
    violation = first_violation("accept-stale")
    text = format_counterexample(violation)
    assert "order" in text and violation.message in text

    schedule = counterexample_schedule(violation, nodes=2)
    # The stale-accept trace forks the token: the duplicate move must
    # survive the translation into the chaos-trace vocabulary.
    kinds = [op.kind for op in schedule.ops]
    assert "forge_duplicate_token" in kinds

    # A counterexample against the *spec* is a schedule the *real stack*
    # absorbs: replay must complete and deliver traffic.
    result = ChaosEngine(schedule).run()
    assert result.ok, result.stats
    assert result.stats["deliveries"] > 0

    # And the trace round-trips through the canonical JSON format.
    from repro.chaos.schedule import Schedule

    assert Schedule.from_json(schedule.to_json()) == schedule
