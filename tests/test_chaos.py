"""Tests for the chaos campaign engine (repro.chaos).

The acceptance properties of docs/CHAOS.md:

* same seed ⇒ byte-identical trace and identical run outcome;
* a trace survives a JSON round trip exactly;
* a deliberately violating schedule is shrunk to a strictly smaller
  trace that still reproduces the violation on replay.
"""

from pathlib import Path

import pytest

from repro.chaos import (
    ChaosEngine,
    ChaosParams,
    FaultOp,
    Schedule,
    run_campaign,
    shrink_schedule,
)
from repro.chaos.schedule import OP_KINDS, node_names, segment_names
from repro.chaos.shrink import ddmin

pytestmark = pytest.mark.integration


def small_params(**overrides):
    defaults = dict(nodes=5, seconds=6.0, seed=3)
    defaults.update(overrides)
    return ChaosParams(**defaults)


# ----------------------------------------------------------------------
# schedules and traces
# ----------------------------------------------------------------------
def test_generation_is_deterministic_and_canonical():
    p = small_params()
    s1, s2 = Schedule.generate(p), Schedule.generate(p)
    assert s1 == s2
    assert s1.to_json() == s2.to_json()  # byte-identical
    assert Schedule.generate(small_params(seed=4)).to_json() != s1.to_json()


def test_trace_roundtrip_is_exact():
    s = Schedule.generate(small_params(seed=11, strict=True))
    back = Schedule.from_json(s.to_json())
    assert back == s
    assert back.to_json() == s.to_json()
    assert back.params.strict is True


def test_generated_ops_are_valid_and_ordered():
    p = ChaosParams(nodes=8, seconds=30.0, seed=7, intensity=2.0)
    s = Schedule.generate(p)
    assert len(s.ops) >= 10
    names = set(node_names(p.nodes))
    segs = set(segment_names(p.segments))
    assert [op.at for op in s.ops] == sorted(op.at for op in s.ops)
    for op in s.ops:
        assert op.kind in OP_KINDS
        assert 0.0 <= op.at <= p.seconds
        for arg in op.args:
            if isinstance(arg, str) and arg.startswith("n"):
                assert arg in names or arg in segs


def test_trace_format_is_validated():
    with pytest.raises(ValueError):
        Schedule.from_json('{"format": "something-else", "version": 1}')
    with pytest.raises(ValueError):
        Schedule.from_json(
            '{"format": "raincore-chaos-trace", "version": 99, '
            '"params": {}, "ops": []}'
        )
    with pytest.raises(ValueError):
        FaultOp.from_obj({"at": 1.0, "kind": "meteor-strike", "args": []})


def test_intensity_scales_event_count():
    quiet = Schedule.generate(small_params(seconds=20.0, intensity=0.5))
    wild = Schedule.generate(small_params(seconds=20.0, intensity=3.0))
    assert len(wild.ops) > len(quiet.ops)


# ----------------------------------------------------------------------
# engine runs
# ----------------------------------------------------------------------
def test_engine_run_is_deterministic():
    s = Schedule.generate(small_params())
    r1 = ChaosEngine(s).run()
    r2 = ChaosEngine(s).run()
    assert r1.ok and r2.ok
    assert r1.stats == r2.stats


def test_engine_replay_from_trace_matches_original():
    s = Schedule.generate(small_params(seed=5))
    original = ChaosEngine(s).run()
    replayed = ChaosEngine(Schedule.from_json(s.to_json())).run()
    assert replayed.ok == original.ok
    assert replayed.stats == original.stats


def test_clean_campaign_smoke():
    result = run_campaign(5, 6.0, 3, campaign=2, shrink=False)
    assert result.ok
    assert len(result.results) == 2
    assert {r.seed for r in result.results} == {3, 4}
    table = result.summary_table()
    assert len(table.rows) == 2
    assert "ok" in table.render()


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def test_ddmin_reduces_to_single_cause():
    """ddmin finds the single failing item among decoys."""
    failing_calls = []

    def failing(items):
        failing_calls.append(list(items))
        return 13 in items

    minimal, tests = ddmin(list(range(20)), failing)
    assert minimal == [13]
    assert tests == len(failing_calls)


def test_ddmin_conjunction_of_two():
    minimal, _ = ddmin(list(range(16)), lambda s: 3 in s and 12 in s)
    assert sorted(minimal) == [3, 12]


def test_ddmin_respects_budget():
    minimal, tests = ddmin(list(range(64)), lambda s: 63 in s, max_tests=5)
    assert tests <= 5
    assert 63 in minimal  # still failing, just not fully minimized


def test_shrink_rejects_passing_schedule():
    s = Schedule.generate(small_params())
    with pytest.raises(ValueError):
        shrink_schedule(s, lambda _s: False)


def test_violating_schedule_shrinks_to_minimal_repro():
    """The acceptance fixture: a schedule with one genuinely violating op
    (a forged duplicate token, flagged by the strict monitor) buried in
    benign noise is shrunk to a strictly smaller trace that still
    reproduces the violation on replay."""
    params = small_params(seed=21, strict=True)
    schedule = Schedule(
        params=params,
        ops=[
            FaultOp(at=0.8, kind="cut_link", args=("n01", "n03")),
            FaultOp(at=1.4, kind="restore_link", args=("n01", "n03")),
            FaultOp(at=1.6, kind="duplicate", args=("net0", 0.2)),
            FaultOp(at=2.5, kind="forge_duplicate_token"),
            FaultOp(at=3.0, kind="duplicate", args=("net0", 0.0)),
            FaultOp(at=3.5, kind="spike", args=("net1", 0.05, 0.02)),
            FaultOp(at=4.2, kind="spike_off", args=("net1",)),
        ],
    )

    def is_failing(candidate):
        result = ChaosEngine(candidate).run()
        return not result.ok

    failing_run = ChaosEngine(schedule).run()
    assert not failing_run.ok
    assert failing_run.failure.startswith("invariant:token-uniqueness")

    minimal, tests = shrink_schedule(schedule, is_failing, max_tests=32)
    assert len(minimal.ops) < len(schedule.ops)  # strictly smaller
    assert minimal.ops == [FaultOp(at=2.5, kind="forge_duplicate_token")]
    # The minimal trace replays to the same violation after a round trip.
    replay = ChaosEngine(Schedule.from_json(minimal.to_json())).run()
    assert not replay.ok
    assert replay.failure.startswith("invariant:token-uniqueness")
    assert tests >= 1


def test_campaign_writes_artifacts_and_shrinks(tmp_path):
    """A failing campaign run records its trace and a shrunk reproducer."""
    # seconds=4 with a forged token at 2.0: strict mode fails determinately.
    # Build the campaign by replaying through run_campaign's machinery is
    # generation-driven, so instead drive the engine + artifact path via a
    # hand-made failing schedule and the public shrink API.
    params = small_params(seed=33, strict=True)
    schedule = Schedule(
        params=params,
        ops=[
            FaultOp(at=1.5, kind="lose_token"),
            FaultOp(at=2.0, kind="forge_duplicate_token"),
        ],
    )
    result = ChaosEngine(schedule).run()
    assert not result.ok
    minimal, _ = shrink_schedule(
        schedule, lambda s: not ChaosEngine(s).run().ok, max_tests=16
    )
    assert len(minimal.ops) == 1
    path = tmp_path / "trace.min.json"
    path.write_text(minimal.to_json())
    again = Schedule.from_json(path.read_text())
    assert not ChaosEngine(again).run().ok


# ----------------------------------------------------------------------
# shrunk-trace regressions (real bugs the chaos engine found)
# ----------------------------------------------------------------------
REGRESSIONS = Path(__file__).parent / "data"


def replay_fixture(name):
    schedule = Schedule.from_json((REGRESSIONS / name).read_text())
    return ChaosEngine(schedule).run()


def test_regression_merged_member_rejects_overtaken_delta():
    """Partition + heal + cut link (shrunk from seed 7, 8 nodes).

    A merged-back replica that applied live ops between its merge-time ack
    and its catch-up delta's attach must treat the overlap mismatch as a
    fork (demote and re-sync), not drop the delta as a stale duplicate —
    dropping it left the replica silently missing the partition-era ops
    while continuing to apply new ones.
    """
    result = replay_fixture("regression_merge_delta_race.json")
    assert result.ok, f"{result.failure}: {result.detail}"


def test_regression_duplicate_token_lineages_do_not_interleave():
    """Partition + NIC flap + heal + link churn (shrunk from seed 7).

    A 911 regeneration racing a merge forked the token into two live
    lineages with overlapping memberships; nodes flip-flopped between the
    two streams and delivered their messages in different relative orders.
    The lineage-binding acceptance guard (session.py) must divert the
    foreign fork so the groups partition cleanly and re-merge via TBM.
    """
    result = replay_fixture("regression_dup_token_lineage.json")
    assert result.ok, f"{result.failure}: {result.detail}"
