"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.integration


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_info(capsys):
    code, out = run_cli(capsys, "info")
    assert code == 0
    assert "raincore-repro" in out
    assert "e1" in out and "e11" in out
    assert "DESIGN.md" in out


def test_quickstart(capsys):
    code, out = run_cli(capsys, "quickstart", "--nodes", "3", "--seed", "5")
    assert code == 0
    assert "group formed" in out
    assert "rejoined via 911" in out
    assert "task switches" in out


def test_trace(capsys):
    code, out = run_cli(capsys, "trace", "--duration", "0.1", "--limit", "20")
    assert code == 0
    assert "down -> joining" in out
    assert "token" in out


def test_trace_kind_filter(capsys):
    code, out = run_cli(
        capsys, "trace", "--duration", "0.1", "--kinds", "view", "--limit", "50"
    )
    assert code == 0
    assert "view" in out
    assert "token" not in out


def test_merge(capsys):
    code, out = run_cli(capsys, "merge")
    assert code == 0
    assert "split-brain: 3 independent groups" in out
    assert "healed and merged" in out


@pytest.mark.slow
def test_failover(capsys):
    code, out = run_cli(capsys, "failover")
    assert code == 0
    assert "worst connection hiccup" in out
    assert "connections lost: 0" in out


@pytest.mark.slow
def test_scaling_small(capsys):
    code, out = run_cli(capsys, "scaling", "--nodes", "1", "2")
    assert code == 0
    assert "2.0" in out  # ~2x scaling appears in the table


@pytest.mark.slow
def test_soak_short(capsys):
    code, out = run_cli(
        capsys, "soak", "--nodes", "5", "--duration", "8", "--seed", "3"
    )
    assert code == 0
    assert "converged after quiescence: True" in out
    assert "duplicate deliveries: 0" in out


def test_trace_swimlanes(capsys):
    code, out = run_cli(
        capsys, "trace", "--duration", "0.05", "--swimlanes", "--limit", "8"
    )
    assert code == 0
    header = out.splitlines()[0]
    assert "A" in header and "B" in header and "C" in header


def test_hierarchy_command(capsys):
    code, out = run_cli(capsys, "hierarchy", "--groups", "2", "--group-size", "2")
    assert code == 0
    assert "top ring" in out
    assert "reached 4/4" in out


# ----------------------------------------------------------------------
# obs: exit codes, --quiet, diff
# ----------------------------------------------------------------------
def export_probes(capsys, path, seed):
    code, out = run_cli(
        capsys,
        "obs",
        "export",
        "--seed",
        str(seed),
        "--duration",
        "0.3",
        "--no-crash",
        "--out",
        str(path),
    )
    assert code == 0
    return path


def test_obs_diff_identical_exports_exit_zero(capsys, tmp_path):
    a = export_probes(capsys, tmp_path / "a.jsonl", seed=5)
    b = export_probes(capsys, tmp_path / "b.jsonl", seed=5)
    code, out = run_cli(capsys, "obs", "diff", str(a), str(b))
    assert code == 0
    assert "no divergence" in out


def test_obs_diff_divergence_exits_one(capsys, tmp_path):
    a = export_probes(capsys, tmp_path / "a.jsonl", seed=5)
    b = export_probes(capsys, tmp_path / "b.jsonl", seed=6)
    code, out = run_cli(capsys, "obs", "diff", str(a), str(b))
    assert code == 1
    assert "first divergence at event #" in out
    # --quiet keeps the verdict line (and the exit code) only.
    code, out = run_cli(capsys, "obs", "diff", "--quiet", str(a), str(b))
    assert code == 1
    assert out.startswith("first divergence at event #")
    assert len(out.strip().splitlines()) == 1


def test_obs_diff_load_failure_exits_two(capsys, tmp_path):
    a = export_probes(capsys, tmp_path / "a.jsonl", seed=5)
    code = main(["obs", "diff", str(a), str(tmp_path / "missing.jsonl")])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err
    assert "missing.jsonl" in captured.err


def test_obs_render_missing_bundle_exits_two(capsys, tmp_path):
    code = main(["obs", "render", str(tmp_path / "no-such.bundle.json")])
    captured = capsys.readouterr()
    assert code == 2
    assert "error: cannot read bundle" in captured.err


def test_obs_render_corrupt_bundle_exits_two(capsys, tmp_path):
    bad = tmp_path / "corrupt.bundle.json"
    bad.write_text("{not json")
    code = main(["obs", "render", str(bad)])
    captured = capsys.readouterr()
    assert code == 2
    assert "not JSON" in captured.err


def test_obs_render_bad_span_exits_two(capsys, tmp_path):
    from repro.obs import build_bundle, dump_bundle

    path = dump_bundle(
        build_bundle("manual", at=0.0), tmp_path / "ok.bundle.json"
    )
    code = main(["obs", "render", str(path), "--span", "nonsense"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--span takes ORIGIN#N" in captured.err


def test_trace_quiet_suppresses_output(capsys):
    code, out = run_cli(capsys, "trace", "--duration", "0.05", "--quiet")
    assert code == 0
    assert out == ""


def test_obs_export_quiet_still_writes_file(capsys, tmp_path):
    out_path = tmp_path / "quiet.jsonl"
    code, out = run_cli(
        capsys,
        "obs",
        "export",
        "--seed",
        "5",
        "--duration",
        "0.3",
        "--no-crash",
        "--quiet",
        "--out",
        str(out_path),
    )
    assert code == 0
    assert out == ""
    assert out_path.read_text().strip()


# ----------------------------------------------------------------------
# watch: the live contract-monitor view
# ----------------------------------------------------------------------
def test_watch_clean_run_gates_green(capsys):
    code, out = run_cli(
        capsys,
        "watch",
        "--seconds",
        "5",
        "--seed",
        "11",
        "--fail-on-alerts",
    )
    assert code == 0
    assert "no contract alerts" in out
    assert "t=" in out  # the periodic status feed ran
    assert "ALERT" not in out


def test_watch_known_bad_spike_schedule_fires(capsys):
    code, out = run_cli(
        capsys,
        "watch",
        "--seconds",
        "6",
        "--seed",
        "11",
        "--spike-at",
        "2",
        "--expect-alerts",
    )
    assert code == 0  # --expect-alerts inverts the gate
    assert "ALERT" in out
    assert "token-rate" in out


def test_watch_fail_on_alerts_exits_one(capsys):
    code, out = run_cli(
        capsys,
        "watch",
        "--seconds",
        "6",
        "--seed",
        "11",
        "--spike-at",
        "2",
        "--fail-on-alerts",
    )
    assert code == 1
    assert "ALERT" in out


def test_watch_expect_alerts_on_clean_run_exits_one(capsys):
    code, out = run_cli(
        capsys, "watch", "--seconds", "4", "--seed", "11", "--expect-alerts"
    )
    assert code == 1
    assert "expected at least one contract alert" in out


def test_chaos_replay_missing_trace_exits_two(capsys, tmp_path):
    code = main(["chaos", "--replay", str(tmp_path / "no-such-trace.json")])
    captured = capsys.readouterr()
    assert code == 2
    assert "error: cannot read trace" in captured.err


def test_chaos_replay_malformed_trace_exits_two(capsys, tmp_path):
    bad = tmp_path / "bad-trace.json"
    bad.write_text('{"format": "something-else"}')
    code = main(["chaos", "--replay", str(bad)])
    captured = capsys.readouterr()
    assert code == 2
    assert "is not a chaos trace" in captured.err
