"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.integration


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_info(capsys):
    code, out = run_cli(capsys, "info")
    assert code == 0
    assert "raincore-repro" in out
    assert "e1" in out and "e11" in out
    assert "DESIGN.md" in out


def test_quickstart(capsys):
    code, out = run_cli(capsys, "quickstart", "--nodes", "3", "--seed", "5")
    assert code == 0
    assert "group formed" in out
    assert "rejoined via 911" in out
    assert "task switches" in out


def test_trace(capsys):
    code, out = run_cli(capsys, "trace", "--duration", "0.1", "--limit", "20")
    assert code == 0
    assert "down -> joining" in out
    assert "token" in out


def test_trace_kind_filter(capsys):
    code, out = run_cli(
        capsys, "trace", "--duration", "0.1", "--kinds", "view", "--limit", "50"
    )
    assert code == 0
    assert "view" in out
    assert "token" not in out


def test_merge(capsys):
    code, out = run_cli(capsys, "merge")
    assert code == 0
    assert "split-brain: 3 independent groups" in out
    assert "healed and merged" in out


@pytest.mark.slow
def test_failover(capsys):
    code, out = run_cli(capsys, "failover")
    assert code == 0
    assert "worst connection hiccup" in out
    assert "connections lost: 0" in out


@pytest.mark.slow
def test_scaling_small(capsys):
    code, out = run_cli(capsys, "scaling", "--nodes", "1", "2")
    assert code == 0
    assert "2.0" in out  # ~2x scaling appears in the table


@pytest.mark.slow
def test_soak_short(capsys):
    code, out = run_cli(
        capsys, "soak", "--nodes", "5", "--duration", "8", "--seed", "3"
    )
    assert code == 0
    assert "converged after quiescence: True" in out
    assert "duplicate deliveries: 0" in out


def test_trace_swimlanes(capsys):
    code, out = run_cli(
        capsys, "trace", "--duration", "0.05", "--swimlanes", "--limit", "8"
    )
    assert code == 0
    header = out.splitlines()[0]
    assert "A" in header and "B" in header and "C" in header


def test_hierarchy_command(capsys):
    code, out = run_cli(capsys, "hierarchy", "--groups", "2", "--group-size", "2")
    assert code == 0
    assert "top ring" in out
    assert "reached 4/4" in out
