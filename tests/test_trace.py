"""Tests for the protocol trace recorder."""

import pytest

from repro.metrics.trace import TraceRecorder, render_timeline
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


@pytest.fixture
def traced():
    cluster = make_cluster("ABC")
    trace = TraceRecorder(cluster)
    cluster.start_all()
    return cluster, trace


def test_records_state_transitions(traced):
    cluster, trace = traced
    cluster.run(0.5)
    states = trace.filter(kinds={"state"})
    assert states
    assert any("hungry -> eating" in e.detail for e in states)


def test_records_token_hops(traced):
    cluster, trace = traced
    cluster.run(0.5)
    hops = trace.filter(kinds={"token"})
    assert len(hops) > 5
    assert all("seq=" in e.detail for e in hops)
    # seqs strictly increase along the trace
    seqs = [int(e.detail.split("seq=")[1].split(" ")[0]) for e in hops]
    assert seqs == sorted(seqs)


def test_records_views_and_deliveries(traced):
    cluster, trace = traced
    cluster.node("A").multicast("traced-msg")
    cluster.faults.crash_node("C")
    cluster.run(3.0)
    assert trace.filter(kinds={"view"})
    delivers = trace.filter(kinds={"deliver"})
    assert any("A#1" in e.detail for e in delivers)


def test_filter_by_node(traced):
    cluster, trace = traced
    cluster.run(0.5)
    only_b = trace.filter(nodes={"B"})
    assert only_b and all(e.node == "B" for e in only_b)


def test_events_time_ordered(traced):
    cluster, trace = traced
    cluster.faults.crash_node("B")
    cluster.run(3.0)
    times = [e.at for e in trace.events]
    assert times == sorted(times)


def test_render_timeline(traced):
    cluster, trace = traced
    cluster.run(0.2)
    out = trace.render(limit=10)
    lines = out.splitlines()
    assert len(lines) <= 11
    assert "more events" in lines[-1] or len(trace.events) <= 10
    assert "s  " in lines[0]


def test_render_empty():
    assert render_timeline([]) == "(no events)"


def test_max_events_cap():
    cluster = make_cluster("AB")
    trace = TraceRecorder(cluster, max_events=5)
    cluster.start_all()
    cluster.run(2.0)
    assert len(trace.events) == 5


def test_clear(traced):
    cluster, trace = traced
    cluster.run(0.2)
    trace.clear()
    assert trace.events == []


def test_render_swimlanes(traced):
    from repro.metrics.trace import render_swimlanes

    cluster, trace = traced
    cluster.run(0.2)
    out = render_swimlanes(trace.events, ["A", "B", "C"], limit=15)
    lines = out.splitlines()
    assert "A" in lines[0] and "B" in lines[0] and "C" in lines[0]
    # Events land in their node's lane: find a B event and check placement.
    b_events = [e for e in trace.events[:15] if e.node == "B"]
    if b_events:
        lane_start = lines[0].index("B")
        row = next(
            l for l in lines[2:]
            if len(l) > lane_start and l[lane_start - 8 : lane_start + 8].strip()
        )
        assert row  # something rendered in B's lane region


def test_render_swimlanes_empty():
    from repro.metrics.trace import render_swimlanes

    assert render_swimlanes([], ["A"]) == "(no events)"
