"""Tests for repro.obs.spans: span/episode reconstruction.

Three real failure shapes are exercised end-to-end (non-holder crash via
fd accusation, holder crash via starvation regeneration, pure token loss
with no victim), plus synthetic streams for the merge-window and resync
ladder folds where the exact event geometry matters.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.harness import RaincoreCluster
from repro.obs.diff import first_divergence, load_events
from repro.obs.probe import ProbeEvent
from repro.obs.scenario import run_quickstart
from repro.obs.spans import DEFAULT_BOUNDS, Span, SpanTimeline, reconstruct_spans


def make_event(n, at, node, kind, args=()):
    # Synthetic stream: the merge-window and resync-ladder folds are
    # tested against exact event geometry a live run can't pin down.
    return ProbeEvent(n, at, node, kind, tuple(args))  # raincheck: disable=RC402 -- synthetic test stream with chosen timestamps


def recorded_cluster(ids, seed):
    cluster = RaincoreCluster(ids, seed=seed)
    events = []
    cluster.enable_probes().subscribe(events.append)
    cluster.start_all()
    return cluster, events


# ----------------------------------------------------------------------
# token laps
# ----------------------------------------------------------------------
def test_token_laps_cover_every_accept_pair():
    run = run_quickstart(nodes=4, seed=7, duration=1.0, crash=False)
    timeline = reconstruct_spans(run.events)
    laps = timeline.of_kind("token.lap")
    assert laps
    accepts_by_node = {}
    for e in run.events:
        if e.kind == "token.accept":
            accepts_by_node[e.node] = accepts_by_node.get(e.node, 0) + 1
    # N accepts at one node bound exactly N-1 laps there.
    expected = sum(c - 1 for c in accepts_by_node.values() if c > 1)
    assert len(laps) == expected
    for lap in laps:
        assert lap.duration > 0.0
        assert lap.get("gen") is not None


# ----------------------------------------------------------------------
# 911 episode shapes
# ----------------------------------------------------------------------
def test_episode_nonholder_crash_detected_by_fd():
    """Shape A: a non-holder crash is accused by failure-on-delivery; the
    episode carries the fd.arm->fd.fire detection latency and it respects
    the paper's 0.15 s bound."""
    run = run_quickstart(nodes=4, seed=2024, duration=1.0, crash=True)
    timeline = reconstruct_spans(run.events)
    episodes = timeline.of_kind("episode.911")
    fd_episodes = [s for s in episodes if s.get("via") == "fd"]
    assert fd_episodes
    for s in fd_episodes:
        assert s.get("victim") is not None
        detect = s.get("detect")
        assert detect is not None
        assert detect <= DEFAULT_BOUNDS["episode.911.detect"] * 1.10
        assert s.get("stabilize") >= 0.0
        assert s.duration >= detect
    assert timeline.check() == []


def test_episode_holder_crash_recovers_via_starvation():
    """Shape B: a crashed token *holder* is never accused (the token died
    with it) — the hungry timeout regenerates, and the victim is inferred
    from the membership delta across the regeneration."""
    ids = ["A", "B", "C", "D"]
    cluster, events = recorded_cluster(ids, seed=11)
    holders = []
    for _ in range(400):
        holders = cluster.token_holders()
        if holders:
            break
        cluster.run(0.01)
    assert holders, "token never landed"
    victim = holders[0]
    cluster.faults.crash_node(victim)
    cluster.run_until_converged(15.0, expected=set(ids) - {victim})
    cluster.run(1.0)  # let the regenerated token circulate

    timeline = reconstruct_spans(events)
    starvation = [
        s
        for s in timeline.of_kind("episode.911")
        if s.get("via") == "starvation" and s.get("victim") == victim
    ]
    assert starvation, timeline.render()
    episode = starvation[0]
    assert episode.get("gen") is not None
    assert episode.get("regen") >= 0.0
    # Starvation episodes carry no fd verdict; check() must not flag them.
    assert timeline.check() == []


def test_episode_token_loss_is_victimless():
    """Shape C: destroying the token without killing anyone yields a 911
    episode with no victim (membership never changes)."""
    ids = ["A", "B", "C"]
    cluster, events = recorded_cluster(ids, seed=5)
    cluster.run(0.5)
    cluster.faults.lose_token_in_flight()
    cluster.run(15.0)

    timeline = reconstruct_spans(events)
    victimless = [
        s
        for s in timeline.of_kind("episode.911")
        if s.get("victim") is None and s.get("via") == "starvation"
    ]
    assert victimless, timeline.render()
    assert timeline.check() == []


def test_check_flags_breaches_with_tight_bounds():
    run = run_quickstart(nodes=4, seed=2024, duration=1.0, crash=True)
    timeline = reconstruct_spans(run.events)
    breaches = timeline.check(bounds={"episode.911.detect": 1e-9})
    assert breaches
    assert "detect" in breaches[0] and "bound" in breaches[0]
    # Percentile bounds apply per kind without tolerance.
    assert timeline.check(bounds={"token.lap.p95": 1e-12})
    assert timeline.check(bounds={"token.lap.p95": 1e9}) == []


# ----------------------------------------------------------------------
# synthetic folds: merge windows and resync ladders
# ----------------------------------------------------------------------
def test_merge_window_spans_surrounding_views():
    events = [
        make_event(1, 1.0, "A", "view.change", ("v1", ("A", "B"))),
        make_event(2, 2.0, "A", "token.merge", ("g.3", "g.1", "g.2", 7)),
        make_event(3, 2.5, "A", "view.change", ("v2", ("A", "B", "C"))),
    ]
    timeline = reconstruct_spans(events)
    merges = timeline.of_kind("merge.tbm")
    assert len(merges) == 1
    m = merges[0]
    assert (m.start, m.end) == (1.0, 2.5)
    assert m.get("gen") == "g.3"
    assert m.get("left") == "g.1" and m.get("right") == "g.2"


def test_merge_window_degenerates_without_views():
    events = [make_event(1, 2.0, "A", "token.merge", ("g.3", "g.1", "g.2", 7))]
    m = reconstruct_spans(events).of_kind("merge.tbm")[0]
    assert m.start == m.end == 2.0 and m.duration == 0.0


def test_resync_ladder_counts_rungs_and_deepest():
    events = [
        make_event(1, 1.0, "A", "resync.delta", ("locks", "R", 10, 4, 256)),
        make_event(2, 1.2, "A", "resync.delta", ("locks", "R", 14, 2, 128)),
        make_event(3, 1.5, "A", "resync.snapshot_fallback", ("locks", "R", 3, 9)),
        make_event(4, 1.9, "A", "resync.quarantine", ("R", "flapping", True)),
    ]
    timeline = reconstruct_spans(events)
    ladders = timeline.of_kind("resync.ladder")
    assert len(ladders) == 1
    ladder = ladders[0]
    assert ladder.node == "R"  # the span belongs to the resyncing peer
    assert (ladder.start, ladder.end) == (1.0, 1.9)
    assert ladder.get("deltas") == 2
    assert ladder.get("snapshots") == 1
    assert ladder.get("quarantines") == 1
    assert ladder.get("deepest") == "quarantine"


def test_resync_gap_opens_a_new_ladder():
    events = [
        make_event(1, 1.0, "A", "resync.delta", ("locks", "R", 10, 4, 256)),
        make_event(2, 20.0, "A", "resync.delta", ("locks", "R", 30, 1, 64)),
    ]
    ladders = reconstruct_spans(events).of_kind("resync.ladder")
    assert len(ladders) == 2
    assert all(ladder.get("deepest") == "delta" for ladder in ladders)


# ----------------------------------------------------------------------
# timeline mechanics
# ----------------------------------------------------------------------
def test_spans_sort_deterministically_and_summarize():
    spans = [
        Span("b.kind", "B", 1.0, 3.0),
        Span("a.kind", "A", 1.0, 2.0),
        Span("a.kind", "A", 0.5, 1.0),
    ]
    timeline = SpanTimeline(spans)
    assert [s.start for s in timeline.spans] == [0.5, 1.0, 1.0]
    assert timeline.kinds() == {"a.kind": 2, "b.kind": 1}
    summary = timeline.summary()
    assert summary["a.kind"]["count"] == 2.0
    assert summary["a.kind"]["max"] == pytest.approx(1.0)
    text = timeline.render(limit=2)
    assert text.startswith("spans: 3")
    assert "... 1 more spans" in text


def test_reconstruction_is_deterministic_per_seed():
    runs = [
        run_quickstart(nodes=4, seed=2024, duration=1.0, crash=True)
        for _ in range(2)
    ]
    timelines = [reconstruct_spans(r.events) for r in runs]
    assert timelines[0].spans == timelines[1].spans
    assert timelines[0].to_records() == timelines[1].to_records()


def test_to_records_round_trips_through_obs_diff(tmp_path):
    run = run_quickstart(nodes=4, seed=2024, duration=1.0, crash=True)
    records = reconstruct_spans(run.events).to_records()
    assert records
    assert [r["n"] for r in records] == list(range(1, len(records) + 1))
    for r in records:
        assert r["kind"].startswith("span.")
        json.dumps(r)  # every record is JSON-safe
    path = tmp_path / "spans.jsonl"
    path.write_text(
        "".join(
            json.dumps(r, sort_keys=True, separators=(",", ":")) + "\n"
            for r in records
        )
    )
    loaded = load_events(path)
    assert len(loaded) == len(records)
    assert first_divergence(loaded, records) is None
