"""Tests for workload distributions and the analysis helpers."""

import random

import pytest

from repro.apps.workloads import bimodal, constant, lognormal, pareto
from repro.metrics.analysis import (
    Stats,
    delivery_spreads,
    duplicate_deliveries,
    prefix_consistency_violations,
    summarize,
    view_change_counts,
)
from tests.conftest import make_cluster


# ----------------------------------------------------------------------
# workload distributions
# ----------------------------------------------------------------------
def test_constant():
    f = constant(500.0)
    assert [f() for _ in range(3)] == [500.0, 500.0, 500.0]
    with pytest.raises(ValueError):
        constant(0)


def test_pareto_mean_and_tail():
    rng = random.Random(1)
    f = pareto(rng, mean=100_000.0, alpha=1.5)
    samples = [f() for _ in range(20000)]
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(100_000.0, rel=0.25)
    # Heavy tail: the max dwarfs the median.
    assert max(samples) > 20 * sorted(samples)[len(samples) // 2]
    # All samples at least x_min.
    assert min(samples) >= 100_000.0 * (0.5 / 1.5) - 1e-6


def test_pareto_validation():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        pareto(rng, mean=-1)
    with pytest.raises(ValueError):
        pareto(rng, mean=1, alpha=1.0)


def test_lognormal_mean():
    rng = random.Random(2)
    f = lognormal(rng, mean=50_000.0, sigma=1.0)
    samples = [f() for _ in range(20000)]
    assert sum(samples) / len(samples) == pytest.approx(50_000.0, rel=0.2)
    with pytest.raises(ValueError):
        lognormal(rng, mean=1, sigma=0)


def test_bimodal_proportions():
    rng = random.Random(3)
    f = bimodal(rng, small=1000.0, large=1_000_000.0, p_large=0.1)
    samples = [f() for _ in range(5000)]
    large = sum(1 for s in samples if s == 1_000_000.0)
    assert 0.07 < large / len(samples) < 0.13
    assert set(samples) == {1000.0, 1_000_000.0}
    with pytest.raises(ValueError):
        bimodal(rng, small=0, large=1)
    with pytest.raises(ValueError):
        bimodal(rng, small=1, large=1, p_large=2.0)


# ----------------------------------------------------------------------
# analysis helpers
# ----------------------------------------------------------------------
def test_summarize_basic():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == 2.5
    assert s.max == 4.0
    assert s.p50 == 3.0


def test_summarize_empty():
    assert summarize([]) == Stats.empty()


def test_prefix_consistency_detects_violation():
    good = {"A": [("A", 1), ("B", 1)], "B": [("A", 1), ("B", 1)]}
    assert prefix_consistency_violations(good) == []
    bad = {"A": [("A", 1), ("B", 1)], "B": [("B", 1), ("A", 1)]}
    assert prefix_consistency_violations(bad) == [("A", "B")]


def test_prefix_consistency_ignores_disjoint():
    orders = {"A": [("A", 1)], "B": [("B", 9)]}
    assert prefix_consistency_violations(orders) == []


@pytest.mark.integration
def test_analysis_on_live_cluster(abcd):
    for i in range(6):
        abcd.node("ABCD"[i % 4]).multicast(f"m{i}")
    abcd.run(2.0)
    spreads = delivery_spreads(abcd)
    assert spreads.count == 6
    # Agreed multicast spread is bounded by ~one ring traversal.
    assert spreads.max <= 4 * abcd.config.hop_interval + 0.01
    assert duplicate_deliveries(abcd) == {n: 0 for n in "ABCD"}
    assert prefix_consistency_violations(abcd.all_delivery_orders()) == []
    churn = view_change_counts(abcd)
    assert all(v >= 1 for v in churn.values())
