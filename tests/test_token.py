"""Unit tests for the TOKEN data structure."""

import pytest

from repro.core.token import (
    MSG_HEADER,
    Ordering,
    PiggybackedMessage,
    TOKEN_HEADER,
    Token,
)


def make_token(members="ABCD", seq=0):
    return Token(seq=seq, membership=tuple(members))


def test_group_id_is_lowest_member():
    assert make_token("CBDA").group_id == "A"
    assert make_token("DB").group_id == "B"


def test_group_id_requires_members():
    with pytest.raises(ValueError):
        Token().group_id


def test_next_after_wraps():
    t = make_token("ABC")
    assert t.next_after("A") == "B"
    assert t.next_after("C") == "A"


def test_remove_member_preserves_ring_order():
    t = make_token("ABCD")
    t.remove_member("B")
    assert t.membership == ("A", "C", "D")


def test_remove_member_bumps_view_id():
    t = make_token("AB")
    v = t.view_id
    t.remove_member("B")
    assert t.view_id == v + 1


def test_remove_absent_member_is_noop():
    t = make_token("AB")
    v = t.view_id
    t.remove_member("Z")
    assert t.membership == ("A", "B")
    assert t.view_id == v


def test_remove_member_prunes_pending_sets():
    t = make_token("ABC")
    msg = PiggybackedMessage("A", 1, "x", 1, pending={"B", "C"})
    t.messages.append(msg)
    t.remove_member("B")
    assert msg.pending == {"C"}


def test_insert_after_places_joiner():
    """The paper's ACBD example: C adds B right after itself."""
    t = make_token("ACD")
    t.insert_after("C", "B")
    assert t.membership == ("A", "C", "B", "D")


def test_insert_after_existing_member_is_noop():
    t = make_token("AB")
    t.insert_after("A", "B")
    assert t.membership == ("A", "B")


def test_insert_after_unknown_anchor():
    t = make_token("AB")
    with pytest.raises(ValueError):
        t.insert_after("Z", "C")


def test_insert_at_ring_end_wraps_correctly():
    t = make_token("AB")
    t.insert_after("B", "C")
    assert t.membership == ("A", "B", "C")
    assert t.next_after("C") == "A"


def test_wire_size_model():
    t = make_token("AB")
    base = TOKEN_HEADER + 2 * 8
    assert t.wire_size() == base
    t.messages.append(PiggybackedMessage("A", 1, b"xxxx", 4))
    assert t.wire_size() == base + MSG_HEADER + 4


def test_copy_is_independent():
    t = make_token("ABC")
    msg = PiggybackedMessage("A", 1, "x", 1, pending={"B", "C"})
    t.messages.append(msg)
    c = t.copy()
    c.remove_member("B")
    c.messages[0].pending.discard("C")
    assert t.membership == ("A", "B", "C")
    assert msg.pending == {"B", "C"}


def test_copy_preserves_message_identity_fields():
    t = make_token("AB")
    msg = PiggybackedMessage(
        "A", 7, "payload", 9, ordering=Ordering.SAFE,
        audience=frozenset("AB"), pending={"B"}, confirmed=True,
    )
    t.messages.append(msg)
    c = t.copy().messages[0]
    assert c.key() == ("A", 7)
    assert c.uid == msg.uid
    assert c.ordering is Ordering.SAFE
    assert c.confirmed is True
    assert c.audience == frozenset("AB")


def test_message_uids_unique():
    a = PiggybackedMessage("A", 1, "x", 1)
    b = PiggybackedMessage("A", 1, "x", 1)
    assert a.uid != b.uid


# ----------------------------------------------------------------------
# incremental wire-size cache and copy-on-write snapshots
# ----------------------------------------------------------------------
def msg(origin, no, size, **kw):
    return PiggybackedMessage(origin, no, b"x" * size, size, **kw)


def test_incremental_wire_size_tracks_recompute():
    t = make_token("ABCD")
    assert t.wire_size() == t.recompute_wire_size()
    for i in range(5):
        t.attach_message(msg("A", i + 1, 10 * (i + 1)))
        assert t.wire_size() == t.recompute_wire_size()
    # Retire a subset through the wholesale-swap path.
    t.set_messages(t.messages[::2])
    assert t.wire_size() == t.recompute_wire_size()
    t.remove_member("B")
    assert t.wire_size() == t.recompute_wire_size()
    t.attach_message(msg("C", 9, 7))
    assert t.wire_size() == t.recompute_wire_size()
    t.set_messages([])
    assert t.wire_size() == t.recompute_wire_size()


def test_wire_size_survives_direct_list_mutation():
    # Tests and adversarial scenarios may bypass attach_message; the cache
    # must degrade to a recompute, never return a stale value.
    t = make_token("AB")
    t.attach_message(msg("A", 1, 8))
    assert t.wire_size() == t.recompute_wire_size()
    t.messages.append(msg("B", 1, 100))
    assert t.wire_size() == t.recompute_wire_size()
    t.messages = [msg("A", 2, 3)]
    assert t.wire_size() == t.recompute_wire_size()


def test_wire_size_cache_after_snapshot_chain():
    t = make_token("ABC")
    t.attach_message(msg("A", 1, 50))
    s = t.snapshot()
    s.attach_message(msg("B", 1, 20))
    assert s.wire_size() == s.recompute_wire_size()
    assert t.wire_size() == t.recompute_wire_size()
    s2 = s.snapshot()
    s2.remove_member("B")
    assert s2.wire_size() == s2.recompute_wire_size()


def test_snapshot_is_copy_on_write_independent():
    t = make_token("ABC")
    m = msg("A", 1, 4, pending={"B", "C"})
    t.attach_message(m)
    snap = t.snapshot()
    # Mutating through the live token's COW paths must not leak into the
    # snapshot: remove_member clones the shared message before writing.
    t.remove_member("B")
    assert t.messages[0].pending == {"C"}
    assert snap.messages[0].pending == {"B", "C"}
    assert snap.membership == ("A", "B", "C")
    # Appends to the live token are invisible to the snapshot (copied list).
    t.attach_message(msg("A", 2, 4))
    assert len(snap.messages) == 1


def test_cow_returns_self_when_unshared():
    m = msg("A", 1, 4, pending={"B"})
    assert m.cow() is m
    m.shared = True
    clone = m.cow()
    assert clone is not m
    assert clone.uid == m.uid
    assert clone.pending == m.pending and clone.pending is not m.pending
    assert clone.shared is False
