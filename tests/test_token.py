"""Unit tests for the TOKEN data structure."""

import pytest

from repro.core.token import (
    MSG_HEADER,
    Ordering,
    PiggybackedMessage,
    TOKEN_HEADER,
    Token,
)


def make_token(members="ABCD", seq=0):
    return Token(seq=seq, membership=tuple(members))


def test_group_id_is_lowest_member():
    assert make_token("CBDA").group_id == "A"
    assert make_token("DB").group_id == "B"


def test_group_id_requires_members():
    with pytest.raises(ValueError):
        Token().group_id


def test_next_after_wraps():
    t = make_token("ABC")
    assert t.next_after("A") == "B"
    assert t.next_after("C") == "A"


def test_remove_member_preserves_ring_order():
    t = make_token("ABCD")
    t.remove_member("B")
    assert t.membership == ("A", "C", "D")


def test_remove_member_bumps_view_id():
    t = make_token("AB")
    v = t.view_id
    t.remove_member("B")
    assert t.view_id == v + 1


def test_remove_absent_member_is_noop():
    t = make_token("AB")
    v = t.view_id
    t.remove_member("Z")
    assert t.membership == ("A", "B")
    assert t.view_id == v


def test_remove_member_prunes_pending_sets():
    t = make_token("ABC")
    msg = PiggybackedMessage("A", 1, "x", 1, pending={"B", "C"})
    t.messages.append(msg)
    t.remove_member("B")
    assert msg.pending == {"C"}


def test_insert_after_places_joiner():
    """The paper's ACBD example: C adds B right after itself."""
    t = make_token("ACD")
    t.insert_after("C", "B")
    assert t.membership == ("A", "C", "B", "D")


def test_insert_after_existing_member_is_noop():
    t = make_token("AB")
    t.insert_after("A", "B")
    assert t.membership == ("A", "B")


def test_insert_after_unknown_anchor():
    t = make_token("AB")
    with pytest.raises(ValueError):
        t.insert_after("Z", "C")


def test_insert_at_ring_end_wraps_correctly():
    t = make_token("AB")
    t.insert_after("B", "C")
    assert t.membership == ("A", "B", "C")
    assert t.next_after("C") == "A"


def test_wire_size_model():
    t = make_token("AB")
    base = TOKEN_HEADER + 2 * 8
    assert t.wire_size() == base
    t.messages.append(PiggybackedMessage("A", 1, b"xxxx", 4))
    assert t.wire_size() == base + MSG_HEADER + 4


def test_copy_is_independent():
    t = make_token("ABC")
    msg = PiggybackedMessage("A", 1, "x", 1, pending={"B", "C"})
    t.messages.append(msg)
    c = t.copy()
    c.remove_member("B")
    c.messages[0].pending.discard("C")
    assert t.membership == ("A", "B", "C")
    assert msg.pending == {"B", "C"}


def test_copy_preserves_message_identity_fields():
    t = make_token("AB")
    msg = PiggybackedMessage(
        "A", 7, "payload", 9, ordering=Ordering.SAFE,
        audience=frozenset("AB"), pending={"B"}, confirmed=True,
    )
    t.messages.append(msg)
    c = t.copy().messages[0]
    assert c.key() == ("A", 7)
    assert c.uid == msg.uid
    assert c.ordering is Ordering.SAFE
    assert c.confirmed is True
    assert c.audience == frozenset("AB")


def test_message_uids_unique():
    a = PiggybackedMessage("A", 1, "x", 1)
    b = PiggybackedMessage("A", 1, "x", 1)
    assert a.uid != b.uid
