"""Tests for the replicated connection table (Rainwall's shared state)."""

import pytest

from repro.apps.conntrack import ConnectionTable
from repro.apps.rainwall import RainwallCluster, RainwallConfig
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


@pytest.fixture
def tracked():
    c = make_cluster("ABC")
    tables = {nid: ConnectionTable(c.node(nid)) for nid in "ABC"}
    c.start_all()
    return c, tables


def test_assignments_replicate(tracked):
    c, tables = tracked
    tables["A"].record(1, "B")
    tables["C"].record(2, "A")
    c.run(1.0)
    for nid in "ABC":
        assert tables[nid].home_of(1) == "B"
        assert tables[nid].home_of(2) == "A"
        assert tables[nid].size() == 2


def test_close_retires_entries(tracked):
    c, tables = tracked
    tables["A"].record(1, "B")
    c.run(1.0)
    tables["B"].close(1)
    c.run(1.0)
    for nid in "ABC":
        assert tables[nid].home_of(1) is None
        assert tables[nid].size() == 0


def test_on_assignment_fires_at_target_only(tracked):
    c, tables = tracked
    fired = {nid: [] for nid in "ABC"}
    for nid in "ABC":
        tables[nid].on_assignment = lambda fid, gw, nid=nid: fired[nid].append(fid)
    tables["A"].record(7, "C")
    c.run(1.0)
    assert fired == {"A": [], "B": [], "C": [7]}


def test_orphans_adopted_on_view_change(tracked):
    c, tables = tracked
    for fid in range(10):
        tables["A"].record(fid, "C")
    c.run(1.0)
    c.faults.crash_node("C")
    c.run(4.0)
    # Every orphan re-homed to a survivor, split deterministically.
    for nid in "AB":
        for fid in range(10):
            assert tables[nid].home_of(fid) in ("A", "B")
    homes = {fid: tables["A"].home_of(fid) for fid in range(10)}
    assert set(homes.values()) == {"A", "B"}  # both survivors adopted some
    assert tables["A"].snapshot() == tables["B"].snapshot()


def test_in_flight_assignment_to_dead_gateway_readopted(tracked):
    c, tables = tracked
    c.faults.crash_node("C")
    # Record an assignment naming C *before* the view change propagates.
    tables["A"].record(99, "C")
    c.run(5.0)
    assert tables["A"].home_of(99) in ("A", "B")
    assert tables["B"].home_of(99) == tables["A"].home_of(99)


def test_adoption_split_is_deterministic(tracked):
    c, tables = tracked
    for fid in range(20):
        tables["B"].record(fid, "C")
    c.run(1.0)
    c.faults.crash_node("C")
    c.run(4.0)
    survivors = sorted(["A", "B"])
    for fid in range(20):
        expected = survivors[fid % 2]
        assert tables["A"].home_of(fid) == expected


def test_rainwall_failover_is_protocol_driven():
    """End to end: connection fail-over happens via the replicated table
    and completes far under the paper's 2-second budget."""
    rw = RainwallCluster(
        ["g0", "g1"], seed=7, config=RainwallConfig(arrival_rate=300.0)
    )
    rw.start()
    rw.run(3.0)
    assert rw.conntrack["g0"].size() > 0
    rw.unplug_gateway("g1")
    rw.run(6.0)
    assert rw.conntrack["g0"].adoptions > 0
    stalls = [f.total_stall for f in rw.engine.flows.values()]
    assert max(stalls) < 2.0
    lost = sum(
        1 for f in rw.engine.flows.values() if not f.done and f.gateway is None
    )
    assert lost == 0


def test_table_tracks_active_connections():
    rw = RainwallCluster(
        ["g0", "g1"], seed=3, config=RainwallConfig(arrival_rate=100.0)
    )
    rw.start()
    rw.run(4.0)
    active = sum(len(p.flows) for p in rw.engine.gateways.values())
    table = rw.conntrack["g0"].size()
    # The replica lags by the in-flight window only.
    assert abs(table - active) <= max(10, active * 0.2)
