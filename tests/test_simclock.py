"""Unit tests for the virtual clock."""

# raincheck: disable-file=RC204 -- this file unit-tests SimClock.advance_to
# itself; everywhere else the clock advances only by running events

import pytest

from repro.net.simclock import SimClock


def test_starts_at_zero_by_default():
    assert SimClock().now == 0.0


def test_starts_at_given_time():
    assert SimClock(5.5).now == 5.5


def test_rejects_negative_start():
    with pytest.raises(ValueError):
        SimClock(-1.0)


def test_advance_moves_forward():
    clock = SimClock()
    clock.advance_to(3.25)
    assert clock.now == 3.25


def test_advance_to_same_time_is_allowed():
    clock = SimClock(2.0)
    clock.advance_to(2.0)
    assert clock.now == 2.0


def test_time_cannot_flow_backwards():
    clock = SimClock(10.0)
    with pytest.raises(ValueError):
        clock.advance_to(9.999)
