"""Property-based tests (hypothesis) for core invariants.

DESIGN.md §5 properties P1–P9 are exercised here against randomized inputs:
pure ring/token algebra first, then whole-cluster runs under randomized
fault schedules with a quiescent tail (the paper's §2.5 Quiescent Period
framing: agreement claims hold once change events stop).
"""

from __future__ import annotations

from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.cluster.harness import RaincoreCluster
from repro.core.membership import merge_rings, ring_predecessor, ring_successor, rotate_to
from repro.core.token import PiggybackedMessage, Token

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
node_names = st.lists(
    st.text(alphabet="ABCDEFGHIJKLMNOP", min_size=1, max_size=2),
    min_size=1,
    max_size=8,
    unique=True,
)


@st.composite
def rings(draw, min_size=1, max_size=8):
    return tuple(draw(node_names.filter(lambda ns: len(ns) >= min_size)))


# ----------------------------------------------------------------------
# ring algebra
# ----------------------------------------------------------------------
@given(rings())
def test_successor_predecessor_inverse(ring):
    for n in ring:
        assert ring_predecessor(ring, ring_successor(ring, n)) == n
        assert ring_successor(ring, ring_predecessor(ring, n)) == n


@given(rings())
def test_successor_orbit_covers_ring(ring):
    """Following successors from any start visits every node exactly once
    per cycle — the token's fairness guarantee."""
    start = ring[0]
    seen = [start]
    cur = start
    for _ in range(len(ring) - 1):
        cur = ring_successor(ring, cur)
        seen.append(cur)
    assert sorted(seen) == sorted(ring)
    assert ring_successor(ring, cur) == start


@given(rings())
def test_rotate_preserves_cyclic_order(ring):
    for head in ring:
        rot = rotate_to(ring, head)
        assert rot[0] == head
        assert sorted(rot) == sorted(ring)
        # successor relation is rotation-invariant
        for n in ring:
            assert ring_successor(rot, n) == ring_successor(ring, n)


@given(rings(min_size=2), rings(min_size=1))
def test_merge_rings_union_no_duplicates(base, other):
    joiner = base[-1]
    other = tuple(dict.fromkeys((joiner,) + other))  # ensure joiner present
    merged = merge_rings(base, joiner, other)
    assert sorted(merged) == sorted(set(base) | set(other))


@given(rings(min_size=2), rings(min_size=1))
def test_merge_rings_keeps_base_order(base, other):
    joiner = base[0]
    other = tuple(dict.fromkeys((joiner,) + other))
    merged = merge_rings(base, joiner, other)
    base_positions = [merged.index(b) for b in base]
    # base members keep their relative order in the merged ring
    filtered = [m for m in merged if m in set(base)]
    assert tuple(filtered) == base


# ----------------------------------------------------------------------
# token membership editing
# ----------------------------------------------------------------------
@given(rings(min_size=2), st.data())
def test_token_remove_insert_roundtrips(ring, data):
    token = Token(membership=ring)
    victim = data.draw(st.sampled_from(ring))
    anchor_pool = [n for n in ring if n != victim]
    token.remove_member(victim)
    assert victim not in token.membership
    anchor = data.draw(st.sampled_from(anchor_pool))
    token.insert_after(anchor, victim)
    assert sorted(token.membership) == sorted(ring)
    assert token.next_after(anchor) == victim


@given(rings(min_size=1), st.lists(st.integers(0, 6), max_size=12))
def test_token_membership_never_duplicates(ring, ops):
    """Arbitrary interleavings of remove/insert keep ids unique."""
    token = Token(membership=ring)
    pool = list(ring) + ["Z1", "Z2", "Z3"]
    for op in ops:
        if not token.membership:
            break
        target = pool[op % len(pool)]
        if token.has_member(target) and len(token.membership) > 1:
            token.remove_member(target)
        elif token.membership:
            token.insert_after(token.membership[0], target)
        members = token.membership
        assert len(members) == len(set(members))


@given(st.sets(st.sampled_from("ABCDEF"), min_size=1))
def test_pending_pruning_on_removal(members):
    ring = tuple(sorted(members)) + ("X",)
    token = Token(membership=ring)
    msg = PiggybackedMessage("X", 1, "p", 1, pending=set(ring))
    token.messages.append(msg)
    for victim in sorted(members):
        token.remove_member(victim)
        assert victim not in msg.pending
    assert msg.pending == {"X"}


# ----------------------------------------------------------------------
# whole-cluster randomized scenarios
# ----------------------------------------------------------------------
FAULT_KINDS = ("crash", "recover", "lose_token", "cut", "restore", "noop")


@st.composite
def fault_schedules(draw):
    n_events = draw(st.integers(1, 5))
    return [
        (
            draw(st.sampled_from(FAULT_KINDS)),
            draw(st.integers(0, 3)),  # node index
            draw(st.integers(1, 3)),  # other node index offset
            draw(st.floats(0.05, 0.6)),  # inter-event delay
        )
        for _ in range(n_events)
    ]


def apply_fault(cluster: RaincoreCluster, kind, idx, offset, node_ids):
    a = node_ids[idx % len(node_ids)]
    b = node_ids[(idx + offset) % len(node_ids)]
    live = {n.node_id for n in cluster.live_nodes()}
    if kind == "crash" and a in live and len(live) > 1:
        cluster.faults.crash_node(a)
    elif kind == "recover" and a not in live and live:
        cluster.faults.recover_node(a)
    elif kind == "lose_token":
        cluster.faults.lose_token()
    elif kind == "cut" and a != b:
        cluster.faults.cut_link(a, b)
    elif kind == "restore" and a != b:
        cluster.faults.restore_link(a, b)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(schedule=fault_schedules(), seed=st.integers(0, 2**16))
def test_membership_agreement_after_quiescence(schedule, seed):
    """P2+P3: after an arbitrary fault schedule followed by a quiescent
    period with all links restored, every live node converges to the same
    membership containing exactly the live nodes, and a token exists."""
    node_ids = ["A", "B", "C", "D"]
    cluster = RaincoreCluster(node_ids, seed=seed)
    cluster.start_all()
    for kind, idx, offset, delay in schedule:
        apply_fault(cluster, kind, idx, offset, node_ids)
        cluster.run(delay)
    # Quiescence: restore all links; crashed nodes stay down (allowed —
    # node-removal events have already propagated or will via detection).
    for i, a in enumerate(node_ids):
        for b in node_ids[i + 1 :]:
            cluster.faults.restore_link(a, b)
    live = {n.node_id for n in cluster.live_nodes()}
    if not live:
        return
    assert cluster.run_until_converged(30.0, expected=live), (
        f"views={cluster.membership_views()} live={live}"
    )


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 2**16),
    senders=st.lists(st.integers(0, 3), min_size=1, max_size=8),
    crash_at=st.floats(0.0, 0.3),
)
def test_ordering_prefix_consistency_under_crash(seed, senders, crash_at):
    """P5: delivery orders at any two nodes are prefix-consistent on their
    common messages, even when a member crashes mid-multicast."""
    node_ids = ["A", "B", "C", "D"]
    cluster = RaincoreCluster(node_ids, seed=seed)
    cluster.start_all()
    for i, s in enumerate(senders):
        cluster.node(node_ids[s]).multicast(f"m{i}")
    cluster.run(crash_at)
    cluster.faults.crash_node("D")
    cluster.run(6.0)
    orders = [
        cluster.listener(n).delivery_keys for n in node_ids
    ]
    for i in range(len(orders)):
        for j in range(i + 1, len(orders)):
            a, b = orders[i], orders[j]
            common = set(a) & set(b)
            fa = [k for k in a if k in common]
            fb = [k for k in b if k in common]
            assert fa == fb, f"nodes {i},{j} disagree: {fa} vs {fb}"


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 2**16), loss=st.floats(0.0, 0.25))
@example(seed=1321, loss=0.25)  # found by hypothesis: ack loss on a
# delivered forward makes B repair while C eats — a ~20 ms duplicate window
def test_token_uniqueness_sampled_under_loss(seed, loss):
    """P1: sampled at every millisecond of a lossy quiescent run, token
    uniqueness holds up to the documented transient.

    Under packet loss a failure-detector false alarm (the ack of a
    *delivered* forward is lost) legitimately creates a short duplicate-
    token window: the sender repairs and re-accepts its local copy while
    the receiver already eats.  The stale branch dies at the first node
    that saw the newer seq (DESIGN.md §5, invariants.py).  Zero windows is
    unachievable under lossy links, so — exactly like the chaos engine —
    we bound the *cumulative* duplicate time instead: one worst-case
    repair episode is ``retx_timeout * attempts_per_route`` (0.15 s by
    default), and every observed window must heal within it.
    """
    cluster = RaincoreCluster(["A", "B", "C"], seed=seed, loss=loss)
    cluster.start_all()
    double_samples = 0
    for _ in range(500):
        cluster.run(0.001)
        if len(cluster.token_holders()) > 1:
            double_samples += 1
    allowance = 0.15  # TransportConfig().failure_detection_bound()
    assert double_samples * 0.001 <= allowance, (
        f"duplicate-token windows totalled {double_samples} ms over a "
        f"500 ms run (allowance {allowance * 1000:.0f} ms, loss={loss})"
    )


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**16))
def test_no_duplicate_deliveries_after_token_loss(seed):
    """Regeneration replays recent token state; uid suppression must keep
    deliveries exactly-once."""
    cluster = RaincoreCluster(["A", "B", "C", "D"], seed=seed)
    cluster.start_all()
    for i in range(6):
        cluster.node("ABCD"[i % 4]).multicast(f"m{i}")
    cluster.run(0.02)
    cluster.faults.lose_token()
    cluster.run(8.0)
    for n in "ABCD":
        keys = cluster.listener(n).delivery_keys
        assert len(keys) == len(set(keys))
