"""Tests for the per-process worker runtime."""

import json
import subprocess
import sys

import pytest

from repro.runtime.worker import build_parser

pytestmark = [pytest.mark.integration, pytest.mark.slow]

PORTS = {"A": 42200, "B": 42201}
PEERS = ",".join(f"{n}={p}" for n, p in PORTS.items())


def test_parser_requires_core_args():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_port_must_match_peers_entry():
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.runtime.worker",
            "--node", "A", "--port", "9",
            "--peers", PEERS, "--duration", "0.1",
        ],
        capture_output=True,
        text=True,
        timeout=30,
    )
    assert proc.returncode != 0


def test_two_process_group_forms_and_reports():
    cmds = {
        "A": ["--bootstrap", "--multicast-at", "1.0", "--payload", "px"],
        "B": ["--contact", "A"],
    }
    procs = {}
    for nid, extra in cmds.items():
        procs[nid] = subprocess.Popen(
            [
                sys.executable, "-m", "repro.runtime.worker",
                "--node", nid, "--port", str(PORTS[nid]),
                "--peers", PEERS, "--duration", "2.5",
            ] + extra,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
    events = {}
    for nid, proc in procs.items():
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        events[nid] = [json.loads(l) for l in out.splitlines() if l.strip()]
    for nid in PORTS:
        kinds = [e["event"] for e in events[nid]]
        assert kinds[0] == "started"
        assert kinds[-1] == "done"
        done = events[nid][-1]
        assert sorted(done["members"]) == ["A", "B"]
        delivered = [e for e in events[nid] if e["event"] == "deliver"]
        assert delivered and delivered[0]["payload"] == "px"
