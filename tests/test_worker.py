"""Tests for the per-process worker runtime.

The arg-parsing and stdout-schema tests are fast and run in tier 1; the
tests that spawn real worker subprocesses are marked slow/integration.
"""

import json
import subprocess
import sys
import time

import pytest

from repro.runtime.worker import (
    STDOUT_SCHEMA,
    _JsonReporter,
    build_parser,
    parse_peers,
    worker_seed,
)

PORTS = {"A": 42200, "B": 42201}
PEERS = ",".join(f"{n}={p}" for n, p in PORTS.items())


# ----------------------------------------------------------------------
# --peers parsing (fast, no processes)
# ----------------------------------------------------------------------
def test_parse_peers_happy_path():
    assert parse_peers("A=42200,B=42201", "A", 42200) == PORTS


def test_parse_peers_tolerates_whitespace():
    assert parse_peers(" A=42200 , B=42201 ", "B", 42201) == PORTS


@pytest.mark.parametrize(
    "spec, node, port, fragment",
    [
        ("A=1000,A=1001", "A", 1000, "twice"),  # duplicate id
        ("A=1000,B=1000", "A", 1000, "same port"),  # duplicate port
        ("A=xyz", "A", 1000, "non-integer"),  # unparsable port
        ("A=0", "A", 0, "out of range"),  # port 0 is not routable
        ("A=70000", "A", 70000, "out of range"),  # above 65535
        ("A=1000", "B", 1001, "does not include"),  # missing self
        ("A=1000,B=1001", "A", 9, "--port 9"),  # port mismatch
        ("A1000", "A", 1000, "not id=port"),  # no separator
        ("=1000", "A", 1000, "not id=port"),  # empty id
        ("A=", "A", 1000, "not id=port"),  # empty port
    ],
)
def test_parse_peers_rejects(spec, node, port, fragment):
    with pytest.raises(ValueError, match=fragment):
        parse_peers(spec, node, port)


def test_worker_seed_is_deterministic_and_per_node():
    # sha256-derived: stable across processes and PYTHONHASHSEED values,
    # unlike hash(node_id).
    assert worker_seed("n00") == worker_seed("n00")
    assert worker_seed("n00") != worker_seed("n01")
    assert 0 <= worker_seed("n00") < 2**32


def test_parser_requires_core_args():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_accepts_telemetry_address():
    args = build_parser().parse_args(
        ["--node", "A", "--port", "42200", "--peers", PEERS,
         "--telemetry", "127.0.0.1:41999"]
    )
    assert args.telemetry == "127.0.0.1:41999"
    assert args.ring_capacity == 512


# ----------------------------------------------------------------------
# stdout JSONL schema (fast, no processes)
# ----------------------------------------------------------------------
def test_reporter_lines_carry_v2_envelope(capsys):
    before = time.time()  # raincheck: disable=RC101 -- bounding the reporter's wall-clock ts field
    reporter = _JsonReporter("A")
    reporter._emit("started", port=42200, telemetry=None)
    after = time.time()  # raincheck: disable=RC101 -- bounding the reporter's wall-clock ts field
    line = json.loads(capsys.readouterr().out)
    assert line["v"] == STDOUT_SCHEMA == 2
    assert line["event"] == "started" and line["node"] == "A"
    assert line["port"] == 42200 and line["telemetry"] is None
    # ts is epoch wall-clock seconds, comparable across processes.
    assert before <= line["ts"] <= after


def test_reporter_deliver_decodes_payload(capsys):
    from repro.core.events import Delivery
    from repro.core.token import Ordering

    reporter = _JsonReporter("B")
    reporter.on_deliver(
        Delivery(
            origin="A", msg_no=3, payload=b"p\xffx",
            ordering=Ordering.AGREED, at=0.5,
        )
    )
    line = json.loads(capsys.readouterr().out)
    assert line["event"] == "deliver"
    assert line["origin"] == "A" and line["msg_no"] == 3
    assert line["payload"] == "p�x"  # replacement char, never a crash
    assert line["v"] == 2 and isinstance(line["ts"], float)


# ----------------------------------------------------------------------
# real subprocesses (slow)
# ----------------------------------------------------------------------
@pytest.mark.integration
@pytest.mark.slow
def test_port_must_match_peers_entry():
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.runtime.worker",
            "--node", "A", "--port", "9",
            "--peers", PEERS, "--duration", "0.1",
        ],
        capture_output=True,
        text=True,
        timeout=30,
    )
    assert proc.returncode != 0
    assert "--port 9" in proc.stderr


@pytest.mark.integration
@pytest.mark.slow
def test_two_process_group_forms_and_reports():
    cmds = {
        "A": ["--bootstrap", "--multicast-at", "1.0", "--payload", "px"],
        "B": ["--contact", "A"],
    }
    procs = {}
    for nid, extra in cmds.items():
        procs[nid] = subprocess.Popen(
            [
                sys.executable, "-m", "repro.runtime.worker",
                "--node", nid, "--port", str(PORTS[nid]),
                "--peers", PEERS, "--duration", "2.5",
            ] + extra,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
    events = {}
    for nid, proc in procs.items():
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        events[nid] = [json.loads(l) for l in out.splitlines() if l.strip()]
    for nid in PORTS:
        for e in events[nid]:
            assert e["v"] == 2
            assert isinstance(e["ts"], float) and e["ts"] > 0
        kinds = [e["event"] for e in events[nid]]
        assert kinds[0] == "started"
        assert kinds[-1] == "done"
        done = events[nid][-1]
        assert sorted(done["members"]) == ["A", "B"]
        assert done["shipped"] == 0  # no --telemetry on this run
        delivered = [e for e in events[nid] if e["event"] == "deliver"]
        assert delivered and delivered[0]["payload"] == "px"
    # Wall-clock stamps are cross-process comparable: every line of both
    # workers falls in one shared epoch window.
    all_ts = [e["ts"] for nid in PORTS for e in events[nid]]
    assert max(all_ts) - min(all_ts) < 60.0
