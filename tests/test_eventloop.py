"""Unit tests for the deterministic discrete-event loop."""

import pytest

from repro.net.eventloop import EventLoop


def test_call_later_fires_in_order():
    loop = EventLoop()
    fired = []
    loop.call_later(0.3, fired.append, "c")
    loop.call_later(0.1, fired.append, "a")
    loop.call_later(0.2, fired.append, "b")
    loop.run_until_idle()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    loop = EventLoop()
    fired = []
    for tag in range(10):
        loop.call_later(1.0, fired.append, tag)
    loop.run_until_idle()
    assert fired == list(range(10))


def test_priority_breaks_same_time_ties():
    loop = EventLoop()
    fired = []
    loop.call_later(1.0, fired.append, "low", priority=5)
    loop.call_later(1.0, fired.append, "high", priority=-5)
    loop.run_until_idle()
    assert fired == ["high", "low"]


def test_clock_advances_to_event_time():
    loop = EventLoop()
    seen = []
    loop.call_later(2.5, lambda: seen.append(loop.now))
    loop.run_until_idle()
    assert seen == [2.5]


def test_cancel_prevents_execution():
    loop = EventLoop()
    fired = []
    handle = loop.call_later(1.0, fired.append, "x")
    handle.cancel()
    loop.run_until_idle()
    assert fired == []


def test_cancel_is_idempotent():
    loop = EventLoop()
    handle = loop.call_later(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert loop.run_until_idle() == 0


def test_cannot_schedule_in_the_past():
    loop = EventLoop()
    loop.call_later(1.0, lambda: None)
    loop.run_until_idle()
    with pytest.raises(ValueError):
        loop.call_at(0.5, lambda: None)


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.call_later(-0.1, lambda: None)


def test_run_until_respects_deadline():
    loop = EventLoop()
    fired = []
    loop.call_later(1.0, fired.append, "early")
    loop.call_later(5.0, fired.append, "late")
    loop.run_until(2.0)
    assert fired == ["early"]
    assert loop.now == 2.0  # clock parked exactly at the deadline


def test_run_for_composes():
    loop = EventLoop()
    fired = []
    loop.call_later(1.5, fired.append, "x")
    loop.run_for(1.0)
    assert fired == []
    loop.run_for(1.0)
    assert fired == ["x"]
    assert loop.now == 2.0


def test_events_scheduled_during_run_execute():
    loop = EventLoop()
    fired = []

    def outer():
        fired.append("outer")
        loop.call_later(0.5, fired.append, "inner")

    loop.call_later(1.0, outer)
    loop.run_until(2.0)
    assert fired == ["outer", "inner"]


def test_seeded_rng_is_deterministic():
    a = EventLoop(seed=99)
    b = EventLoop(seed=99)
    assert [a.rng.random() for _ in range(5)] == [b.rng.random() for _ in range(5)]


def test_run_until_idle_guards_against_runaway():
    loop = EventLoop()

    def respawn():
        loop.call_later(0.001, respawn)

    loop.call_later(0.001, respawn)
    with pytest.raises(RuntimeError):
        loop.run_until_idle(max_events=100)


def test_run_until_max_events_guard():
    loop = EventLoop()
    for _ in range(50):
        loop.call_later(0.5, lambda: None)
    with pytest.raises(RuntimeError):
        loop.run_until(1.0, max_events=10)


def test_events_processed_counter():
    loop = EventLoop()
    for _ in range(3):
        loop.call_later(0.1, lambda: None)
    loop.run_until_idle()
    assert loop.events_processed == 3


def test_peek_time_skips_cancelled():
    loop = EventLoop()
    h = loop.call_later(0.1, lambda: None)
    loop.call_later(0.7, lambda: None)
    h.cancel()
    assert loop.peek_time() == pytest.approx(0.7)


def test_non_finite_when_rejected():
    # Regression: NaN/inf timestamps used to sink silently into the heap,
    # poisoning every later comparison (NaN compares false with everything).
    loop = EventLoop()
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ValueError):
            loop.call_at(bad, lambda: None)


def test_non_finite_delay_rejected():
    loop = EventLoop()
    for bad in (float("nan"), float("inf")):
        with pytest.raises(ValueError):
            loop.call_later(bad, lambda: None)


def test_run_epoch_strict_boundary():
    # run_epoch owns [now, end): an event exactly at the boundary must NOT
    # run, and must fire first thing in the next epoch.
    loop = EventLoop()
    fired = []
    loop.call_at(0.5, fired.append, "inside")
    loop.call_at(1.0, fired.append, "edge")
    assert loop.run_epoch(1.0) == 1
    assert fired == ["inside"]
    assert loop.now == 1.0
    assert loop.run_epoch(2.0) == 1
    assert fired == ["inside", "edge"]


def test_run_epoch_rejects_past_end():
    loop = EventLoop()
    loop.run_epoch(1.0)
    with pytest.raises(ValueError):
        loop.run_epoch(0.5)


def test_run_epoch_allows_scheduling_at_boundary():
    # After run_epoch(end) the clock sits at end with the boundary event
    # still pending; call_at(end) from outside must be legal (the exchange
    # injects arrivals exactly at epoch boundaries).
    loop = EventLoop()
    fired = []
    loop.run_epoch(1.0)
    loop.call_at(1.0, fired.append, "injected")
    loop.run_epoch(2.0)
    assert fired == ["injected"]
