"""End-to-end tests of the asyncio/real-UDP runtime.

These run the *identical* protocol code as every other test, but over real
UDP sockets on 127.0.0.1 driven by wall-clock timers.  They are marked
``slow`` because they genuinely wait for packets.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import RaincoreConfig
from repro.core.events import RecordingListener
from repro.core.session import RaincoreNode
from repro.core.states import NodeState
from repro.runtime import AsyncioScheduler, UdpFabric
from repro.transport.reliable import TransportConfig

pytestmark = [pytest.mark.integration, pytest.mark.slow]

BASE_PORT = 39100


def build(node_ids, base_port):
    fabric = UdpFabric({nid: base_port + i for i, nid in enumerate(node_ids)})
    scheduler = AsyncioScheduler(asyncio.get_event_loop(), seed=1)
    config = RaincoreConfig.tuned(
        ring_size=len(node_ids),
        hop_interval=0.02,
        transport=TransportConfig(retx_timeout=0.05),
    )
    nodes = {}
    for nid in node_ids:
        listener = RecordingListener()
        nodes[nid] = (
            RaincoreNode(nid, scheduler, fabric, config, listener),
            listener,
        )
    return fabric, nodes


async def wait_for(predicate, timeout=8.0, step=0.05):
    deadline = asyncio.get_event_loop().time() + timeout
    while asyncio.get_event_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(step)
    return predicate()


def test_group_forms_over_real_udp():
    async def scenario():
        fabric, nodes = build(["A", "B", "C"], BASE_PORT)
        await fabric.open_all()
        try:
            nodes["A"][0].start_new_group()
            nodes["B"][0].start_joining(["A"])
            nodes["C"][0].start_joining(["A"])
            ok = await wait_for(
                lambda: all(
                    set(n.members) == {"A", "B", "C"} for n, _ in nodes.values()
                )
            )
            assert ok, {nid: n.members for nid, (n, _) in nodes.items()}
        finally:
            for n, _ in nodes.values():
                n.crash()
            fabric.close_all()

    asyncio.run(scenario())


def test_multicast_over_real_udp():
    async def scenario():
        fabric, nodes = build(["A", "B", "C"], BASE_PORT + 10)
        await fabric.open_all()
        try:
            nodes["A"][0].start_new_group()
            nodes["B"][0].start_joining(["A"])
            nodes["C"][0].start_joining(["A"])
            await wait_for(
                lambda: all(
                    set(n.members) == {"A", "B", "C"} for n, _ in nodes.values()
                )
            )
            nodes["B"][0].multicast(b"over-the-wire")
            ok = await wait_for(
                lambda: all(
                    b"over-the-wire" in listener.delivered_payloads
                    for _, listener in nodes.values()
                )
            )
            assert ok
            orders = [listener.delivery_keys for _, listener in nodes.values()]
            assert all(o == orders[0] for o in orders)
        finally:
            for n, _ in nodes.values():
                n.crash()
            fabric.close_all()

    asyncio.run(scenario())


def test_failure_detection_over_real_udp():
    async def scenario():
        fabric, nodes = build(["A", "B", "C"], BASE_PORT + 20)
        await fabric.open_all()
        try:
            nodes["A"][0].start_new_group()
            nodes["B"][0].start_joining(["A"])
            nodes["C"][0].start_joining(["A"])
            await wait_for(
                lambda: all(
                    set(n.members) == {"A", "B", "C"} for n, _ in nodes.values()
                )
            )
            # Real crash: kill the protocol and close the socket.
            nodes["C"][0].crash()
            fabric.close("C")
            ok = await wait_for(
                lambda: all(
                    set(nodes[nid][0].members) == {"A", "B"} for nid in "AB"
                )
            )
            assert ok, {nid: nodes[nid][0].members for nid in "AB"}
            assert nodes["C"][0].state is NodeState.DOWN
        finally:
            for n, _ in nodes.values():
                n.crash()
            fabric.close_all()

    asyncio.run(scenario())
