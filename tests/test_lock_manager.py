"""Tests for the distributed lock manager (Data Service, paper §2.7)."""

import pytest

from repro.data.lock_manager import DistributedLockManager
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


@pytest.fixture
def locked_cluster():
    c = make_cluster("ABCD")
    lms = {nid: DistributedLockManager(c.node(nid)) for nid in "ABCD"}
    c.start_all()
    return c, lms


def test_single_acquire_grants(locked_cluster):
    c, lms = locked_cluster
    granted = []
    lms["A"].acquire("db", on_granted=lambda: granted.append("A"))
    c.run(1.0)
    assert granted == ["A"]
    assert lms["A"].owns("db")


def test_all_replicas_agree_on_owner(locked_cluster):
    c, lms = locked_cluster
    lms["B"].acquire("db")
    c.run(1.0)
    assert {lms[n].owner("db") for n in "ABCD"} == {"B"}


def test_contended_lock_granted_exclusively(locked_cluster):
    c, lms = locked_cluster
    granted = []
    for nid in "ABCD":
        lms[nid].acquire("hot", on_granted=lambda nid=nid: granted.append(nid))
    c.run(1.0)
    assert len(granted) == 1
    owner = granted[0]
    waiters = lms[owner].waiters("hot")
    assert sorted(waiters + [owner]) == list("ABCD")


def test_release_promotes_next_waiter_fifo(locked_cluster):
    c, lms = locked_cluster
    granted = []
    for nid in "ABCD":
        lms[nid].acquire("q", on_granted=lambda nid=nid: granted.append(nid))
    c.run(1.0)
    # Release around the whole queue: everyone is granted exactly once, in
    # the replicated FIFO order.
    for _ in range(3):
        lms[granted[-1]].release("q")
        c.run(1.0)
    assert sorted(granted) == list("ABCD")
    # Replicas agree at every step (checked implicitly by grant uniqueness).
    assert len(set(granted)) == 4


def test_reacquire_after_release(locked_cluster):
    c, lms = locked_cluster
    lms["A"].acquire("x")
    c.run(1.0)
    lms["A"].release("x")
    c.run(1.0)
    granted = []
    lms["A"].acquire("x", on_granted=lambda: granted.append("again"))
    c.run(1.0)
    assert granted == ["again"]


def test_double_acquire_rejected(locked_cluster):
    c, lms = locked_cluster
    lms["A"].acquire("x")
    with pytest.raises(RuntimeError):
        lms["A"].acquire("x")


def test_release_without_hold_rejected(locked_cluster):
    c, lms = locked_cluster
    with pytest.raises(RuntimeError):
        lms["A"].release("nothing")


def test_queued_request_can_be_withdrawn(locked_cluster):
    c, lms = locked_cluster
    lms["A"].acquire("x")
    c.run(1.0)
    granted = []
    lms["B"].acquire("x", on_granted=lambda: granted.append("B"))
    lms["C"].acquire("x", on_granted=lambda: granted.append("C"))
    c.run(1.0)
    # B withdraws while queued; on A's release, C must be promoted.
    lms["B"].release("x")
    c.run(1.0)
    lms["A"].release("x")
    c.run(1.0)
    assert granted == ["C"]
    assert {lms[n].owner("x") for n in "ABCD"} == {"C"}


def test_owner_crash_releases_lock(locked_cluster):
    c, lms = locked_cluster
    granted = []
    lms["B"].acquire("x")
    lms["C"].acquire("x", on_granted=lambda: granted.append("C"))
    c.run(1.0)
    owner = lms["A"].owner("x")
    waiter = "C" if owner == "B" else "B"
    c.faults.crash_node(owner)
    c.run(4.0)
    survivors = [n for n in "ABCD" if n != owner]
    owners = {lms[n].owner("x") for n in survivors}
    assert owners == {waiter}


def test_crash_of_waiter_cleans_queue(locked_cluster):
    c, lms = locked_cluster
    lms["A"].acquire("x")
    c.run(1.0)
    lms["D"].acquire("x")
    c.run(1.0)
    c.faults.crash_node("D")
    c.run(4.0)
    for n in "ABC":
        assert lms[n].waiters("x") == []
        assert lms[n].owner("x") == "A"


def test_locks_held_without_eating(locked_cluster):
    """The paper's key contrast with the master-lock: a data lock is held
    while the node keeps cycling through HUNGRY like everyone else."""
    c, lms = locked_cluster
    lms["A"].acquire("x")
    c.run(1.0)
    eating_count = 0
    for _ in range(100):
        c.run(0.005)
        assert lms["A"].owns("x")
        if not c.node("A").is_eating:
            eating_count += 1
    assert eating_count > 0  # A was HUNGRY at some sampled instants


def test_many_locks_independent(locked_cluster):
    c, lms = locked_cluster
    lms["A"].acquire("l1")
    lms["B"].acquire("l2")
    lms["C"].acquire("l3")
    c.run(1.0)
    table = lms["D"].table()
    assert table == {"l1": "A", "l2": "B", "l3": "C"}


def test_tables_identical_across_replicas(locked_cluster):
    c, lms = locked_cluster
    for i, nid in enumerate("ABCDABCD"):
        lms[nid].acquire(f"lock{i}")
    c.run(1.5)
    tables = [lms[n].table() for n in "ABCD"]
    assert all(t == tables[0] for t in tables)
