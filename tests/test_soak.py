"""Soak tests: long mixed-churn runs on larger clusters.

These stress the whole stack at once — continuous multicast load, node
crashes and recoveries, link cuts, token loss, partitions — and then check
the global invariants.  Marked slow; they are the closest thing to the
paper's "operational at more than 100 major customer sites" confidence
claim that a simulator can offer.
"""

import pytest

from repro.cluster.harness import RaincoreCluster
from repro.core.config import RaincoreConfig
from repro.data import SharedDict

pytestmark = [pytest.mark.integration, pytest.mark.slow]


def test_sixteen_node_mixed_churn_soak():
    n = 16
    ids = [f"n{i:02d}" for i in range(n)]
    cluster = RaincoreCluster(
        ids, seed=99, config=RaincoreConfig.tuned(ring_size=n)
    )
    cluster.start_all(form_time=30.0)
    from repro.cluster.invariants import InvariantMonitor

    monitor = InvariantMonitor(cluster, interval=0.005)
    monitor.start()
    rng = cluster.loop.rng

    sent = 0
    # 40 virtual seconds of mixed churn with background multicast.
    for round_no in range(40):
        # background load: a few multicasts per virtual second
        for _ in range(3):
            origin = ids[rng.randrange(n)]
            node = cluster.node(origin)
            if node.state.value != "down":
                node.multicast(f"bg-{round_no}-{sent}")
                sent += 1
        # occasional faults
        roll = rng.random()
        live = [x.node_id for x in cluster.live_nodes()]
        if roll < 0.15 and len(live) > n // 2:
            cluster.faults.crash_node(live[rng.randrange(len(live))])
        elif roll < 0.30:
            down = [x for x in ids if x not in live]
            if down:
                cluster.faults.recover_node(down[rng.randrange(len(down))])
        elif roll < 0.40:
            cluster.faults.lose_token()
        elif roll < 0.50:
            a, b = rng.sample(ids, 2)
            cluster.faults.cut_link(a, b)
            cluster.loop.call_later(
                2.0, cluster.topology.unblock_node_pair, a, b
            )
        cluster.run(1.0)

    # Quiescence: recover everyone, heal everything, converge.
    for nid in ids:
        if cluster.node(nid).state.value == "down":
            cluster.faults.recover_node(nid)
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            cluster.faults.restore_link(a, b)
    assert cluster.run_until_converged(60.0, expected=set(ids)), (
        cluster.membership_views()
    )

    # Continuous invariants: monotonic seqs, legal states; fail-stop churn
    # must not create any double-token window at all.
    monitor.stop()
    monitor.assert_clean()

    # Invariants over the whole run:
    for nid in ids:
        keys = cluster.listener(nid).delivery_keys
        assert len(keys) == len(set(keys)), f"{nid} saw duplicate deliveries"
    # Pairwise prefix-consistent orders on common messages.
    orders = [cluster.listener(nid).delivery_keys for nid in ids]
    for i in range(0, len(orders), 5):
        for j in range(i + 1, len(orders), 5):
            common = set(orders[i]) & set(orders[j])
            fi = [k for k in orders[i] if k in common]
            fj = [k for k in orders[j] if k in common]
            assert fi == fj


def test_partition_storm_with_shared_state():
    """Repeated random partitions/heals; the replicated dict converges to
    identical state after the final heal."""
    ids = list("ABCDEF")
    cluster = RaincoreCluster(ids, seed=31)
    dicts = {nid: SharedDict(cluster.node(nid)) for nid in ids}
    cluster.start_all()
    rng = cluster.loop.rng

    for storm in range(4):
        cut = rng.randrange(1, len(ids) - 1)
        shuffled = ids[:]
        rng.shuffle(shuffled)
        cluster.faults.partition(shuffled[:cut], shuffled[cut:])
        cluster.run(2.5)
        for nid in ids:
            dicts[nid].set(f"storm{storm}:{nid}", storm)
        cluster.run(1.5)
        cluster.faults.heal_partition()
        assert cluster.run_until_converged(25.0, expected=set(ids)), (
            f"storm {storm}: {cluster.membership_views()}"
        )
        cluster.run(2.0)

    snaps = [dicts[nid].snapshot() for nid in ids]
    assert all(s == snaps[0] for s in snaps)
    # Keys written by the surviving-side coordinator of each storm exist.
    assert len(snaps[0]) >= 4
