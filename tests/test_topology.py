"""Unit tests for topology, NICs, link faults and partitions."""

import pytest

from repro.net.topology import Segment, Topology, build_switched_cluster


@pytest.fixture
def topo():
    t = Topology()
    build_switched_cluster(t, ["A", "B", "C"], segments=2)
    return t


def test_builder_creates_addresses_per_segment(topo):
    assert topo.addresses_of("A") == ["A@net0", "A@net1"]
    assert topo.owner_of("B@net1") == "B"


def test_segment_membership(topo):
    seg = topo.segment("net0")
    assert seg.attached == {"A@net0", "B@net0", "C@net0"}


def test_can_deliver_same_segment(topo):
    assert topo.can_deliver("A@net0", "B@net0")


def test_cannot_deliver_across_segments(topo):
    assert not topo.can_deliver("A@net0", "B@net1")


def test_node_down_blocks_delivery_both_ways(topo):
    topo.set_node_up("B", False)
    assert not topo.can_deliver("A@net0", "B@net0")
    assert not topo.can_deliver("B@net0", "A@net0")
    topo.set_node_up("B", True)
    assert topo.can_deliver("A@net0", "B@net0")


def test_nic_down_blocks_only_that_nic(topo):
    topo.set_nic_up("B@net0", False)
    assert not topo.can_deliver("A@net0", "B@net0")
    assert topo.can_deliver("A@net1", "B@net1")  # redundant link survives


def test_blocked_pair_is_bidirectional(topo):
    topo.block_pair("A@net0", "B@net0")
    assert not topo.can_deliver("A@net0", "B@net0")
    assert not topo.can_deliver("B@net0", "A@net0")
    topo.unblock_pair("A@net0", "B@net0")
    assert topo.can_deliver("A@net0", "B@net0")


def test_block_node_pair_covers_all_nics(topo):
    topo.block_node_pair("A", "B")
    assert not topo.can_deliver("A@net0", "B@net0")
    assert not topo.can_deliver("A@net1", "B@net1")
    # Other pairs unaffected — the paper's single-link-failure scenario.
    assert topo.can_deliver("A@net0", "C@net0")
    assert topo.can_deliver("B@net0", "C@net0")


def test_partition_isolates_groups(topo):
    topo.partition([["A"], ["B", "C"]])
    assert not topo.can_deliver("A@net0", "B@net0")
    assert topo.can_deliver("B@net0", "C@net0")
    topo.heal_partition()
    assert topo.can_deliver("A@net0", "B@net0")


def test_partition_rejects_duplicate_nodes(topo):
    with pytest.raises(ValueError):
        topo.partition([["A", "B"], ["B", "C"]])


def test_partition_unknown_node(topo):
    with pytest.raises(KeyError):
        topo.partition([["Z"]])


def test_unknown_address_is_undeliverable(topo):
    assert not topo.can_deliver("A@net0", "nosuch")


def test_duplicate_node_rejected(topo):
    with pytest.raises(ValueError):
        topo.add_node("A")


def test_duplicate_address_rejected(topo):
    with pytest.raises(ValueError):
        topo.attach("A", "A@net0", "net0")


def test_segment_validation():
    with pytest.raises(ValueError):
        Segment("s", loss=1.5)
    with pytest.raises(ValueError):
        Segment("s", latency=-1.0)


def test_path_params_returns_shared_segment(topo):
    seg = topo.path_params("A@net1", "C@net1")
    assert seg.name == "net1"


def test_path_params_raises_without_shared_segment(topo):
    with pytest.raises(KeyError):
        topo.path_params("A@net0", "C@net1")


def test_builder_requires_positive_segments():
    with pytest.raises(ValueError):
        build_switched_cluster(Topology(), ["A"], segments=0)
