"""Tests for token flow control (the max_token_bytes budget)."""

import pytest

from repro.core.config import RaincoreConfig
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


def make_capped(cap=4096, **kw):
    cfg = RaincoreConfig.tuned(ring_size=4, max_token_bytes=cap, **kw)
    c = make_cluster("ABCD", config=cfg)
    c.start_all()
    return c


def test_config_validates_cap():
    with pytest.raises(ValueError):
        RaincoreConfig(max_token_bytes=100)


def test_token_stays_under_budget_during_burst():
    c = make_capped(cap=4096)
    cap_with_slack = 4096 + 2048  # one oversized head may exceed
    # Burst: 100 messages of 500 B from one node = 50 KB queued at once.
    for i in range(100):
        c.node("A").multicast(f"{i:0>500}", size=500)
    max_seen = 0
    for _ in range(4000):
        c.run(0.001)
        for node in c.live_nodes():
            if node.has_token:
                max_seen = max(max_seen, node._live_token.wire_size())
    assert max_seen <= cap_with_slack, max_seen
    # Despite the cap, everything is eventually delivered, in order.
    c.run(3.0)
    for nid in "ABCD":
        payloads = [d.payload for d in c.listener(nid).deliveries]
        assert len(payloads) == 100
        assert payloads == sorted(payloads, key=lambda p: int(p))


def test_oversized_message_still_attaches_alone():
    """A message bigger than the whole budget must not deadlock: it rides
    an otherwise-empty token."""
    c = make_capped(cap=2048)
    c.node("B").multicast("X" * 8000, size=8000)
    c.run(2.0)
    for nid in "ABCD":
        assert len(c.listener(nid).deliveries) == 1


def test_flow_control_defers_but_preserves_order():
    c = make_capped(cap=2048)
    c.node("C").multicast("big-first", size=1800)
    c.node("C").multicast("small-second", size=10)
    c.run(2.0)
    for nid in "ABCD":
        payloads = [d.payload for d in c.listener(nid).deliveries]
        assert payloads == ["big-first", "small-second"]


def test_generous_cap_changes_nothing():
    c = make_capped(cap=10_000_000)
    for i in range(20):
        c.node("ABCD"[i % 4]).multicast(i)
    c.run(2.0)
    assert all(len(c.listener(n).deliveries) == 20 for n in "ABCD")
