"""Tests for the sharded parallel simulator (repro.parallel).

Covers the partitioner, the canonical exchange ordering, the epoch-edge
arrival rule, serial-vs-process equality, and the sharded chaos campaign.
The byte-identical golden contract across shard counts lives in
tests/test_parallel_golden.py.
"""

from __future__ import annotations

import pytest

from repro.net.datagram import Datagram, DatagramNetwork
from repro.net.eventloop import EventLoop
from repro.net.topology import Segment, Topology, derive_rng_seed
from repro.parallel import (
    ParallelSimulator,
    SerialExchange,
    WorkerExchange,
    partition_topology,
)
from repro.parallel.campaign import run_sharded_campaign
from repro.parallel.exchange import inject_batch
from repro.parallel.worker import epoch_boundaries
from repro.parallel.workloads import build_workload


def two_island_topology(trunk_latency: float = 0.01) -> Topology:
    """Two 2-node LANs joined by one deterministic trunk."""
    topo = Topology()
    topo.add_segment(Segment(name="lan_a", latency=1e-4, jitter=1e-5))
    topo.add_segment(Segment(name="lan_b", latency=1e-4, jitter=1e-5))
    topo.add_segment(Segment(name="wan", latency=trunk_latency, jitter=0.0))
    for node, lan in (("a0", "lan_a"), ("a1", "lan_a"), ("b0", "lan_b"), ("b1", "lan_b")):
        topo.add_node(node)
        topo.attach(node, f"{node}@{lan}", lan)
    topo.attach("a0", "a0@wan", "wan")
    topo.attach("b0", "b0@wan", "wan")
    return topo


# ----------------------------------------------------------------------
# partitioner
# ----------------------------------------------------------------------
def test_partition_two_islands():
    plan = partition_topology(two_island_topology())
    assert len(plan.groups) == 2
    assert plan.groups[0].nodes == ("a0", "a1")
    assert plan.groups[1].nodes == ("b0", "b1")
    assert plan.groups[0].segments == ("lan_a",)
    assert plan.trunks == ("wan",)
    assert plan.lookahead == pytest.approx(0.01)
    assert plan.group_of("b1") == 1
    with pytest.raises(KeyError):
        plan.group_of("nope")


def test_partition_demotes_non_bridging_deterministic_segment():
    topo = two_island_topology()
    # Deterministic but strictly inside island A: must NOT become a cut.
    topo.add_segment(Segment(name="a_extra", latency=5e-4, jitter=0.0))
    topo.attach("a0", "a0@a_extra", "a_extra")
    topo.attach("a1", "a1@a_extra", "a_extra")
    plan = partition_topology(topo)
    assert plan.trunks == ("wan",)
    assert "a_extra" in plan.groups[0].segments


def test_partition_rejects_adverse_trunk():
    topo = two_island_topology()
    topo.segment("wan").loss = 0.01
    with pytest.raises(ValueError, match="adversity"):
        partition_topology(topo, trunk_segments=("wan",))


def test_partition_rejects_zero_latency_cut():
    with pytest.raises(ValueError, match="zero latency"):
        partition_topology(two_island_topology(trunk_latency=0.0))


def test_assign_balances_and_validates():
    plan = partition_topology(two_island_topology())
    assert plan.assign(1) == (0, 0)
    assert plan.assign(2) == (0, 1)
    with pytest.raises(ValueError):
        plan.assign(3)
    with pytest.raises(ValueError):
        plan.assign(0)


def test_cut_report_shape():
    plan = partition_topology(two_island_topology())
    report = plan.cut_report()
    assert report["lookahead"] == pytest.approx(0.01)
    assert report["cut_cost_attachments"] == 2
    assert [g["nodes"] for g in report["groups"]] == [2, 2]
    assert report["cut_edges"][0]["segment"] == "wan"
    assert "lookahead" in plan.render_report()


def test_derive_rng_seed_is_stable_and_keyed():
    assert derive_rng_seed(7, "trunk") == derive_rng_seed(7, "trunk")
    assert derive_rng_seed(7, "trunk") != derive_rng_seed(7, "ring00")
    assert derive_rng_seed(7, "trunk") != derive_rng_seed(8, "trunk")


# ----------------------------------------------------------------------
# epoch boundaries + exchange ordering
# ----------------------------------------------------------------------
def test_epoch_boundaries_cover_horizon_exactly():
    ends = epoch_boundaries(1.0, 0.3)
    assert ends == [0.3, 0.6, 0.8999999999999999, 1.0]
    assert epoch_boundaries(0.2, 0.3) == [0.2]
    with pytest.raises(ValueError):
        epoch_boundaries(0.0, 0.3)
    with pytest.raises(ValueError):
        epoch_boundaries(1.0, 0.0)


def _exchange_rig():
    topo = two_island_topology()
    loop = EventLoop(seed=1)
    network = DatagramNetwork(loop, topo)
    return loop, network


def test_serial_exchange_canonical_order():
    loop, network = _exchange_rig()
    seen = []
    network.bind("b0@wan", lambda p: seen.append(p.payload))
    exchange = SerialExchange(network)
    network.set_exchange(exchange, frozenset({"wan"}))
    # Same arrival instant, submitted out of canonical (src, dst) order:
    # injection must sort by (when, src, dst, submit_idx).
    exchange.submit(Datagram("a0@wan", "b0@wan", "second", 1), 0.01)
    exchange.submit(Datagram("a0@wan", "b0@wan", "third", 1), 0.02)
    exchange.submit(Datagram("a0@wan", "b0@wan", "first", 1), 0.005)
    assert exchange.flush_epoch() == 3
    loop.run_until(0.05)
    assert seen == ["first", "second", "third"]


def test_inject_batch_ties_resolve_by_src_then_submit_idx():
    loop, network = _exchange_rig()
    seen = []
    network.bind("b0@wan", lambda p: seen.append(p.payload))
    records = [
        (0.01, "b0@wan", "b0@wan", 0, Datagram("b0@wan", "b0@wan", "z", 1)),
        (0.01, "a0@wan", "b0@wan", 1, Datagram("a0@wan", "b0@wan", "y", 1)),
        (0.01, "a0@wan", "b0@wan", 0, Datagram("a0@wan", "b0@wan", "x", 1)),
    ]
    inject_batch(network, records)
    loop.run_until(0.05)
    assert seen == ["x", "y", "z"]


def test_worker_exchange_splits_by_destination_owner():
    _loop, network = _exchange_rig()
    worker_of_addr = {"a0@wan": 0, "b0@wan": 1}
    exchange = WorkerExchange(network, worker_of_addr, me=0)
    exchange.submit(Datagram("a0@wan", "b0@wan", "away", 1), 0.01)
    exchange.submit(Datagram("a0@wan", "a0@wan", "home", 1), 0.01)
    local, outbound = exchange.drain_epoch()
    assert [r[4].payload for r in local] == ["home"]
    assert [r[4].payload for r in outbound[1]] == ["away"]
    # Buffer cleared and submit counter reset.
    assert exchange.drain_epoch() == ([], {})


def test_trunk_delivery_fires_after_local_events_at_same_instant():
    # A trunk arrival at t and a local event at t: local (priority 0)
    # must run first regardless of scheduling order.
    loop, network = _exchange_rig()
    order = []
    network.bind("b0@wan", lambda p: order.append("trunk"))
    network.deliver_trunk(Datagram("a0@wan", "b0@wan", "p", 1), 0.01)
    loop.call_at(0.01, order.append, "local")
    loop.run_until(0.02)
    assert order == ["local", "trunk"]


# ----------------------------------------------------------------------
# engines
# ----------------------------------------------------------------------
SMALL = {"rings": 2, "ring_size": 3, "trunk_latency": 0.01}


def test_serial_and_process_agree_on_facts_and_stream():
    serial = ParallelSimulator("multi_ring", 3, SMALL).run(
        1.0, shards=1, probes=True
    )
    process = ParallelSimulator("multi_ring", 3, SMALL).run(
        1.0, shards=2, mode="process", probes=True
    )
    assert serial.facts == process.facts
    assert serial.stream_jsonl() == process.stream_jsonl()
    assert serial.events == process.events
    assert process.mode == "process" and process.shards == 2


def test_cross_shard_packet_exactly_at_epoch_edge():
    # trunk latency = epoch length, ping armed exactly at an epoch
    # boundary: the arrival lands exactly on the next boundary and must
    # be delivered once, identically in both engines.
    params = {
        "rings": 2,
        "ring_size": 3,
        "trunk_latency": 0.05,
        "ping_start": 0.05,   # k*E exactly (k=1)
        "ping_interval": 0.05,  # every arrival lands on a boundary
        "mcast_start": 10.0,  # quiesce multicast load for clarity
    }
    serial = ParallelSimulator("multi_ring", 5, params).run(1.0, shards=1)
    process = ParallelSimulator("multi_ring", 5, params).run(
        1.0, shards=2, mode="process"
    )
    assert serial.facts == process.facts
    # ping at t=0.05+ring*1e-4 .. every 0.05 until 1.0; ring 0's timer
    # fires exactly on boundaries: 19 sends, each delivered exactly once
    # (the last arrival lands exactly at the horizon and is not run —
    # run_epoch ends strictly before its end time).
    assert serial.facts["ping_tx.ring00"] == 19
    assert serial.facts["ping_rx.ring01"] == 18


def test_auto_mode_picks_serial_for_one_shard():
    result = ParallelSimulator("multi_ring", 3, SMALL).run(0.5, shards=1)
    assert result.mode == "serial"


def test_process_mode_rejects_prepare_hook():
    sim = ParallelSimulator("multi_ring", 3, SMALL)
    with pytest.raises(ValueError, match="serial-only"):
        sim.run(0.5, shards=2, mode="process", prepare=lambda inst: None)


def test_single_group_workload_cannot_use_process_mode():
    sim = ParallelSimulator("multi_ring", 3, {"rings": 1, "ring_size": 3})
    with pytest.raises(ValueError, match="single shard group"):
        sim.run(0.5, shards=2, mode="process")


def test_workload_registry_validates():
    with pytest.raises(ValueError, match="unknown workload"):
        build_workload("nope", 1, {})
    with pytest.raises(ValueError, match="split across workers"):
        build_workload("multi_ring", 1, SMALL, active=frozenset({"r00n00"}))


def test_workload_build_is_deterministic():
    a = ParallelSimulator("multi_ring", 9, SMALL).run(1.0)
    b = ParallelSimulator("multi_ring", 9, SMALL).run(1.0)
    assert a.facts == b.facts and a.events == b.events


# ----------------------------------------------------------------------
# sharded chaos campaign
# ----------------------------------------------------------------------
def test_sharded_campaign_converges_clean():
    result = run_sharded_campaign(seed=7, shards=4, seconds=10.0)
    assert result.ok, result.alerts
    assert result.faults  # seed 7 draws at least one fault
    assert result.result.epochs > 0


def test_sharded_campaign_rejects_short_window():
    with pytest.raises(ValueError, match="8 virtual seconds"):
        run_sharded_campaign(seed=1, shards=2, seconds=4.0)
