"""Bounded-state session resync (repro.data.resync + repro.data.replica).

Four layers, mirroring docs/RESYNC.md:

* **SegmentedLog unit behaviour** — sealing, certification via the hash
  chain, segment-granular pruning, and the continuation point's
  monotonicity;
* **degradation-ladder boundaries** — a peer certified exactly at the
  window edge is served a delta, one past the edge degrades to a
  continuation-point snapshot, a disabled window (``resync_window_bytes
  = 0``) quarantines immediately, and repeated fallbacks quarantine with
  a structured reason;
* **partition rejoin end-to-end** — a strict-prefix merge peer catches
  up via one certified delta (O(window), no snapshot), while a partition
  whose missed traffic dwarfs the window degrades to the snapshot rung
  with retained bytes never exceeding the budget and zero contract
  alerts (the tentpole's deliverable soak);
* **determinism** — same seed, same resync probe stream, byte for byte.
"""

from __future__ import annotations

import pytest

from repro.cluster.harness import RaincoreCluster
from repro.core.config import RaincoreConfig
from repro.data import SharedDict
from repro.data.resync import (
    GENESIS_DIGEST,
    SegmentedLog,
    chain_digest,
)
from repro.obs.monitor import ContractMonitor, paper_contract_rules, render_alerts
from repro.obs.probe import events_to_jsonl

pytestmark = pytest.mark.integration


# ----------------------------------------------------------------------
# SegmentedLog unit behaviour (pure, no cluster)
# ----------------------------------------------------------------------
def fill(log: SegmentedLog, n: int, size: int = 10, start: int = 0):
    """Append n string payloads, return the per-append sealed flags."""
    return [log.append(f"op{start + i}", size)[1] for i in range(n)]


def test_append_seals_at_segment_ops():
    log = SegmentedLog(4)
    sealed = fill(log, 9)
    assert sealed == [False, False, False, True] * 2 + [False]
    assert log.head_seq == 9
    assert log.segment_count() == 3  # two sealed + one open
    assert log.buffered_bytes() == 90


def test_digest_at_certifies_cont_and_retained_entries():
    log = SegmentedLog(4)
    assert log.digest_at(0) == GENESIS_DIGEST  # genesis continuation
    fill(log, 6)
    assert log.digest_at(0) == GENESIS_DIGEST  # still the cont point
    assert log.digest_at(3) is not None  # retained entry
    assert log.digest_at(6) == log.head_digest
    assert log.digest_at(7) is None  # ahead of our head: cannot vouch
    # Prune the first (sealed) segment away: seq 1-4 leave the window.
    log.prune_to(4, "state0")
    assert log.cont.upto_seq == 4
    assert log.digest_at(4) == log.cont.digest
    assert log.digest_at(3) is None  # out of window now
    assert log.digest_at(5) is not None  # still retained


def test_entries_after_returns_retained_tail():
    log = SegmentedLog(3)
    fill(log, 7)
    tail = log.entries_after(4)
    assert [e.seq for e in tail] == [5, 6, 7]
    assert log.entries_after(7) == []
    # The digests chain: each entry's digest folds the previous one.
    prev = log.digest_at(4)
    for e in tail:
        assert e.digest == chain_digest(prev, e.seq, e.payload, e.size)
        prev = e.digest


def test_prune_to_is_segment_granular_and_advances_continuation():
    log = SegmentedLog(4)
    fill(log, 10, size=5)
    # Floor mid-segment: only the fully-covered sealed segment drops.
    dropped, freed = log.prune_to(6, "stateA")
    assert (dropped, freed) == (1, 20)
    assert log.cont.upto_seq == 4
    assert log.cont.state_digest == "stateA"
    assert log.buffered_bytes() == 30
    # The open segment never prunes cooperatively, whatever the floor.
    dropped, _ = log.prune_to(10, "stateB")
    assert dropped == 1  # the second sealed segment only
    assert log.cont.upto_seq == 8
    assert log.segment_count() == 1


def test_force_prune_seals_open_segment_to_meet_budget():
    log = SegmentedLog(4)
    fill(log, 6, size=10)  # one sealed segment (40 B) + open (20 B)
    dropped, freed = log.force_prune(25, "stateC")
    assert (dropped, freed) == (1, 40)
    assert log.buffered_bytes() == 20
    # Budget 0 sheds everything, including the (now sealed) open segment.
    dropped, freed = log.force_prune(0, "stateD")
    assert (dropped, freed) == (1, 20)
    assert log.buffered_bytes() == 0
    assert log.cont.upto_seq == 6
    assert log.head_digest == log.cont.digest


def test_adopt_resets_onto_continuation_point():
    log = SegmentedLog(4)
    fill(log, 6)
    log.adopt(40, "feedfeedfeedfeed", "stateE")
    assert log.buffered_bytes() == 0
    assert log.segment_count() == 0
    assert log.head_seq == 40
    assert log.head_digest == "feedfeedfeedfeed"
    entry, sealed = log.append("next", 8)
    assert (entry.seq, sealed) == (41, False)
    assert entry.digest == chain_digest("feedfeedfeedfeed", 41, "next", 8)


def test_continuation_point_is_monotone():
    log = SegmentedLog(2)
    horizons = [log.cont.upto_seq]
    for round_no in range(5):
        fill(log, 4, start=round_no * 4)
        log.prune_to(log.head_seq, f"s{round_no}")
        horizons.append(log.cont.upto_seq)
    assert horizons == sorted(horizons)
    assert horizons[-1] > horizons[0]


def test_chain_digest_is_history_sensitive():
    a = chain_digest(GENESIS_DIGEST, 1, "op", 10)
    assert a == chain_digest(GENESIS_DIGEST, 1, "op", 10)
    assert a != chain_digest(GENESIS_DIGEST, 1, "op!", 10)
    assert a != chain_digest(GENESIS_DIGEST, 2, "op", 10)
    assert a != chain_digest(a, 1, "op", 10)


def test_segmented_log_rejects_degenerate_segment_size():
    with pytest.raises(ValueError):
        SegmentedLog(0)


# ----------------------------------------------------------------------
# degradation-ladder boundaries (two live members + one modelled peer)
# ----------------------------------------------------------------------
def ladder_cluster(**overrides):
    """A formed 2-node cluster with probes and small (4-op) segments."""
    config = RaincoreConfig.tuned(ring_size=2, resync_segment_ops=4, **overrides)
    c = RaincoreCluster(["A", "B"], seed=21, config=config)
    events: list = []
    c.enable_probes().subscribe(events.append)
    dicts = {n: SharedDict(c.node(n)) for n in "AB"}
    c.start_all()
    return c, dicts, events


def pruned_window(c, dicts):
    """Write two sealed segments, let cooperative pruning burn them, then
    two more ops — leaving cont.upto_seq == 8 and seqs 9, 10 retained."""
    for i in range(8):
        dicts["A"].set(f"k{i}", i)
    c.run(3.0)
    cont = dicts["A"]._log.cont
    assert cont.upto_seq == 8, "cooperative pruning should have reached seq 8"
    dicts["A"].set("k8", 8)
    dicts["A"].set("k9", 9)
    c.run(1.0)
    return dicts["A"]._log.cont


def test_cooperative_prune_is_ack_driven_and_unforced(probes=None):
    c, dicts, events = ladder_cluster()
    pruned_window(c, dicts)
    prunes = [e for e in events if e.kind == "resync.prune"]
    assert prunes, "sealed fully-acked segments must burn"
    assert all(e.args[4] is False for e in prunes)  # forced=False
    # Both replicas burned the same horizons in the same order.
    by_node = {
        n: [e.args[1] for e in prunes if e.node == n] for n in "AB"
    }
    assert by_node["A"] == by_node["B"] != []


def test_peer_certified_at_window_edge_is_served_a_delta():
    c, dicts, events = ladder_cluster()
    cont = pruned_window(c, dicts)
    # A peer standing exactly on the continuation point: last position
    # that still certifies.  The answer must be the retained tail.
    dicts["A"]._serve_peer("Z", cont.upto_seq, cont.digest)
    c.run(1.0)
    deltas = [e for e in events if e.kind == "resync.delta" and e.args[1] == "Z"]
    assert len(deltas) == 1
    assert deltas[0].args[2] == cont.upto_seq  # from_seq == 8
    assert deltas[0].args[3] == 2  # entries: seqs 9 and 10
    assert not [
        e for e in events if e.kind == "resync.snapshot_fallback" and e.args[1] == "Z"
    ]
    assert "Z" not in c.node("A").quarantined


def test_peer_one_past_window_edge_falls_back_to_snapshot():
    c, dicts, events = ladder_cluster()
    cont = pruned_window(c, dicts)
    # One op earlier than the continuation point: burnt history, cannot
    # certify — the ladder degrades to a continuation-point snapshot.
    dicts["A"]._serve_peer("Z", cont.upto_seq - 1, "beefbeefbeefbeef")
    fallbacks = [
        e for e in events if e.kind == "resync.snapshot_fallback" and e.args[1] == "Z"
    ]
    assert len(fallbacks) == 1
    assert fallbacks[0].args[2] == cont.upto_seq - 1  # peer_seq
    assert fallbacks[0].args[3] == cont.upto_seq  # window_floor
    assert not [e for e in events if e.kind == "resync.delta" and e.args[1] == "Z"]
    assert "Z" not in c.node("A").quarantined


def test_window_disabled_quarantines_immediately_and_lifts():
    c, dicts, events = ladder_cluster(resync_window_bytes=0)
    dicts["A"]._serve_peer("Z", 0, GENESIS_DIGEST)
    assert c.node("A").quarantined.get("Z") == "resync-window-disabled"
    marks = [
        e for e in events if e.kind == "resync.quarantine" and e.args[0] == "Z"
    ]
    assert [(e.args[1], e.args[2]) for e in marks] == [
        ("resync-window-disabled", True)
    ]
    assert not [e for e in events if e.kind == "resync.delta"]
    # The quarantine lifts after the configured backoff.
    c.run(c.config.resync_quarantine_backoff + 1.0)
    assert "Z" not in c.node("A").quarantined
    lifted = [
        e
        for e in events
        if e.kind == "resync.quarantine" and e.args[0] == "Z" and not e.args[2]
    ]
    assert len(lifted) == 1


def test_repeated_fallbacks_quarantine_with_structured_reason():
    c, dicts, events = ladder_cluster()
    allowed = c.config.resync_quarantine_after
    # Uncertifiable position, over and over, with no certified ack in
    # between: `allowed` snapshot fallbacks, then the ladder's last rung.
    for _ in range(allowed + 1):
        dicts["A"]._serve_peer("Z", 3, "beefbeefbeefbeef")
    fallbacks = [
        e for e in events if e.kind == "resync.snapshot_fallback" and e.args[1] == "Z"
    ]
    assert len(fallbacks) == allowed
    assert c.node("A").quarantined == {"Z": "resync-failed-repeatedly"}


# ----------------------------------------------------------------------
# partition rejoin end-to-end
# ----------------------------------------------------------------------
def test_strict_prefix_merge_peer_rejoins_via_one_certified_delta():
    """A member partitioned away while the majority keeps writing has a
    history that is a strict *prefix* of the group's.  Rejoin must ride
    the continuation chain: one certified delta with exactly the missed
    ops — no snapshot, and no stale-state overwrite from the rejoiner's
    own growth coordination (the merged-back-singleton trap)."""
    c = RaincoreCluster(list("ABCD"), seed=5)
    events: list = []
    c.enable_probes().subscribe(events.append)
    sds = {n: SharedDict(c.node(n)) for n in "ABCD"}
    c.start_all()
    sds["A"].set("stable", 1)
    c.run(1.0)
    c.faults.partition(["A", "B", "C"], ["D"])
    c.run(3.0)
    for i in range(6):
        sds["A"].set(f"k{i}", i)
    c.run(2.0)
    heal_at = c.loop.now
    c.faults.heal_partition()
    assert c.run_until_converged(12.0, expected=set("ABCD"))
    c.run(4.0)
    snaps = {n: sds[n].snapshot() for n in "ABCD"}
    assert all(s == snaps["A"] for s in snaps.values())
    # The majority's partition-era writes survived the merge everywhere.
    assert snaps["D"] == {"stable": 1, **{f"k{i}": i for i in range(6)}}
    deltas = [
        e for e in events
        if e.kind == "resync.delta" and e.at > heal_at and e.args[1] == "D"
    ]
    assert len(deltas) == 1
    assert deltas[0].args[3] == 6  # entries == exactly the missed ops
    assert not [
        e for e in events if e.kind == "state.snapshot" and e.at > heal_at
    ], "a strict-prefix rejoin must not cost a snapshot"


def test_long_partition_soak_rejoins_in_o_window_within_budget():
    """The tentpole's deliverable: partition two nodes while the majority
    writes traffic that dwarfs ``resync_window_bytes``.  The majority
    burns its log down to the budget the whole time, the rejoiners'
    positions no longer certify, and the ladder hands them one
    continuation-point snapshot each — O(window) + O(state), never
    O(partition-length history) — with zero contract alerts and retained
    bytes never exceeding the budget on any node."""
    ids = [f"n{i:02d}" for i in range(6)]
    config = RaincoreConfig.tuned(
        ring_size=6, resync_window_bytes=2048, resync_segment_ops=8
    )
    c = RaincoreCluster(ids, seed=11, config=config)
    bus = c.enable_probes()
    events: list = []
    bus.subscribe(events.append)
    monitor = ContractMonitor(bus, paper_contract_rules(config, 6))
    sds = {n: SharedDict(c.node(n)) for n in ids}
    c.start_all()
    monitor.start()
    c.run(1.0)
    c.faults.partition(ids[:4], ids[4:])
    c.run(2.0)
    # ~26 B/op * 160 ops ≈ 4 KB of missed traffic against a 2 KB window.
    for i in range(160):
        sds["n00"].set(f"key{i % 20}", i)
        if i % 10 == 9:
            c.run(0.3)
    c.run(2.0)
    majority_prunes = [
        e for e in events if e.kind == "resync.prune" and e.node in ids[:4]
    ]
    assert majority_prunes, "the majority must burn segments while partitioned"
    heal_at = c.loop.now
    c.faults.heal_partition()
    assert c.run_until_converged(20.0, expected=set(ids))
    c.run(5.0)
    monitor.evaluate()

    # 1. Convergence on the majority's (lower-group-id) state.
    snaps = [sds[n].snapshot() for n in ids]
    assert all(s == snaps[0] for s in snaps)
    assert snaps[0]["key19"] == 159

    # 2. Hard budget: no resync.buffer sample ever exceeds its budget.
    for e in events:
        if e.kind == "resync.buffer" and e.args[2] > 0:
            assert e.args[1] <= e.args[2], f"budget exceeded: {e!r}"

    # 3. Zero contract alerts — in particular zero buffer-bound.
    assert monitor.alerts == [], render_alerts(monitor.alerts)

    # 4. O(window) rejoin: the rejoiners are out of window, so they take
    #    the snapshot rung; any delta served anywhere stays window-sized.
    fallbacks = [
        e for e in events
        if e.kind == "resync.snapshot_fallback" and e.at > heal_at
    ]
    assert {e.args[1] for e in fallbacks} & set(ids[4:])
    for e in events:
        if e.kind == "resync.delta":
            assert e.args[4] <= config.resync_window_bytes + 512

    # 5. Continuation points are monotone on every node.
    for n in ids:
        horizons = [
            e.args[1] for e in events if e.kind == "resync.prune" and e.node == n
        ]
        assert horizons == sorted(horizons)

    # 6. Nobody was quarantined in a healthy (if long) partition cycle.
    assert not [e for e in events if e.kind == "resync.quarantine"]


def test_budget_overflow_force_prunes_before_acks_catch_up():
    """A write burst inside one token visit outruns cooperative acks; the
    hard budget must force-prune instead of letting the log grow."""
    c, dicts, events = ladder_cluster(resync_window_bytes=256)
    for i in range(40):
        dicts["A"].set(f"k{i % 8}", i)
    c.run(3.0)
    forced = [e for e in events if e.kind == "resync.prune" and e.args[4] is True]
    assert forced, "burst past the budget must force-prune"
    for e in events:
        if e.kind == "resync.buffer":
            assert e.args[1] <= 256
    # The replicas still agree afterwards.
    assert dicts["A"].snapshot() == dicts["B"].snapshot()


# ----------------------------------------------------------------------
# determinism: pruning and resync decisions are byte-stable per seed
# ----------------------------------------------------------------------
def test_resync_probe_stream_is_byte_identical_across_same_seed_runs():
    def one_run() -> str:
        config = RaincoreConfig.tuned(
            ring_size=4, resync_window_bytes=1024, resync_segment_ops=4
        )
        c = RaincoreCluster(list("ABCD"), seed=17, config=config)
        events: list = []
        c.enable_probes().subscribe(events.append)
        sds = {n: SharedDict(c.node(n)) for n in "ABCD"}
        c.start_all()
        for i in range(24):
            sds["B"].set(f"k{i % 6}", i)
        c.run(2.0)
        c.faults.partition(["A", "B"], ["C", "D"])
        c.run(2.0)
        sds["A"].set("side", "AB")
        sds["C"].set("side", "CD")
        c.run(1.0)
        c.faults.heal_partition()
        c.run_until_converged(15.0, expected=set("ABCD"))
        c.run(2.0)
        resync = [e for e in events if e.kind.startswith("resync.")]
        return events_to_jsonl(resync)

    first, second = one_run(), one_run()
    assert "resync.prune" in first
    assert first == second
