"""Tests for repro.obs.diff: trace alignment and divergence localization.

The diff is the investigative half of the observability contract: when a
"replay mismatch" arrives as thousands of differing JSONL bytes, the
first differing event — located by (sim-time, node, kind) — is where the
causal analysis starts; everything after it is cascade.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    bundle_events,
    events_to_jsonl,
    first_divergence,
    load_events,
    render_divergence,
)
from repro.obs.probe import event_record
from repro.obs.scenario import run_quickstart


def quickstart_events(seed=5):
    return run_quickstart(nodes=3, seed=seed, duration=0.5, crash=False).events


# ----------------------------------------------------------------------
# divergence localization
# ----------------------------------------------------------------------
def test_identical_streams_have_no_divergence():
    a, b = quickstart_events(), quickstart_events()
    assert len(a) > 100  # a non-trivial stream, not a toy
    assert first_divergence(a, b) is None
    report = render_divergence(a, b, None)
    assert report == f"no divergence: {len(a)} events identical"


def test_single_injected_event_is_localized_exactly():
    a, b = quickstart_events(), quickstart_events()
    records = [event_record(e) for e in b]
    forged = dict(records[40])
    forged["kind"] = "core.wakeup"
    forged["args"] = []
    records[40] = forged
    divergence = first_divergence(a, records)
    assert divergence is not None
    assert divergence.index == 40
    assert divergence.kind == event_record(a[40])["kind"]  # anchored on left
    assert divergence.at == event_record(a[40])["at"]
    assert divergence.left == event_record(a[40])
    assert divergence.right == forged
    assert "#40" in divergence.describe()


def test_truncated_stream_diverges_at_end_of_prefix():
    a = quickstart_events()
    b = a[: len(a) - 25]
    divergence = first_divergence(a, b)
    assert divergence is not None
    assert divergence.index == len(b)
    assert divergence.right is None  # right stream ended
    report = render_divergence(a, b, divergence)
    assert "(end of stream)" in report


def test_different_seeds_diverge_and_render_two_columns():
    a, b = quickstart_events(seed=5), quickstart_events(seed=6)
    divergence = first_divergence(a, b)
    assert divergence is not None
    report = render_divergence(a, b, divergence, context=2)
    assert report.splitlines()[0] == divergence.describe()
    assert "! L " in report and "! R " in report
    # The shared prefix really is shared: streams agree up to the index.
    assert [event_record(e) for e in a[: divergence.index]] == [
        event_record(e) for e in b[: divergence.index]
    ]
    assert event_record(a[divergence.index]) != event_record(
        b[divergence.index]
    )


def test_divergence_in_first_event():
    a = [event_record(e) for e in quickstart_events()]
    b = [dict(a[0], node="zz")] + a[1:]
    divergence = first_divergence(a, b)
    assert divergence is not None and divergence.index == 0
    # No "shared prefix" section when nothing is shared.
    assert "shared prefix" not in render_divergence(a, b, divergence)


# ----------------------------------------------------------------------
# load_events: format sniffing and failure modes
# ----------------------------------------------------------------------
def test_load_events_reads_jsonl_and_bundles_identically(tmp_path):
    result = run_quickstart(nodes=3, seed=5, duration=0.5, crash=False)
    jsonl = tmp_path / "run.probes.jsonl"
    jsonl.write_text(events_to_jsonl(result.events))

    from repro.obs import build_bundle, dump_bundle

    bundle = build_bundle(
        "manual", detail="", at=0.5, events=result.events, context={}
    )
    bundle_path = dump_bundle(bundle, tmp_path / "run.bundle.json")

    from_jsonl = load_events(jsonl)
    from_bundle = load_events(bundle_path)
    assert from_jsonl == from_bundle
    assert first_divergence(from_jsonl, bundle_events(bundle)) is None


def test_load_events_failure_modes(tmp_path):
    with pytest.raises(ValueError, match="cannot read"):
        load_events(tmp_path / "missing.jsonl")

    empty = tmp_path / "empty.jsonl"
    empty.write_text("\n\n")
    with pytest.raises(ValueError, match="empty"):
        load_events(empty)

    bad_line = tmp_path / "bad.jsonl"
    bad_line.write_text('{"n": 1, "at": 0.0, "node": "A", "kind": "core.wakeup", "args": []}\nnot json\n')
    with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
        load_events(bad_line)

    not_events = tmp_path / "records.jsonl"
    not_events.write_text('{"metric": "x", "value": 1}\n')
    with pytest.raises(ValueError, match="not a probe event record"):
        load_events(not_events)

    foreign_bundle = tmp_path / "foreign.json"
    foreign_bundle.write_text(json.dumps({"schema": "other/1", "events": []}))
    with pytest.raises(ValueError, match="supported"):
        load_events(foreign_bundle)


def test_load_events_truncated_jsonl_names_the_line(tmp_path):
    """A JSONL export cut mid-record (crash during write, partial copy)
    fails with the exact line number of the torn record."""
    good = '{"n": 1, "at": 0.0, "node": "A", "kind": "core.wakeup", "args": []}'
    torn = tmp_path / "torn.jsonl"
    torn.write_text(good + "\n" + good[: len(good) // 2] + "\n")
    with pytest.raises(ValueError, match=r"torn\.jsonl:2: not JSON"):
        load_events(torn)


def test_load_events_record_missing_keys_names_line_and_keys(tmp_path):
    """A stream mixing probe records with some other JSONL schema fails at
    the first foreign line, naming the missing keys."""
    good = '{"n": 1, "at": 0.0, "node": "A", "kind": "core.wakeup", "args": []}'
    mixed = tmp_path / "mixed.jsonl"
    mixed.write_text(good + "\n" + '{"n": 2, "at": 0.1, "node": "A"}' + "\n")
    with pytest.raises(ValueError, match=r"mixed\.jsonl:2: not a probe event"):
        load_events(mixed)
    with pytest.raises(ValueError, match="kind, args"):
        load_events(mixed)


def test_load_events_v1_bundle_backfills_alerts(tmp_path):
    """A legacy /1 bundle (written before the alerts section existed)
    loads fine: load_bundle backfills ``alerts: []`` and load_events
    reads its events like any /2 bundle's."""
    from repro.obs import load_bundle

    events = quickstart_events()
    v1 = {
        "schema": "repro.obs.bundle/1",
        "reason": "manual",
        "detail": "",
        "at": 0.5,
        "nodes": sorted({e.node for e in events}),
        "context": {},
        "events": [event_record(e) for e in events],
        "metrics": {},
        "schedule": None,
    }
    assert "alerts" not in v1
    path = tmp_path / "legacy.bundle.json"
    path.write_text(json.dumps(v1, sort_keys=True, indent=2))
    loaded = load_bundle(path)
    assert loaded["alerts"] == []
    assert load_events(path) == [event_record(e) for e in events]


def test_load_events_single_record_line_is_jsonl_not_bundle(tmp_path):
    """Format sniffing edge: a one-line export starts with ``{`` and parses
    as a whole-file JSON object, but without a ``schema`` key it must be
    treated as JSONL, not rejected as a malformed bundle."""
    path = tmp_path / "one.jsonl"
    path.write_text(
        '{"n": 1, "at": 0.0, "node": "A", "kind": "core.wakeup", "args": []}\n'
    )
    records = load_events(path)
    assert len(records) == 1 and records[0]["kind"] == "core.wakeup"


# ----------------------------------------------------------------------
# load_events: raintap collector captures (docs/TELEMETRY.md)
# ----------------------------------------------------------------------
CAPTURE_HEADER = '{"reorder":0.05,"schema":"repro.obs.capture/1","silence":1.0,"t0":100.0}'
REC = '{"n": %d, "at": %s, "node": "A", "kind": "core.wakeup", "args": []}'


def write_capture(tmp_path, name, body, newline=True):
    path = tmp_path / name
    path.write_text(CAPTURE_HEADER + "\n" + body + ("\n" if newline else ""))
    return path


def test_load_events_sniffs_collector_captures(tmp_path):
    path = write_capture(
        tmp_path, "cap.jsonl", (REC % (1, "100.5")) + "\n" + (REC % (2, "100.6"))
    )
    records = load_events(path)
    # The header line is metadata, not an event; records pass through
    # with their wall-clock stamps intact.
    assert [r["n"] for r in records] == [1, 2]
    assert records[0]["at"] == 100.5
    # A capture diffs against itself like any export.
    assert first_divergence(records, load_events(path)) is None


def test_capture_torn_final_line_is_tolerated(tmp_path):
    """A live capture killed mid-write ends in a half-record with no
    newline; the loader drops exactly that line and keeps the rest."""
    torn = (REC % (1, "100.5")) + "\n" + (REC % (2, "100.6"))[:20]
    path = write_capture(tmp_path, "killed.jsonl", torn, newline=False)
    records = load_events(path)
    assert [r["n"] for r in records] == [1]


def test_capture_torn_midfile_line_still_raises(tmp_path):
    """A torn line *followed by* complete records is interleaved
    corruption (two writers, lost flush ordering), not a clean kill —
    the loader must not silently skip it."""
    body = (REC % (1, "100.5")) + "\n" + (REC % (2, "100.6"))[:20] + "\n" + (
        REC % (3, "100.7")
    )
    path = write_capture(tmp_path, "interleaved.jsonl", body)
    with pytest.raises(ValueError, match=r"interleaved\.jsonl:3: not JSON"):
        load_events(path)


def test_capture_complete_final_line_with_no_newline_loads(tmp_path):
    """Torn-tail tolerance is about *undecodable* tails: a final record
    that parses fine is kept even without its trailing newline."""
    body = (REC % (1, "100.5")) + "\n" + (REC % (2, "100.6"))
    path = write_capture(tmp_path, "flushcut.jsonl", body, newline=False)
    assert [r["n"] for r in load_events(path)] == [1, 2]


def test_capture_with_unsupported_schema_raises(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text(
        '{"schema": "repro.obs.capture/9"}\n' + (REC % (1, "100.5")) + "\n"
    )
    with pytest.raises(ValueError, match="unsupported capture schema"):
        load_events(path)


def test_capture_with_only_a_header_is_empty(tmp_path):
    path = tmp_path / "header-only.jsonl"
    path.write_text(CAPTURE_HEADER + "\n")
    with pytest.raises(ValueError, match="no probe event records"):
        load_events(path)


def test_plain_jsonl_export_still_rejects_torn_tail(tmp_path):
    """Torn-tail tolerance applies to captures only: a deterministic
    export is written atomically, so a torn tail is real corruption."""
    path = tmp_path / "export.jsonl"
    path.write_text((REC % (1, "0.5")) + "\n" + (REC % (2, "0.6"))[:20])
    with pytest.raises(ValueError, match=r"export\.jsonl:2: not JSON"):
        load_events(path)


# ----------------------------------------------------------------------
# renumber_events: canonical ordinals for merged streams
# ----------------------------------------------------------------------
def test_renumber_assigns_ordinals_in_given_order():
    from repro.obs.probe import ProbeEvent, renumber_events

    # Equal-timestamp ties: renumbering must keep the caller's order
    # verbatim (the canonical merge order is (at, node, kind, n) — the
    # renumberer itself never re-sorts).
    events = [
        ProbeEvent(7, 0.5, "B", "core.wakeup", ()),  # raincheck: disable=RC402 -- synthetic ties with chosen ordinals
        ProbeEvent(3, 0.5, "A", "core.wakeup", ()),  # raincheck: disable=RC402 -- synthetic ties with chosen ordinals
        ProbeEvent(9, 0.5, "A", "node.shutdown", ("leave",)),  # raincheck: disable=RC402 -- synthetic ties with chosen ordinals
    ]
    renumbered = renumber_events(events)
    assert [e.n for e in renumbered] == [1, 2, 3]
    assert [(e.at, e.node, e.kind, e.args) for e in renumbered] == [
        (e.at, e.node, e.kind, e.args) for e in events
    ]
    # Renumbering is idempotent: a second pass changes no record.
    twice = renumber_events(renumbered)
    assert [event_record(e) for e in twice] == [
        event_record(e) for e in renumbered
    ]
    assert renumber_events([]) == []
