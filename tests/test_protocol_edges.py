"""Edge-case tests for subtle protocol semantics.

These pin behaviours that are easy to silently regress: the stale-token
guard, the uniform total order across mixed ordering levels, queued
multicasts across membership states, and seq-number bookkeeping.
"""

import pytest

from repro.core.token import Ordering, Token
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


# ----------------------------------------------------------------------
# stale-token guard
# ----------------------------------------------------------------------
def test_stale_token_is_ignored(abcd):
    """A replayed token with an old seq must be dropped, not processed."""
    node = abcd.node("B")
    # Wait for B to hold the token, then capture a copy.
    for _ in range(2000):
        abcd.run(0.001)
        if node.has_token:
            break
    assert node.has_token
    stale = node._live_token.copy()
    abcd.run(0.5)  # the ring moves on, seqs advance
    seq_before = node._last_seen_seq
    views_before = len(abcd.listener("B").views)
    node._accept_token(stale)  # replay the old token
    assert node._last_seen_seq == seq_before
    assert len(abcd.listener("B").views) == views_before
    abcd.run(1.0)
    assert abcd.converged()


def test_token_for_nonmember_is_ignored(abcd):
    """A token that does not list the receiver must be dropped (the node
    was removed while the token was in flight; it will 911 back in)."""
    node = abcd.node("C")
    foreign = Token(seq=10_000, membership=("A", "B", "D"))
    node._accept_token(foreign)
    assert not node.has_token
    assert node._last_seen_seq < 10_000


# ----------------------------------------------------------------------
# uniform total order across ordering levels
# ----------------------------------------------------------------------
def test_agreed_after_safe_waits_for_confirmation(abcd):
    """An AGREED message attached after a SAFE one (same origin, same
    visit) must not overtake it anywhere — the hold-queue blocks the
    deliverable suffix until the SAFE head confirms (Totem-style)."""
    abcd.node("A").multicast("safe-first", ordering=Ordering.SAFE)
    abcd.node("A").multicast("agreed-second", ordering=Ordering.AGREED)
    abcd.run(3.0)
    for nid in "ABCD":
        payloads = [d.payload for d in abcd.listener(nid).deliveries]
        assert payloads == ["safe-first", "agreed-second"], (nid, payloads)


def test_safe_delivery_times_not_before_receipt_round(abcd):
    """No node delivers a SAFE message before every member has received
    it: all delivery timestamps lie after the token completed one full
    round past the attach."""
    abcd.run(0.2)
    abcd.node("B").multicast("s", ordering=Ordering.SAFE)
    abcd.run(3.0)
    ats = [abcd.listener(nid).deliveries[0].at for nid in "ABCD"]
    spread = max(ats) - min(ats)
    # Phase-2 deliveries happen within one traversal of each other.
    assert spread <= 4 * abcd.config.hop_interval + 0.01


# ----------------------------------------------------------------------
# queued multicasts across membership states
# ----------------------------------------------------------------------
def test_multicast_queued_while_joining_is_sent_after_join():
    c = make_cluster("AB")
    c.node("A").start_new_group()
    c.run_until_converged(2.0, expected={"A"})
    c.node("B").start_joining(["A"])
    # Send immediately, before B has ever held the token.
    c.node("B").multicast("early-bird")
    c.run(3.0)
    assert "early-bird" in [d.payload for d in c.listener("A").deliveries]


def test_outbox_dropped_on_crash_restart(abcd):
    node = abcd.node("D")
    # Queue a message, then crash before the token can pick it up.
    node.multicast("never-sent")
    abcd.faults.crash_node("D")
    abcd.run_until_converged(3.0, expected={"A", "B", "C"})
    abcd.faults.recover_node("D")
    abcd.run_until_converged(5.0, expected=set("ABCD"))
    abcd.run(2.0)
    for nid in "ABC":
        assert "never-sent" not in [
            d.payload for d in abcd.listener(nid).deliveries
        ]


def test_leave_flushes_nothing_but_ring_survives(abcd):
    """A leaving node's unflushed outbox dies with it; the ring and other
    traffic continue."""
    abcd.node("B").multicast("b-before-leave")
    abcd.run(1.0)
    abcd.node("B").leave()
    abcd.run_until_converged(3.0, expected={"A", "C", "D"})
    abcd.node("A").multicast("a-after-leave")
    abcd.run(1.0)
    a_payloads = [d.payload for d in abcd.listener("A").deliveries]
    assert "b-before-leave" in a_payloads
    assert "a-after-leave" in a_payloads


# ----------------------------------------------------------------------
# sequence-number bookkeeping
# ----------------------------------------------------------------------
def test_local_copy_seq_unique_among_non_holders(abcd):
    """Forward-time local copies have pairwise distinct seqs among all
    nodes not currently holding the token.  (The holder's view of the live
    token legitimately shares its predecessor's forward seq — they describe
    the same hop — which is exactly why the 911 grant rule carries a
    node-id tie-break.)"""
    for _ in range(100):
        abcd.run(0.005)
        seqs = [
            abcd.node(nid).local_copy_seq
            for nid in "ABCD"
            if not abcd.node(nid).has_token
        ]
        seqs = [s for s in seqs if s >= 0]
        assert len(seqs) == len(set(seqs)), seqs


def test_view_id_monotonic_per_listener(abcd):
    abcd.faults.crash_node("B")
    abcd.run(3.0)
    abcd.faults.recover_node("B")
    abcd.run(5.0)
    for nid in "ACD":
        vids = [v.view_id for v in abcd.listener(nid).views]
        assert vids == sorted(vids)


def test_message_retirement_under_continuous_load(abcd):
    """The token must not accumulate messages under steady multicast."""
    for i in range(50):
        abcd.node("ABCD"[i % 4]).multicast(f"m{i}")
        abcd.run(0.02)
    abcd.run(2.0)
    copy = abcd.node("A").local_copy
    assert copy is not None
    assert len(copy.messages) == 0
