"""Tests for the replicated dictionary (Data Service)."""

import pytest

from repro.data.shared_dict import SharedDict
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


@pytest.fixture
def dict_cluster():
    c = make_cluster("ABCD")
    sds = {nid: SharedDict(c.node(nid)) for nid in "ABCD"}
    c.start_all()
    return c, sds


def test_set_replicates_everywhere(dict_cluster):
    c, sds = dict_cluster
    sds["A"].set("greeting", "hello")
    c.run(1.0)
    for n in "ABCD":
        assert sds[n].get("greeting") == "hello"


def test_delete_replicates(dict_cluster):
    c, sds = dict_cluster
    sds["A"].set("k", 1)
    c.run(1.0)
    sds["C"].delete("k")
    c.run(1.0)
    for n in "ABCD":
        assert "k" not in sds[n]


def test_concurrent_writes_converge(dict_cluster):
    """Two nodes write the same key concurrently: everyone converges to
    the same winner (the one ordered last by the token)."""
    c, sds = dict_cluster
    sds["B"].set("k", "from-B")
    sds["D"].set("k", "from-D")
    c.run(1.0)
    values = {sds[n].get("k") for n in "ABCD"}
    assert len(values) == 1
    assert values.pop() in {"from-B", "from-D"}


def test_replicas_identical_after_mixed_ops(dict_cluster):
    c, sds = dict_cluster
    for i in range(20):
        nid = "ABCD"[i % 4]
        if i % 5 == 4:
            sds[nid].delete(f"k{i % 3}")
        else:
            sds[nid].set(f"k{i % 3}", i)
    c.run(2.0)
    snaps = [sds[n].snapshot() for n in "ABCD"]
    assert all(s == snaps[0] for s in snaps)
    versions = {sds[n].version for n in "ABCD"}
    assert len(versions) == 1


def test_local_reads_and_dunder(dict_cluster):
    c, sds = dict_cluster
    sds["A"].set("x", 1)
    sds["A"].set("y", 2)
    c.run(1.0)
    d = sds["B"]
    assert len(d) == 2
    assert list(d.keys()) == ["x", "y"]
    assert d.get("missing", "dflt") == "dflt"


def test_joiner_receives_state_transfer():
    c = make_cluster("ABC")
    sds = {nid: SharedDict(c.node(nid)) for nid in "ABC"}
    c.node("A").start_new_group()
    c.run_until_converged(2.0, expected={"A"})
    sds["A"].set("pre", "existing")
    c.run(0.5)
    c.node("B").start_joining(["A"])
    c.run_until_converged(5.0, expected={"A", "B"})
    c.run(1.0)
    assert sds["B"].synced
    assert sds["B"].get("pre") == "existing"
    # And the late joiner too, transferred by the lowest-id member.
    c.node("C").start_joining(["B"])
    c.run_until_converged(5.0, expected={"A", "B", "C"})
    c.run(1.0)
    assert sds["C"].synced
    assert sds["C"].snapshot() == sds["A"].snapshot()


def test_crashed_member_resyncs_on_rejoin(dict_cluster):
    c, sds = dict_cluster
    sds["A"].set("k", "v0")
    c.run(1.0)
    c.faults.crash_node("D")
    c.run_until_converged(3.0, expected={"A", "B", "C"})
    sds["B"].set("k", "v1")  # D misses this
    sds["B"].set("new", True)
    c.run(1.0)
    c.faults.recover_node("D")
    c.run_until_converged(6.0, expected=set("ABCD"))
    c.run(1.5)
    assert sds["D"].get("k") == "v1"
    assert sds["D"].get("new") is True
    assert sds["D"].snapshot() == sds["A"].snapshot()


def test_merge_reconciles_to_lower_group_state(dict_cluster):
    """After a split-brain, the healed cluster converges on the lower-
    group-id partition's state for conflicting keys."""
    c, sds = dict_cluster
    sds["A"].set("stable", 1)
    c.run(1.0)
    c.faults.partition(["A", "B"], ["C", "D"])
    c.run(3.0)
    sds["A"].set("conflict", "AB-side")
    sds["C"].set("conflict", "CD-side")
    sds["C"].set("cd-only", True)
    c.run(2.0)
    c.faults.heal_partition()
    assert c.run_until_converged(12.0, expected=set("ABCD"))
    c.run(2.0)
    snaps = [sds[n].snapshot() for n in "ABCD"]
    assert all(s == snaps[0] for s in snaps)
    assert snaps[0]["conflict"] == "AB-side"  # lower group id wins
    assert snaps[0]["stable"] == 1


def test_writes_during_convergence_not_lost(dict_cluster):
    c, sds = dict_cluster
    c.faults.crash_node("C")
    # Write immediately, while the membership is still reacting.
    sds["A"].set("during", "churn")
    c.run(5.0)
    for n in "ABD":
        assert sds[n].get("during") == "churn"
