"""Tests for open group communication (paper §2.6, second half)."""

import pytest

from repro.core.token import Ordering
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


def test_outside_node_message_reaches_whole_group(abcd):
    client = abcd.add_external_client("ext")
    results = []
    client.send_to_group("from-outside", on_result=results.append)
    abcd.run(2.0)
    assert results and results[0] in set("ABCD")
    for nid in "ABCD":
        assert "from-outside" in abcd.listener(nid).delivered_payloads


def test_client_is_not_a_member(abcd):
    abcd.add_external_client("ext")
    abcd.run(1.0)
    assert "ext" not in abcd.node("A").members


def test_safe_injection(abcd):
    client = abcd.add_external_client("ext")
    client.send_to_group("safe-inject", safe=True)
    abcd.run(3.0)
    for nid in "ABCD":
        match = [d for d in abcd.listener(nid).deliveries if d.payload == "safe-inject"]
        assert match and match[0].ordering is Ordering.SAFE


def test_contact_failover(abcd):
    """The entry member dies; the client retries at the next contact."""
    client = abcd.add_external_client("ext", contacts=["B", "C"])
    abcd.faults.crash_node("B")
    abcd.run_until_converged(3.0, expected={"A", "C", "D"})
    results = []
    client.send_to_group("via-backup", on_result=results.append)
    abcd.run(3.0)
    assert results == ["C"]
    for nid in "ACD":
        assert "via-backup" in abcd.listener(nid).delivered_payloads


def test_all_contacts_dead_reports_failure(abcd):
    client = abcd.add_external_client("ext", contacts=["B"], max_attempts=2)
    abcd.faults.crash_node("B")
    abcd.run(1.0)
    results = []
    client.send_to_group("lost", on_result=results.append)
    abcd.run(5.0)
    assert results == [None]


def test_same_contact_dedupes_retries(abcd):
    """A duplicate injection at the same member multicasts once."""
    client = abcd.add_external_client("ext", contacts=["A"], ack_timeout=0.01)
    # The tiny ack timeout forces client-side retries before the ack lands.
    client.send_to_group("once-only")
    abcd.run(3.0)
    for nid in "ABCD":
        count = abcd.listener(nid).delivered_payloads.count("once-only")
        assert count == 1


def test_multiple_clients(abcd):
    c1 = abcd.add_external_client("ext1", contacts=["A"])
    c2 = abcd.add_external_client("ext2", contacts=["D"])
    c1.send_to_group("m1")
    c2.send_to_group("m2")
    abcd.run(2.0)
    for nid in "ABCD":
        payloads = abcd.listener(nid).delivered_payloads
        assert "m1" in payloads and "m2" in payloads
    # Orders agree, as for any group multicast.
    orders = list(abcd.all_delivery_orders().values())
    assert all(o == orders[0] for o in orders[1:])


def test_requires_contacts():
    c = make_cluster("AB")
    with pytest.raises(ValueError):
        c.add_external_client("ext", contacts=[])
