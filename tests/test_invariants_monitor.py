"""Tests for the continuous invariant monitor."""

import pytest

from repro.cluster.invariants import InvariantMonitor
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


def test_clean_run_is_clean(abcd):
    monitor = InvariantMonitor(abcd, interval=0.001)
    monitor.start()
    for i in range(5):
        abcd.node("ABCD"[i % 4]).multicast(f"m{i}")
    abcd.run(2.0)
    monitor.stop()
    assert monitor.samples > 1500
    monitor.assert_clean()
    assert monitor.double_token_time == 0.0


def test_fail_stop_churn_stays_clean(abcd):
    """Crashes are fail-stop: no duplicate tokens, no violations."""
    monitor = InvariantMonitor(abcd, interval=0.001)
    monitor.start()
    abcd.faults.crash_node("B")
    abcd.run(2.0)
    abcd.faults.recover_node("B")
    abcd.run(4.0)
    abcd.faults.lose_token()
    abcd.run(4.0)
    monitor.stop()
    monitor.assert_clean()


def test_ack_blackout_double_window_is_bounded(abcd):
    """The ack-loss false alarm may create a short duplicate-token window;
    the monitor quantifies it and shows it is bounded, not silent."""
    monitor = InvariantMonitor(abcd, interval=0.001)
    monitor.start()
    abcd.faults.ack_blackout("B", "A", duration=1.0)
    abcd.run(6.0)
    monitor.stop()
    assert monitor.violations == []  # monotonicity & legality always hold
    # Any duplicate window is transient: well under the blackout duration.
    assert monitor.double_token_time < 0.5
    monitor.assert_clean(max_double_token_time=0.5)


def test_assert_clean_raises_on_violation(abcd):
    monitor = InvariantMonitor(abcd, interval=0.001)
    monitor._flag(0.0, "synthetic", "injected by test")
    with pytest.raises(AssertionError):
        monitor.assert_clean()


def test_strict_mode_flags_double_tokens(abcd):
    monitor = InvariantMonitor(abcd, interval=0.001, strict=True)
    monitor.double_token_time = 0.1
    with pytest.raises(AssertionError):
        monitor.assert_clean()


def test_strict_monitor_catches_forged_duplicate(abcd):
    """A forged duplicate token is observed by the strict monitor as a
    token-uniqueness violation, and the non-strict counter accrues the
    same window as double-token time."""
    strict = InvariantMonitor(abcd, interval=0.001, strict=True)
    strict.start()
    abcd.run(0.5)
    assert strict.violations == []
    assert abcd.faults.forge_duplicate_token()
    abcd.run(0.5)
    strict.stop()
    kinds = {v.kind for v in strict.violations}
    assert "token-uniqueness" in kinds
    # Strict mode flags *and* accounts: the counted window matches the
    # number of flagged samples times the sampling interval.
    flagged = sum(1 for v in strict.violations if v.kind == "token-uniqueness")
    assert strict.double_token_time == pytest.approx(flagged * strict.interval)
    with pytest.raises(AssertionError):
        strict.assert_clean()


def test_false_alarm_wrongful_removal_then_rejoin(abcd):
    """A failure-detector false alarm wrongly removes a live node; the
    victim is healthy, notices, and rejoins — membership returns to full
    strength with no invariant violations."""
    monitor = InvariantMonitor(abcd, interval=0.001)
    monitor.start()
    abcd.faults.false_alarm("A", "B")
    deadline = abcd.loop.now + 10.0
    while abcd.loop.now < deadline and "B" in abcd.node("A").members:
        abcd.run(0.05)
    assert "B" not in abcd.node("A").members, "false alarm never removed the victim"
    assert abcd.node("B").state.value != "down"  # victim was never sick
    assert abcd.run_until_converged(20.0, expected=set("ABCD"))
    monitor.stop()
    monitor.assert_clean(max_double_token_time=0.5)


def test_restarted_node_not_misread_as_regression():
    """Full-cluster wipe and re-bootstrap resets the seq space; the monitor
    must not flag the rebirth."""
    c = make_cluster("AB")
    c.start_all()
    monitor = InvariantMonitor(c, interval=0.001)
    monitor.start()
    c.run(1.0)
    c.faults.crash_node("A")
    c.faults.crash_node("B")
    c.run(0.5)
    c.faults.recover_node("A")  # no survivors: forms a brand-new group
    c.run(2.0)
    monitor.stop()
    monitor.assert_clean()


def test_split_brain_tokens_are_legitimate(abcd):
    """One token per sub-group during a partition is NOT a duplicate."""
    monitor = InvariantMonitor(abcd, interval=0.001)
    monitor.start()
    abcd.faults.partition(["A", "B"], ["C", "D"])
    abcd.run(3.0)
    abcd.faults.heal_partition()
    abcd.run_until_converged(12.0, expected=set("ABCD"))
    monitor.stop()
    monitor.assert_clean()
    assert monitor.double_token_time == 0.0
