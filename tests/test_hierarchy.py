"""Tests for the hierarchical extension (paper §5 future work)."""

import pytest

from repro.hierarchy import HierarchicalCluster

pytestmark = [pytest.mark.integration, pytest.mark.slow]


def make_hier(shape=((3, 3, 3)), seed=4):
    groups = []
    for gi, size in enumerate(shape):
        letter = chr(ord("a") + gi)
        groups.append([f"{letter}{i}" for i in range(1, size + 1)])
    h = HierarchicalCluster(groups, seed=seed)
    h.start()
    return h


def test_formation_two_planes():
    h = make_hier()
    assert h.current_leaders() == ["a1", "b1", "c1"]
    assert set(h.top_view()) == {"a1^t", "b1^t", "c1^t"}
    for group in h.groups:
        for nid in group:
            assert set(h.members[nid].local.members) == set(group)


def test_only_leaders_in_top_ring():
    h = make_hier()
    for nid, member in h.members.items():
        if nid in h.current_leaders():
            assert member.top_active
        else:
            assert not member.top_active


def test_local_multicast_scoped_to_subgroup():
    h = make_hier()
    h.members["b2"].multicast_local("b-only")
    h.run(1.0)
    for nid in ("b1", "b2", "b3"):
        assert ("b2", "b-only") in h.local_log[nid]
    for nid in ("a1", "a2", "a3", "c1", "c2", "c3"):
        assert h.local_log[nid] == []


def test_global_multicast_reaches_every_machine():
    h = make_hier()
    h.members["a2"].multicast_global("to-all")
    h.run(3.0)
    for nid in h.machine_ids:
        assert ("a2", "to-all") in h.global_log[nid]


def test_global_delivery_exactly_once():
    h = make_hier()
    for i in range(5):
        h.members["c3"].multicast_global(f"g{i}")
    h.run(4.0)
    for nid in h.machine_ids:
        keys = h.global_log[nid]
        assert len(keys) == len(set(keys)) == 5


def test_global_order_identical_everywhere():
    """The top ring's token order is the single global order."""
    h = make_hier()
    for i, sender in enumerate(["a1", "b2", "c3", "a3", "b1", "c2"] * 2):
        h.members[sender].multicast_global(f"{sender}-{i}")
    h.run(5.0)
    orders = [tuple(h.global_log[nid]) for nid in h.machine_ids]
    assert all(o == orders[0] for o in orders[1:])
    assert len(orders[0]) == 12


def test_nonleader_crash_is_local_affair():
    h = make_hier()
    top_before = set(h.top_view())
    h.crash_machine("b3")
    h.run(4.0)
    assert set(h.members["b1"].local.members) == {"b1", "b2"}
    # Other groups and the top ring are untouched.
    assert set(h.members["a1"].local.members) == {"a1", "a2", "a3"}
    assert set(h.top_view()) == top_before


def test_leader_crash_promotes_next_member():
    h = make_hier()
    h.crash_machine("a1")
    assert h.run_until_formed(10.0), (h.local_views(), h.top_view())
    assert h.current_leaders() == ["a2", "b1", "c1"]
    assert set(h.top_view()) == {"a2^t", "b1^t", "c1^t"}


def test_global_multicast_survives_leader_failover():
    h = make_hier()
    h.crash_machine("b1")
    h.run_until_formed(10.0)
    h.members["b3"].multicast_global("after-failover")
    h.run(4.0)
    for nid in h.live_machines():
        assert ("b3", "after-failover") in h.global_log[nid]


def test_in_flight_global_reforwarded_after_leader_crash():
    """A global sent just before its group's leader dies is still relayed
    by the successor (at-least-once relay, exactly-once delivery)."""
    h = make_hier(seed=9)
    h.members["a2"].multicast_global("racing-the-crash")
    h.run(0.005)  # leader has likely not relayed yet
    h.crash_machine("a1")
    h.run_until_formed(12.0)
    h.run(4.0)
    for nid in h.live_machines():
        entries = [e for e in h.global_log[nid] if e == ("a2", "racing-the-crash")]
        assert len(entries) == 1, (nid, h.global_log[nid])


def test_whole_group_crash_removes_it_from_top():
    h = make_hier()
    for nid in ("c1", "c2", "c3"):
        h.crash_machine(nid)
    h.run(6.0)
    assert h.current_leaders() == ["a1", "b1"]
    assert set(h.top_view()) == {"a1^t", "b1^t"}
    h.members["a3"].multicast_global("two-groups-left")
    h.run(3.0)
    for nid in h.live_machines():
        assert ("a3", "two-groups-left") in h.global_log[nid]


def test_validation():
    with pytest.raises(ValueError):
        HierarchicalCluster([])
    with pytest.raises(ValueError):
        HierarchicalCluster([["a"], []])
    with pytest.raises(ValueError):
        HierarchicalCluster([["a"], ["a"]])
    with pytest.raises(ValueError):
        HierarchicalCluster([["bad^t"]])


def test_uneven_groups():
    h = HierarchicalCluster([["a1"], ["b1", "b2", "b3", "b4"]], seed=6)
    h.start()
    assert h.current_leaders() == ["a1", "b1"]
    h.members["b4"].multicast_global("uneven")
    h.run(3.0)
    for nid in h.machine_ids:
        assert ("b4", "uneven") in h.global_log[nid]
