"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.metrics.charts import bar_chart


def test_basic_bars_scale_to_peak():
    out = bar_chart("T", ["a", "b"], [50.0, 100.0], width=10)
    lines = out.splitlines()
    assert lines[0] == "T"
    a_bar = lines[2].split("|")[1].strip().split(" ")[0]
    b_bar = lines[3].split("|")[1].strip().split(" ")[0]
    assert len(b_bar) == 10
    assert len(a_bar) == 5


def test_values_printed():
    out = bar_chart("T", ["x"], [1234.5], unit=" Mbps")
    assert "1,234.5 Mbps" in out


def test_reference_bars_rendered_hollow():
    out = bar_chart("T", ["x"], [100.0], reference={"x": 80.0})
    assert "#" in out and "." in out
    assert "x (ref)" in out


def test_empty_chart():
    assert "(no data)" in bar_chart("T", [], [])


def test_mismatched_lengths():
    with pytest.raises(ValueError):
        bar_chart("T", ["a"], [1.0, 2.0])


def test_zero_values_do_not_crash():
    out = bar_chart("T", ["a"], [0.0])
    assert "0.0" in out


def test_minimum_one_char_bar():
    out = bar_chart("T", ["tiny", "huge"], [0.1, 1000.0], width=20)
    tiny_line = [l for l in out.splitlines() if "tiny" in l][0]
    assert "#" in tiny_line
