"""Edge-case tests for the real-UDP fabric (no sockets needed for most)."""

import asyncio
import pickle

import pytest

from repro.net.eventloop import EventLoop
from repro.obs.probe import ProbeBus
from repro.runtime.udp import FABRIC_MAGIC, FABRIC_VERSION, UdpFabric

#: The valid frame prefix, rebuilt here so a constant drift gets caught.
PREFIX = FABRIC_MAGIC + bytes([FABRIC_VERSION])


def probed_fabric(ports):
    """Fabric with a probe bus attached; returns (fabric, recorded events)."""
    fabric = UdpFabric(ports)
    bus = ProbeBus(EventLoop(seed=1))
    recorded = []
    bus.subscribe(recorded.append)
    fabric.probe = bus
    return fabric, recorded


def test_requires_nodes():
    with pytest.raises(ValueError):
        UdpFabric({})


def test_topology_mirrors_ports():
    fabric = UdpFabric({"A": 41000, "B": 41001})
    assert fabric.address_of("A") == "127.0.0.1:41000"
    assert fabric.topology.owner_of("127.0.0.1:41001") == "B"
    assert fabric.topology.addresses_of("A") == ["127.0.0.1:41000"]


def test_bind_unknown_address_raises():
    fabric = UdpFabric({"A": 41000})
    with pytest.raises(KeyError):
        fabric.bind("127.0.0.1:9", lambda p: None)


def test_send_without_endpoint_drops():
    fabric = UdpFabric({"A": 41010, "B": 41011})
    fabric.send(fabric.address_of("A"), fabric.address_of("B"), b"x", 1)
    assert fabric.packets_dropped == 1
    # The sender is still charged — the model matches the simulator's.
    assert fabric.stats.for_node("A").packets_sent == 1


def test_unpicklable_payload_dropped():
    fabric = UdpFabric({"A": 41020, "B": 41021})

    async def scenario():
        await fabric.open("A")
        try:
            fabric.send(
                fabric.address_of("A"),
                fabric.address_of("B"),
                lambda: None,  # unpicklable
                8,
            )
            assert fabric.packets_dropped == 1
        finally:
            fabric.close_all()

    asyncio.run(scenario())


def test_garbage_datagram_dropped():
    fabric = UdpFabric({"A": 41030})
    fabric._on_datagram(fabric.address_of("A"), b"\x00not-a-pickle")
    assert fabric.packets_dropped == 1


def test_prefixless_pickle_never_reaches_the_deserializer():
    """A valid pickle without the magic prefix is dropped as bad-magic —
    arbitrary bytes sprayed at the port must not reach pickle.loads."""

    class Boom:
        def __reduce__(self):
            return (pytest.fail, ("pickle.loads ran on a prefixless frame",))

    fabric, recorded = probed_fabric({"A": 41031})
    local = fabric.address_of("A")
    fabric._on_datagram(local, pickle.dumps((local, local, 4, Boom())))
    (drop,) = recorded
    assert drop.kind == "net.drop" and drop.args[-1] == "bad-magic"


def test_wrong_version_dropped_as_bad_magic():
    fabric, recorded = probed_fabric({"A": 41032})
    local = fabric.address_of("A")
    stale = FABRIC_MAGIC + bytes([FABRIC_VERSION + 1])
    fabric._on_datagram(local, stale + pickle.dumps((local, local, 1, b"x")))
    (drop,) = recorded
    assert drop.args[-1] == "bad-magic"
    assert fabric.packets_dropped == 1


def test_oversized_frame_dropped_both_directions():
    fabric, recorded = probed_fabric({"A": 41033, "B": 41034})
    a, b = fabric.address_of("A"), fabric.address_of("B")

    # Receive side: an oversized datagram dies before any decoding.
    fabric._on_datagram(a, b"\xff" * (fabric.max_frame_bytes + 1))
    assert recorded[-1].kind == "net.drop"
    assert recorded[-1].args[-1] == "oversized"
    assert recorded[-1].args[3] == fabric.max_frame_bytes + 1

    # Send side: a payload that encodes past the cap never hits a socket.
    async def scenario():
        await fabric.open("A")
        try:
            fabric.send(a, b, b"y" * (fabric.max_frame_bytes + 1), 100)
        finally:
            fabric.close_all()

    asyncio.run(scenario())
    assert [e.kind for e in recorded[-2:]] == ["net.send", "net.drop"]
    assert recorded[-1].args[-1] == "oversized"
    assert fabric.packets_dropped == 2


def test_max_frame_bytes_must_exceed_prefix():
    with pytest.raises(ValueError):
        UdpFabric({"A": 41035}, max_frame_bytes=len(PREFIX))


def test_probe_send_then_no_endpoint_drop():
    fabric, recorded = probed_fabric({"A": 41060, "B": 41061})
    src, dst = fabric.address_of("A"), fabric.address_of("B")
    fabric.send(src, dst, b"x", 1)
    assert [(e.node, e.kind) for e in recorded] == [
        ("A", "net.send"),
        ("A", "net.drop"),
    ]
    assert recorded[0].args == (src, dst, "bytes", 1)
    assert recorded[1].args == (src, dst, "bytes", 1, "no-endpoint")


def test_probe_unpicklable_drop():
    fabric, recorded = probed_fabric({"A": 41062, "B": 41063})

    async def scenario():
        await fabric.open("A")
        try:
            fabric.send(
                fabric.address_of("A"),
                fabric.address_of("B"),
                lambda: None,
                8,
            )
        finally:
            fabric.close_all()

    asyncio.run(scenario())
    assert [e.kind for e in recorded] == ["net.send", "net.drop"]
    assert recorded[1].args[4] == "unpicklable"
    assert recorded[1].args[2] == "function"  # the frame is the payload type


def test_probe_garbage_drop_has_no_forged_header_fields():
    fabric, recorded = probed_fabric({"A": 41064})
    local = fabric.address_of("A")
    # No prefix at all: dropped as bad-magic before deserialization.
    fabric._on_datagram(local, b"\x00not-a-pickle")
    # Valid prefix, undecodable body: dropped as garbage.
    fabric._on_datagram(local, PREFIX + b"\x00not-a-pickle")
    bad_magic, garbage = recorded
    for drop, where in ((bad_magic, "bad-magic"), (garbage, "garbage")):
        assert drop.node == "A" and drop.kind == "net.drop"
        # Undecodable bytes: src/frame are unknown, size is the raw length.
        n = len(b"\x00not-a-pickle") + (len(PREFIX) if where == "garbage" else 0)
        assert drop.args == ("?", local, "?", n, where)


def test_probe_misaddressed_unbound_and_deliver():
    fabric, recorded = probed_fabric({"A": 41065, "B": 41066})
    a, b = fabric.address_of("A"), fabric.address_of("B")

    # Datagram whose inner dst disagrees with the receiving socket.
    fabric._on_datagram(a, PREFIX + pickle.dumps((b, b, 5, b"stray")))
    # Correctly addressed but nothing bound yet.
    fabric._on_datagram(a, PREFIX + pickle.dumps((b, a, 5, b"early")))
    # Bound: delivery emits net.deliver and reaches the handler.
    got = []
    fabric.bind(a, got.append)
    fabric._on_datagram(a, PREFIX + pickle.dumps((b, a, 5, b"hello")))

    kinds = [(e.kind, e.args[-1]) for e in recorded]
    assert kinds == [
        ("net.drop", "misaddressed"),
        ("net.drop", "unbound"),
        ("net.deliver", 5),  # last field of net.deliver is the size
    ]
    assert all(e.node == "A" for e in recorded)
    assert got[0].payload == b"hello"
    assert fabric.packets_delivered == 1 and fabric.packets_dropped == 2


@pytest.mark.slow
def test_probe_parity_with_simulated_network():
    """A successful unicast emits the identical (node, kind, args) probe
    sequence over real sockets as over the simulated DatagramNetwork —
    the parity that lets every repro.obs consumer run unchanged on the
    real fabric."""
    from repro.net.datagram import DatagramNetwork

    fabric, real = probed_fabric({"A": 41070, "B": 41071})
    a, b = fabric.address_of("A"), fabric.address_of("B")

    async def scenario():
        await fabric.open_all()
        try:
            done = asyncio.get_event_loop().create_future()
            fabric.bind(b, lambda p: done.set_result(p))
            fabric.send(a, b, b"ping", 4)
            await asyncio.wait_for(done, timeout=3.0)
        finally:
            fabric.close_all()

    asyncio.run(scenario())

    loop = EventLoop(seed=1)
    net = DatagramNetwork(loop, fabric.topology)
    bus = ProbeBus(loop)
    sim = []
    bus.subscribe(sim.append)
    net.probe = bus
    net.bind(b, lambda p: None)
    net.send(a, b, b"ping", 4)
    loop.run_until_idle()

    assert [(e.node, e.kind, e.args) for e in sim] == [
        (e.node, e.kind, e.args) for e in real
    ]
    assert [e.kind for e in real] == ["net.send", "net.deliver"]


def test_close_is_idempotent():
    fabric = UdpFabric({"A": 41040})
    fabric.close("A")
    fabric.close("A")  # no endpoint, no error


@pytest.mark.slow
def test_roundtrip_over_real_sockets():
    fabric = UdpFabric({"A": 41050, "B": 41051})

    async def scenario():
        await fabric.open_all()
        got = asyncio.get_event_loop().create_future()
        fabric.bind(fabric.address_of("B"), lambda p: got.set_result(p))
        fabric.send(
            fabric.address_of("A"), fabric.address_of("B"), b"ping", 4
        )
        packet = await asyncio.wait_for(got, timeout=3.0)
        assert packet.payload == b"ping"
        assert fabric.packets_delivered == 1
        fabric.close_all()

    asyncio.run(scenario())
