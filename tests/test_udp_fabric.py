"""Edge-case tests for the real-UDP fabric (no sockets needed for most)."""

import asyncio

import pytest

from repro.runtime.udp import UdpFabric


def test_requires_nodes():
    with pytest.raises(ValueError):
        UdpFabric({})


def test_topology_mirrors_ports():
    fabric = UdpFabric({"A": 41000, "B": 41001})
    assert fabric.address_of("A") == "127.0.0.1:41000"
    assert fabric.topology.owner_of("127.0.0.1:41001") == "B"
    assert fabric.topology.addresses_of("A") == ["127.0.0.1:41000"]


def test_bind_unknown_address_raises():
    fabric = UdpFabric({"A": 41000})
    with pytest.raises(KeyError):
        fabric.bind("127.0.0.1:9", lambda p: None)


def test_send_without_endpoint_drops():
    fabric = UdpFabric({"A": 41010, "B": 41011})
    fabric.send(fabric.address_of("A"), fabric.address_of("B"), b"x", 1)
    assert fabric.packets_dropped == 1
    # The sender is still charged — the model matches the simulator's.
    assert fabric.stats.for_node("A").packets_sent == 1


def test_unpicklable_payload_dropped():
    fabric = UdpFabric({"A": 41020, "B": 41021})

    async def scenario():
        await fabric.open("A")
        try:
            fabric.send(
                fabric.address_of("A"),
                fabric.address_of("B"),
                lambda: None,  # unpicklable
                8,
            )
            assert fabric.packets_dropped == 1
        finally:
            fabric.close_all()

    asyncio.run(scenario())


def test_garbage_datagram_dropped():
    fabric = UdpFabric({"A": 41030})
    fabric._on_datagram(fabric.address_of("A"), b"\x00not-a-pickle")
    assert fabric.packets_dropped == 1


def test_close_is_idempotent():
    fabric = UdpFabric({"A": 41040})
    fabric.close("A")
    fabric.close("A")  # no endpoint, no error


@pytest.mark.slow
def test_roundtrip_over_real_sockets():
    fabric = UdpFabric({"A": 41050, "B": 41051})

    async def scenario():
        await fabric.open_all()
        got = asyncio.get_event_loop().create_future()
        fabric.bind(fabric.address_of("B"), lambda p: got.set_result(p))
        fabric.send(
            fabric.address_of("A"), fabric.address_of("B"), b"ping", 4
        )
        packet = await asyncio.wait_for(got, timeout=3.0)
        assert packet.payload == b"ping"
        assert fabric.packets_delivered == 1
        fabric.close_all()

    asyncio.run(scenario())
