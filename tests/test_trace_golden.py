"""Golden tests: the probe-bus-backed TraceRecorder renders byte-identically.

The golden files were captured from the pre-retrofit TraceRecorder (its own
listeners + network wiretap).  The recorder now formats probe-bus events
instead; these tests pin the rendered timeline and swimlanes to the exact
bytes the old implementation produced for the same seeded scenario.
"""

from __future__ import annotations

from pathlib import Path

from repro.cluster.harness import RaincoreCluster
from repro.metrics.trace import TraceRecorder, render_swimlanes

DATA = Path(__file__).parent / "data"
KINDS = {"state", "view", "token", "deliver", "shutdown"}


def _run_scenario() -> tuple[TraceRecorder, RaincoreCluster]:
    cluster = RaincoreCluster(["A", "B", "C"], seed=1)
    trace = TraceRecorder(cluster)
    cluster.start_all()
    cluster.node("A").multicast(b"traced")
    cluster.run(0.25)
    return trace, cluster


def test_timeline_matches_pre_retrofit_golden():
    trace, _ = _run_scenario()
    rendered = trace.render(KINDS, limit=60) + "\n"
    golden = (DATA / "golden_trace_timeline_seed1.txt").read_text()
    assert rendered == golden


def test_swimlanes_match_pre_retrofit_golden():
    trace, cluster = _run_scenario()
    events = trace.filter(kinds=KINDS)
    rendered = render_swimlanes(events, cluster.node_ids, limit=60) + "\n"
    golden = (DATA / "golden_trace_swimlanes_seed1.txt").read_text()
    assert rendered == golden
