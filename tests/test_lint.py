"""Tests for raincheck (src/repro/lint): one test per rule id, pragma
semantics, output stability, CLI exit codes, and the self-hosting check
that keeps the repo itself clean under ``--strict``.

The deliberately-bad snippets live in tests/data/lint_fixtures/ — that
directory is in the linter's DEFAULT_EXCLUDES precisely so the self-host
run does not trip over them.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.cli import main
from repro.lint import (
    DEFAULT_EXCLUDES,
    RULES,
    build_project,
    format_human,
    format_json,
    run,
)
from repro.lint.pragmas import scan_pragmas

ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "data" / "lint_fixtures"
NO_EXCLUDES = frozenset()


def lint_paths(*paths, strict=False, select=None):
    project = build_project([str(p) for p in paths], excludes=NO_EXCLUDES)
    return run(project, select=select, strict=strict)


def fired(report):
    return {v.rule for v in report.violations}


def count(report, rule_id):
    return sum(1 for v in report.violations if v.rule == rule_id)


# ----------------------------------------------------------------------
# catalogue + clean baseline
# ----------------------------------------------------------------------
def test_rule_catalogue_is_complete():
    assert set(RULES) == {
        "RC000", "RC001", "RC002", "RC003",
        "RC101", "RC102", "RC103", "RC104", "RC105",
        "RC201", "RC202", "RC203", "RC204", "RC205", "RC206",
        "RC301", "RC302",
        "RC401", "RC402", "RC403",
        "RC501", "RC502", "RC503", "RC504", "RC505", "RC506",
    }
    for rule in RULES.values():
        assert rule.scope in ("file", "project", "meta")
        assert rule.summary


def test_clean_fixture_is_clean_even_strict():
    report = lint_paths(FIXTURES / "clean.py", strict=True)
    assert report.ok, format_human(report)
    assert report.files_checked == 1


# ----------------------------------------------------------------------
# RC0xx — engine meta findings
# ----------------------------------------------------------------------
def test_rc000_syntax_error():
    report = lint_paths(FIXTURES / "rc000_syntax_error.py")
    assert fired(report) == {"RC000"}
    assert report.files_checked == 0  # unparsable files are not rule input


def test_rc001_malformed_pragma():
    report = lint_paths(FIXTURES / "pragma_malformed.py")
    assert fired(report) == {"RC001"}


def test_rc001_unknown_rule_id():
    report = lint_paths(FIXTURES / "pragma_unknown.py")
    assert fired(report) == {"RC001"}
    [violation] = report.violations
    assert "RC999" in violation.message


def test_rc002_missing_reason_leaves_pragma_inert():
    report = lint_paths(FIXTURES / "pragma_noreason.py")
    # Both the hygiene finding AND the violation the pragma tried to hide.
    assert fired(report) == {"RC002", "RC101"}


def test_rc003_unused_pragma_strict_only():
    assert lint_paths(FIXTURES / "pragma_unused.py").ok
    report = lint_paths(FIXTURES / "pragma_unused.py", strict=True)
    assert fired(report) == {"RC003"}


def test_meta_findings_are_unsuppressible():
    report = lint_paths(FIXTURES / "pragma_meta.py")
    # disable-file=RC002 must not mute the RC002 on the reasonless pragma.
    assert "RC002" in fired(report)
    assert "RC101" in fired(report)


# ----------------------------------------------------------------------
# RC1xx — determinism
# ----------------------------------------------------------------------
def test_rc101_wall_clock():
    report = lint_paths(FIXTURES / "rc101_wall_clock.py")
    assert fired(report) == {"RC101"}
    assert count(report, "RC101") == 3  # time.time, perf_counter, datetime.now


def test_rc101_allowed_in_perf_module():
    report = lint_paths(FIXTURES / "perf_allowed", strict=True)
    assert report.ok, format_human(report)


def test_rc102_ambient_entropy():
    report = lint_paths(FIXTURES / "rc102_entropy.py")
    assert fired(report) == {"RC102"}
    assert count(report, "RC102") == 3  # urandom, uuid4, token_hex; uuid5 ok


def test_rc103_global_rng():
    report = lint_paths(FIXTURES / "rc103_global_random.py")
    assert fired(report) == {"RC103"}
    assert count(report, "RC103") == 2  # from-import randint + random.random()


def test_rc104_unseeded_random():
    report = lint_paths(FIXTURES / "rc104_unseeded.py")
    assert fired(report) == {"RC104"}
    assert count(report, "RC104") == 1  # seeded constructions are fine


def test_rc105_set_iteration():
    report = lint_paths(FIXTURES / "rc105_set_iteration.py")
    assert fired(report) == {"RC105"}
    assert count(report, "RC105") == 3  # for-loop, comprehension, list(...)


# ----------------------------------------------------------------------
# RC2xx — protocol invariants
# ----------------------------------------------------------------------
def test_rc201_unhandled_session_message():
    report = lint_paths(FIXTURES / "dispatch_bad")
    assert fired(report) == {"RC201"}
    [violation] = report.violations
    assert "Orphan" in violation.message
    assert violation.file.endswith("messages.py")


def test_rc201_exhaustive_dispatch_is_clean():
    report = lint_paths(FIXTURES / "dispatch_good", strict=True)
    assert report.ok, format_human(report)


def test_rc201_real_registry_is_exhaustive():
    # Every @session_message class in the actual tree has a _receive arm.
    project = build_project([str(ROOT / "src")], excludes=DEFAULT_EXCLUDES)
    report = run(project, select=frozenset({"RC201"}))
    assert report.ok, format_human(report)


def test_rc202_heapq_containment():
    report = lint_paths(FIXTURES / "rc202_heapq.py")
    assert fired(report) == {"RC202"}


def test_rc203_socket_containment():
    report = lint_paths(FIXTURES / "rc203_socket.py")
    assert fired(report) == {"RC203"}


def test_rc202_rc203_allowed_in_owning_layers():
    report = lint_paths(FIXTURES / "contained", strict=True)
    assert report.ok, format_human(report)


def test_rc204_loop_internals():
    report = lint_paths(FIXTURES / "rc204_loop_internals.py")
    assert fired(report) == {"RC204"}
    assert count(report, "RC204") == 2  # ._heap access + advance_to() call


def test_rc205_unpruned_buffer():
    report = lint_paths(FIXTURES / "rc205")
    assert fired(report) == {"RC205"}
    # bad_buffer's log + acks fire; good_buffer's four prune shapes
    # (del slice, deque(maxlen=...), .pop(), reassignment) stay clean.
    assert count(report, "RC205") == 2
    assert all("LeakyReplica" in v.message for v in report.violations)


def test_rc205_only_applies_to_data_and_transport(tmp_path):
    # The same source outside repro/data//transport must not be flagged.
    source = (
        FIXTURES / "rc205" / "repro" / "data" / "bad_buffer.py"
    ).read_text()
    target = tmp_path / "coldpath.py"
    target.write_text(source, encoding="utf-8")
    report = lint_paths(target)
    assert report.ok, format_human(report)


def test_rc206_cross_shard_access():
    report = lint_paths(FIXTURES / "rc206")
    assert fired(report) == {"RC206"}
    # bad_cross.py: peer-loop call_at, peer-network send, attribute
    # assignment into a peer object, and a crash() through a collection.
    assert count(report, "RC206") == 4
    assert all(v.file.endswith("bad_cross.py") for v in report.violations)


def test_rc206_only_applies_to_parallel(tmp_path):
    # The same source outside repro/parallel/ must not be flagged.
    source = (
        FIXTURES / "rc206" / "repro" / "parallel" / "bad_cross.py"
    ).read_text()
    target = tmp_path / "orchestrator.py"
    target.write_text(source, encoding="utf-8")
    report = lint_paths(target)
    assert report.ok, format_human(report)


# ----------------------------------------------------------------------
# RC3xx — hot-path hygiene
# ----------------------------------------------------------------------
def test_rc301_rc302_hot_path():
    report = lint_paths(FIXTURES / "hotpath")
    assert fired(report) == {"RC301", "RC302"}
    assert count(report, "RC301") == 1  # BadPacket only; slots/Protocol ok
    assert count(report, "RC302") == 1
    [rc301] = [v for v in report.violations if v.rule == "RC301"]
    assert "BadPacket" in rc301.message


def test_rc301_rc302_only_apply_to_hot_modules(tmp_path):
    # Same source under a non-hot-path name must not be flagged.
    source = (FIXTURES / "hotpath" / "repro" / "core" / "token.py").read_text()
    target = tmp_path / "coldpath.py"
    target.write_text(source, encoding="utf-8")
    report = lint_paths(target)
    assert report.ok, format_human(report)


# ----------------------------------------------------------------------
# RC4xx — observability
# ----------------------------------------------------------------------
def test_rc401_eager_probe_formatting():
    report = lint_paths(FIXTURES / "rc401_eager_probe.py")
    assert fired(report) == {"RC401"}
    # f-string, %-format, .format() on probe.emit + f-string kwarg on a
    # *_bus receiver; raw-args emit and non-probe receivers stay clean.
    assert count(report, "RC401") == 4


def test_rc402_probe_event_outside_bus():
    report = lint_paths(FIXTURES / "rc402_probe_event.py")
    assert fired(report) == {"RC402"}
    assert count(report, "RC402") == 2  # hand-built ProbeEvent + at= kwarg


def test_rc402_allowed_inside_repro_obs():
    report = lint_paths(FIXTURES / "obs_allowed", strict=True)
    assert report.ok, format_human(report)


def test_rc403_impure_contract_rule():
    report = lint_paths(FIXTURES / "rc403_impure_rule.py")
    # The wall-clock reads also (correctly) trip RC101; RC403 adds the
    # rule-purity findings on top.
    assert fired(report) == {"RC101", "RC403"}
    # 2 wall-clock calls + global + attribute write + ambient .now read;
    # local/subscript mutation and the undecorated helper stay clean.
    assert count(report, "RC403") == 5


def test_rc403_pure_rule_is_clean_even_strict():
    report = lint_paths(FIXTURES / "rc403_pure_rule.py", strict=True)
    assert report.ok, format_human(report)


def test_rc403_builtin_monitor_rules_self_host():
    # The shipped paper-contract rules must satisfy their own purity bar.
    report = lint_paths(
        ROOT / "src" / "repro" / "obs" / "monitor.py",
        select=frozenset({"RC403"}),
    )
    assert report.ok, format_human(report)


# ----------------------------------------------------------------------
# pragma mechanics
# ----------------------------------------------------------------------
def test_pragma_same_line_suppression():
    report = lint_paths(FIXTURES / "pragma_ok.py", strict=True)
    assert report.ok, format_human(report)


def test_pragma_file_scope_suppression():
    report = lint_paths(FIXTURES / "pragma_file_scope.py", strict=True)
    assert report.ok, format_human(report)


def test_select_limits_rule_families():
    path = FIXTURES / "rc101_wall_clock.py"
    assert count(lint_paths(path, select=frozenset({"RC101"})), "RC101") == 3
    assert lint_paths(path, select=frozenset({"RC102"})).ok


def test_every_repo_pragma_is_load_bearing(tmp_path):
    """Deleting any suppression pragma in the real tree must make the
    suppressed rule fire again — the acceptance bar for pragma hygiene."""
    project = build_project(
        [str(ROOT / "src"), str(ROOT / "tests")], excludes=DEFAULT_EXCLUDES
    )
    checked = 0
    for ctx in project.files:
        for pragma in ctx.pragmas:
            lines = ctx.source.splitlines()
            idx = pragma.line - 1
            lines[idx] = re.sub(r"#\s*raincheck\s*:.*$", "", lines[idx])
            target = tmp_path / f"stripped_{checked}_{Path(ctx.path).name}"
            target.write_text("\n".join(lines) + "\n", encoding="utf-8")
            report = lint_paths(target)
            refired = set(pragma.rules) & fired(report)
            assert refired, (
                f"removing the pragma at {ctx.path}:{pragma.line} "
                f"({pragma.rules}) surfaced nothing — stale suppression?"
            )
            checked += 1
    assert checked >= 1  # the tree is expected to carry justified pragmas


# ----------------------------------------------------------------------
# output formats
# ----------------------------------------------------------------------
def test_json_output_is_stable_and_sorted():
    first = format_json(lint_paths(FIXTURES))
    second = format_json(lint_paths(FIXTURES))
    assert first == second  # byte-identical across runs
    payload = json.loads(first)
    assert payload["version"] == 1
    assert payload["files_checked"] >= 1
    keys = [
        (v["file"], v["line"], v["col"], v["rule"], v["message"])
        for v in payload["violations"]
    ]
    assert keys == sorted(keys)
    assert set(payload) == {"version", "files_checked", "violations"}
    for violation in payload["violations"]:
        assert set(violation) == {"file", "line", "col", "rule", "message"}


def test_human_output_renders_locations():
    report = lint_paths(FIXTURES / "rc202_heapq.py")
    text = format_human(report)
    assert re.search(r"rc202_heapq\.py:\d+:\d+: RC202 ", text)
    assert "violation(s)" in text


# ----------------------------------------------------------------------
# CLI (python -m repro lint)
# ----------------------------------------------------------------------
def test_cli_clean_exits_zero(capsys):
    assert main(["lint", str(FIXTURES / "clean.py")]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_violations_exit_one(capsys):
    assert main(["lint", str(FIXTURES / "rc101_wall_clock.py")]) == 1
    assert "RC101" in capsys.readouterr().out


def test_cli_json_mode(capsys):
    assert main(["lint", "--json", str(FIXTURES / "rc101_wall_clock.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [v["rule"] for v in payload["violations"]] == ["RC101"] * 3


def test_cli_unknown_select_exits_two(capsys):
    assert main(["lint", "--select", "RC999", str(FIXTURES / "clean.py")]) == 2
    assert "RC999" in capsys.readouterr().out


def test_cli_missing_path_exits_two(capsys):
    assert main(["lint", str(FIXTURES / "no_such_dir")]) == 2
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


# ----------------------------------------------------------------------
# self-hosting: the repo must pass its own linter in CI mode
# ----------------------------------------------------------------------
def test_self_host_repo_is_clean_under_strict():
    project = build_project(
        [str(ROOT / "src"), str(ROOT / "tests")], excludes=DEFAULT_EXCLUDES
    )
    report = run(project, strict=True)
    assert report.ok, format_human(report)
    assert report.files_checked > 100  # the whole tree, not a subset
