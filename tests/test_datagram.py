"""Unit tests for the unreliable unicast datagram service."""

import pytest

from repro.net.datagram import DatagramNetwork
from repro.net.eventloop import EventLoop
from repro.net.topology import Topology, build_switched_cluster


def make_net(loss=0.0, latency=1e-3, jitter=0.0, seed=0):
    loop = EventLoop(seed=seed)
    topo = Topology()
    build_switched_cluster(
        topo, ["A", "B"], segments=1, loss=loss, latency=latency, jitter=jitter
    )
    net = DatagramNetwork(loop, topo)
    return loop, topo, net


def test_basic_delivery():
    loop, topo, net = make_net()
    got = []
    net.bind("B@net0", lambda p: got.append(p))
    net.send("A@net0", "B@net0", "hello", 5)
    loop.run_until_idle()
    assert len(got) == 1
    assert got[0].payload == "hello"
    assert got[0].src == "A@net0"


def test_delivery_delayed_by_latency():
    loop, topo, net = make_net(latency=0.25)
    times = []
    net.bind("B@net0", lambda p: times.append(loop.now))
    net.send("A@net0", "B@net0", "x", 1)
    loop.run_until_idle()
    assert times == [pytest.approx(0.25)]


def test_loss_drops_packets():
    loop, topo, net = make_net(loss=1.0)
    got = []
    net.bind("B@net0", lambda p: got.append(p))
    net.send("A@net0", "B@net0", "x", 1)
    loop.run_until_idle()
    assert got == []
    assert net.packets_dropped == 1


def test_partial_loss_statistics():
    loop, topo, net = make_net(loss=0.5, seed=7)
    got = []
    net.bind("B@net0", lambda p: got.append(p))
    for _ in range(1000):
        net.send("A@net0", "B@net0", "x", 1)
    loop.run_until_idle()
    # Binomial(1000, 0.5): far outside [400, 600] would indicate a bug.
    assert 400 < len(got) < 600


def test_sender_charged_even_on_drop():
    loop, topo, net = make_net(loss=1.0)
    net.send("A@net0", "B@net0", "x", 42)
    assert net.stats.for_node("A").packets_sent == 1
    assert net.stats.for_node("A").bytes_sent == 42


def test_receiver_charged_only_on_delivery():
    loop, topo, net = make_net()
    net.bind("B@net0", lambda p: None)
    net.send("A@net0", "B@net0", "x", 42)
    loop.run_until_idle()
    assert net.stats.for_node("B").packets_received == 1
    assert net.stats.for_node("B").bytes_received == 42


def test_unbound_destination_drops():
    loop, topo, net = make_net()
    net.send("A@net0", "B@net0", "x", 1)
    loop.run_until_idle()
    assert net.packets_dropped == 1
    assert net.packets_delivered == 0


def test_crash_while_in_flight_drops():
    """A packet must not arrive at a node that died mid-flight."""
    loop, topo, net = make_net(latency=0.1)
    got = []
    net.bind("B@net0", lambda p: got.append(p))
    net.send("A@net0", "B@net0", "x", 1)
    topo.set_node_up("B", False)
    loop.run_until_idle()
    assert got == []


def test_negative_size_rejected():
    loop, topo, net = make_net()
    with pytest.raises(ValueError):
        net.send("A@net0", "B@net0", "x", -1)


def test_jitter_within_bounds():
    loop, topo, net = make_net(latency=0.1, jitter=0.05, seed=3)
    times = []
    net.bind("B@net0", lambda p: times.append(loop.now))
    base = 0.0
    for i in range(100):
        net.send("A@net0", "B@net0", "x", 1)
    loop.run_until_idle()
    assert all(0.1 <= t < 0.15 + 1e-9 for t in times)
    assert len(set(times)) > 1  # jitter actually varies


def test_trace_hook_sees_sends_and_drops():
    loop, topo, net = make_net(loss=1.0)
    traced = []
    net.trace = lambda pkt, ok: traced.append(ok)
    net.send("A@net0", "B@net0", "x", 1)
    assert traced == [False]


def test_determinism_same_seed_same_outcome():
    outcomes = []
    for _ in range(2):
        loop, topo, net = make_net(loss=0.3, jitter=0.01, seed=555)
        got = []
        net.bind("B@net0", lambda p: got.append(loop.now))
        for _ in range(50):
            net.send("A@net0", "B@net0", "x", 1)
        loop.run_until_idle()
        outcomes.append(tuple(got))
    assert outcomes[0] == outcomes[1]
