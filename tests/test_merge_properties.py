"""Property-based tests: k-way partitions with replicated state.

Randomized partition shapes over a 6-node cluster with a SharedDict on
every member: after split-brain operation (each side keeps writing) and a
heal, the whole cluster must converge to one membership and one identical
dictionary state — for *any* shape hypothesis draws.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.harness import RaincoreCluster
from repro.data import SharedDict

NODES = list("ABCDEF")


@st.composite
def partitions(draw):
    """A random split of NODES into 2–4 non-empty groups."""
    k = draw(st.integers(2, 4))
    assignment = [draw(st.integers(0, k - 1)) for _ in NODES]
    # Ensure no empty groups by pinning the first k nodes.
    for g in range(k):
        assignment[g] = g
    groups: list[list[str]] = [[] for _ in range(k)]
    for nid, g in zip(NODES, assignment):
        groups[g].append(nid)
    return groups


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(groups=partitions(), seed=st.integers(0, 2**16))
def test_any_partition_shape_merges_back(groups, seed):
    cluster = RaincoreCluster(NODES, seed=seed)
    cluster.start_all()
    cluster.faults.partition(*groups)
    cluster.run(3.0)
    # Every sub-group is independently functional.
    for group in groups:
        views = {tuple(sorted(cluster.node(n).members)) for n in group}
        assert views == {tuple(sorted(group))}, (groups, views)
    cluster.faults.heal_partition()
    assert cluster.run_until_converged(30.0, expected=set(NODES)), (
        groups,
        cluster.membership_views(),
    )


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    groups=partitions(),
    seed=st.integers(0, 2**16),
    writes=st.lists(st.integers(0, 5), min_size=1, max_size=6),
)
def test_replicated_state_reconciles_any_shape(groups, seed, writes):
    cluster = RaincoreCluster(NODES, seed=seed)
    dicts = {nid: SharedDict(cluster.node(nid)) for nid in NODES}
    cluster.start_all()
    cluster.faults.partition(*groups)
    cluster.run(3.0)
    for i, w in enumerate(writes):
        writer = NODES[w]
        dicts[writer].set(f"k{i}", writer)
    cluster.run(1.5)
    cluster.faults.heal_partition()
    assert cluster.run_until_converged(30.0, expected=set(NODES))
    cluster.run(2.5)
    snaps = [dicts[nid].snapshot() for nid in NODES]
    assert all(s == snaps[0] for s in snaps), (groups, snaps)
