"""Tests for the clustered stateful NAT (shared application state)."""

import pytest

from repro.apps.nat import NatTable
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


@pytest.fixture
def nat_cluster():
    c = make_cluster("ABCD")
    tables = {
        nid: NatTable(c.node(nid), port_range=(40000, 40099)) for nid in "ABCD"
    }
    c.start_all()
    return c, tables


def test_allocation_assigns_port(nat_cluster):
    c, tables = nat_cluster
    got = []
    tables["A"].allocate(1, "10.0.0.7:4312", on_mapped=got.append)
    c.run(1.0)
    assert got and got[0].public_port == 40000
    assert got[0].client == "10.0.0.7:4312"
    assert got[0].gateway == "A"


def test_replicas_agree_on_full_table(nat_cluster):
    c, tables = nat_cluster
    for i in range(12):
        tables["ABCD"[i % 4]].allocate(i, f"c{i}")
    c.run(2.0)
    snaps = [tables[nid].snapshot() for nid in "ABCD"]
    assert all(s == snaps[0] for s in snaps)
    assert len(snaps[0]) == 12


def test_concurrent_allocations_get_unique_ports(nat_cluster):
    """The headline guarantee: no two gateways ever hand out one port."""
    c, tables = nat_cluster
    for i in range(40):
        tables["ABCD"[i % 4]].allocate(i, f"c{i}")
    c.run(3.0)
    ports = list(tables["A"].snapshot().values())
    assert len(ports) == len(set(ports)) == 40


def test_release_and_fifo_reuse(nat_cluster):
    c, tables = nat_cluster
    tables["A"].allocate(1, "c1")
    tables["A"].allocate(2, "c2")
    c.run(1.0)
    port1 = tables["B"].translation(1).public_port
    tables["B"].release(1)
    c.run(1.0)
    for nid in "ABCD":
        assert tables[nid].translation(1) is None
    got = []
    tables["C"].allocate(3, "c3", on_mapped=got.append)
    c.run(1.0)
    assert got[0].public_port == port1  # freed port reused first


def test_pool_exhaustion_reports_none():
    c = make_cluster("AB")
    tables = {nid: NatTable(c.node(nid), port_range=(50000, 50002)) for nid in "AB"}
    c.start_all()
    results = []
    for i in range(5):
        tables["A"].allocate(i, f"c{i}", on_mapped=results.append)
    c.run(2.0)
    ok = [r for r in results if r is not None]
    failed = [r for r in results if r is None]
    assert len(ok) == 3 and len(failed) == 2
    assert tables["B"].failures == 2


def test_translation_survives_gateway_failure(nat_cluster):
    """Transparent fail-over: the adopted connection keeps its public port."""
    c, tables = nat_cluster
    tables["D"].allocate(7, "client-x")
    c.run(1.0)
    port = tables["A"].translation(7).public_port
    c.faults.crash_node("D")
    c.run_until_converged(3.0, expected={"A", "B", "C"})
    for nid in "ABC":
        mapping = tables[nid].translation(7)
        assert mapping is not None and mapping.public_port == port


def test_rejoined_gateway_resyncs_nothing_breaks(nat_cluster):
    """A rejoining gateway misses ops but never conflicts: it only ever
    allocates through the shared order, which survivors kept moving."""
    c, tables = nat_cluster
    c.faults.crash_node("B")
    c.run_until_converged(3.0, expected={"A", "C", "D"})
    for i in range(5):
        tables["A"].allocate(i, f"c{i}")
    c.run(1.0)
    c.faults.recover_node("B")
    c.run_until_converged(6.0, expected=set("ABCD"))
    got = []
    tables["B"].allocate(100, "late", on_mapped=got.append)
    c.run(2.0)
    # B resynced via the join-time snapshot, so its allocation is unique
    # against everything the survivors allocated while it was away...
    assert got[0] is not None
    b_port = got[0].public_port
    others = {p for f, p in tables["A"].snapshot().items() if f != 100}
    assert b_port not in others
    # ...and its whole replica agrees with the survivors'.
    assert tables["B"].snapshot() == tables["A"].snapshot()


def test_port_range_validated():
    c = make_cluster("AB")
    with pytest.raises(ValueError):
        NatTable(c.node("A"), port_range=(5, 4))


def test_duplicate_alloc_idempotent(nat_cluster):
    c, tables = nat_cluster
    got = []
    tables["A"].allocate(1, "c1", on_mapped=got.append)
    c.run(1.0)
    tables["A"].allocate(1, "c1", on_mapped=got.append)
    c.run(1.0)
    assert len(got) == 2
    assert got[0].public_port == got[1].public_port
    assert tables["C"].size() == 1
