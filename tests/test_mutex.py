"""Tests for token-based mutual exclusion (paper §2.7)."""

import pytest

from repro.core.states import NodeState
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


def test_critical_section_runs(abcd):
    ran = []
    abcd.node("B").run_exclusive(lambda: ran.append("cs"))
    abcd.run(1.0)
    assert ran == ["cs"]


def test_section_runs_while_eating(abcd):
    states = []
    node = abcd.node("C")
    node.run_exclusive(lambda: states.append(node.state))
    abcd.run(1.0)
    assert states == [NodeState.EATING]


def test_immediate_run_if_already_eating(abcd):
    # Drive until A holds the token, then schedule: must run synchronously.
    node = abcd.node("A")
    for _ in range(1000):
        abcd.run(0.001)
        if node.is_eating:
            break
    assert node.is_eating
    ran = []
    node.run_exclusive(lambda: ran.append(abcd.loop.now))
    assert ran == [abcd.loop.now]


def test_mutual_exclusion_across_nodes(abcd):
    """No two critical sections — on any nodes — overlap in time.

    Each section records (start, end) spanning a virtual-time interval of
    zero width, so we instead assert the stronger structural property: when
    a section runs, no other node is EATING.
    """
    violations = []

    def make_section(me):
        def section():
            others_eating = [
                n.node_id
                for n in abcd.live_nodes()
                if n.node_id != me and n.is_eating
            ]
            if others_eating:
                violations.append((me, others_eating))

        return section

    for nid in "ABCD":
        for _ in range(5):
            abcd.node(nid).run_exclusive(make_section(nid))
    abcd.run(2.0)
    assert violations == []
    assert all(abcd.node(n).mutex.sections_run == 5 for n in "ABCD")


def test_fifo_order_within_node(abcd):
    ran = []
    for i in range(5):
        abcd.node("D").run_exclusive(lambda i=i: ran.append(i))
    abcd.run(1.0)
    assert ran == [0, 1, 2, 3, 4]


def test_sections_scheduled_from_sections_run_same_visit(abcd):
    ran = []
    node = abcd.node("B")

    def outer():
        ran.append("outer")
        node.run_exclusive(lambda: ran.append("inner"))

    node.run_exclusive(outer)
    abcd.run(1.0)
    assert ran == ["outer", "inner"]


def test_fairness_every_node_gets_sections_run(abcd):
    """The rotating token gives every node its turn (paper §2.7)."""
    ran = {nid: 0 for nid in "ABCD"}

    def bump(nid):
        ran[nid] += 1

    for nid in "ABCD":
        abcd.node(nid).run_exclusive(lambda nid=nid: bump(nid))
    abcd.run(2.0)
    assert all(v == 1 for v in ran.values())


def test_lock_survives_holder_failure():
    """911 regeneration releases the master lock in bounded time: after the
    token holder dies, other nodes' sections still run."""
    c = make_cluster("ABCD")
    c.start_all()
    # Find current holder and crash it.
    holder = None
    for _ in range(2000):
        c.run(0.001)
        holders = c.token_holders()
        if holders:
            holder = holders[0]
            break
    assert holder is not None
    c.faults.crash_node(holder)
    ran = []
    survivors = [n for n in "ABCD" if n != holder]
    for nid in survivors:
        c.node(nid).run_exclusive(lambda nid=nid: ran.append(nid))
    c.run(5.0)
    assert sorted(ran) == sorted(survivors)


def test_pending_counter(abcd):
    node = abcd.node("A")
    if node.is_eating:
        abcd.run(abcd.config.hop_interval * 2)
    node.mutex._queue.append(lambda: None)
    assert node.mutex.pending() == 1
