"""Tests for the barrier and replicated-queue Data Service primitives."""

import pytest

from repro.data import DistributedBarrier, ReplicatedQueue
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


@pytest.fixture
def barrier_cluster():
    c = make_cluster("ABCD")
    barriers = {nid: DistributedBarrier(c.node(nid), "sync") for nid in "ABCD"}
    c.start_all()
    return c, barriers


@pytest.fixture
def queue_cluster():
    c = make_cluster("ABCD")
    queues = {nid: ReplicatedQueue(c.node(nid), "work") for nid in "ABCD"}
    c.start_all()
    return c, queues


# ----------------------------------------------------------------------
# barrier
# ----------------------------------------------------------------------
def test_barrier_completes_when_all_arrive(barrier_cluster):
    c, barriers = barrier_cluster
    released = []
    for nid in "ABCD":
        barriers[nid].wait(lambda nid=nid: released.append(nid))
    c.run(2.0)
    assert sorted(released) == list("ABCD")


def test_barrier_blocks_until_last_arrival(barrier_cluster):
    c, barriers = barrier_cluster
    released = []
    for nid in "ABC":  # D missing
        barriers[nid].wait(lambda nid=nid: released.append(nid))
    c.run(2.0)
    assert released == []
    barriers["D"].wait(lambda: released.append("D"))
    c.run(2.0)
    assert sorted(released) == list("ABCD")


def test_barrier_generations_are_independent(barrier_cluster):
    c, barriers = barrier_cluster
    done = []
    for g in range(3):
        for nid in "ABCD":
            barriers[nid].wait(lambda g=g, nid=nid: done.append((g, nid)))
    c.run(3.0)
    assert len(done) == 12
    for g in range(3):
        assert sorted(n for gg, n in done if gg == g) == list("ABCD")


def test_barrier_survives_participant_crash(barrier_cluster):
    """A member dying mid-generation must not wedge the others."""
    c, barriers = barrier_cluster
    released = []
    for nid in "ABC":
        barriers[nid].wait(lambda nid=nid: released.append(nid))
    c.run(1.0)
    # D never arrives and then dies; the purge shrinks the expected set.
    c.faults.crash_node("D")
    c.run(5.0)
    assert sorted(released) == list("ABC")


def test_barrier_expected_set_frozen_at_first_arrival(barrier_cluster):
    c, barriers = barrier_cluster
    barriers["A"].wait()
    c.run(1.0)
    expected, arrived = barriers["B"].generation_state(0)
    assert expected == set("ABCD")
    assert "A" in arrived


# ----------------------------------------------------------------------
# replicated queue
# ----------------------------------------------------------------------
def test_push_then_pop(queue_cluster):
    c, queues = queue_cluster
    got = []
    queues["A"].push("job-1")
    c.run(1.0)
    queues["C"].pop(got.append)
    c.run(1.0)
    assert got == ["job-1"]


def test_pop_waits_for_push(queue_cluster):
    c, queues = queue_cluster
    got = []
    queues["B"].pop(got.append)
    c.run(1.0)
    assert got == []
    queues["D"].push("late")
    c.run(1.0)
    assert got == ["late"]


def test_each_item_handed_to_exactly_one_popper(queue_cluster):
    c, queues = queue_cluster
    got = {nid: [] for nid in "ABCD"}
    for i in range(8):
        queues["ABCD"[i % 4]].push(f"item-{i}")
    for nid in "ABCD":
        for _ in range(2):
            queues[nid].pop(got[nid].append)
    c.run(3.0)
    all_got = [item for items in got.values() for item in items]
    assert sorted(all_got) == [f"item-{i}" for i in range(8)]
    assert len(set(all_got)) == 8  # nothing duplicated


def test_fifo_order(queue_cluster):
    c, queues = queue_cluster
    for i in range(5):
        queues["A"].push(i)
    c.run(1.0)
    got = []
    for _ in range(5):
        queues["B"].pop(got.append)
    c.run(2.0)
    assert got == [0, 1, 2, 3, 4]


def test_assignment_log_identical_across_replicas(queue_cluster):
    c, queues = queue_cluster
    for i in range(6):
        queues["ABCD"[i % 4]].push(i)
        queues["ABCD"[(i + 1) % 4]].pop(lambda item: None)
    c.run(3.0)
    logs = [queues[nid].assignments for nid in "ABCD"]
    assert all(log == logs[0] for log in logs)
    assert len(logs[0]) == 6


def test_dead_popper_purged(queue_cluster):
    c, queues = queue_cluster
    got = []
    queues["D"].pop(lambda item: None)  # D waits on an empty queue
    c.run(1.0)
    c.faults.crash_node("D")
    c.run(4.0)
    queues["A"].push("for-someone-alive")
    queues["B"].pop(got.append)
    c.run(2.0)
    assert got == ["for-someone-alive"]
    for nid in "ABC":
        assert queues[nid].waiting() == 0


def test_depth_and_waiting(queue_cluster):
    c, queues = queue_cluster
    queues["A"].push("x")
    queues["A"].push("y")
    c.run(1.0)
    assert queues["C"].depth() == 2
    queues["C"].pop(lambda item: None)
    c.run(1.0)
    assert queues["B"].depth() == 1
    assert queues["B"].waiting() == 0
