"""Pinned regressions — exact scenarios that once broke the protocol.

Each test freezes a falsifying example hypothesis discovered, so the fix
is guarded deterministically even if the property-test strategies drift.
"""

import pytest

from repro.cluster.harness import RaincoreCluster
from repro.data import SharedDict

pytestmark = pytest.mark.integration

NODES = list("ABCDEF")


def test_four_way_partition_mutual_joining_deadlock():
    """hypothesis @ seed=0, groups=[[A,E],[B,F],[C],[D]]: after heal the
    whole cluster froze with B/C/D in JOINING and A/E/F in HUNGRY forever —
    every 911 round was vetoed by one stale JOIN_PENDING replier and the
    node with the newest token copy never escalated out of JOINING.

    Fixed by JOIN_PENDING-as-abstention + JOINING→STARVING escalation
    (docs/PROTOCOL.md §4.2)."""
    cluster = RaincoreCluster(NODES, seed=0)
    cluster.start_all()
    cluster.faults.partition(["A", "E"], ["B", "F"], ["C"], ["D"])
    cluster.run(3.0)
    cluster.faults.heal_partition()
    assert cluster.run_until_converged(30.0, expected=set(NODES)), (
        cluster.membership_views()
    )


def test_singleton_partition_snapshot_skipped_regression():
    """hypothesis @ groups=[[A,C,D,E,F],[B]]: after the merge, B kept its
    split-brain write while everyone else reconciled — the coordinator's
    snapshot was wrongly deduped on a view id that collided across token
    lineages, leaving B unsynced.

    Fixed by removing view-id dedup from snapshot triggers (idempotent)."""
    cluster = RaincoreCluster(NODES, seed=0)
    dicts = {nid: SharedDict(cluster.node(nid)) for nid in NODES}
    cluster.start_all()
    cluster.faults.partition(["A", "C", "D", "E", "F"], ["B"])
    cluster.run(3.0)
    dicts["B"].set("k0", "B")
    cluster.run(1.5)
    cluster.faults.heal_partition()
    assert cluster.run_until_converged(30.0, expected=set(NODES))
    cluster.run(2.5)
    snaps = [dicts[nid].snapshot() for nid in NODES]
    assert all(s == snaps[0] for s in snaps), snaps


def test_false_alarm_branch_dies_silently():
    """Regression guard for the withdrawn TOKEN_REFUSED NACK design: a
    stale token branch created by total ack loss must die at the first
    node that saw the newer branch — NOT trigger ring repair at its sender
    (the NACK design resurrected branches and double-token time exploded
    under loss)."""
    from repro.transport.messages import AckFrame

    cluster = RaincoreCluster(["A", "B", "C"], seed=2521, loss=0.1796875)
    cluster.start_all()
    double_samples = 0
    for _ in range(500):
        cluster.run(0.001)
        if len(cluster.token_holders()) > 1:
            double_samples += 1
    # The falsifying run of the NACK design produced a sustained duplicate
    # here; silent drops keep the window at zero for this trace.
    assert double_samples == 0
    assert cluster.run_until_converged(10.0, expected={"A", "B", "C"})


def test_unsynced_coordinator_still_reconciles():
    """fuzz trial 80 (seed 58662): node B was partitioned away before its
    formation snapshot arrived, came back as the merged group's minimum-id
    member, and — being unsynced — could never publish the reconciliation
    snapshot: two members kept a split-brain write forever.

    Fixed by the anti-entropy rules in repro.data.replica (singleton
    self-sync, sync requests, minimum-id self-declaration)."""
    cluster = RaincoreCluster(NODES, seed=58662)
    dicts = {nid: SharedDict(cluster.node(nid)) for nid in NODES}
    cluster.start_all()
    cluster.faults.partition(["A", "F"], ["B"], ["C"], ["D", "E"])
    cluster.run(3.0)
    dicts["D"].set("k0", 80)
    cluster.run(1.0)
    cluster.faults.crash_node("A")
    cluster.run(1.0)
    cluster.faults.heal_partition()
    assert cluster.run_until_converged(40.0, expected=set("BCDEF"))
    cluster.run(4.0)
    live = list("BCDEF")
    assert all(dicts[n].synced for n in live)
    snaps = [dicts[n].snapshot() for n in live]
    assert all(s == snaps[0] for s in snaps), snaps
