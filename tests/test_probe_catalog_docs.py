"""Drift check: the probe catalogue table in docs/OBSERVABILITY.md must
match ``repro.obs.probe.PROBE_CATALOG`` exactly — every kind documented,
no stale rows, field names verbatim and in order.

The table is the human contract for probe consumers (dashboards, diff
tooling, external parsers); the dict is what ``emit`` enforces.  This test
fails whenever a probe kind is added, removed or re-fielded without the
documentation keeping up.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.obs.probe import PROBE_CATALOG

DOC = Path(__file__).resolve().parent.parent / "docs" / "OBSERVABILITY.md"

_ROW = re.compile(r"^\| `(?P<kind>[a-z_.]+)` \| (?P<fields>[^|]+) \|")


def documented_catalog():
    """Parse the markdown table into {kind: (field, ...)}."""
    catalog = {}
    in_section = False
    for line in DOC.read_text().splitlines():
        if line.startswith("## "):
            in_section = line == "## Probe catalogue"
            continue
        if not in_section:
            continue
        m = _ROW.match(line)
        if m is None:
            continue
        fields = m.group("fields").strip()
        catalog[m.group("kind")] = (
            () if fields == "—" else tuple(f.strip() for f in fields.split(","))
        )
    return catalog


def test_every_catalog_kind_is_documented():
    documented = documented_catalog()
    assert documented, "probe catalogue table not found in OBSERVABILITY.md"
    missing = sorted(set(PROBE_CATALOG) - set(documented))
    assert not missing, f"kinds missing from OBSERVABILITY.md table: {missing}"


def test_no_stale_documented_kinds():
    stale = sorted(set(documented_catalog()) - set(PROBE_CATALOG))
    assert not stale, f"OBSERVABILITY.md documents unknown kinds: {stale}"


def test_documented_fields_match_catalog_order():
    documented = documented_catalog()
    for kind, fields in sorted(PROBE_CATALOG.items()):
        assert documented.get(kind) == fields, (
            f"{kind}: doc says {documented.get(kind)}, "
            f"PROBE_CATALOG says {fields}"
        )
