"""Property-based tests for the hierarchical extension."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hierarchy import HierarchicalCluster


@st.composite
def group_shapes(draw):
    """1–4 groups of 1–4 machines each."""
    n_groups = draw(st.integers(1, 4))
    return [draw(st.integers(1, 4)) for _ in range(n_groups)]


def build(shape, seed):
    groups = []
    for gi, size in enumerate(shape):
        letter = chr(ord("a") + gi)
        groups.append([f"{letter}{i}" for i in range(size)])
    h = HierarchicalCluster(groups, seed=seed)
    h.start(budget=10.0 + 2 * sum(shape))
    return h


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(shape=group_shapes(), seed=st.integers(0, 2**16))
def test_any_shape_forms_two_planes(shape, seed):
    h = build(shape, seed)
    assert h.formed()
    leaders = h.current_leaders()
    assert len(leaders) == len(shape)
    assert set(h.top_view()) == {ldr + "^t" for ldr in leaders}


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    shape=group_shapes(),
    seed=st.integers(0, 2**16),
    senders=st.lists(st.integers(0, 100), min_size=1, max_size=6),
)
def test_global_multicast_total_order_any_shape(shape, seed, senders):
    h = build(shape, seed)
    machines = h.machine_ids
    for i, s in enumerate(senders):
        h.members[machines[s % len(machines)]].multicast_global(f"g{i}")
    h.run(6.0)
    logs = [tuple(h.global_log[nid]) for nid in machines]
    assert all(log == logs[0] for log in logs), logs
    assert len(logs[0]) == len(senders)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    shape=st.lists(st.integers(2, 3), min_size=2, max_size=3),
    seed=st.integers(0, 2**16),
    crash_group=st.integers(0, 2),
)
def test_leader_crash_recovers_any_shape(shape, seed, crash_group):
    h = build(shape, seed)
    groups = h.groups
    victim_group = groups[crash_group % len(groups)]
    victim = min(victim_group)  # the leader
    h.members[victim].multicast_global("pre-crash")
    h.run(3.0)
    h.crash_machine(victim)
    assert h.run_until_formed(20.0), (h.local_views(), h.top_view())
    # The new leader of the victim's group is the next-lowest member.
    survivors = sorted(set(victim_group) - {victim})
    assert survivors[0] in h.current_leaders()
    # Global multicast still reaches every live machine exactly once.
    origin = survivors[-1]
    h.members[origin].multicast_global("post-crash")
    h.run(5.0)
    for nid in h.live_machines():
        entries = [e for e in h.global_log[nid] if e[1] == "post-crash"]
        assert len(entries) == 1
