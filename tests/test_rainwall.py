"""Integration tests for the Rainwall application (paper §3.2)."""

import pytest

from repro.apps.rainwall import RainwallCluster, RainwallConfig
from repro.apps.firewall import Action, Rule
from repro.core.states import NodeState

pytestmark = [pytest.mark.integration, pytest.mark.slow]


def make_rainwall(n=2, seed=3, **cfg_overrides):
    cfg = RainwallConfig(**cfg_overrides)
    return RainwallCluster([f"g{i}" for i in range(n)], seed=seed, config=cfg)


def test_cluster_forms_and_carries_traffic():
    rw = make_rainwall(2, arrival_rate=100.0)
    rw.start()
    rw.run(4.0)
    assert rw.engine.stats.completed > 0
    assert rw.throughput_mbps(since=1.0) > 0


def test_throughput_saturates_at_cluster_capacity():
    rw = make_rainwall(2, arrival_rate=400.0)
    rw.start()
    rw.run(6.0)
    tp = rw.throughput_mbps(since=2.0)
    assert tp == pytest.approx(190.0, rel=0.05)


def test_scaling_is_near_linear():
    """The Fig. 3 headline: 2 nodes ≈ 2×, 4 nodes ≈ 4× of one node."""
    results = {}
    for n in (1, 2, 4):
        rw = make_rainwall(n, seed=42, arrival_rate=500.0)
        rw.start()
        rw.run(6.0)
        results[n] = rw.throughput_mbps(since=2.0)
    assert 1.8 <= results[2] / results[1] <= 2.05
    assert 3.4 <= results[4] / results[1] <= 4.1


def test_rainwall_cpu_below_one_percent():
    """Paper §4.2: "Throughout the test, Rainwall CPU usage is below 1%"."""
    rw = make_rainwall(4, arrival_rate=300.0)
    rw.start()
    duration = 6.0
    rw.run(duration)
    for node_id, pct in rw.rainwall_cpu_percent(duration).items():
        assert pct < 1.0, f"{node_id} spent {pct:.2f}% CPU on coordination"


def test_connections_balanced_across_gateways():
    rw = make_rainwall(2, arrival_rate=300.0)
    rw.start()
    rw.run(5.0)
    fwd = {nid: port.forwarded_bytes for nid, port in rw.engine.gateways.items()}
    total = sum(fwd.values())
    for nid, b in fwd.items():
        assert b / total == pytest.approx(0.5, abs=0.15)


def test_firewall_policy_enforced():
    rules = [Rule(Action.DENY, vip="10.1.0.2"), Rule(Action.ALLOW, dst_port=80)]
    rw = make_rainwall(2, arrival_rate=200.0, rules=rules)
    rw.start()
    rw.run(4.0)
    assert rw.engine.stats.denied > 0
    # Nothing routed for the denied VIP.
    for flow in rw.engine.flows.values():
        assert flow.vip != "10.1.0.2"


def test_unplugged_cable_shuts_gateway_down():
    rw = make_rainwall(2, arrival_rate=100.0)
    rw.start()
    rw.run(2.0)
    rw.unplug_gateway("g1")
    rw.run(3.0)
    node = rw.raincore.node("g1")
    assert node.state is NodeState.DOWN
    assert "external-nic" in node.shutdown_reason


def test_failover_under_two_seconds():
    """The paper's claim: "The fail-over time of Rainwall is under two
    seconds" — the client sees a hiccup, not a disconnect."""
    rw = make_rainwall(2, seed=11, arrival_rate=300.0)
    rw.start()
    rw.run(3.0)
    rw.unplug_gateway("g1")
    rw.run(6.0)
    # Every connection survived (completed or still progressing) ...
    assert rw.raincore.node("g0").members == ("g0",)
    # ... and no connection stalled longer than 2 seconds.
    stalls = [f.total_stall for f in rw.engine.flows.values()]
    assert max(stalls) < 2.0
    # Aggregate traffic continues at single-gateway capacity.
    assert rw.throughput_mbps(since=rw.loop.now - 2.0) == pytest.approx(
        95.0, rel=0.1
    )


def test_failover_gap_metric_bounded():
    rw = make_rainwall(2, seed=13, arrival_rate=300.0)
    rw.start()
    rw.run(3.0)
    rw.crash_gateway("g1")
    rw.run(6.0)
    assert rw.failover_gap() < 2.0


def test_recovered_gateway_rejoins_and_shares_load():
    rw = make_rainwall(2, seed=5, arrival_rate=300.0)
    rw.start()
    rw.run(2.0)
    rw.crash_gateway("g1")
    rw.run(3.0)
    rw.raincore.faults.recover_node("g1")
    rw.engine.set_gateway_up("g1", True)
    rw.run(5.0)
    assert set(rw.raincore.node("g0").members) == {"g0", "g1"}
    # g1 is forwarding again.
    before = rw.engine.gateways["g1"].forwarded_bytes
    rw.run(2.0)
    assert rw.engine.gateways["g1"].forwarded_bytes > before


def test_load_table_published_via_raincore():
    rw = make_rainwall(2, arrival_rate=100.0)
    rw.start()
    rw.run(2.0)
    leader = rw.shared["g0"]
    assert leader.get("load:g0") is not None
    assert leader.get("load:g1") is not None
