"""Tests for the benchmark channel adapters and the asyncio scheduler."""

import asyncio

from repro.baselines import RaincoreChannel
from repro.runtime import AsyncioScheduler
from tests.conftest import make_cluster


# ----------------------------------------------------------------------
# RaincoreChannel: the GroupChannel adapter used by the benchmarks
# ----------------------------------------------------------------------
def test_raincore_channel_multicast_and_deliver():
    cluster = make_cluster("ABC")
    cluster.start_all()
    channels = RaincoreChannel.cluster(cluster)
    got = {nid: [] for nid in "ABC"}
    for nid in "ABC":
        channels[nid].set_deliver(lambda o, p, nid=nid: got[nid].append((o, p)))
    channels["B"].multicast("via-channel", size=50)
    cluster.run(1.0)
    for nid in "ABC":
        assert got[nid] == [("B", "via-channel")]


def test_raincore_channel_idempotent_wrapping():
    cluster = make_cluster("AB")
    cluster.start_all()
    ch1 = RaincoreChannel(cluster.node("A"))
    ch2 = RaincoreChannel(cluster.node("A"))
    got = []
    ch2.set_deliver(lambda o, p: got.append(p))
    ch1.multicast("x")
    cluster.run(1.0)
    assert got == ["x"]


# ----------------------------------------------------------------------
# AsyncioScheduler
# ----------------------------------------------------------------------
def test_scheduler_call_later_and_cancel():
    async def scenario():
        sched = AsyncioScheduler(asyncio.get_event_loop(), seed=3)
        fired = []
        sched.call_later(0.01, fired.append, "a")
        handle = sched.call_later(0.01, fired.append, "b")
        handle.cancel()
        await asyncio.sleep(0.05)
        assert fired == ["a"]

    asyncio.run(scenario())


def test_scheduler_now_advances():
    async def scenario():
        sched = AsyncioScheduler(asyncio.get_event_loop())
        t0 = sched.now
        await asyncio.sleep(0.02)
        assert sched.now >= t0 + 0.015

    asyncio.run(scenario())


def test_scheduler_rng_seeded():
    async def scenario():
        a = AsyncioScheduler(asyncio.get_event_loop(), seed=9)
        b = AsyncioScheduler(asyncio.get_event_loop(), seed=9)
        assert [a.rng.random() for _ in range(3)] == [
            b.rng.random() for _ in range(3)
        ]

    asyncio.run(scenario())


def test_scheduler_call_at():
    async def scenario():
        sched = AsyncioScheduler(asyncio.get_event_loop())
        fired = []
        sched.call_at(sched.now + 0.01, fired.append, 1)
        await asyncio.sleep(0.05)
        assert fired == [1]

    asyncio.run(scenario())
