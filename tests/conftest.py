"""Shared fixtures for the Raincore reproduction test suite."""

from __future__ import annotations

import pytest

from repro.cluster.harness import RaincoreCluster
from repro.net.datagram import DatagramNetwork
from repro.net.eventloop import EventLoop
from repro.net.topology import Topology, build_switched_cluster


@pytest.fixture
def loop() -> EventLoop:
    return EventLoop(seed=42)


@pytest.fixture
def two_node_net(loop):
    """A two-node, single-segment network with its transports unstarted."""
    topo = Topology()
    addrs = build_switched_cluster(topo, ["A", "B"])
    net = DatagramNetwork(loop, topo)
    return loop, topo, net, addrs


def make_cluster(node_ids, **kwargs) -> RaincoreCluster:
    kwargs.setdefault("seed", 1234)
    return RaincoreCluster(list(node_ids), **kwargs)


@pytest.fixture
def abcd() -> RaincoreCluster:
    """A formed 4-node cluster — the paper's running example."""
    cluster = make_cluster("ABCD")
    cluster.start_all()
    return cluster
