"""Unit tests for ring-membership helper functions."""

import pytest

from repro.core.membership import (
    merge_rings,
    ring_predecessor,
    ring_successor,
    rotate_to,
)


def test_successor_and_predecessor():
    ring = ("A", "B", "C")
    assert ring_successor(ring, "A") == "B"
    assert ring_successor(ring, "C") == "A"
    assert ring_predecessor(ring, "A") == "C"
    assert ring_predecessor(ring, "B") == "A"


def test_singleton_ring():
    assert ring_successor(("A",), "A") == "A"
    assert ring_predecessor(("A",), "A") == "A"


def test_rotate_to():
    assert rotate_to(("A", "B", "C", "D"), "C") == ("C", "D", "A", "B")
    assert rotate_to(("A",), "A") == ("A",)


def test_rotate_to_unknown_raises():
    with pytest.raises(ValueError):
        rotate_to(("A", "B"), "Z")


def test_merge_rings_splices_after_joiner():
    # TBM ring: X-Y-J (J just added); J's own group: J-P-Q.
    merged = merge_rings(("X", "Y", "J"), "J", ("J", "P", "Q"))
    assert merged == ("X", "Y", "J", "P", "Q")


def test_merge_rings_preserves_other_cyclic_order():
    # J's own ring is P-Q-J; rotated from J it reads J-P-Q.
    merged = merge_rings(("X", "J", "Y"), "J", ("P", "Q", "J"))
    assert merged == ("X", "J", "P", "Q", "Y")


def test_merge_rings_skips_already_present():
    merged = merge_rings(("X", "J", "P"), "J", ("J", "P", "Q"))
    assert merged == ("X", "J", "Q", "P")


def test_merge_rings_requires_joiner_in_base():
    with pytest.raises(ValueError):
        merge_rings(("X", "Y"), "J", ("J",))


def test_merge_rings_no_duplicates():
    merged = merge_rings(("A", "B", "J"), "J", ("J", "C", "B"))
    assert sorted(merged) == ["A", "B", "C", "J"]
