"""Tests for the contract monitor (repro.obs.monitor).

The monitor watches the probe bus and holds a live run to the paper's
own numbers: token roundtrip rate vs L, GC wakeup budget, the 0.15 s
failure-detection bound, per-node bandwidth share, and ring liveness.
These tests pin the two directions that matter:

* **clean seeds stay silent** — healthy runs, including a crash +
  recover cycle the protocol is designed to absorb, fire zero alerts;
* **known-bad schedules fire the right rule** — moderate delay spikes
  collapse the token visit rate (token-rate), and an ack blackout
  stretches arm→verdict latency past the paper bound (fd-latency).

Alert streams are part of the replay contract: same seed, same alerts,
byte-for-byte.
"""

from __future__ import annotations

import pytest

from repro.chaos.engine import ChaosEngine
from repro.chaos.schedule import ChaosParams, FaultOp, Schedule
from repro.cluster.harness import RaincoreCluster
from repro.core.config import RaincoreConfig
from repro.obs.monitor import (
    Alert,
    ContractMonitor,
    RuleSpec,
    alert_from_record,
    paper_contract_rules,
    render_alerts,
)


def build(nodes=4, seed=11, segments=1, detection_bound=None):
    """Probed cluster + monitor running the paper rule set."""
    ids = [f"n{i:02d}" for i in range(nodes)]
    config = RaincoreConfig.tuned(ring_size=nodes)
    cluster = RaincoreCluster(ids, seed=seed, segments=segments, config=config)
    bus = cluster.enable_probes()
    rules = paper_contract_rules(
        config, nodes, segments=segments, detection_bound=detection_bound
    )
    monitor = ContractMonitor(bus, rules)
    cluster.start_all()
    monitor.start()
    return cluster, monitor


# ----------------------------------------------------------------------
# clean seeds fire nothing
# ----------------------------------------------------------------------
def test_clean_run_fires_zero_alerts():
    cluster, monitor = build()
    cluster.run(5.0)
    monitor.evaluate()
    assert monitor.alerts == [], render_alerts(monitor.alerts)
    line = monitor.status_line()
    assert "ok" in line and "ALERT" not in line
    assert line.startswith("t=")


def test_clean_crash_and_recover_fires_zero_alerts():
    # A crash the detector catches inside its bound, then a rejoin, is
    # the protocol working as designed — the monitor must not page.
    cluster, monitor = build(seed=7)
    cluster.run(2.0)
    cluster.faults.crash_node("n03")
    cluster.run(5.0)
    cluster.faults.recover_node("n03")
    cluster.run(5.0)
    monitor.evaluate()
    assert monitor.alerts == [], render_alerts(monitor.alerts)


# ----------------------------------------------------------------------
# known-bad schedules fire the right rule
# ----------------------------------------------------------------------
def test_delay_spikes_collapse_token_rate():
    # extra=0.035 slows the effective hop below the rate tolerance while
    # keeping ack RTTs inside the transport bound, so the ring limps
    # instead of partitioning — exactly the failure the rate rule owns.
    cluster, monitor = build(seed=11)
    cluster.run(2.0)
    cluster.faults.set_delay_spikes(1.0, 0.035)
    cluster.run(4.0)
    monitor.evaluate()
    rate_alerts = [a for a in monitor.alerts if a.rule == "token-rate"]
    assert rate_alerts, render_alerts(monitor.alerts)
    worst = rate_alerts[0]
    assert worst.severity == "critical"
    assert worst.value < worst.bound  # observed visits/s under the floor
    assert "ALERT" in monitor.status_line()


def test_ack_blackout_breaks_fd_latency_bound():
    # Dropping acks receiver->forwarder on one ring edge stretches the
    # arm->verdict latency past the paper's 0.15 s single-route bound.
    cluster, monitor = build(seed=11, segments=2, detection_bound=0.15)
    cluster.run(2.0)
    cluster.faults.ack_blackout("n00", "n01", 2.0)
    cluster.run(4.0)
    monitor.evaluate()
    fd_alerts = [a for a in monitor.alerts if a.rule == "fd-latency"]
    assert fd_alerts, render_alerts(monitor.alerts)
    assert fd_alerts[0].value > 0.15


def test_alert_stream_is_deterministic_across_same_seed_runs():
    def alerts_of_one_run():
        cluster, monitor = build(seed=11)
        cluster.run(2.0)
        cluster.faults.set_delay_spikes(1.0, 0.035)
        cluster.run(4.0)
        monitor.evaluate()
        return monitor.alert_records()

    first, second = alerts_of_one_run(), alerts_of_one_run()
    assert first and first == second


# ----------------------------------------------------------------------
# monitor mechanics
# ----------------------------------------------------------------------
def test_monitor_stop_detaches_from_bus():
    cluster, monitor = build()
    cluster.run(1.0)
    monitor.stop()
    ticks, buffered = monitor.ticks, len(monitor._events)
    cluster.run(1.0)
    assert monitor.ticks == ticks  # timer cancelled: no more passes
    assert len(monitor._events) == buffered  # unsubscribed: no intake


def test_rulespec_validation():
    with pytest.raises(ValueError, match="unknown contract rule"):
        RuleSpec(name="no-such-rule", summary="x", window=1.0)
    with pytest.raises(ValueError, match="window must be positive"):
        RuleSpec(name="token-rate", summary="x", window=0.0)
    with pytest.raises(ValueError, match="severity"):
        RuleSpec(name="token-rate", summary="x", window=1.0, severity="meh")
    with pytest.raises(ValueError, match="scope"):
        RuleSpec(name="token-rate", summary="x", window=1.0, scope="rack")


def test_paper_rules_derive_bounds_from_config():
    config = RaincoreConfig.tuned(ring_size=4)
    rules = {r.name: r for r in paper_contract_rules(config, 4)}
    assert set(rules) == {
        "token-rate",
        "wakeup-budget",
        "fd-latency",
        "bandwidth-share",
        "ring-liveness",
        "buffer-bound",
        "state-transitions",
    }
    assert rules["buffer-bound"].severity == "critical"
    # The fd bound is the transport's own derivation, not a constant.
    assert rules["fd-latency"].params["bound"] == pytest.approx(
        config.transport.failure_detection_bound(1)
    )
    assert rules["ring-liveness"].scope == "cluster"


def test_alert_record_roundtrip():
    alert = Alert(
        rule="token-rate",
        severity="critical",
        node="n01",
        at=3.25,
        since=2.75,
        value=6.0,
        bound=12.5,
        detail="observed 6.0/s < floor 12.5/s",
    )
    assert alert_from_record(alert.record()) == alert
    assert "token-rate" in render_alerts([alert.record()])
    assert render_alerts([]) == "no contract alerts"


# ----------------------------------------------------------------------
# chaos integration: alerts ride in bundles, stats stay pinned
# ----------------------------------------------------------------------
def test_chaos_run_carries_alerts_without_touching_stats():
    params = ChaosParams(nodes=4, seconds=6.0, seed=11, strict=True)
    schedule = Schedule(
        params=params,
        ops=[FaultOp(at=2.0, kind="spike", args=("net0", 1.0, 0.035))],
    )
    result = ChaosEngine(schedule).run()
    assert any(a["rule"] == "token-rate" for a in result.alerts)
    # Observational: alerts alone must not fail a run or leak into the
    # golden-pinned stats dict.
    assert "alerts" not in result.stats


def test_clean_chaos_run_has_empty_alerts():
    params = ChaosParams(nodes=4, seconds=4.0, seed=11, strict=True)
    result = ChaosEngine(Schedule(params=params, ops=[])).run()
    assert result.ok and result.alerts == []
