"""Unit tests for the cluster harness and fault injector themselves."""

import pytest

from repro.cluster.harness import RaincoreCluster
from repro.core.states import NodeState
from tests.conftest import make_cluster


def test_validation():
    with pytest.raises(ValueError):
        RaincoreCluster([])
    with pytest.raises(ValueError):
        RaincoreCluster(["A", "A"])


def test_indexing_and_accessors(abcd):
    assert abcd["A"].node is abcd.node("A")
    assert abcd["A"].listener is abcd.listener("A")
    assert abcd["A"].node_id == "A"
    assert len(abcd["A"].addresses) == 1


def test_live_nodes_tracks_crashes(abcd):
    assert {n.node_id for n in abcd.live_nodes()} == set("ABCD")
    abcd.faults.crash_node("B")
    assert {n.node_id for n in abcd.live_nodes()} == {"A", "C", "D"}


def test_converged_false_when_views_differ():
    c = make_cluster("AB")
    c.node("A").start_new_group()
    c.run(0.5)
    # B never started: expected={A,B} cannot be converged.
    assert not c.converged(expected={"A", "B"})
    assert c.converged(expected={"A"})


def test_converged_requires_live_nodes():
    c = make_cluster("AB")
    assert not c.converged()


def test_run_until_converged_times_out():
    c = make_cluster("AB")
    c.node("A").start_new_group()
    assert not c.run_until_converged(0.5, expected={"A", "B"})


def test_start_all_failure_raises():
    c = make_cluster("AB")
    c.topology.set_node_up("B", False)  # B can never join
    with pytest.raises(RuntimeError):
        c.start_all(form_time=1.0)


def test_membership_views_excludes_down(abcd):
    abcd.faults.crash_node("D")
    abcd.run(2.0)
    assert "D" not in abcd.membership_views()


def test_total_deliveries_counts(abcd):
    abcd.node("A").multicast("x")
    abcd.run(1.0)
    assert abcd.total_deliveries() == 4


def test_multi_segment_cluster_builds():
    c = make_cluster("AB", segments=3)
    assert len(c["A"].addresses) == 3
    c.start_all()
    assert c.converged()


# ----------------------------------------------------------------------
# fault injector specifics
# ----------------------------------------------------------------------
def test_unplug_and_replug(abcd):
    addr = abcd.faults.unplug_cable("B")
    assert not abcd.topology.nic_up(addr)
    abcd.faults.replug_cable(addr)
    assert abcd.topology.nic_up(addr)


def test_recover_node_with_explicit_contacts(abcd):
    abcd.faults.crash_node("B")
    abcd.run_until_converged(3.0, expected={"A", "C", "D"})
    abcd.faults.recover_node("B", contacts=["D"])
    assert abcd.run_until_converged(5.0, expected=set("ABCD"))


def test_recover_last_node_forms_new_group():
    c = make_cluster("AB")
    c.start_all()
    c.faults.crash_node("A")
    c.faults.crash_node("B")
    c.run(1.0)
    c.faults.recover_node("A")
    c.run(2.0)
    assert c.node("A").members == ("A",)
    assert c.node("A").state is not NodeState.DOWN


def test_lose_token_returns_false_when_in_flight(abcd):
    # Immediately after a forward the token is in flight: force that state
    # by hunting for a moment with no holder.
    found_false = False
    for _ in range(200):
        if not abcd.token_holders():
            found_false = abcd.faults.lose_token() is False
            break
        abcd.run(0.0005)
    assert found_false


def test_false_alarm_heals_automatically(abcd):
    abcd.faults.false_alarm("A", "D")
    abcd.run(8.0)
    assert abcd.run_until_converged(5.0, expected=set("ABCD"))
