"""Smoke tests: every shipped example must run to completion.

Examples are documentation that executes; this keeps them from rotting.
Marked slow (each spawns a fresh interpreter).
"""

import pathlib
import subprocess
import sys

import pytest

pytestmark = [pytest.mark.integration, pytest.mark.slow]

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_covered():
    """If an example is added, it must be in the run list below."""
    assert ALL_EXAMPLES == [
        "asyncio_udp_demo.py",
        "hierarchical_cluster.py",
        "lock_manager_demo.py",
        "multiprocess_demo.py",
        "nat_cluster.py",
        "quickstart.py",
        "rainwall_cluster.py",
        "split_brain_merge.py",
        "vip_failover.py",
    ]


@pytest.mark.parametrize("example", ALL_EXAMPLES)
def test_example_runs_clean(example):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{example} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{example} produced no output"
    assert "Traceback" not in result.stderr
