"""Tests for the replicated read/write lock manager."""

import pytest

from repro.data.rwlock import ReadWriteLockManager
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


@pytest.fixture
def rw_cluster():
    c = make_cluster("ABCD")
    locks = {nid: ReadWriteLockManager(c.node(nid)) for nid in "ABCD"}
    c.start_all()
    return c, locks


def test_multiple_concurrent_readers(rw_cluster):
    c, locks = rw_cluster
    granted = []
    for nid in "ABC":
        locks[nid].acquire_read("table", on_granted=lambda nid=nid: granted.append(nid))
    c.run(1.5)
    assert sorted(granted) == ["A", "B", "C"]
    assert sorted(locks["D"].readers("table")) == ["A", "B", "C"]


def test_writer_is_exclusive(rw_cluster):
    c, locks = rw_cluster
    granted = []
    locks["A"].acquire_write("table", on_granted=lambda: granted.append("A:w"))
    locks["B"].acquire_read("table", on_granted=lambda: granted.append("B:r"))
    c.run(1.5)
    assert granted == ["A:w"]
    assert locks["C"].writer("table") == "A"
    locks["A"].release("table", "w")
    c.run(1.5)
    assert granted == ["A:w", "B:r"]


def test_readers_block_writer_until_all_release(rw_cluster):
    c, locks = rw_cluster
    granted = []
    locks["A"].acquire_read("t")
    locks["B"].acquire_read("t")
    c.run(1.0)
    locks["C"].acquire_write("t", on_granted=lambda: granted.append("C:w"))
    c.run(1.0)
    assert granted == []
    locks["A"].release("t", "r")
    c.run(1.0)
    assert granted == []  # B still reads
    locks["B"].release("t", "r")
    c.run(1.0)
    assert granted == ["C:w"]


def test_writer_fairness_blocks_later_readers(rw_cluster):
    """A waiting writer must not be starved by a stream of readers."""
    c, locks = rw_cluster
    order = []
    locks["A"].acquire_read("t", on_granted=lambda: order.append("A:r"))
    c.run(1.0)
    locks["B"].acquire_write("t", on_granted=lambda: order.append("B:w"))
    c.run(0.5)
    locks["C"].acquire_read("t", on_granted=lambda: order.append("C:r"))
    c.run(1.0)
    # C's read waits behind B's write even though A's read is active.
    assert order == ["A:r"]
    locks["A"].release("t", "r")
    c.run(1.0)
    assert order == ["A:r", "B:w"]
    locks["B"].release("t", "w")
    c.run(1.0)
    assert order == ["A:r", "B:w", "C:r"]


def test_replicas_agree(rw_cluster):
    c, locks = rw_cluster
    locks["A"].acquire_read("t")
    locks["B"].acquire_write("t")
    locks["C"].acquire_read("t")
    c.run(1.5)
    for nid in "ABCD":
        assert locks[nid].readers("t") == locks["A"].readers("t")
        assert locks[nid].writer("t") == locks["A"].writer("t")
        assert locks[nid].waiting("t") == locks["A"].waiting("t")


def test_dead_writer_purged(rw_cluster):
    c, locks = rw_cluster
    granted = []
    locks["B"].acquire_write("t")
    c.run(1.0)
    locks["C"].acquire_read("t", on_granted=lambda: granted.append("C:r"))
    c.run(1.0)
    assert granted == []
    c.faults.crash_node("B")
    c.run(4.0)
    assert granted == ["C:r"]
    for nid in "ACD":
        assert locks[nid].writer("t") is None


def test_dead_reader_unblocks_writer(rw_cluster):
    c, locks = rw_cluster
    granted = []
    locks["D"].acquire_read("t")
    c.run(1.0)
    locks["A"].acquire_write("t", on_granted=lambda: granted.append("A:w"))
    c.run(1.0)
    assert granted == []
    c.faults.crash_node("D")
    c.run(4.0)
    assert granted == ["A:w"]


def test_same_node_read_and_write_are_distinct(rw_cluster):
    c, locks = rw_cluster
    locks["A"].acquire_read("t")
    locks["A"].acquire_write("t")  # queues behind its own read
    c.run(1.5)
    assert locks["B"].readers("t") == ["A"]
    assert locks["B"].writer("t") is None
    locks["A"].release("t", "r")
    c.run(1.0)
    assert locks["B"].writer("t") == "A"


def test_double_acquire_rejected(rw_cluster):
    c, locks = rw_cluster
    locks["A"].acquire_read("t")
    with pytest.raises(RuntimeError):
        locks["A"].acquire_read("t")
    with pytest.raises(RuntimeError):
        locks["A"].release("t", "w")


def test_withdraw_queued_write(rw_cluster):
    c, locks = rw_cluster
    granted = []
    locks["A"].acquire_read("t")
    c.run(1.0)
    locks["B"].acquire_write("t")
    locks["C"].acquire_read("t", on_granted=lambda: granted.append("C:r"))
    c.run(1.0)
    locks["B"].release("t", "w")  # withdraw while queued
    c.run(1.0)
    assert granted == ["C:r"]  # C no longer blocked behind B's write
