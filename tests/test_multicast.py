"""Tests for reliable atomic multicast with consistent ordering (paper §2.6).

Covers the three advertised properties: reliability (all live members get
each message), atomicity under failures, and agreed/safe consistent
ordering — plus the bookkeeping edge cases (batch limits, duplicates,
self-delivery, singleton groups).
"""

import pytest

from repro.core.token import Ordering
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


def wait_deliveries(cluster, min_per_node, budget=5.0):
    deadline = cluster.loop.now + budget
    while cluster.loop.now < deadline:
        cluster.run(0.05)
        if all(
            len(cn.listener.deliveries) >= min_per_node
            for cn in cluster.nodes.values()
            if cn.node.state.value != "down"
        ):
            return True
    return False


# ----------------------------------------------------------------------
# reliability
# ----------------------------------------------------------------------
def test_every_member_delivers(abcd):
    abcd.node("A").multicast("hello")
    assert wait_deliveries(abcd, 1)
    for nid in "ABCD":
        assert abcd.listener(nid).delivered_payloads == ["hello"]


def test_originator_also_delivers_to_itself(abcd):
    abcd.node("B").multicast("self-inclusive")
    assert wait_deliveries(abcd, 1)
    assert abcd.listener("B").delivered_payloads == ["self-inclusive"]


def test_many_messages_from_many_origins(abcd):
    sent = []
    for i in range(5):
        for nid in "ABCD":
            abcd.node(nid).multicast(f"{nid}-{i}")
            sent.append(f"{nid}-{i}")
    assert wait_deliveries(abcd, 20)
    for nid in "ABCD":
        assert sorted(abcd.listener(nid).delivered_payloads) == sorted(sent)


def test_no_duplicate_deliveries(abcd):
    for i in range(10):
        abcd.node("A").multicast(f"m{i}")
    wait_deliveries(abcd, 10)
    abcd.run(2.0)  # extra rounds must not re-deliver
    for nid in "ABCD":
        keys = abcd.listener(nid).delivery_keys
        assert len(keys) == len(set(keys)) == 10


def test_messages_retire_from_token(abcd):
    abcd.node("A").multicast("x")
    wait_deliveries(abcd, 1)
    abcd.run(1.0)
    # The token must not keep retired messages (unbounded growth otherwise).
    for node in abcd.live_nodes():
        copy = node.local_copy
        assert copy is not None and len(copy.messages) == 0


def test_per_origin_msg_numbers_increase(abcd):
    ids = [abcd.node("A").multicast(f"m{i}") for i in range(3)]
    assert [msg_no for _, msg_no in ids] == [1, 2, 3]


# ----------------------------------------------------------------------
# agreed ordering (paper: "no extra cost")
# ----------------------------------------------------------------------
def test_agreed_ordering_identical_at_all_nodes(abcd):
    for i in range(8):
        for nid in "ABCD":
            abcd.node(nid).multicast(f"{nid}{i}")
    assert wait_deliveries(abcd, 32)
    orders = list(abcd.all_delivery_orders().values())
    assert all(o == orders[0] for o in orders[1:])


def test_per_origin_fifo(abcd):
    for i in range(10):
        abcd.node("C").multicast(i)
    assert wait_deliveries(abcd, 10)
    for nid in "ABCD":
        from_c = [d.payload for d in abcd.listener(nid).deliveries if d.origin == "C"]
        assert from_c == list(range(10))


# ----------------------------------------------------------------------
# safe ordering (paper: "travels one more round")
# ----------------------------------------------------------------------
def test_safe_message_delivered_everywhere(abcd):
    abcd.node("A").multicast("safe", ordering=Ordering.SAFE)
    assert wait_deliveries(abcd, 1)
    for nid in "ABCD":
        assert abcd.listener(nid).delivered_payloads == ["safe"]
        assert abcd.listener(nid).deliveries[0].ordering is Ordering.SAFE


def test_safe_costs_about_one_extra_round(abcd):
    """Measure delivery spread: safe completes within ~2 ring rounds."""
    t0 = abcd.loop.now
    abcd.node("A").multicast("safe", ordering=Ordering.SAFE)
    wait_deliveries(abcd, 1)
    last = max(
        cn.listener.deliveries[0].at for cn in abcd.nodes.values()
    )
    rounds = (last - t0) / (4 * abcd.config.hop_interval)
    assert rounds < 3.5  # ~2 rounds plus scheduling slack


def test_safe_delivered_later_than_agreed(abcd):
    """An agreed message sent at the same time arrives strictly earlier at
    the farthest node."""
    abcd.node("A").multicast("agreed", ordering=Ordering.AGREED)
    abcd.node("A").multicast("safe", ordering=Ordering.SAFE)
    assert wait_deliveries(abcd, 2)
    for nid in "BCD":
        deliveries = {d.payload: d.at for d in abcd.listener(nid).deliveries}
        assert deliveries["agreed"] <= deliveries["safe"]


def test_mixed_safe_agreed_same_total_order(abcd):
    import itertools
    orderings = itertools.cycle([Ordering.AGREED, Ordering.SAFE])
    for i, nid in enumerate("ABCDABCD"):
        abcd.node(nid).multicast(f"{nid}{i}", ordering=next(orderings))
    assert wait_deliveries(abcd, 8)
    orders = list(abcd.all_delivery_orders().values())
    assert all(o == orders[0] for o in orders[1:])


def test_safe_singleton_group():
    c = make_cluster("A")
    c.start_all()
    c.node("A").multicast("solo-safe", ordering=Ordering.SAFE)
    c.run(1.0)
    assert c.listener("A").delivered_payloads == ["solo-safe"]


# ----------------------------------------------------------------------
# atomicity under failures (paper: all-or-nothing per surviving audience)
# ----------------------------------------------------------------------
def test_atomic_despite_mid_flight_crash():
    c = make_cluster("ABCD")
    c.start_all()
    c.node("A").multicast("atomic")
    # Crash B almost immediately: whatever happens, every *surviving*
    # member must deliver (the token retransmits around the failure).
    c.run(0.001)
    c.faults.crash_node("B")
    c.run(5.0)
    for nid in "ACD":
        assert c.listener(nid).delivered_payloads == ["atomic"]


def test_atomicity_sweep_over_crash_times():
    """Crash a member at many offsets; survivors always deliver exactly once."""
    for offset_ms in (0, 3, 7, 12, 18, 25, 33, 41):
        c = make_cluster("ABCD", seed=offset_ms)
        c.start_all()
        c.node("A").multicast("payload")
        c.run(offset_ms / 1000.0)
        c.faults.crash_node("C")
        c.run(5.0)
        for nid in "ABD":
            assert c.listener(nid).delivered_payloads == ["payload"], (
                f"offset {offset_ms}ms: node {nid} saw "
                f"{c.listener(nid).delivered_payloads}"
            )


def test_joiner_does_not_receive_pre_join_messages():
    """Audience is fixed at attach time: late joiners miss old messages."""
    c = make_cluster("ABC")
    first, *rest = "ABC"
    c.node(first).start_new_group()
    c.run_until_converged(2.0, expected={"A"})
    c.node("A").multicast("pre-join")
    c.run(1.0)
    c.node("B").start_joining(["A"])
    c.node("C").start_joining(["A"])
    assert c.run_until_converged(5.0, expected={"A", "B", "C"})
    c.node("A").multicast("post-join")
    c.run(2.0)
    assert c.listener("A").delivered_payloads == ["pre-join", "post-join"]
    assert c.listener("B").delivered_payloads == ["post-join"]
    assert c.listener("C").delivered_payloads == ["post-join"]


# ----------------------------------------------------------------------
# batching
# ----------------------------------------------------------------------
def test_batch_limit_bounds_token_growth():
    from repro.core.config import RaincoreConfig

    cfg = RaincoreConfig.tuned(ring_size=2, max_batch_per_visit=3)
    c = make_cluster("AB", config=cfg)
    c.start_all()
    for i in range(10):
        c.node("A").multicast(i)
    assert c.node("A").multicast_service.outbox_depth() == 10
    c.run(5.0)
    # All eventually delivered despite the per-visit cap.
    assert [d.payload for d in c.listener("B").deliveries] == list(range(10))


def test_payload_size_defaults():
    c = make_cluster("AB")
    c.start_all()
    svc = c.node("A").multicast_service
    svc.multicast(b"12345")          # sized payload -> len()
    svc.multicast(12345)             # unsized -> default
    assert svc._outbox[0].size == 5
    assert svc._outbox[1].size == 64
    with pytest.raises(ValueError):
        svc.multicast("x", size=-1)
