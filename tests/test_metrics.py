"""Unit tests for the experiment reporting helpers."""

import pytest

from repro.metrics import Table, fmt, ratio


def test_fmt_ints_with_separators():
    assert fmt(1234567) == "1,234,567"
    assert fmt(0) == "0"


def test_fmt_floats_precision():
    assert fmt(3.14159, 2) == "3.14"
    assert fmt(3.14159, 4) == "3.1416"


def test_fmt_scientific_for_extremes():
    assert "e" in fmt(1.5e9)
    assert "e" in fmt(0.0000015)
    assert fmt(0.0) == "0.00"


def test_fmt_none_and_strings():
    assert fmt(None) == "-"
    assert fmt("abc") == "abc"
    assert fmt(True) == "True"


def test_ratio():
    assert ratio(10, 4) == 2.5
    assert ratio(1, 0) is None


def test_table_row_arity_checked():
    t = Table("t", ["a", "b"])
    with pytest.raises(ValueError):
        t.add_row(1)


def test_table_render_contains_everything():
    t = Table("My Results", ["metric", "value"])
    t.add_row("speedup", 2.5)
    t.add_row("count", 1000)
    t.add_note("a caveat")
    out = t.render()
    assert "My Results" in out
    assert "speedup" in out and "2.50" in out
    assert "1,000" in out
    assert "note: a caveat" in out


def test_table_render_alignment():
    t = Table("t", ["col"])
    t.add_row("x")
    lines = t.render().splitlines()
    header_width = len(lines[2])
    assert all(len(line) <= max(header_width, len(lines[0])) + 2 for line in lines)


def test_table_markdown():
    t = Table("T", ["a", "b"])
    t.add_row(1, 2)
    t.add_note("n")
    md = t.to_markdown()
    assert "**T**" in md
    assert "| a | b |" in md
    assert "|---|---|" in md
    assert "| 1 | 2 |" in md
    assert "*n*" in md


def test_empty_table_renders():
    t = Table("empty", ["a"])
    assert "empty" in t.render()
