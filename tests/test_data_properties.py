"""Property-based tests for the Data Service replicated state machines.

The invariant behind all of them: because every replica applies the same
agreed-ordered operation stream, any deterministic state machine driven by
deliveries alone stays identical across replicas — under arbitrary op
schedules and even across membership churn (thanks to the ordered purge
pattern).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.harness import RaincoreCluster
from repro.data import DistributedLockManager, ReplicatedQueue, SharedDict

NODES = ["A", "B", "C", "D"]


def build_cluster(seed, service_factory):
    cluster = RaincoreCluster(NODES, seed=seed)
    services = {nid: service_factory(cluster.node(nid)) for nid in NODES}
    cluster.start_all()
    return cluster, services


dict_ops = st.lists(
    st.tuples(
        st.integers(0, 3),  # acting node
        st.sampled_from(["set", "del"]),
        st.sampled_from(["k1", "k2", "k3"]),
        st.integers(0, 100),
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=dict_ops, seed=st.integers(0, 2**16))
def test_shared_dict_replicas_always_converge(ops, seed):
    cluster, dicts = build_cluster(seed, SharedDict)
    for node_idx, kind, key, value in ops:
        nid = NODES[node_idx]
        if kind == "set":
            dicts[nid].set(key, value)
        else:
            dicts[nid].delete(key)
    cluster.run(3.0)
    snaps = [dicts[nid].snapshot() for nid in NODES]
    assert all(s == snaps[0] for s in snaps)
    versions = {dicts[nid].version for nid in NODES}
    assert len(versions) == 1


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=dict_ops,
    seed=st.integers(0, 2**16),
    crash_idx=st.integers(0, 3),
    crash_after=st.integers(0, 10),
)
def test_shared_dict_survivors_converge_despite_crash(ops, seed, crash_idx, crash_after):
    cluster, dicts = build_cluster(seed, SharedDict)
    victim = NODES[crash_idx]
    for i, (node_idx, kind, key, value) in enumerate(ops):
        if i == crash_after:
            cluster.faults.crash_node(victim)
        nid = NODES[node_idx]
        if nid == victim and i >= crash_after:
            continue
        if kind == "set":
            dicts[nid].set(key, value)
        else:
            dicts[nid].delete(key)
    cluster.run(6.0)
    survivors = [n for n in NODES if n != victim]
    snaps = [dicts[nid].snapshot() for nid in survivors]
    assert all(s == snaps[0] for s in snaps)


lock_schedules = st.lists(
    st.tuples(st.integers(0, 3), st.sampled_from(["acquire", "release"])),
    min_size=1,
    max_size=20,
)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(schedule=lock_schedules, seed=st.integers(0, 2**16))
def test_lock_tables_identical_and_owner_unique(schedule, seed):
    cluster, lms = build_cluster(seed, DistributedLockManager)
    holding: dict[str, bool] = {nid: False for nid in NODES}
    for node_idx, action in schedule:
        nid = NODES[node_idx]
        if action == "acquire" and not holding[nid]:
            lms[nid].acquire("L")
            holding[nid] = True
        elif action == "release" and holding[nid]:
            lms[nid].release("L")
            holding[nid] = False
        cluster.run(0.1)
    cluster.run(3.0)
    owners = {lms[nid].owner("L") for nid in NODES}
    assert len(owners) == 1  # all replicas agree (possibly None)
    owner = owners.pop()
    if owner is not None:
        # Exactly the nodes still logically holding can be the owner.
        assert holding[owner]


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    pushes=st.lists(st.integers(0, 3), min_size=1, max_size=10),
    pops=st.lists(st.integers(0, 3), min_size=1, max_size=10),
    seed=st.integers(0, 2**16),
)
def test_queue_items_never_lost_or_duplicated(pushes, pops, seed):
    cluster, queues = build_cluster(
        seed, lambda node: ReplicatedQueue(node, "q")
    )
    received: list[int] = []
    for i, node_idx in enumerate(pushes):
        queues[NODES[node_idx]].push(i)
    for node_idx in pops:
        queues[NODES[node_idx]].pop(received.append)
    cluster.run(4.0)
    handed = min(len(pushes), len(pops))
    logs = [queues[nid].assignments for nid in NODES]
    assert all(log == logs[0] for log in logs)
    assert len(logs[0]) == handed
    items = [item for _, item in logs[0]]
    # Exactly-once: no duplicates, nothing invented.
    assert len(items) == len(set(items))
    assert set(items) <= set(range(len(pushes)))
    # The queue is FIFO in the *agreed* (token) order, which need not match
    # wall-clock call order across nodes — but pushes from the same origin
    # attach in submission order, so per-origin FIFO must hold.
    for origin_idx in sorted(set(pushes)):
        origin = NODES[origin_idx]
        mine = [i for i, p in enumerate(pushes) if p == origin_idx]
        handed_mine = [item for item in items if item in mine]
        assert handed_mine == sorted(handed_mine)
    # Nothing leaked: handed + still-queued accounts for every push.
    assert handed + queues["A"].depth() == len(pushes)
