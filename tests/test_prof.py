"""Tests for repro.obs.prof: the non-deterministic wall-clock channel.

The profiler's contract has two halves:

* **Accounting is complete** — every dispatched callback is counted, the
  attribution table carries an explicit ``(scheduler)`` residual row, and
  the rows always sum to the measured run wall time.
* **Attachment is invisible** — the probe stream (and therefore every
  golden trace) is byte-identical with the profiler on or off, because
  the profiler never emits probes, never mutates protocol state, and
  never influences scheduling.
"""

from __future__ import annotations

import json

from repro.net.eventloop import EventLoop
from repro.obs import events_to_jsonl
from repro.obs.prof import Profiler, imbalance, render_epoch_stats


def drive_loop(profiler=None, n=50):
    loop = EventLoop(seed=1)
    if profiler is not None:
        profiler.attach(loop)
    hits = []
    for i in range(n):
        loop.call_later(i * 0.001, hits.append, i)
    loop.run_until_idle()
    return loop, hits


# ----------------------------------------------------------------------
# accounting completeness
# ----------------------------------------------------------------------
def test_every_dispatch_is_accounted():
    prof = Profiler()
    loop, hits = drive_loop(prof)
    assert len(hits) == 50
    assert prof.events == loop.events_processed == 50
    table = prof.table()
    # One row for the single callback, one residual row.
    assert table[-1]["name"] == "(scheduler)"
    assert sum(r["calls"] for r in table[:-1]) == 50


def test_table_rows_sum_to_run_wall():
    prof = Profiler()
    drive_loop(prof)
    assert prof.run_wall > 0.0
    total = sum(r["total_s"] for r in prof.table())
    # The residual row makes the sum exact (100% attribution by
    # construction — the >=95% requirement holds with zero slack).
    assert abs(total - prof.run_wall) < 1e-12
    assert 0.0 < prof.coverage() <= 1.0
    shares = sum(r["share"] for r in prof.table())
    assert abs(shares - 1.0) < 1e-9


def test_step_dispatch_is_accounted():
    prof = Profiler()
    loop = EventLoop(seed=1)
    prof.attach(loop)
    loop.call_later(0.0, lambda: None)
    assert loop.step() is True
    assert prof.events == 1
    assert prof.run_wall > 0.0


def test_heap_depth_tracking():
    prof = Profiler()
    drive_loop(prof, n=30)
    assert prof.heap_depth_max >= 1
    assert 0.0 < prof.heap_depth_mean <= prof.heap_depth_max


def test_detach_restores_unprofiled_loop():
    prof = Profiler()
    loop = EventLoop(seed=1)
    prof.attach(loop)
    prof.detach(loop)
    assert loop.profile is None
    loop.call_later(0.0, lambda: None)
    loop.run_until_idle()
    assert prof.events == 0


def test_method_callbacks_fold_into_one_row():
    class Thing:
        def __init__(self):
            self.calls = 0

        def cb(self):
            self.calls += 1

    prof = Profiler()
    loop = EventLoop(seed=1)
    prof.attach(loop)
    things = [Thing() for _ in range(4)]
    for i, thing in enumerate(things):
        loop.call_later(i * 0.001, thing.cb)
        loop.call_later(i * 0.001 + 0.0005, thing.cb)
    loop.run_until_idle()
    rows = [r for r in prof.table() if "Thing.cb" in r["name"]]
    # All bound methods share one function object: exactly one row.
    assert len(rows) == 1
    assert rows[0]["calls"] == 8


# ----------------------------------------------------------------------
# golden byte-identity: attaching the profiler moves no probe bytes
# ----------------------------------------------------------------------
def test_probe_stream_identical_with_profiler_attached():
    from repro.cluster.harness import RaincoreCluster

    prof = Profiler()
    recorded = []

    # The quickstart scenario, with the profiler attached before any
    # event is dispatched.
    ids = [chr(ord("A") + i) for i in range(4)]
    cluster = RaincoreCluster(ids, seed=2024)
    prof.attach(cluster.loop)
    bus = cluster.enable_probes()
    bus.subscribe(recorded.append)
    cluster.start_all()
    cluster.node(ids[0]).multicast(b"probe-me")
    cluster.run(1.0)
    victim = ids[-1]
    cluster.faults.crash_node(victim)
    cluster.run_until_converged(5.0, expected=set(ids) - {victim})
    cluster.faults.recover_node(victim)
    cluster.run_until_converged(8.0, expected=set(ids))

    # Reference: byte-for-byte the same protocol steps, no profiler.
    reference = []
    cluster2 = RaincoreCluster(ids, seed=2024)
    bus2 = cluster2.enable_probes()
    bus2.subscribe(reference.append)
    cluster2.start_all()
    cluster2.node(ids[0]).multicast(b"probe-me")
    cluster2.run(1.0)
    cluster2.faults.crash_node(victim)
    cluster2.run_until_converged(5.0, expected=set(ids) - {victim})
    cluster2.faults.recover_node(victim)
    cluster2.run_until_converged(8.0, expected=set(ids))

    assert prof.events > 0
    assert events_to_jsonl(recorded) == events_to_jsonl(reference)


def test_attach_bus_counts_probe_kinds():
    from repro.cluster.harness import RaincoreCluster

    cluster = RaincoreCluster(["A", "B", "C"], seed=3)
    prof = Profiler().attach(cluster.loop).attach_bus(cluster.enable_probes())
    cluster.start_all()
    cluster.run(0.5)
    assert prof.probe_counts
    assert sum(prof.probe_counts.values()) == cluster.probes.events_emitted


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
def test_trace_json_is_valid_chrome_trace():
    prof = Profiler(label="unit")
    drive_loop(prof, n=20)
    doc = json.loads(prof.trace_json(pid=3))
    assert doc["displayTimeUnit"] == "ms"
    assert doc["metadata"]["events"] == 20
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert meta[0]["args"]["name"] == "unit"
    assert len(spans) == 20
    for e in spans:
        assert e["pid"] == 3
        assert e["ts"] >= 0.0 and e["dur"] >= 0.0
        assert "sim_time" in e["args"]
    # Spans appear in dispatch order.
    assert [e["ts"] for e in spans] == sorted(e["ts"] for e in spans)


def test_timeline_limit_bounds_trace_not_accounting():
    prof = Profiler(timeline_limit=10)
    drive_loop(prof, n=40)
    assert prof.events == 40  # accounting stays exact
    spans = [e for e in prof.trace_events() if e["ph"] == "X"]
    assert len(spans) == 10
    assert prof.timeline_truncated is True
    assert prof.to_dict()["timeline_truncated"] is True


def test_timeline_zero_disables_retention():
    prof = Profiler(timeline_limit=0)
    drive_loop(prof, n=5)
    assert [e for e in prof.trace_events() if e["ph"] == "X"] == []
    assert prof.timeline_truncated is False


# ----------------------------------------------------------------------
# epoch statistics (parallel engine integration)
# ----------------------------------------------------------------------
def test_run_epoch_walls_recorded():
    prof = Profiler()
    loop = EventLoop(seed=1)
    prof.attach(loop)
    for i in range(10):
        loop.call_later(i * 0.01, lambda: None)
    loop.run_epoch(0.05)
    loop.run_epoch(0.2)
    assert len(prof.epoch_walls) == 2
    assert abs(sum(prof.epoch_walls) - prof.run_wall) < 1e-9


def test_serial_parallel_run_collects_profile():
    from repro.parallel import ParallelSimulator

    sim = ParallelSimulator("multi_ring", seed=7, params={"rings": 2, "ring_size": 3})
    result = sim.run(0.5, shards=1, mode="serial", profile=True)
    assert len(result.profiles) == 1
    profile = result.profiles[0]
    assert profile["label"] == "serial"
    assert profile["events"] > 0
    assert len(profile["epoch_walls_s"]) == result.epochs
    assert result.epoch_imbalance() == 1.0  # single worker is balanced


def test_imbalance_and_epoch_stats():
    assert imbalance([]) == 1.0
    profiles = [
        {"label": "shard-0", "epoch_walls_s": [0.3, 0.3], "events": 10, "coverage": 0.9},
        {"label": "shard-1", "epoch_walls_s": [0.1, 0.1], "events": 4, "coverage": 0.8},
    ]
    # busy: 0.6 and 0.2 -> mean 0.4 -> imbalance 1.5
    assert abs(imbalance(profiles) - 1.5) < 1e-12
    text = render_epoch_stats(profiles)
    assert "shard-0" in text and "imbalance" in text and "1.500" in text


def test_profile_off_is_default():
    loop = EventLoop(seed=1)
    assert loop.profile is None
    from repro.parallel import ParallelSimulator

    sim = ParallelSimulator("multi_ring", seed=7, params={"rings": 2, "ring_size": 3})
    result = sim.run(0.2, shards=1, mode="serial")
    assert result.profiles == []
    assert result.rollup is None
