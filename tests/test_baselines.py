"""Tests for the broadcast-based comparator protocols (paper §4.1)."""

import pytest

from repro.baselines import (
    BroadcastNode,
    SequencerNode,
    TwoPhaseNode,
    build_baseline_cluster,
)

pytestmark = pytest.mark.integration

ALL_PROTOCOLS = [BroadcastNode, SequencerNode, TwoPhaseNode]


def run_workload(node_cls, node_ids="ABCD", per_node=3, seed=1, **kw):
    cluster = build_baseline_cluster(node_cls, list(node_ids), seed=seed, **kw)
    delivered = {nid: [] for nid in node_ids}
    for nid in node_ids:
        cluster[nid].set_deliver(lambda o, p, nid=nid: delivered[nid].append((o, p)))
    for i in range(per_node):
        for nid in node_ids:
            cluster[nid].multicast(f"{nid}-{i}", size=100)
    cluster.run(3.0)
    return cluster, delivered


@pytest.mark.parametrize("node_cls", ALL_PROTOCOLS)
def test_all_messages_delivered_everywhere(node_cls):
    cluster, delivered = run_workload(node_cls)
    expected = {(nid, f"{nid}-{i}") for nid in "ABCD" for i in range(3)}
    for nid in "ABCD":
        assert set(delivered[nid]) == expected


@pytest.mark.parametrize("node_cls", ALL_PROTOCOLS)
def test_no_duplicates(node_cls):
    cluster, delivered = run_workload(node_cls)
    for msgs in delivered.values():
        assert len(msgs) == len(set(msgs))


@pytest.mark.parametrize("node_cls", [SequencerNode, TwoPhaseNode])
def test_ordering_protocols_agree_on_total_order(node_cls):
    cluster, delivered = run_workload(node_cls, per_node=5)
    orders = list(delivered.values())
    assert all(o == orders[0] for o in orders[1:])


def test_plain_broadcast_reliable_under_loss():
    cluster, delivered = run_workload(BroadcastNode, loss=0.3, seed=11)
    expected = {(nid, f"{nid}-{i}") for nid in "ABCD" for i in range(3)}
    for nid in "ABCD":
        assert set(delivered[nid]) == expected


def test_two_phase_total_order_under_loss():
    cluster, delivered = run_workload(TwoPhaseNode, loss=0.2, seed=13, per_node=4)
    orders = list(delivered.values())
    assert all(o == orders[0] for o in orders[1:])
    assert len(orders[0]) == 16


def test_sequencer_is_lowest_id():
    cluster = build_baseline_cluster(SequencerNode, ["C", "A", "B"])
    assert cluster["A"].is_sequencer
    assert not cluster["B"].is_sequencer


def test_member_list_must_include_self():
    with pytest.raises(ValueError):
        build_baseline_cluster(BroadcastNode, ["A"])["A"].__class__(
            "Z",
            build_baseline_cluster(BroadcastNode, ["A"]).loop,
            build_baseline_cluster(BroadcastNode, ["A"]).network,
            ["A"],
        )


# ----------------------------------------------------------------------
# the paper's overhead hierarchy (qualitative; exact sweeps live in
# benchmarks/bench_e1_task_switching.py)
# ----------------------------------------------------------------------
def protocol_task_switches(node_cls, per_node=5):
    cluster, _ = run_workload(node_cls, per_node=per_node, seed=7)
    return max(
        cluster.stats.for_node(nid).task_switches for nid in "ABCD"
    )


def test_two_phase_costs_more_than_broadcast():
    assert protocol_task_switches(TwoPhaseNode) > protocol_task_switches(
        BroadcastNode
    )


def test_broadcast_wakeups_scale_with_m_times_n():
    """Per node, plain broadcast wakes at least (N-1) * M times."""
    n, m = 4, 5
    cluster, _ = run_workload(BroadcastNode, per_node=m, seed=7)
    for nid in "ABCD":
        assert cluster.stats.for_node(nid).task_switches >= (n - 1) * m * 0.9


def test_packet_count_quadratic_in_n():
    """(N-1)^2 data packets per all-node multicast round (paper §4.1),
    doubled by acks."""
    for n_nodes in (3, 5):
        ids = [f"n{i}" for i in range(n_nodes)]
        cluster = build_baseline_cluster(BroadcastNode, ids, seed=3)
        for nid in ids:
            cluster[nid].multicast("x", size=100)
        cluster.run(2.0)
        data_packets = n_nodes * (n_nodes - 1)
        total = cluster.stats.total("packets_sent")
        # data + acks, within a small retransmission tolerance
        assert total >= 2 * data_packets
        assert total <= 2 * data_packets * 1.2
