"""Tests for the 911 token-recovery and join protocol (paper §2.3)."""

import pytest

from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


# ----------------------------------------------------------------------
# token loss and regeneration
# ----------------------------------------------------------------------
def lose_token(cluster):
    for _ in range(100):
        if cluster.faults.lose_token():
            return True
        cluster.run(0.001)
    return False


def test_token_regenerated_after_loss(abcd):
    assert lose_token(abcd)
    abcd.run(5.0)
    assert abcd.converged()
    regens = sum(abcd.node(n).recovery.regenerations for n in "ABCD")
    assert regens == 1


def test_exactly_one_node_wins_regeneration(abcd):
    assert lose_token(abcd)
    abcd.run(5.0)
    winners = [n for n in "ABCD" if abcd.node(n).recovery.regenerations > 0]
    assert len(winners) == 1
    denied = sum(abcd.node(n).recovery.rounds_denied for n in "ABCD")
    assert denied >= 1  # the losers were denied by seq comparison


def test_winner_has_latest_copy(abcd):
    abcd.run(0.5)
    assert lose_token(abcd)
    seqs = {n: abcd.node(n).local_copy_seq for n in "ABCD"}
    abcd.run(5.0)
    winners = [n for n in "ABCD" if abcd.node(n).recovery.regenerations > 0]
    assert winners and seqs[winners[0]] == max(seqs.values())


def test_recovery_time_bounded(abcd):
    """Everlasting token (paper §2.5): regeneration within hungry timeout
    plus one 911 round."""
    abcd.run(0.2)
    assert lose_token(abcd)
    t0 = abcd.loop.now
    deadline = (
        abcd.config.hungry_timeout
        + abcd.config.starving_backoff
        + 0.5
    )
    recovered_at = None
    while abcd.loop.now - t0 < deadline:
        abcd.run(0.01)
        if abcd.token_holders():
            recovered_at = abcd.loop.now
            break
    assert recovered_at is not None, "token never regenerated"
    assert recovered_at - t0 <= deadline


def test_repeated_token_loss(abcd):
    """The protocol survives several consecutive losses."""
    for _ in range(3):
        assert lose_token(abcd)
        abcd.run(5.0)
        assert abcd.converged()


def test_911_denied_when_token_alive():
    """A spurious STARVING episode (no real loss) must not regenerate: the
    holder or fresher copies deny it (paper: "If the TOKEN has not been
    lost, the 911 message will be denied").

    A HUNGRY timeout shorter than one ring traversal guarantees spurious
    911 rounds while the token is demonstrably alive.
    """
    from repro.core.config import RaincoreConfig

    cfg = RaincoreConfig.tuned(ring_size=8, hop_interval=0.02)
    # Starve after half a traversal: plenty of spurious rounds.
    cfg = RaincoreConfig.tuned(
        ring_size=8, hop_interval=0.02, hungry_timeout=0.06
    )
    c = make_cluster([f"n{i}" for i in range(8)], config=cfg)
    c.start_all()
    c.run(3.0)
    rounds = sum(c.node(f"n{i}").recovery.rounds_started for i in range(8))
    denied = sum(c.node(f"n{i}").recovery.rounds_denied for i in range(8))
    regens = sum(c.node(f"n{i}").recovery.regenerations for i in range(8))
    assert rounds > 0, "test setup failed to provoke spurious 911s"
    assert denied > 0
    assert regens == 0
    assert c.converged()


# ----------------------------------------------------------------------
# joining
# ----------------------------------------------------------------------
def test_join_via_any_member():
    c = make_cluster("ABC")
    c.node("A").start_new_group()
    c.run_until_converged(2.0, expected={"A"})
    c.node("B").start_joining(["A"])
    assert c.run_until_converged(3.0, expected={"A", "B"})
    # Join via the *other* member: paper says "any node in the group".
    c.node("C").start_joining(["B"])
    assert c.run_until_converged(3.0, expected={"A", "B", "C"})


def test_joiner_inserted_after_sponsor():
    c = make_cluster("ABC")
    c.node("A").start_new_group()
    c.run_until_converged(2.0, expected={"A"})
    c.node("B").start_joining(["A"])
    c.run_until_converged(3.0, expected={"A", "B"})
    c.node("C").start_joining(["A"])
    assert c.run_until_converged(3.0, expected={"A", "B", "C"})
    ring = c.node("A").members
    # C was queued at A and inserted right after A.
    assert ring.index("C") == (ring.index("A") + 1) % len(ring)


def test_join_retries_until_group_exists():
    c = make_cluster("AB")
    # B starts joining before A has even formed the group.
    c.node("B").start_joining(["A"])
    c.run(0.3)
    c.node("A").start_new_group()
    assert c.run_until_converged(6.0, expected={"A", "B"})


def test_concurrent_joins():
    c = make_cluster([f"n{i}" for i in range(6)])
    first = "n0"
    c.node(first).start_new_group()
    c.run_until_converged(2.0, expected={first})
    for nid in [f"n{i}" for i in range(1, 6)]:
        c.node(nid).start_joining([first])
    assert c.run_until_converged(8.0, expected={f"n{i}" for i in range(6)})


# ----------------------------------------------------------------------
# failure handling (paper §2.2 aggressive detection)
# ----------------------------------------------------------------------
def test_crash_detected_and_removed(abcd):
    abcd.faults.crash_node("C")
    assert abcd.run_until_converged(3.0, expected={"A", "B", "D"})


def test_crashed_node_rejoins(abcd):
    abcd.faults.crash_node("C")
    abcd.run_until_converged(3.0, expected={"A", "B", "D"})
    abcd.faults.recover_node("C")
    assert abcd.run_until_converged(5.0, expected=set("ABCD"))


def test_multiple_simultaneous_crashes(abcd):
    abcd.faults.crash_node("B")
    abcd.faults.crash_node("D")
    assert abcd.run_until_converged(5.0, expected={"A", "C"})


def test_all_but_one_crash(abcd):
    for nid in "BCD":
        abcd.faults.crash_node(nid)
    assert abcd.run_until_converged(5.0, expected={"A"})
    assert abcd.node("A").members == ("A",)


def test_crash_of_token_holder(abcd):
    holder = None
    for _ in range(2000):
        abcd.run(0.001)
        holders = abcd.token_holders()
        if holders:
            holder = holders[0]
            break
    assert holder
    abcd.faults.crash_node(holder)
    survivors = set("ABCD") - {holder}
    assert abcd.run_until_converged(5.0, expected=survivors)


# ----------------------------------------------------------------------
# false alarms and link failures (paper §2.3)
# ----------------------------------------------------------------------
def test_false_alarm_self_heals(abcd):
    abcd.faults.false_alarm("A", "B")
    abcd.run(6.0)
    assert abcd.run_until_converged(6.0, expected=set("ABCD"))


def test_link_failure_bypassed_in_ring(abcd):
    """The paper's ABCD -> ACD -> ACBD walk-through, asserted end to end."""
    assert abcd.node("A").members == ("A", "B", "C", "D")
    abcd.faults.cut_link("A", "B")
    abcd.run(6.0)
    assert abcd.run_until_converged(6.0, expected=set("ABCD"))
    ring = abcd.node("A").members
    n = len(ring)
    # The ring must not require the dead A->B hop.
    assert (ring.index("B") - ring.index("A")) % n != 1


def test_link_failure_both_nodes_stay(abcd):
    abcd.faults.cut_link("B", "C")
    abcd.run(6.0)
    assert abcd.run_until_converged(6.0, expected=set("ABCD"))


def test_redundant_links_mask_single_link_failure():
    """With two NICs per node a single segment's link cut is invisible."""
    c = make_cluster("ABCD", segments=2)
    c.start_all()
    c.topology.block_pair("A@net0", "B@net0")  # only segment 0 path cut
    before = {n: c.node(n).recovery.rounds_started for n in "ABCD"}
    c.run(3.0)
    assert c.converged()
    after = {n: c.node(n).recovery.rounds_started for n in "ABCD"}
    assert before == after  # nobody even starved
