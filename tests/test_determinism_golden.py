"""Golden-artifact determinism tests for the simulation substrate.

The repo's determinism rule — same seed, same run — is what makes chaos
traces replayable and failures shrinkable, so the hot-path optimizations
(copy-on-write tokens, cached routes, tuple-keyed timers, RNG fast paths)
must not move a single random draw or event.  These tests replay two
fixed-seed scenarios recorded *before* the overhaul and require the
results to match byte for byte:

* ``golden_packet_trace_seed11.json`` — every send attempt (time, route,
  payload type, size, fate) of a 6-node dual-segment cluster with loss,
  burst loss, duplication, delay spikes, and a crash/recovery.
* ``golden_chaos_seed7.json`` — the schedule hash and end-of-run facts of
  a seeded chaos engine run.

If an intentional model change invalidates them, regenerate with
``python tests/test_determinism_golden.py`` and justify the diff in the PR.
"""

from __future__ import annotations

import hashlib
import json
import os

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
PACKET_GOLDEN = os.path.join(DATA_DIR, "golden_packet_trace_seed11.json")
CHAOS_GOLDEN = os.path.join(DATA_DIR, "golden_chaos_seed7.json")


def record_packet_trace(seed=11, nodes=6, seconds=3.0):
    """The recorded scenario: every adversity knob on, plus churn."""
    from repro.cluster.harness import RaincoreCluster
    from repro.core.config import RaincoreConfig

    cluster = RaincoreCluster(
        [f"n{i}" for i in range(nodes)],
        seed=seed,
        segments=2,
        loss=0.02,
        config=RaincoreConfig.tuned(ring_size=nodes, hop_interval=0.005),
    )
    records = []

    def tap(packet, sent):
        records.append(
            [
                round(cluster.loop.now, 9),
                packet.src,
                packet.dst,
                type(packet.payload).__name__,
                packet.size,
                bool(sent),
            ]
        )

    cluster.network.trace = tap
    cluster.start_all()
    cluster.faults.set_duplication(0.05)
    cluster.faults.set_delay_spikes(0.03, 0.02)
    cluster.faults.set_burst_loss(0.02, 0.4)
    for i in range(30):
        cluster.node(f"n{i % nodes}").multicast(f"m{i}", size=150)
    cluster.faults.crash_node("n3")
    cluster.run(seconds)
    cluster.faults.recover_node("n3")
    cluster.run(seconds)
    return records


def run_chaos_facts():
    from repro.chaos import ChaosEngine, ChaosParams, Schedule

    params = ChaosParams(nodes=6, seconds=8.0, seed=7, segments=2, intensity=1.0)
    schedule = Schedule.generate(params)
    result = ChaosEngine(schedule).run()
    return {
        "schedule_sha256": hashlib.sha256(schedule.to_json().encode()).hexdigest(),
        "ok": result.ok,
        "failure": result.failure,
        "stats": result.stats,
    }


def test_packet_trace_replays_byte_identically():
    blob = json.dumps(record_packet_trace(), separators=(",", ":"))
    with open(PACKET_GOLDEN, encoding="utf-8") as fh:
        golden = fh.read()
    # Compare hashes first for a readable failure, then the full trace.
    assert (
        hashlib.sha256(blob.encode()).hexdigest()
        == hashlib.sha256(golden.encode()).hexdigest()
    ), "packet trace diverged from the pre-overhaul golden recording"
    assert blob == golden


def test_chaos_run_matches_golden_facts():
    with open(CHAOS_GOLDEN, encoding="utf-8") as fh:
        golden = json.load(fh)
    assert run_chaos_facts() == golden


def test_packet_trace_is_self_deterministic():
    """Two in-process runs must agree even without the golden file."""
    a = record_packet_trace(seconds=1.0)
    b = record_packet_trace(seconds=1.0)
    assert a == b


if __name__ == "__main__":  # pragma: no cover - regeneration helper
    with open(PACKET_GOLDEN, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(record_packet_trace(), separators=(",", ":")))
    with open(CHAOS_GOLDEN, "w", encoding="utf-8") as fh:
        json.dump(run_chaos_facts(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"regenerated {PACKET_GOLDEN} and {CHAOS_GOLDEN}")
