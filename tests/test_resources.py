"""Tests for critical-resource monitoring (paper §2.4, §3.2)."""

import pytest

from repro.core.resources import CriticalResource
from repro.core.states import NodeState
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


def test_healthy_resource_keeps_node_up(abcd):
    abcd.node("A").monitor.add(
        CriticalResource("always-ok", lambda: True, poll_interval=0.05)
    )
    abcd.run(2.0)
    assert abcd.node("A").state is not NodeState.DOWN


def test_failed_resource_shuts_node_down(abcd):
    healthy = {"value": True}
    abcd.node("B").monitor.add(
        CriticalResource("uplink", lambda: healthy["value"], poll_interval=0.05)
    )
    abcd.run(0.5)
    healthy["value"] = False
    abcd.run(1.0)
    assert abcd.node("B").state is NodeState.DOWN
    assert "uplink" in abcd.node("B").shutdown_reason
    assert abcd.listener("B").shutdowns


def test_group_reforms_after_resource_shutdown(abcd):
    abcd.node("B").monitor.add(
        CriticalResource("dead", lambda: False, poll_interval=0.05)
    )
    assert abcd.run_until_converged(5.0, expected={"A", "C", "D"})


def test_required_consecutive_failures():
    c = make_cluster("AB")
    c.start_all()
    flaky = {"n": 0}

    def check():
        flaky["n"] += 1
        return flaky["n"] % 2 == 0  # alternates fail/ok: never 3 in a row

    c.node("A").monitor.add(
        CriticalResource("flaky", check, poll_interval=0.05, required=3)
    )
    c.run(3.0)
    assert c.node("A").state is not NodeState.DOWN


def test_sustained_failure_crosses_threshold():
    c = make_cluster("AB")
    c.start_all()
    c.node("A").monitor.add(
        CriticalResource("gone", lambda: False, poll_interval=0.05, required=3)
    )
    c.run(1.0)
    assert c.node("A").state is NodeState.DOWN


def test_split_brain_prevention_via_common_resource(abcd):
    """Paper §2.4: a common critical resource (e.g. the Internet uplink)
    lets only one sub-group survive a partition."""
    reachable = {"A": True, "B": True, "C": True, "D": True}
    for nid in "ABCD":
        abcd.node(nid).monitor.add(
            CriticalResource(
                "uplink", lambda nid=nid: reachable[nid], poll_interval=0.05
            )
        )
    abcd.faults.partition(["A", "B"], ["C", "D"])
    # The C/D side loses the common resource.
    reachable["C"] = reachable["D"] = False
    abcd.run(3.0)
    assert abcd.node("C").state is NodeState.DOWN
    assert abcd.node("D").state is NodeState.DOWN
    views = abcd.membership_views()
    assert set(views) == {"A", "B"}
    assert set(views["A"]) == {"A", "B"}


def test_resource_management_api(abcd):
    mon = abcd.node("A").monitor
    mon.add(CriticalResource("r1", lambda: True))
    assert "r1" in mon.resources()
    with pytest.raises(ValueError):
        mon.add(CriticalResource("r1", lambda: True))
    mon.remove("r1")
    assert "r1" not in mon.resources()


def test_resource_validation():
    with pytest.raises(ValueError):
        CriticalResource("x", lambda: True, poll_interval=0)
    with pytest.raises(ValueError):
        CriticalResource("x", lambda: True, required=0)
