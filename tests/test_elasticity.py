"""Tests for growing a running cluster (harness elasticity)."""

import pytest

from repro.data import SharedDict
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


def test_add_node_joins_running_cluster():
    c = make_cluster("AB")
    c.start_all()
    c.add_node("C")
    assert c.run_until_converged(6.0, expected={"A", "B", "C"})
    assert "C" in c.nodes and c.node("C").is_member


def test_grow_from_two_to_five():
    c = make_cluster("AB")
    c.start_all()
    for nid in ("C", "D", "E"):
        c.add_node(nid)
        assert c.run_until_converged(8.0), f"stuck adding {nid}"
    assert set(c.node("A").members) == set("ABCDE")


def test_added_node_participates_fully():
    c = make_cluster("AB")
    c.start_all()
    c.add_node("C")
    c.run_until_converged(6.0, expected={"A", "B", "C"})
    c.node("C").multicast("from the newcomer")
    c.run(1.0)
    for nid in "ABC":
        assert "from the newcomer" in [
            d.payload for d in c.listener(nid).deliveries
        ]


def test_added_node_gets_state_transfer():
    c = make_cluster("AB")
    dicts = {nid: SharedDict(c.node(nid)) for nid in "AB"}
    c.start_all()
    dicts["A"].set("pre-growth", 1)
    c.run(1.0)
    cn = c.add_node("C", start=False)
    dicts["C"] = SharedDict(cn.node)  # attach the replica before joining
    cn.node.start_joining(["A"])
    c.run_until_converged(6.0, expected={"A", "B", "C"})
    c.run(1.5)
    assert dicts["C"].synced
    assert dicts["C"].get("pre-growth") == 1


def test_added_node_eligible_for_merge():
    c = make_cluster("AB")
    c.start_all()
    c.add_node("C")
    c.run_until_converged(6.0, expected={"A", "B", "C"})
    c.faults.partition(["A", "B"], ["C"])
    c.run(3.0)
    assert c.node("C").members == ("C",)
    c.faults.heal_partition()
    # The newcomer was added to everyone's Eligible Membership, so the
    # discovery/merge machinery pulls it back in.
    assert c.run_until_converged(10.0, expected={"A", "B", "C"})


def test_duplicate_add_rejected():
    c = make_cluster("AB")
    c.start_all()
    with pytest.raises(ValueError):
        c.add_node("A")


def test_add_node_multi_segment():
    c = make_cluster("AB", segments=2)
    c.start_all()
    cn = c.add_node("C")
    assert len(cn.addresses) == 2
    assert c.run_until_converged(6.0, expected={"A", "B", "C"})
