"""Tests for split-brain discovery and group merge (paper §2.4)."""

import pytest

from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


def split_views(cluster, groups):
    """All groups independently functional with their own memberships."""
    views = cluster.membership_views()
    return all(
        all(set(views.get(m, ())) == set(g) for m in g) for g in groups
    )


# ----------------------------------------------------------------------
# split-brain operation
# ----------------------------------------------------------------------
def test_partition_forms_independent_subgroups(abcd):
    abcd.faults.partition(["A", "B"], ["C", "D"])
    abcd.run(4.0)
    assert split_views(abcd, [["A", "B"], ["C", "D"]])


def test_subgroups_have_distinct_group_ids(abcd):
    abcd.faults.partition(["A", "B"], ["C", "D"])
    abcd.run(4.0)
    assert abcd.node("A").group_id == "A"
    assert abcd.node("C").group_id == "C"


def test_both_subgroups_multicast_independently(abcd):
    abcd.faults.partition(["A", "B"], ["C", "D"])
    abcd.run(4.0)
    abcd.node("A").multicast("left")
    abcd.node("C").multicast("right")
    abcd.run(2.0)
    assert "left" in abcd.listener("B").delivered_payloads
    assert "left" not in abcd.listener("C").delivered_payloads
    assert "right" in abcd.listener("D").delivered_payloads
    assert "right" not in abcd.listener("A").delivered_payloads


# ----------------------------------------------------------------------
# discovery
# ----------------------------------------------------------------------
def test_beacons_flow_between_subgroups(abcd):
    abcd.faults.partition(["A", "B"], ["C", "D"])
    abcd.run(4.0)
    abcd.faults.heal_partition()
    abcd.run(2 * abcd.config.bodyodor_interval + 0.5)
    beacons = sum(abcd.node(n).merge.beacons_sent for n in "ABCD")
    assert beacons > 0


def test_no_beacons_when_group_complete(abcd):
    abcd.run(3 * abcd.config.bodyodor_interval)
    assert all(abcd.node(n).merge.beacons_sent == 0 for n in "ABCD")


def test_beacons_only_to_eligible():
    c = make_cluster("ABCD")
    c.start_all()
    # Restrict eligibility: C and D are not eligible anywhere.
    for nid in "ABCD":
        c.node(nid).set_eligible({"A", "B"})
    c.faults.partition(["A", "B"], ["C", "D"])
    c.run(4.0)
    c.faults.heal_partition()
    c.run(5.0)
    # A/B's group never merges with ineligible C/D.
    assert set(c.node("A").members) == {"A", "B"}
    assert set(c.node("C").members) == {"C", "D"}


# ----------------------------------------------------------------------
# merge
# ----------------------------------------------------------------------
def test_two_way_merge(abcd):
    abcd.faults.partition(["A", "B"], ["C", "D"])
    abcd.run(4.0)
    abcd.faults.heal_partition()
    assert abcd.run_until_converged(10.0, expected=set("ABCD"))


def test_merge_direction_lower_gid_joins_higher(abcd):
    """The group containing the lower group id is absorbed by the higher:
    the C/D group initiates (C's gid > A's gid means A-side sends beacons
    that C treats as joins)."""
    abcd.faults.partition(["A", "B"], ["C", "D"])
    abcd.run(4.0)
    abcd.faults.heal_partition()
    abcd.run_until_converged(10.0, expected=set("ABCD"))
    initiations = {n: abcd.node(n).merge.merges_initiated for n in "ABCD"}
    completions = {n: abcd.node(n).merge.merges_completed for n in "ABCD"}
    # Initiator must be in the higher-gid group (C or D).
    assert initiations["C"] + initiations["D"] >= 1
    assert initiations["A"] + initiations["B"] == 0
    # The completing (TBM-holding) node is in the lower-gid group.
    assert completions["A"] + completions["B"] >= 1


def test_three_way_merge():
    c = make_cluster("ABCDEF", seed=21)
    c.start_all()
    c.faults.partition(["A", "B"], ["C", "D"], ["E", "F"])
    c.run(4.0)
    assert split_views(c, [["A", "B"], ["C", "D"], ["E", "F"]])
    c.faults.heal_partition()
    assert c.run_until_converged(20.0, expected=set("ABCDEF"))


def test_singleton_partitions_merge():
    c = make_cluster("ABC", seed=4)
    c.start_all()
    c.faults.partition(["A"], ["B"], ["C"])
    c.run(4.0)
    views = c.membership_views()
    assert all(views[n] == (n,) for n in "ABC")
    c.faults.heal_partition()
    assert c.run_until_converged(20.0, expected=set("ABC"))


def test_uneven_partition_merge(abcd):
    abcd.faults.partition(["A", "B", "C"], ["D"])
    abcd.run(4.0)
    abcd.faults.heal_partition()
    assert abcd.run_until_converged(10.0, expected=set("ABCD"))


def test_multicast_resumes_after_merge(abcd):
    abcd.faults.partition(["A", "B"], ["C", "D"])
    abcd.run(4.0)
    abcd.faults.heal_partition()
    abcd.run_until_converged(10.0, expected=set("ABCD"))
    abcd.node("D").multicast("post-merge")
    abcd.run(2.0)
    for nid in "ABCD":
        assert "post-merge" in abcd.listener(nid).delivered_payloads


def test_merge_preserves_in_flight_subgroup_messages(abcd):
    """Messages attached in a sub-group still reach that sub-group's
    members even when the merge happens immediately after sending."""
    abcd.faults.partition(["A", "B"], ["C", "D"])
    abcd.run(4.0)
    abcd.node("C").multicast("cd-internal")
    abcd.faults.heal_partition()
    abcd.run_until_converged(10.0, expected=set("ABCD"))
    abcd.run(1.0)
    assert "cd-internal" in abcd.listener("C").delivered_payloads
    assert "cd-internal" in abcd.listener("D").delivered_payloads


def test_repeated_split_and_merge(abcd):
    for i in range(3):
        abcd.faults.partition(["A", "B"], ["C", "D"])
        abcd.run(3.0)
        abcd.faults.heal_partition()
        assert abcd.run_until_converged(12.0, expected=set("ABCD")), f"cycle {i}"


def test_merged_ring_has_no_duplicates(abcd):
    abcd.faults.partition(["A", "C"], ["B", "D"])
    abcd.run(4.0)
    abcd.faults.heal_partition()
    abcd.run_until_converged(10.0, expected=set("ABCD"))
    for n in "ABCD":
        ring = abcd.node(n).members
        assert len(ring) == len(set(ring)) == 4
