"""The hardest failure mode: a duplicate token born from ack loss.

When every ack of a *successfully delivered* token forward is lost, the
sender's transport reports failure-on-delivery even though the receiver
took the token.  The sender then repairs the ring and re-accepts its local
copy — two token branches exist transiently.  The session layer's
strictly-greater sequence guard makes the branches collide at the first
node that has seen the newer one, where the stale branch dies; the
wrongly-removed node rejoins via 911 (a failure-detector false alarm,
paper §2.3).

These tests manufacture the scenario deterministically with the datagram
layer's selective filter and verify the healing end to end.
"""

import pytest

from repro.transport.messages import AckFrame
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


def ack_blackout(cluster, src_node, dst_node, duration):
    """Drop ACK frames from ``src_node`` to ``dst_node`` for ``duration``."""
    topo = cluster.topology

    def drop_acks(packet):
        frame = packet.payload
        if not isinstance(frame, AckFrame):
            return True
        return not (
            topo.owner_of(packet.src) == src_node
            and topo.owner_of(packet.dst) == dst_node
        )

    cluster.network.filter = drop_acks
    cluster.loop.call_later(
        duration, lambda: setattr(cluster.network, "filter", None)
    )


def run_split_scenario(seed):
    cluster = make_cluster("ABCD", seed=seed)
    cluster.start_all()
    for i in range(4):
        cluster.node("ABCD"[i]).multicast(f"pre-{i}")
    cluster.run(0.5)
    # B's acks to A vanish: A's forwards to B "fail" while B proceeds.
    blackout = (
        cluster.config.transport.failure_detection_bound(1) * 3
    )
    ack_blackout(cluster, "B", "A", blackout)
    for i in range(4):
        cluster.node("ABCD"[i]).multicast(f"mid-{i}")
    cluster.run(blackout + 1.0)
    cluster.run(6.0)
    return cluster


@pytest.mark.parametrize("seed", [3, 17, 29])
def test_ack_blackout_heals_completely(seed):
    cluster = run_split_scenario(seed)
    assert cluster.run_until_converged(10.0, expected=set("ABCD")), (
        cluster.membership_views()
    )


@pytest.mark.parametrize("seed", [3, 17, 29])
def test_ack_blackout_no_duplicate_deliveries(seed):
    cluster = run_split_scenario(seed)
    for nid in "ABCD":
        keys = cluster.listener(nid).delivery_keys
        assert len(keys) == len(set(keys)), f"{nid} delivered duplicates"


@pytest.mark.parametrize("seed", [3, 17])
def test_ack_blackout_orders_stay_consistent(seed):
    from repro.metrics.analysis import prefix_consistency_violations

    cluster = run_split_scenario(seed)
    assert prefix_consistency_violations(cluster.all_delivery_orders()) == []


def test_ack_blackout_single_token_after_heal():
    cluster = run_split_scenario(seed=3)
    cluster.run_until_converged(10.0, expected=set("ABCD"))
    # Sampled uniqueness after quiescence.
    for _ in range(300):
        cluster.run(0.002)
        assert len(cluster.token_holders()) <= 1


def test_filter_hook_is_surgical():
    """The filter drops exactly what it matches, nothing else."""
    cluster = make_cluster("AB")
    cluster.start_all()
    dropped = []

    def spy(packet):
        if isinstance(packet.payload, AckFrame):
            dropped.append(packet)
            return False
        return True

    before = cluster.network.packets_dropped
    cluster.network.filter = spy
    cluster.run(0.2)
    cluster.network.filter = None
    assert dropped  # acks were flowing and got dropped
    assert cluster.network.packets_dropped >= before + len(dropped)
    # The ring survives ack loss alone (tokens kept arriving, dedup+re-ack
    # handles the rest once the filter lifts).
    assert cluster.run_until_converged(8.0, expected={"A", "B"})
