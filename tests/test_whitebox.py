"""White-box unit tests of protocol internals.

Integration tests validate end-to-end behaviour; these pin the exact
mechanics of the trickiest code paths — the multicast visit passes, the
911 grant matrix, and merge arithmetic — against hand-built states, so a
regression points at the precise rule that broke.
"""

import pytest

from repro.core.config import RaincoreConfig
from repro.core.states import NodeState
from repro.core.token import Ordering, PiggybackedMessage, Token
from repro.core.wire import NineOneOne, NineOneOneReply, ReplyVerdict
from repro.net.datagram import DatagramNetwork
from repro.net.eventloop import EventLoop
from repro.net.topology import Topology, build_switched_cluster
from repro.core.session import RaincoreNode


def make_node(node_id="A", peers=("B", "C")):
    loop = EventLoop(seed=0)
    topo = Topology()
    build_switched_cluster(topo, [node_id, *peers])
    net = DatagramNetwork(loop, topo)
    node = RaincoreNode(node_id, loop, net, RaincoreConfig())
    return loop, net, node


def make_msg(origin, msg_no, audience, **kw):
    aud = frozenset(audience)
    return PiggybackedMessage(
        origin,
        msg_no,
        kw.pop("payload", f"{origin}#{msg_no}"),
        kw.pop("size", 10),
        audience=aud,
        pending=set(kw.pop("pending", aud)),
        **kw,
    )


# ----------------------------------------------------------------------
# multicast visit passes
# ----------------------------------------------------------------------
class TestReceivePass:
    def test_agreed_first_sight_held_deliverable(self):
        loop, net, node = make_node()
        svc = node.multicast_service
        token = Token(membership=("A", "B"))
        token.messages.append(make_msg("B", 1, ("A", "B"), pending={"A"}))
        svc._receive_pass(token)
        assert len(svc._hold) == 1
        assert svc._hold[0].deliverable
        assert token.messages[0].pending == set()

    def test_safe_first_sight_held_blocked(self):
        loop, net, node = make_node()
        svc = node.multicast_service
        token = Token(membership=("A", "B"))
        token.messages.append(
            make_msg("B", 1, ("A", "B"), pending={"A"}, ordering=Ordering.SAFE)
        )
        svc._receive_pass(token)
        assert len(svc._hold) == 1
        assert not svc._hold[0].deliverable

    def test_safe_confirmed_marks_existing_hold(self):
        loop, net, node = make_node()
        svc = node.multicast_service
        msg = make_msg("B", 1, ("A", "B"), pending={"A"}, ordering=Ordering.SAFE)
        token = Token(membership=("A", "B"))
        token.messages.append(msg)
        svc._receive_pass(token)  # phase 1: held, blocked
        msg.confirmed = True
        msg.pending = {"A", "B"}
        svc._receive_pass(token)  # phase 2: unblocks the same hold entry
        assert len(svc._hold) == 1
        assert svc._hold[0].deliverable
        assert "A" not in msg.pending

    def test_duplicate_uid_not_held_twice(self):
        loop, net, node = make_node()
        svc = node.multicast_service
        msg = make_msg("B", 1, ("A", "B"), pending={"A"})
        token = Token(membership=("A", "B"))
        token.messages.append(msg)
        svc._receive_pass(token)
        msg.pending.add("A")  # simulate a regenerated-token replay
        svc._receive_pass(token)
        assert len(svc._hold) == 1


class TestRetirePass:
    def test_agreed_retires_when_pending_empty(self):
        loop, net, node = make_node()
        svc = node.multicast_service
        token = Token(membership=("A", "B"))
        token.messages.append(make_msg("B", 1, ("A", "B"), pending=()))
        svc._retire_pass(token)
        assert token.messages == []

    def test_safe_confirms_then_retires_next_round(self):
        loop, net, node = make_node()
        svc = node.multicast_service
        msg = make_msg("B", 1, ("B",), pending=(), ordering=Ordering.SAFE)
        token = Token(membership=("A", "B"))
        token.messages.append(msg)
        svc._retire_pass(token)  # round 1: confirm, re-arm pending
        assert msg.confirmed
        assert token.messages == [msg]
        assert msg.pending == {"B"}  # audience ∩ membership
        msg.pending.clear()
        svc._retire_pass(token)  # round 2: retire
        assert token.messages == []

    def test_safe_with_departed_audience_retires_immediately(self):
        loop, net, node = make_node()
        svc = node.multicast_service
        msg = make_msg("X", 1, ("X", "Y"), pending=(), ordering=Ordering.SAFE)
        token = Token(membership=("A", "B"))  # X and Y are gone
        token.messages.append(msg)
        svc._retire_pass(token)
        assert token.messages == []


class TestAttachPass:
    def test_attach_sets_audience_and_pending(self):
        loop, net, node = make_node()
        node.state = NodeState.EATING  # bypass lifecycle for the unit test
        svc = node.multicast_service
        svc.multicast("payload", size=5)
        token = Token(membership=("A", "B", "C"))
        svc._attach_pass(token)
        msg = token.messages[0]
        assert msg.audience == frozenset("ABC")
        assert msg.pending == {"B", "C"}  # self excluded: delivered at attach
        assert svc._hold and svc._hold[0].deliverable


# ----------------------------------------------------------------------
# 911 grant matrix (paper §2.3 + DESIGN.md §6.1)
# ----------------------------------------------------------------------
class TestGrantRules:
    def grab_reply(self, node, net, loop, msg):
        replies = []
        orig_send = node.transport.send

        def capture(dst, payload, on_result=None):
            if isinstance(payload, NineOneOneReply):
                replies.append(payload)
            return orig_send(dst, payload, on_result=on_result)

        node.transport.send = capture
        node.recovery.handle_911(msg)
        return replies[0]

    def setup_member(self, copy_seq):
        loop, net, node = make_node()
        node.transport.start()
        node.state = NodeState.HUNGRY
        node._members = ("A", "B", "C")
        node._local_copy = Token(seq=copy_seq, membership=("A", "B", "C"))
        return loop, net, node

    def test_nonmember_gets_join_pending(self):
        loop, net, node = self.setup_member(10)
        node._members = ("A", "B")  # C exists on the network, not in the group
        reply = self.grab_reply(node, net, loop, NineOneOne("C", -1, 1))
        assert reply.verdict is ReplyVerdict.JOIN_PENDING
        assert "C" in node.recovery.pending_joins

    def test_holder_denies(self):
        loop, net, node = self.setup_member(10)
        node.state = NodeState.EATING
        node._live_token = Token(seq=11, membership=("A", "B", "C"))
        reply = self.grab_reply(node, net, loop, NineOneOne("B", 99, 1))
        assert reply.verdict is ReplyVerdict.DENY_HAVE_TOKEN

    def test_newer_copy_denies(self):
        loop, net, node = self.setup_member(10)
        reply = self.grab_reply(node, net, loop, NineOneOne("B", 9, 1))
        assert reply.verdict is ReplyVerdict.DENY_NEWER_COPY

    def test_older_copy_grants(self):
        loop, net, node = self.setup_member(10)
        reply = self.grab_reply(node, net, loop, NineOneOne("B", 11, 1))
        assert reply.verdict is ReplyVerdict.GRANT

    def test_equal_seq_tie_breaks_by_node_id(self):
        # A (lower id) denies B on a tie; B would grant A.
        loop, net, node = self.setup_member(10)
        reply = self.grab_reply(node, net, loop, NineOneOne("B", 10, 1))
        assert reply.verdict is ReplyVerdict.DENY_NEWER_COPY
        loop2, net2, node_b = make_node("B", peers=("A", "C"))
        node_b.transport.start()
        node_b.state = NodeState.HUNGRY
        node_b._members = ("A", "B", "C")
        node_b._local_copy = Token(seq=10, membership=("A", "B", "C"))
        reply = TestGrantRules().grab_reply(node_b, net2, loop2, NineOneOne("A", 10, 1))
        assert reply.verdict is ReplyVerdict.GRANT


# ----------------------------------------------------------------------
# merge arithmetic
# ----------------------------------------------------------------------
class TestMergeMechanics:
    def test_merge_with_own_combines_everything(self):
        loop, net, node = make_node("D", peers=("A", "B", "E", "F"))
        node._members = ("D", "E", "F")
        tbm = Token(seq=40, membership=("A", "B", "D"), tbm=True, view_id=7)
        tbm.messages.append(make_msg("A", 1, ("A", "B"), pending={"B"}))
        own = Token(seq=90, membership=("D", "E", "F"), view_id=3)
        own.messages.append(make_msg("E", 1, ("D", "E", "F"), pending={"F"}))
        node.merge._held_tbm = tbm
        merged = node.merge.merge_with_own(own)
        assert merged.seq == 91  # max + 1
        assert merged.view_id == 8
        assert not merged.tbm
        assert sorted(merged.membership) == ["A", "B", "D", "E", "F"]
        # D's own ring members spliced right after D.
        idx = merged.membership.index("D")
        assert merged.membership[idx + 1: idx + 3] == ("E", "F")
        assert len(merged.messages) == 2
        # Pending sets pruned to the merged membership only.
        assert merged.messages[0].pending == {"B"}
        assert merged.messages[1].pending == {"F"}

    def test_merge_requires_held_tbm(self):
        loop, net, node = make_node()
        with pytest.raises(RuntimeError):
            node.merge.merge_with_own(Token(seq=1, membership=("A",)))

    def test_second_tbm_ignored_while_holding_one(self):
        loop, net, node = make_node()
        first = Token(seq=5, membership=("A", "X"), tbm=True)
        second = Token(seq=9, membership=("A", "Y"), tbm=True)
        node.merge.handle_tbm(first)
        node.merge.handle_tbm(second)
        assert node.merge._held_tbm is first
