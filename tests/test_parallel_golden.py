"""Golden byte-identity across shard counts (the sharded-engine contract).

docs/PARALLEL.md's determinism contract says: for a fixed seed, the
canonical probe stream of a sharded run is a function of the workload and
horizon alone — the shard count and the process/serial engine choice must
not change a byte.  This file pins that contract two ways:

* shards=1 (serial), shards=2 and shards=4 (process) streams are compared
  byte-for-byte against each other in one run;
* the serial stream's sha256 and event counts are pinned in
  ``golden_parallel_seed7.json``, so a regression that shifts *all*
  engines together (and would pass the cross-engine comparison) still
  trips the committed artifact.

If an intentional model change invalidates the artifact, regenerate with
``python tests/test_parallel_golden.py`` and justify the diff in the PR.
"""

from __future__ import annotations

import hashlib
import json
import os

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
PARALLEL_GOLDEN = os.path.join(DATA_DIR, "golden_parallel_seed7.json")

SEED = 7
PARAMS = {"rings": 4, "ring_size": 3}
HORIZON = 2.0


def run_stream(shards: int, mode: str):
    from repro.parallel import ParallelSimulator

    sim = ParallelSimulator("multi_ring", SEED, PARAMS)
    return sim.run(HORIZON, shards=shards, mode=mode, probes=True)


def record_golden():
    result = run_stream(1, "serial")
    stream = result.stream_jsonl()
    return {
        "workload": dict(PARAMS, seed=SEED, horizon=HORIZON),
        "stream_sha256": hashlib.sha256(stream.encode()).hexdigest(),
        "probe_events": len(result.probe_events()),
        "loop_events": result.events,
        "facts_sha256": hashlib.sha256(
            json.dumps(result.facts, sort_keys=True, default=str).encode()
        ).hexdigest(),
    }


def test_stream_bytes_identical_across_shard_counts():
    serial = run_stream(1, "serial")
    reference = serial.stream_jsonl()
    for shards in (2, 4):
        sharded = run_stream(shards, "process")
        assert sharded.stream_jsonl() == reference, (
            f"shards={shards} probe stream diverged from serial"
        )
        assert sharded.facts == serial.facts
        assert sharded.events == serial.events


def test_serial_stream_matches_committed_golden():
    with open(PARALLEL_GOLDEN, encoding="utf-8") as fh:
        golden = json.load(fh)
    assert record_golden() == golden, (
        "sharded-engine golden artifact diverged; if the model change is "
        "intentional, regenerate with `python tests/test_parallel_golden.py` "
        "and justify the diff in the PR"
    )


if __name__ == "__main__":  # pragma: no cover - regeneration helper
    with open(PARALLEL_GOLDEN, "w", encoding="utf-8") as fh:
        json.dump(record_golden(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {PARALLEL_GOLDEN}")
