"""Unit tests for task-switch and packet accounting."""

from repro.net.stats import CpuModel, NodeStats, StatsRegistry


def test_packet_counters():
    s = NodeStats("A")
    s.packet_sent(100)
    s.packet_sent(50)
    s.packet_received(70)
    assert s.packets_sent == 2
    assert s.bytes_sent == 150
    assert s.packets_received == 1
    assert s.bytes_received == 70


def test_gc_wakeup_charges_once_per_instant():
    """Co-arriving GC events are one batched wakeup — the paper's premise
    that a token carrying many messages costs one task switch."""
    s = NodeStats("A")
    assert s.gc_wakeup(1.0) is True
    assert s.gc_wakeup(1.0) is False
    assert s.gc_wakeup(1.0) is False
    assert s.task_switches == 1
    assert s.gc_wakeup(2.0) is True
    assert s.task_switches == 2


def test_gc_wakeup_at_time_zero():
    s = NodeStats("A")
    assert s.gc_wakeup(0.0) is True
    assert s.gc_wakeup(0.0) is False
    assert s.task_switches == 1


def test_reset_zeroes_everything():
    s = NodeStats("A")
    s.packet_sent(10)
    s.gc_wakeup(1.0)
    s.messages_multicast = 5
    s.reset()
    assert s.packets_sent == 0
    assert s.bytes_sent == 0
    assert s.task_switches == 0
    assert s.messages_multicast == 0
    # After reset the same instant charges again (new measurement window).
    assert s.gc_wakeup(1.0) is True


def test_registry_creates_and_reuses():
    reg = StatsRegistry()
    a1 = reg.for_node("A")
    a2 = reg.for_node("A")
    assert a1 is a2
    assert len(reg) == 1


def test_registry_total_and_per_node():
    reg = StatsRegistry()
    reg.for_node("A").packet_sent(10)
    reg.for_node("B").packet_sent(20)
    reg.for_node("B").packet_sent(30)
    assert reg.total("packets_sent") == 3
    assert reg.total("bytes_sent") == 60
    assert reg.per_node("packets_sent") == {"A": 1, "B": 2}


def test_registry_reset():
    reg = StatsRegistry()
    reg.for_node("A").packet_sent(10)
    reg.reset()
    assert reg.total("packets_sent") == 0


def test_cpu_model_accounts_all_components():
    s = NodeStats("A")
    s.task_switches = 10
    s.packets_sent = 4
    s.packets_received = 6
    s.bytes_sent = 1000
    s.bytes_received = 500
    model = CpuModel(task_switch_cost=1e-3, per_packet_cost=1e-4, per_byte_cost=1e-6)
    expected = 10 * 1e-3 + 10 * 1e-4 + 1500 * 1e-6
    assert model.gc_cpu_seconds(s) == expected


def test_cpu_model_defaults_are_small():
    """Raincore's GC overhead must be compatible with the paper's <1% CPU."""
    s = NodeStats("A")
    # One second of a 4-node ring at 10 ms hops: 25 token visits.
    s.task_switches = 25
    s.packets_sent = 50
    s.packets_received = 50
    s.bytes_sent = 25 * 500
    s.bytes_received = 25 * 500
    assert CpuModel().gc_cpu_seconds(s) < 0.01  # < 1% of one CPU-second
