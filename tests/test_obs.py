"""Tests for repro.obs: probe bus, flight recorder, registry, bundles.

Covers the observability contracts the rest of the repo leans on:

* ring-buffer eviction keeps the newest events per node;
* probe streams are byte-stable across same-seed runs and diverge across
  seeds (the determinism golden);
* token-carried trace context survives regeneration and merge, so a
  delivery on one node is causally linkable to the originating attach;
* failing chaos runs produce deterministic diagnostic bundles from which
  the causal chain of a multicast span can be reconstructed.
"""

from __future__ import annotations

import pytest

from repro.chaos.engine import ChaosEngine
from repro.chaos.schedule import ChaosParams, FaultOp, Schedule
from repro.cluster.harness import RaincoreCluster
from repro.net.eventloop import EventLoop
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    ProbeBus,
    bundle_events,
    bundle_to_json,
    causal_chain,
    dump_bundle,
    events_to_jsonl,
    load_bundle,
    render_bundle,
    render_chain,
)
from repro.obs.registry import Histogram
from repro.obs.scenario import run_quickstart


# ----------------------------------------------------------------------
# probe bus
# ----------------------------------------------------------------------
def test_emit_validates_kind_and_arity():
    bus = ProbeBus(EventLoop(seed=0))
    with pytest.raises(KeyError):
        bus.emit("A", "no.such.kind")
    with pytest.raises(TypeError):
        bus.emit("A", "fd.arm", "B")  # fd.arm takes (peer, seq)


def test_emission_ordinals_are_global_and_dense():
    bus = ProbeBus(EventLoop(seed=0))
    seen = []
    bus.subscribe(seen.append)
    bus.emit("A", "core.wakeup")
    bus.emit("B", "core.wakeup")
    bus.emit("A", "fd.arm", "B", 7)
    assert [e.n for e in seen] == [1, 2, 3]
    assert seen[2].data() == {"peer": "B", "seq": 7}


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
def test_ring_buffer_evicts_oldest_per_node():
    bus = ProbeBus(EventLoop(seed=0))
    recorder = FlightRecorder(bus, capacity=4)
    for _ in range(10):
        bus.emit("A", "core.wakeup")
    for _ in range(3):
        bus.emit("B", "core.wakeup")
    assert recorder.events_seen == 13
    # A's ring kept only the 4 newest; B's is under capacity and complete.
    assert [e.n for e in recorder.node_events("A")] == [7, 8, 9, 10]
    assert [e.n for e in recorder.node_events("B")] == [11, 12, 13]
    # The snapshot is the union in global emission order.
    assert [e.n for e in recorder.snapshot()] == [7, 8, 9, 10, 11, 12, 13]
    assert recorder.nodes == ["A", "B"]


def test_recorder_close_stops_recording():
    bus = ProbeBus(EventLoop(seed=0))
    recorder = FlightRecorder(bus, capacity=4)
    bus.emit("A", "core.wakeup")
    recorder.close()
    bus.emit("A", "core.wakeup")
    assert recorder.events_seen == 1


# ----------------------------------------------------------------------
# registry histogram math
# ----------------------------------------------------------------------
def test_histogram_aggregates_and_percentiles():
    h = Histogram("A", "x", window=100)
    for i, v in enumerate([5.0, 1.0, 3.0, 2.0, 4.0]):
        h.observe(float(i), v)
    assert h.count == 5
    assert h.total == 15.0
    assert h.mean == 3.0
    assert (h.min, h.max) == (1.0, 5.0)
    assert h.percentile(0.0) == 1.0
    assert h.percentile(0.5) == 3.0
    # since= restricts to the sim-time window, not the lifetime aggregates.
    assert sorted(h.window_values(since=3.0)) == [2.0, 4.0]
    s = h.summary(since=3.0)
    assert s["count"] == 5 and s["window_count"] == 2
    assert s["p50"] == 4.0


def test_histogram_window_is_bounded():
    h = Histogram("A", "x", window=8)
    for i in range(100):
        h.observe(float(i), float(i))
    assert h.count == 100  # lifetime aggregates unaffected by eviction
    assert len(h.samples) == 8
    assert h.window_values() == [92.0, 93.0, 94.0, 95.0, 96.0, 97.0, 98.0, 99.0]


def test_registry_exports_are_sorted_and_stable():
    reg = MetricsRegistry()
    reg.counter("B", "z").inc(2)
    reg.counter("A", "y").inc()
    reg.gauge("A", "g").set(1.5)
    d = reg.to_dict()
    assert list(d["counters"]) == ["A", "B"]
    assert d["counters"]["B"]["z"] == 2
    # Exporting twice must be byte-identical (no hidden iteration order).
    assert reg.to_jsonl() == reg.to_jsonl()
    assert '"metric":"z","node":"B"' in reg.to_jsonl().splitlines()[1]


# ----------------------------------------------------------------------
# determinism golden: the probed quickstart scenario
# ----------------------------------------------------------------------
def test_probe_stream_is_byte_stable_across_runs():
    a = run_quickstart(nodes=3, seed=5, duration=0.5, crash=False)
    b = run_quickstart(nodes=3, seed=5, duration=0.5, crash=False)
    ja, jb = events_to_jsonl(a.events), events_to_jsonl(b.events)
    assert ja == jb
    assert a.registry.to_jsonl() == b.registry.to_jsonl()


def test_probe_stream_respects_the_seed():
    a = run_quickstart(nodes=3, seed=5, duration=0.5, crash=False)
    b = run_quickstart(nodes=3, seed=6, duration=0.5, crash=False)
    assert events_to_jsonl(a.events) != events_to_jsonl(b.events)


# ----------------------------------------------------------------------
# token-carried trace context across regeneration and merge
# ----------------------------------------------------------------------
def test_token_lineage_across_regeneration():
    cluster = RaincoreCluster(["A", "B", "C"], seed=9)
    events = []
    cluster.enable_probes().subscribe(events.append)
    cluster.start_all()
    cluster.run(0.5)
    pre_gens = {e.args[1] for e in events if e.kind == "token.accept"}
    assert pre_gens  # the bootstrapped generation circulated
    cluster.faults.lose_token()
    cluster.run(15.0)  # long enough for 911 detection and regeneration
    regens = [e for e in events if e.kind == "token.regen"]
    assert regens, "911 must have regenerated the token"
    regen = regens[0]
    # The new generation is fresh, and its recorded parent is the lost one.
    assert regen.args[0] not in pre_gens
    assert regen.args[1] in pre_gens
    # Post-regen circulation carries the new generation on the wire.
    post = [e for e in events if e.kind == "token.accept" and e.n > regen.n]
    assert post and all(e.args[1] == regen.args[0] for e in post)


def test_token_lineage_across_merge():
    cluster = RaincoreCluster(["A", "B", "C", "D"], seed=3)
    events = []
    cluster.enable_probes().subscribe(events.append)
    cluster.start_all()
    cluster.faults.partition(["A", "B"], ["C", "D"])
    cluster.run(4.0)
    split_gens = {e.args[1] for e in events if e.kind == "token.accept"}
    cluster.faults.heal_partition()
    assert cluster.run_until_converged(30.0, expected=set("ABCD"))
    merges = [e for e in events if e.kind == "token.merge"]
    assert merges, "healing the partition must merge the groups"
    merged_gen, left, right, _seq = merges[-1].args
    assert merged_gen not in split_gens
    assert left in split_gens and right in split_gens
    post = [e for e in events if e.kind == "token.accept" and e.n > merges[-1].n]
    assert post and post[-1].args[1] == merged_gen


def test_causal_chain_links_attach_to_remote_delivery():
    cluster = RaincoreCluster(["A", "B", "C"], seed=1)
    events = []
    cluster.enable_probes().subscribe(events.append)
    cluster.start_all()
    cluster.node("A").multicast(b"chained")
    cluster.run(0.5)
    attaches = [e for e in events if e.kind == "mcast.attach"]
    assert len(attaches) == 1
    origin, msg_no = attaches[0].args[0], attaches[0].args[1]
    chain = causal_chain(events, origin, msg_no)
    kinds = [e.kind for e in chain]
    assert kinds[0] == "mcast.attach"
    assert "transport.tx" in kinds  # the token hop that carried it
    delivered_at = {e.node for e in chain if e.kind == "mcast.deliver"}
    assert delivered_at == {"A", "B", "C"}
    # Every hop in the chain carries the loaded token's trace context.
    for e in chain:
        if e.kind == "transport.tx":
            assert e.args[4][0] == "tok" and e.args[4][3] > 0


# ----------------------------------------------------------------------
# failing chaos runs produce deterministic diagnostic bundles
# ----------------------------------------------------------------------
def _forged_failure_schedule() -> Schedule:
    params = ChaosParams(nodes=4, seconds=4.0, seed=21, segments=2, strict=True)
    return Schedule(
        params=params,
        ops=[FaultOp(at=2.0, kind="forge_duplicate_token", args=())],
    )


def test_failing_chaos_run_builds_bundle(tmp_path):
    result = ChaosEngine(_forged_failure_schedule()).run()
    assert not result.ok
    assert result.failure == "invariant:token-uniqueness"
    bundle = result.bundle
    assert bundle is not None
    assert bundle["schema"] == "repro.obs.bundle/2"
    assert isinstance(bundle["alerts"], list)
    assert bundle["reason"] == result.failure
    assert bundle["nodes"] == ["n00", "n01", "n02", "n03"]
    assert bundle["context"]["seed"] == 21
    assert bundle["schedule"]["params"]["seed"] == 21
    assert bundle["events"]
    # The bundle snapshot was taken at first-violation time, not run end.
    assert bundle["at"] <= 4.0 + 2.0

    # Round-trips through disk, renders, and yields a causal chain.
    path = dump_bundle(bundle, tmp_path / "x.bundle.json")
    loaded = load_bundle(path)
    assert loaded == bundle
    events = bundle_events(loaded)
    rendered = render_bundle(loaded, kinds={"token.accept"}, limit=5)
    assert rendered.startswith("bundle: invariant:token-uniqueness")
    assert "token.accept" in rendered
    spans = sorted(
        {(e.args[0], e.args[1]) for e in events if e.kind == "mcast.attach"}
    )
    assert spans, "the background load must appear in the recorder window"
    origin, msg_no = spans[0]
    chain_text = render_chain(events, origin, msg_no)
    assert f"span {origin}#{msg_no}:" in chain_text
    assert "mcast.attach" in chain_text and "mcast.deliver" in chain_text


def test_bundle_is_byte_identical_across_same_seed_runs():
    a = ChaosEngine(_forged_failure_schedule()).run()
    b = ChaosEngine(_forged_failure_schedule()).run()
    assert a.bundle is not None and b.bundle is not None
    assert bundle_to_json(a.bundle) == bundle_to_json(b.bundle)


def test_load_bundle_rejects_foreign_json(tmp_path):
    path = tmp_path / "not-a-bundle.json"
    path.write_text('{"schema": "something/else"}')
    with pytest.raises(ValueError, match="supported"):
        load_bundle(path)


def test_load_bundle_failures_are_named_valueerrors(tmp_path):
    """Every corrupt-bundle shape raises ValueError naming the problem —
    never a bare KeyError/JSONDecodeError leaking to the caller."""
    missing = tmp_path / "no-such.bundle.json"
    with pytest.raises(ValueError, match="cannot read bundle"):
        load_bundle(missing)

    not_json = tmp_path / "truncated.bundle.json"
    not_json.write_text('{"schema": "repro.obs.bundle/2", "events": [')
    with pytest.raises(ValueError, match="not JSON"):
        load_bundle(not_json)

    not_dict = tmp_path / "list.bundle.json"
    not_dict.write_text('[1, 2, 3]')
    with pytest.raises(ValueError, match="top level is list"):
        load_bundle(not_dict)

    gutted = tmp_path / "gutted.bundle.json"
    gutted.write_text('{"schema": "repro.obs.bundle/2", "reason": "x"}')
    with pytest.raises(ValueError, match="missing required section"):
        load_bundle(gutted)

    bad_events = tmp_path / "bad-events.bundle.json"
    bad_events.write_text(
        '{"schema": "repro.obs.bundle/2", "reason": "x", "detail": "",'
        ' "at": 0, "nodes": [], "context": {}, "events": {}, "metrics": {}}'
    )
    with pytest.raises(ValueError, match="must be a list"):
        load_bundle(bad_events)


def test_load_bundle_accepts_v1_and_backfills_alerts(tmp_path):
    path = tmp_path / "old.bundle.json"
    path.write_text(
        '{"schema": "repro.obs.bundle/1", "reason": "x", "detail": "",'
        ' "at": 0, "nodes": [], "context": {}, "events": [], "metrics": {}}'
    )
    bundle = load_bundle(path)
    assert bundle["schema"] == "repro.obs.bundle/1"
    assert bundle["alerts"] == []  # one shape for downstream readers


# ----------------------------------------------------------------------
# registry window edges
# ----------------------------------------------------------------------
def test_histogram_empty_window_summary():
    h = Histogram("A", "x", window=16)
    assert h.window_values() == []
    assert h.percentile(0.5) == 0.0
    s = h.summary()
    assert s["count"] == 0 and s["window_count"] == 0
    assert s["min"] == 0.0 and s["max"] == 0.0
    assert "p50" not in s  # no invented percentiles for an empty window


def test_histogram_window_boundary_is_inclusive():
    h = Histogram("A", "x", window=16)
    h.observe(1.0, 10.0)
    h.observe(2.0, 20.0)
    h.observe(3.0, 30.0)
    # An event exactly at the since= cut belongs to the window (at >= since).
    assert h.window_values(since=2.0) == [20.0, 30.0]
    assert h.window_values(since=2.0 + 1e-12) == [30.0]
    assert h.summary(since=3.0)["window_count"] == 1


def test_histogram_single_sample_percentiles():
    h = Histogram("A", "x", window=16)
    h.observe(0.5, 42.0)
    # Every percentile of a one-sample window is that sample.
    for q in (0.0, 0.5, 0.95, 1.0):
        assert h.percentile(q) == 42.0
    s = h.summary()
    assert s["p50"] == 42.0 and s["p95"] == 42.0
    assert s["window_count"] == 1
