"""Unit tests for protocol configuration and the node state machine map."""

import pytest

from repro.core.config import RaincoreConfig
from repro.core.states import VALID_TRANSITIONS, NodeState
from repro.transport.reliable import TransportConfig


def test_defaults_are_valid():
    cfg = RaincoreConfig()
    assert cfg.hop_interval > 0
    assert cfg.transport is not None


def test_validation_rejects_nonpositive_timers():
    for field in (
        "hop_interval",
        "hungry_timeout",
        "starving_backoff",
        "join_retry",
        "bodyodor_interval",
    ):
        with pytest.raises(ValueError):
            RaincoreConfig(**{field: 0.0})


def test_validation_rejects_zero_batch():
    with pytest.raises(ValueError):
        RaincoreConfig(max_batch_per_visit=0)


def test_tuned_hungry_timeout_exceeds_traversal():
    for n in (1, 2, 4, 16):
        cfg = RaincoreConfig.tuned(ring_size=n)
        traversal = n * cfg.hop_interval
        assert cfg.hungry_timeout > traversal
        assert cfg.hungry_timeout > cfg.transport.failure_detection_bound()


def test_tuned_scales_with_ring_size():
    small = RaincoreConfig.tuned(ring_size=2)
    large = RaincoreConfig.tuned(ring_size=32)
    assert large.hungry_timeout > small.hungry_timeout


def test_tuned_accepts_overrides():
    cfg = RaincoreConfig.tuned(ring_size=4, bodyodor_interval=0.25)
    assert cfg.bodyodor_interval == 0.25


def test_tuned_custom_transport():
    tcfg = TransportConfig(retx_timeout=0.01)
    cfg = RaincoreConfig.tuned(ring_size=4, transport=tcfg)
    assert cfg.transport.retx_timeout == 0.01


def test_tuned_rejects_empty_ring():
    with pytest.raises(ValueError):
        RaincoreConfig.tuned(ring_size=0)


def test_config_is_frozen():
    cfg = RaincoreConfig()
    with pytest.raises(AttributeError):
        cfg.hop_interval = 1.0  # type: ignore[misc]


# ----------------------------------------------------------------------
# state machine map
# ----------------------------------------------------------------------
def test_every_state_has_transitions():
    assert set(VALID_TRANSITIONS) == set(NodeState)


def test_paper_lifecycle_is_legal():
    """HUNGRY -> EATING -> HUNGRY -> STARVING -> EATING (911 win)."""
    assert NodeState.EATING in VALID_TRANSITIONS[NodeState.HUNGRY]
    assert NodeState.HUNGRY in VALID_TRANSITIONS[NodeState.EATING]
    assert NodeState.STARVING in VALID_TRANSITIONS[NodeState.HUNGRY]
    assert NodeState.EATING in VALID_TRANSITIONS[NodeState.STARVING]


def test_no_resurrection_without_joining():
    assert VALID_TRANSITIONS[NodeState.DOWN] == frozenset({NodeState.JOINING})


def test_eating_cannot_starve_directly():
    """A node holding the token can never be STARVING."""
    assert NodeState.STARVING not in VALID_TRANSITIONS[NodeState.EATING]
