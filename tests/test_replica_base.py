"""Tests for the Data Service replica discipline (repro.data.replica)."""

import pytest

from repro.data import SharedDict
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


def test_singleton_self_sync():
    """A founding singleton replica is synced from the first view."""
    c = make_cluster("A")
    d = SharedDict(c.node("A"))
    c.start_all()
    assert d.synced
    d.set("k", 1)
    c.run(0.5)
    assert d.get("k") == 1


def test_partitioned_away_unsynced_member_self_syncs_as_singleton():
    """A member stranded unsynced that becomes a singleton group declares
    its own (empty) state authoritative for that group."""
    c = make_cluster("ABC")
    dicts = {nid: SharedDict(c.node(nid)) for nid in "ABC"}
    c.start_all()
    # Force C unsynced artificially to model the formation race.
    dicts["C"]._synced = False
    c.faults.partition(["A", "B"], ["C"])
    c.run(3.0)
    assert dicts["C"].synced  # singleton self-sync
    c.faults.heal_partition()
    assert c.run_until_converged(15.0, expected=set("ABC"))
    c.run(3.0)
    snaps = [dicts[n].snapshot() for n in "ABC"]
    assert all(s == snaps[0] for s in snaps)


def test_sync_request_heals_stranded_member():
    """An unsynced member in a stable (no-growth) group gets synced via the
    SyncRequest path — growth snapshots alone would never fire."""
    c = make_cluster("ABCD")
    dicts = {nid: SharedDict(c.node(nid)) for nid in "ABCD"}
    c.start_all()
    dicts["A"].set("k", "v")
    c.run(1.0)
    # Artificially strand C: full amnesia (state, log and chain), as a
    # corrupted-journal restart would leave it.
    dicts["C"].forget()
    dicts["C"]._state = {}
    dicts["C"]._arm_sync_timer()
    c.run(5.0)  # no membership changes at all
    assert dicts["C"].synced
    assert dicts["C"].get("k") == "v"


def test_all_unsynced_group_self_declares_min():
    """If no member has history, the minimum-id member's local state
    becomes authoritative after bounded requests."""
    c = make_cluster("AB")
    dicts = {nid: SharedDict(c.node(nid)) for nid in "AB"}
    c.start_all()
    # Strand both; give them different local states.
    for nid, state in (("A", {"x": "from-A"}), ("B", {"x": "from-B"})):
        dicts[nid]._synced = False
        dicts[nid]._state = dict(state)
        dicts[nid]._arm_sync_timer()
    c.run(15.0)
    assert dicts["A"].synced and dicts["B"].synced
    # Deterministic winner: the minimum id (A).
    assert dicts["A"].snapshot() == dicts["B"].snapshot() == {"x": "from-A"}


def test_sync_requests_are_service_scoped():
    """A NAT table's sync request must not be answered with dict snapshots."""
    from repro.apps.nat import NatTable

    c = make_cluster("AB")
    d = {nid: SharedDict(c.node(nid)) for nid in "AB"}
    n = {nid: NatTable(c.node(nid)) for nid in "AB"}
    c.start_all()
    d["A"].set("k", 1)
    n["A"].allocate(1, "c1")
    c.run(1.0)
    # Strand B's NAT replica only: full amnesia back to construction state.
    from collections import deque

    n["B"].forget()
    n["B"]._by_flow = {}
    n["B"]._by_port = {}
    n["B"]._next_fresh = 30000
    n["B"]._freed = deque()
    n["B"]._arm_sync_timer()
    c.run(5.0)
    assert n["B"].synced
    assert n["B"].snapshot() == n["A"].snapshot()
    assert d["B"].get("k") == 1  # dict replica untouched throughout


def test_sync_timer_cancelled_on_view_departure():
    """Regression: back-to-back view changes that drop this node from the
    view must cancel an armed sync timer — a stale timer would fire after
    departure and multicast sync requests into a group we left."""
    from repro.core.events import ViewChange

    c = make_cluster("ABC")
    dicts = {nid: SharedDict(c.node(nid)) for nid in "ABC"}
    c.start_all()
    rb = dicts["C"]
    rb._synced = False
    rb._sync_requests_sent = 2
    rb._arm_sync_timer()
    assert rb._sync_timer is not None
    rb.on_view_change(ViewChange(9, ("A", "B"), c.loop.now))
    assert rb._sync_timer is None
    assert rb._sync_requests_sent == 0


def test_replica_requires_service_name():
    from repro.data.replica import ReplicaBase

    c = make_cluster("AB")
    with pytest.raises(TypeError):
        ReplicaBase(c.node("A"))
