"""RC205 fixture: append-only buffers in a data-layer class.

Both ``log`` and ``acks`` grow forever — the unbounded-buffer bug class
the bounded-state resync work exists to kill.
"""


class LeakyReplica:
    def __init__(self):
        self.log = []
        self.acks = []

    def on_deliver(self, op):
        self.log.append(op)

    def on_ack(self, ack):
        self.acks.append(ack)
