"""RC205 fixture: every append has a recognized prune path.

One attribute per accepted shape: a ``del`` slice, a bounded
``deque(maxlen=...)`` construction, a shrinking method call, and a
reassignment outside ``__init__``.
"""

from collections import deque


class BoundedReplica:
    def __init__(self):
        self.log = []
        self.recent = deque(maxlen=16)
        self.held = []
        self.waiters = []

    def on_deliver(self, op):
        self.log.append(op)
        self.recent.append(op)
        self.held.append(op)
        self.waiters.append(op)

    def prune(self, floor):
        del self.log[:floor]

    def drain(self):
        while self.held:
            self.held.pop()

    def reset(self):
        self.waiters = []
