"""Fixture: RC00x hygiene findings must themselves be unsuppressible."""

# raincheck: disable-file=RC002 -- fixture: trying (and failing) to mute hygiene

import time

STAMP = time.time()  # raincheck: disable=RC101
