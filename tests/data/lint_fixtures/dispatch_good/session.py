"""Fixture receiver: isinstance arms (incl. tuple form) cover the registry."""


class Node:
    def _receive(self, datagram, payload):
        if isinstance(payload, Ping):  # noqa: F821 — lint-only fixture
            return payload
        if isinstance(payload, (Pong, str)):  # noqa: F821 — lint-only fixture
            return payload
        return None
