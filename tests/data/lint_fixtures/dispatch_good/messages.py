"""Fixture registry: every registered message has a dispatch arm."""

SESSION_MESSAGES = {}


def session_message(cls):
    SESSION_MESSAGES[cls.__name__] = cls
    return cls


@session_message
class Ping:
    pass


@session_message
class Pong:
    pass
