"""Fixture: RC104 — random.Random() constructed without an explicit seed."""

import random
from random import Random


def bad():
    return Random()


def good(seed):
    return random.Random(seed)


def also_good():
    return Random(x=7)
