"""Fixture: RC203 — socket outside repro/runtime."""

import socket


def dial(host, port):
    return socket.create_connection((host, port))
