"""Fixture: RC102 — ambient entropy sources."""

import os
import secrets
import uuid


def bad_key():
    return os.urandom(16)


def bad_id():
    return uuid.uuid4()


def bad_token():
    return secrets.token_hex(8)


def good_id(ns, name):
    return uuid.uuid5(ns, name)  # name-based, deterministic in its inputs
