"""Fixture: RC105 — iteration over unordered set expressions."""


def bad_for():
    out = []
    for x in {"b", "a"}:
        out.append(x)
    return out


def bad_comp(pending):
    return [x for x in set(pending)]


def bad_call(live, dead):
    return list(set(live) - set(dead))


def good(pending):
    return [x for x in sorted(set(pending))]
