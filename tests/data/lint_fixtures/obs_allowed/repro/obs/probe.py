"""RC402 exemption fixture: repro/obs/ itself may construct ProbeEvent."""


class ProbeEvent:
    __slots__ = ("n", "at", "node", "kind", "args")


class ProbeBus:
    def emit(self, node, kind, *args):
        event = ProbeEvent()
        event.node = node
        event.kind = kind
        event.args = args
        return event
