"""Fixture: a file raincheck must pass untouched (strict mode included)."""

from random import Random

RNG = Random(1234)


def shuffle_ids(ids):
    ordered = sorted(set(ids))
    RNG.shuffle(ordered)
    return ordered


def pick(rng, items):
    return rng.choice(items)
