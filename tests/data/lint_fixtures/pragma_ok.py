"""Fixture: a justified same-line suppression that is load-bearing."""

import time

STAMP = time.time()  # raincheck: disable=RC101 -- fixture: demonstrates a justified suppression
