"""Fixture: hot-path hygiene (path suffix matches repro/core/token.py)."""

import copy
from dataclasses import dataclass
from typing import Protocol


@dataclass
class BadPacket:
    seq: int


@dataclass(slots=True)
class GoodPacket:
    seq: int


class ManualSlots:
    __slots__ = ("seq",)

    def __init__(self, seq):
        self.seq = seq


@dataclass
class ExemptLike(Protocol):
    seq: int


def clone(token):
    return copy.deepcopy(token)
