"""Fixture receiver: handles Ping only — Orphan has no isinstance arm."""


class Node:
    def _receive(self, datagram, payload):
        if isinstance(payload, Ping):  # noqa: F821 — lint-only fixture
            return payload
        return None
