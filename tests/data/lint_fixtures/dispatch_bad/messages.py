"""Fixture registry: two session messages, one never dispatched (RC201)."""

SESSION_MESSAGES = {}


def session_message(cls):
    SESSION_MESSAGES[cls.__name__] = cls
    return cls


@session_message
class Ping:
    pass


@session_message
class Orphan:
    pass
