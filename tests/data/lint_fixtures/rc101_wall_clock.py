"""Fixture: RC101 — wall-clock reads outside repro/perf.py."""

import time
from datetime import datetime
from time import perf_counter


def stamp():
    return time.time()


def measure():
    return perf_counter()


def today():
    return datetime.now()
