"""RC403 clean counterpart: a pure contract rule passes even strict.

Local mutation (variables, dicts built inside the call) is fine — the
purity contract only forbids state that outlives one evaluation.
"""

from repro.obs.monitor import contract_rule


@contract_rule("pure-rule")
def check_pure(w):
    armed = {}
    worst = 0.0
    for event in w.kinds("fd.arm"):
        armed[(event.args[0], event.args[1])] = event.at
    for event in w.kinds("fd.fire"):
        started = armed.pop((event.args[0], event.args[1]), None)
        if started is not None:
            worst = max(worst, event.at - started)
    bound = w.params.get("bound", 0.15)
    if worst > bound:
        return (w.start, worst, f"fd latency {worst:.3f}s > {bound:.3f}s")
    return None
