"""Fixture: RC003 — a pragma that suppresses nothing (strict mode only)."""

VALUE = 3  # raincheck: disable=RC101 -- nothing on this line reads the clock
