"""Fixture: socket (and heapq) are legitimate inside repro/runtime/."""

import heapq
import socket


def open_udp():
    return socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
