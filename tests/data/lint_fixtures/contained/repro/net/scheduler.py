"""Fixture: heapq and loop internals are legitimate inside repro/net/."""

import heapq


class MiniLoop:
    def __init__(self):
        self._heap = []

    def push(self, item):
        heapq.heappush(self._heap, item)
