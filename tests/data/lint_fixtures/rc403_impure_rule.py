"""RC403 fixture: contract-monitor rules that read ambient state."""

import time

from repro.obs.monitor import contract_rule

_LAST_SEEN = {}


@contract_rule("wall-clock-rule")
def check_with_wall_clock(w):
    started = time.perf_counter()  # BAD: wall-clock read inside a rule
    if len(w.events) == 0:
        return (w.start, 0.0, f"took {time.perf_counter() - started}")  # BAD
    return None


@contract_rule("stateful-rule")
def check_with_global_state(w):
    global _LAST_SEEN  # BAD: carries state between evaluations
    _LAST_SEEN[w.node] = w.end
    return None


@contract_rule("mutating-rule")
def check_mutates_window(w):
    w.params["count"] = len(w.events)  # ok: subscript, caught at runtime
    w.cursor = w.end  # BAD: attribute write on ambient object
    return None


@contract_rule("clock-peeking-rule")
def check_reads_loop_now(w, loop=None):
    if loop is not None and w.end < loop.now:  # BAD: ambient .now read
        return (w.start, w.end, "stale window")
    return None


# Not a contract rule: the same constructs are fine elsewhere (RC101
# still covers wall-clock reads, but RC403 must stay silent here).
def helper(obj):
    obj.cursor = 0
    return obj
