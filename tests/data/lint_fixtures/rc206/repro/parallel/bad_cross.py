"""Fixture: cross-shard access bypassing the exchange (all flagged)."""


class BadCoordinator:
    def __init__(self, shards):
        self.shards = shards

    def poke_peer_loop(self, i, when, fn):
        self.shards[i].loop.call_at(when, fn)  # RC206: schedule into peer

    def poke_peer_network(self, k, src, dst, payload):
        self.shards[k].network.send(src, dst, payload, 10)  # RC206

    def poke_peer_state(self, i):
        self.shards[i].node.epoch = 7  # RC206: assign into peer object


def free_function(workers, i):
    workers[i].nodes["n0"].crash()  # RC206: mutate through collection
