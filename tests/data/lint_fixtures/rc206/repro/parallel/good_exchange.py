"""Fixture: sanctioned shapes that RC206 must not flag."""


class GoodExchange:
    """Exchange classes are the sanctioned cross-shard path (exempt)."""

    def __init__(self, shards):
        self.shards = shards

    def flush(self, i, packet, when):
        self.shards[i].network.send(packet.src, packet.dst, packet, 1)


class GoodCoordinator:
    def __init__(self, ctx, n):
        # Building the collection is legal: subscript *stores* are fine.
        self.workers = {}
        for i in range(n):
            self.workers[i] = ctx.Process(target=None)

    def route(self, exchange, packet, when):
        # Cross-shard traffic through the exchange: the sanctioned path.
        exchange.submit(packet, when)

    def local_only(self, instance, when, fn):
        # Scheduling into *your own* loop is not a cross-shard access.
        instance.loop.call_at(when, fn)

    def read_peer(self, i):
        # Reads are allowed (reporting/asserts); only mutators fire.
        return self.workers[i].exitcode
