"""RC401 fixture: eager string formatting inside probe.emit() arguments."""


class Node:
    def __init__(self, probe, bus):
        self.probe = probe
        self.node_bus = bus

    def hop(self, peer, seq):
        probe = self.probe
        if probe is not None:
            probe.emit(self.node_id, "fd.arm", f"peer={peer}")  # BAD: f-string
            probe.emit(self.node_id, "fd.arm", "seq=%d" % seq)  # BAD: %-format
            probe.emit(self.node_id, "fd.arm", "{}".format(peer))  # BAD: .format
            probe.emit(self.node_id, "fd.arm", peer, seq)  # ok: raw fields
        self.node_bus.emit(self.node_id, "fd.fire", kind=f"x{seq}")  # BAD: kwarg
        # Not a probe receiver: formatting is fine elsewhere.
        self.log.emit(f"forwarding to {peer}")
