"""Fixture: RC000 — file does not parse."""

def broken(:
    pass
