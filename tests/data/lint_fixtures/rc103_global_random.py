"""Fixture: RC103 — global (process-seeded) RNG use."""

import random
from random import randint

from random import Random  # allowed: the seedable class


def draw():
    return random.random()


def pick(rng):
    return rng.choice([1, 2])  # allowed: method on a bound RNG instance
