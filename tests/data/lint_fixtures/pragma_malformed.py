"""Fixture: RC001 — pragma that does not parse."""

VALUE = 1  # raincheck: disabled=RC101 -- typo in the directive keyword
