"""RC402 fixture: probe events timestamped outside the bus."""

from repro.obs.probe import ProbeEvent


def forge(loop, probe):
    # BAD: hand-built event outside repro/obs/ can invent its timestamp.
    event = ProbeEvent(1, 0.5, "A", "token.accept", ("B", "A.1", 3, 0))
    # BAD: at= smuggles a caller-chosen timestamp into the emit call.
    probe.emit("A", "core.wakeup", at=loop.now)
    # ok: the bus stamps loop.now itself.
    probe.emit("A", "core.wakeup")
    return event
