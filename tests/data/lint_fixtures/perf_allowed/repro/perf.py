"""Fixture: wall-clock reads are allowed in repro/perf.py (benchmark harness)."""

import time


def wall_elapsed(start):
    return time.perf_counter() - start
