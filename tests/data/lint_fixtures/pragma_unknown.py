"""Fixture: RC001 — pragma naming an unknown rule id."""

VALUE = 2  # raincheck: disable=RC999 -- no such rule exists
