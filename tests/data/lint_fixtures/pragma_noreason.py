"""Fixture: RC002 — a suppression without justification is inert."""

import time

STAMP = time.time()  # raincheck: disable=RC101
