"""Fixture: RC202 — heapq outside repro/net and repro/runtime."""

import heapq


def pop(items):
    heapq.heapify(items)
    return heapq.heappop(items)
