"""Fixture: RC204 — EventLoop/SimClock internals touched outside repro/net."""


def peek(loop):
    return loop._heap[0]


def skip_ahead(clock):
    clock.advance_to(5.0)
