"""Fixture: disable-file suppresses matching violations anywhere in the file."""

# raincheck: disable-file=RC105 -- fixture: hash order is irrelevant here


def drain(pending):
    return [x for x in set(pending)]
