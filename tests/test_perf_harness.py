"""Smoke tests for the perf-regression harness (:mod:`repro.perf`)."""

from __future__ import annotations

import json

import pytest

from repro import perf
from repro.cli import main


def test_run_suite_quick_reports_all_metrics():
    report = perf.run_suite(quick=True, repeats=1)
    metrics = report["metrics"]
    assert set(metrics) == {
        "event_loop_events_per_sec",
        "loaded_ring_events_per_sec",
        "token_hops_per_sec",
        "wall_clock_per_sim_second",
        "probe_overhead_ratio",
        "monitor_overhead_ratio",
        "resync_overhead_ratio",
        "prof_overhead_ratio",
        "agg_overhead_ratio",
        "telemetry_overhead_ratio",
        "shard_scaling_efficiency_4x",
    }
    assert all(v > 0 for v in metrics.values())
    assert report["quick"] is True
    assert report["workload"]["ring_nodes"] == 8
    scaling = report["shard_scaling"]
    assert set(scaling["curve"]) == {"1", "2", "4", "8"}
    assert scaling["curve"]["1"]["speedup"] == 1.0


def test_compare_passes_identical_reports():
    metrics = {
        "event_loop_events_per_sec": 1000,
        "loaded_ring_events_per_sec": 100,
        "wall_clock_per_sim_second": 0.01,
    }
    assert perf.compare({"metrics": metrics}, {"metrics": dict(metrics)}, 0.30) == []


def test_compare_flags_rate_and_latency_regressions():
    base = {
        "event_loop_events_per_sec": 1000,
        "wall_clock_per_sim_second": 0.01,
    }
    bad = {
        "event_loop_events_per_sec": 500,  # 2x slower
        "wall_clock_per_sim_second": 0.02,  # 2x slower (higher is worse)
    }
    problems = perf.compare({"metrics": bad}, {"metrics": base}, 0.30)
    assert len(problems) == 2
    # Within tolerance: 25% down on a 30% gate is fine.
    ok = {"event_loop_events_per_sec": 750, "wall_clock_per_sim_second": 0.012}
    assert perf.compare({"metrics": ok}, {"metrics": base}, 0.30) == []


def test_compare_ignores_unshared_metrics():
    base = {"event_loop_events_per_sec": 1000, "brand_new_metric": 5}
    cur = {"event_loop_events_per_sec": 1000}
    assert perf.compare({"metrics": cur}, {"metrics": base}, 0.30) == []


def test_cli_bench_writes_report_and_gates(tmp_path, capsys):
    out = tmp_path / "bench.json"
    assert main(["bench", "--quick", "--repeats", "1", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["metrics"]["loaded_ring_events_per_sec"] > 0

    # A sky-high baseline must trip the gate; a tiny one must pass.
    impossible = tmp_path / "impossible.json"
    impossible.write_text(
        json.dumps({"metrics": {"loaded_ring_events_per_sec": 10**12}})
    )
    assert (
        main(["bench", "--quick", "--repeats", "1", "--check", str(impossible)]) == 1
    )
    trivial = tmp_path / "trivial.json"
    trivial.write_text(json.dumps({"metrics": {"loaded_ring_events_per_sec": 1}}))
    assert main(["bench", "--quick", "--repeats", "1", "--check", str(trivial)]) == 0
    capsys.readouterr()


def test_append_history_creates_and_appends(tmp_path):
    path = tmp_path / "history.json"
    report = {"quick": True, "metrics": {"loaded_ring_events_per_sec": 123}}
    row = perf.append_history(str(path), report, git_sha="abc1234", label="first")
    assert row["git_sha"] == "abc1234"
    assert row["date"]  # stamped inside perf (RC101: wall clock lives here)
    perf.append_history(str(path), report, git_sha="def5678")
    history = json.loads(path.read_text())
    assert history["schema"] == 1
    assert [r["git_sha"] for r in history["rows"]] == ["abc1234", "def5678"]
    assert history["rows"][0]["label"] == "first"
    assert history["rows"][1]["metrics"]["loaded_ring_events_per_sec"] == 123


def test_append_history_rejects_foreign_file(tmp_path):
    path = tmp_path / "notes.json"
    path.write_text(json.dumps({"something": "else"}))
    with pytest.raises(ValueError, match="rows"):
        perf.append_history(str(path), {"metrics": {}}, git_sha="abc")


def test_cli_bench_record_appends_row(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    path = tmp_path / "hist.json"
    assert main(["bench", "--quick", "--repeats", "1", "--record", str(path)]) == 0
    history = json.loads(path.read_text())
    assert len(history["rows"]) == 1
    assert history["rows"][0]["quick"] is True
    assert history["rows"][0]["metrics"]["loaded_ring_events_per_sec"] > 0
    capsys.readouterr()
