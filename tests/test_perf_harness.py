"""Smoke tests for the perf-regression harness (:mod:`repro.perf`)."""

from __future__ import annotations

import json

from repro import perf
from repro.cli import main


def test_run_suite_quick_reports_all_metrics():
    report = perf.run_suite(quick=True, repeats=1)
    metrics = report["metrics"]
    assert set(metrics) == {
        "event_loop_events_per_sec",
        "loaded_ring_events_per_sec",
        "token_hops_per_sec",
        "wall_clock_per_sim_second",
        "probe_overhead_ratio",
        "monitor_overhead_ratio",
        "resync_overhead_ratio",
    }
    assert all(v > 0 for v in metrics.values())
    assert report["quick"] is True
    assert report["workload"]["ring_nodes"] == 8


def test_compare_passes_identical_reports():
    metrics = {
        "event_loop_events_per_sec": 1000,
        "loaded_ring_events_per_sec": 100,
        "wall_clock_per_sim_second": 0.01,
    }
    assert perf.compare({"metrics": metrics}, {"metrics": dict(metrics)}, 0.30) == []


def test_compare_flags_rate_and_latency_regressions():
    base = {
        "event_loop_events_per_sec": 1000,
        "wall_clock_per_sim_second": 0.01,
    }
    bad = {
        "event_loop_events_per_sec": 500,  # 2x slower
        "wall_clock_per_sim_second": 0.02,  # 2x slower (higher is worse)
    }
    problems = perf.compare({"metrics": bad}, {"metrics": base}, 0.30)
    assert len(problems) == 2
    # Within tolerance: 25% down on a 30% gate is fine.
    ok = {"event_loop_events_per_sec": 750, "wall_clock_per_sim_second": 0.012}
    assert perf.compare({"metrics": ok}, {"metrics": base}, 0.30) == []


def test_compare_ignores_unshared_metrics():
    base = {"event_loop_events_per_sec": 1000, "brand_new_metric": 5}
    cur = {"event_loop_events_per_sec": 1000}
    assert perf.compare({"metrics": cur}, {"metrics": base}, 0.30) == []


def test_cli_bench_writes_report_and_gates(tmp_path, capsys):
    out = tmp_path / "bench.json"
    assert main(["bench", "--quick", "--repeats", "1", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["metrics"]["loaded_ring_events_per_sec"] > 0

    # A sky-high baseline must trip the gate; a tiny one must pass.
    impossible = tmp_path / "impossible.json"
    impossible.write_text(
        json.dumps({"metrics": {"loaded_ring_events_per_sec": 10**12}})
    )
    assert (
        main(["bench", "--quick", "--repeats", "1", "--check", str(impossible)]) == 1
    )
    trivial = tmp_path / "trivial.json"
    trivial.write_text(json.dumps({"metrics": {"loaded_ring_events_per_sec": 1}}))
    assert main(["bench", "--quick", "--repeats", "1", "--check", str(trivial)]) == 0
    capsys.readouterr()
