"""Larger-scale Rainwall scenarios beyond the paper's 4-gateway testbed."""

import pytest

from repro.apps.rainwall import RainwallCluster, RainwallConfig

pytestmark = [pytest.mark.integration, pytest.mark.slow]


def test_eight_gateway_cluster_scales():
    cfg = RainwallConfig(
        vips=[f"10.1.0.{i}" for i in range(1, 9)],
        arrival_rate=1000.0,
    )
    rw = RainwallCluster([f"g{i}" for i in range(8)], seed=5, config=cfg)
    rw.start()
    rw.run(6.0)
    tp = rw.throughput_mbps(since=rw.loop.now - 4.0)
    assert tp == pytest.approx(8 * 95.0, rel=0.06)
    assert all(pct < 1.0 for pct in rw.rainwall_cpu_percent(6.0).values())


def test_double_failure_sequential():
    """Two gateways die one after another; traffic keeps converging to the
    survivors' capacity with no lost connections."""
    cfg = RainwallConfig(
        vips=[f"10.1.0.{i}" for i in range(1, 5)], arrival_rate=500.0
    )
    rw = RainwallCluster([f"g{i}" for i in range(4)], seed=9, config=cfg)
    rw.start()
    rw.run(3.0)
    rw.crash_gateway("g3")
    rw.run(3.0)
    rw.crash_gateway("g1")
    rw.run(6.0)
    assert set(rw.raincore.node("g0").members) == {"g0", "g2"}
    assert rw.throughput_mbps(since=rw.loop.now - 2.0) == pytest.approx(
        190.0, rel=0.1
    )
    lost = sum(
        1 for f in rw.engine.flows.values() if not f.done and f.gateway is None
    )
    assert lost == 0
    assert max(f.total_stall for f in rw.engine.flows.values()) < 2.0


def test_vip_count_exceeding_gateways():
    """More VIPs than gateways: every VIP still owned and serving."""
    cfg = RainwallConfig(
        vips=[f"10.1.0.{i}" for i in range(1, 11)], arrival_rate=300.0
    )
    rw = RainwallCluster(["g0", "g1", "g2"], seed=2, config=cfg)
    rw.start()
    rw.run(3.0)
    table = rw.vip_managers["g0"].assignment()
    assert len(table) == 10
    owners = set(table.values())
    assert owners == {"g0", "g1", "g2"}
    counts = [list(table.values()).count(g) for g in sorted(owners)]
    assert max(counts) - min(counts) <= 1  # balanced ±1
