"""Unit tests for the Raincore Transport Service (paper §2.1)."""

import pytest

from repro.net.datagram import DatagramNetwork
from repro.net.eventloop import EventLoop
from repro.net.topology import Topology, build_switched_cluster
from repro.transport.messages import (
    AckFrame,
    BareFrame,
    DataFrame,
    TRANSPORT_HEADER,
    UDP_IP_HEADER,
    frame_size,
)
from repro.transport.multipath import SendStrategy, plan_routes
from repro.transport.reliable import ReliableUnicast, TransportConfig


def make_pair(segments=1, loss=0.0, seed=0, config=None, node_ids=("A", "B")):
    loop = EventLoop(seed=seed)
    topo = Topology()
    build_switched_cluster(topo, list(node_ids), segments=segments, loss=loss)
    net = DatagramNetwork(loop, topo)
    transports = {
        nid: ReliableUnicast(nid, loop, net, config) for nid in node_ids
    }
    for t in transports.values():
        t.start()
    return loop, topo, net, transports


# ----------------------------------------------------------------------
# frame model
# ----------------------------------------------------------------------
class _Sized:
    def wire_size(self):
        return 100


def test_data_frame_size_includes_headers():
    f = DataFrame("A", "B", 1, _Sized())
    assert frame_size(f) == UDP_IP_HEADER + TRANSPORT_HEADER + 100


def test_data_frame_size_bytes_payload():
    f = DataFrame("A", "B", 1, b"12345")
    assert frame_size(f) == UDP_IP_HEADER + TRANSPORT_HEADER + 5


def test_ack_frame_is_header_only():
    assert frame_size(AckFrame("A", "B", 1)) == UDP_IP_HEADER + TRANSPORT_HEADER


def test_bare_frame_size():
    f = BareFrame("A", "B", b"xyz")
    assert frame_size(f) == UDP_IP_HEADER + TRANSPORT_HEADER + 3


def test_unsized_payload_rejected():
    f = DataFrame("A", "B", 1, object())
    with pytest.raises(TypeError):
        f.payload_size()


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError):
        TransportConfig(retx_timeout=0)
    with pytest.raises(ValueError):
        TransportConfig(attempts_per_route=0)
    with pytest.raises(ValueError):
        TransportConfig(dedup_window=0)


def test_failure_detection_bound():
    cfg = TransportConfig(retx_timeout=0.05, attempts_per_route=3)
    assert cfg.failure_detection_bound(1) == pytest.approx(0.15)
    assert cfg.failure_detection_bound(2) == pytest.approx(0.30)
    par = TransportConfig(
        retx_timeout=0.05, attempts_per_route=3, strategy=SendStrategy.PARALLEL
    )
    assert par.failure_detection_bound(2) == pytest.approx(0.15)


# ----------------------------------------------------------------------
# multipath planning
# ----------------------------------------------------------------------
def test_plan_routes_matches_segments():
    loop, topo, net, _ = make_pair(segments=2)
    plan = plan_routes(topo, "A", "B")
    assert plan.pairs == (("A@net0", "B@net0"), ("A@net1", "B@net1"))


def test_plan_routes_empty_without_shared_segment():
    loop = EventLoop()
    topo = Topology()
    topo.add_segment(__import__("repro.net.topology", fromlist=["Segment"]).Segment("s1"))
    topo.add_segment(__import__("repro.net.topology", fromlist=["Segment"]).Segment("s2"))
    topo.add_node("A")
    topo.add_node("B")
    topo.attach("A", "a1", "s1")
    topo.attach("B", "b2", "s2")
    assert not plan_routes(topo, "A", "B")


# ----------------------------------------------------------------------
# reliable delivery
# ----------------------------------------------------------------------
def test_basic_acked_delivery():
    loop, topo, net, t = make_pair()
    got, results = [], []
    t["B"].set_receiver(lambda src, p: got.append((src, p)))
    t["A"].send("B", b"payload", on_result=results.append)
    loop.run_for(1.0)
    assert got == [("A", b"payload")]
    assert results == [True]


def test_retransmit_recovers_from_loss():
    loop, topo, net, t = make_pair(loss=0.6, seed=5)
    got, results = [], []
    t["B"].set_receiver(lambda src, p: got.append(p))
    cfg_bound = t["A"].config.failure_detection_bound()
    delivered = 0
    for i in range(50):
        t["A"].send("B", f"m{i}".encode(), on_result=results.append)
        loop.run_for(max(1.0, 2 * cfg_bound))
    # With 3 attempts at 60% loss, ~94% get through; far more than half.
    assert len(got) > 30
    assert len(results) == 50
    # A success report implies delivery; the converse does not hold — the
    # message may arrive while every ack is lost (the false-alarm case the
    # session layer's 911 protocol exists to heal).
    assert results.count(True) <= len(got)


def test_duplicates_suppressed_but_always_acked():
    """Lost acks cause retransmits; the receiver must deliver once."""
    loop, topo, net, t = make_pair()
    got = []
    t["B"].set_receiver(lambda src, p: got.append(p))
    # Force a duplicate by sending the same DataFrame twice at datagram level.
    frame = DataFrame("A", "B", 999, b"dup")
    net.send("A@net0", "B@net0", frame, frame_size(frame))
    net.send("A@net0", "B@net0", frame, frame_size(frame))
    loop.run_for(0.1)
    assert got == [b"dup"]


def test_failure_on_delivery_when_peer_down():
    loop, topo, net, t = make_pair()
    topo.set_node_up("B", False)
    results = []
    t["A"].send("B", b"x", on_result=results.append)
    loop.run_for(2.0)
    assert results == [False]
    assert t["A"].pending_count() == 0


def test_failure_detection_latency_within_bound():
    cfg = TransportConfig(retx_timeout=0.05, attempts_per_route=3)
    loop, topo, net, t = make_pair(config=cfg)
    topo.set_node_up("B", False)
    failed_at = []
    t["A"].send("B", b"x", on_result=lambda ok: failed_at.append(loop.now))
    loop.run_for(2.0)
    assert failed_at[0] <= cfg.failure_detection_bound(1) + 0.01


def test_no_route_fails_async():
    loop, topo, net, t = make_pair()
    # Detach B entirely by using an unknown destination node.
    with pytest.raises(KeyError):
        t["A"].send("Z", b"x")


def test_send_to_self_rejected():
    loop, topo, net, t = make_pair()
    with pytest.raises(ValueError):
        t["A"].send("A", b"x")


def test_send_requires_started_transport():
    loop, topo, net, t = make_pair()
    t["A"].stop()
    with pytest.raises(RuntimeError):
        t["A"].send("B", b"x")


def test_stop_abandons_pending_without_callbacks():
    loop, topo, net, t = make_pair()
    topo.set_node_up("B", False)
    results = []
    t["A"].send("B", b"x", on_result=results.append)
    t["A"].stop()
    loop.run_for(2.0)
    assert results == []


def test_cancel_send():
    loop, topo, net, t = make_pair()
    topo.set_node_up("B", False)
    results = []
    msg_id = t["A"].send("B", b"x", on_result=results.append)
    t["A"].cancel(msg_id)
    loop.run_for(2.0)
    assert results == []


# ----------------------------------------------------------------------
# redundant links (paper §2.1 item 2)
# ----------------------------------------------------------------------
def test_sequential_fails_over_to_second_link():
    loop, topo, net, t = make_pair(segments=2)
    topo.set_nic_up("B@net0", False)  # first link dead
    got, results = [], []
    t["B"].set_receiver(lambda src, p: got.append(p))
    t["A"].send("B", b"via-link-2", on_result=results.append)
    loop.run_for(2.0)
    assert got == [b"via-link-2"]
    assert results == [True]


def test_parallel_strategy_delivers_once_despite_duplicates():
    cfg = TransportConfig(strategy=SendStrategy.PARALLEL)
    loop, topo, net, t = make_pair(segments=2, config=cfg)
    got, results = [], []
    t["B"].set_receiver(lambda src, p: got.append(p))
    t["A"].send("B", b"x", on_result=results.append)
    loop.run_for(1.0)
    assert got == [b"x"]
    assert results == [True]


def test_failure_needs_all_links_down():
    loop, topo, net, t = make_pair(segments=2)
    topo.set_nic_up("B@net0", False)
    topo.set_nic_up("B@net1", False)
    results = []
    t["A"].send("B", b"x", on_result=results.append)
    loop.run_for(2.0)
    assert results == [False]


# ----------------------------------------------------------------------
# best-effort sends (BODYODOR path)
# ----------------------------------------------------------------------
def test_best_effort_delivery():
    loop, topo, net, t = make_pair()
    got = []
    t["B"].set_receiver(lambda src, p: got.append((src, p)))
    t["A"].send_best_effort("B", b"beacon")
    loop.run_for(0.1)
    assert got == [("A", b"beacon")]


def test_best_effort_single_packet_no_retx():
    loop, topo, net, t = make_pair(loss=1.0)
    t["A"].send_best_effort("B", b"beacon")
    loop.run_for(1.0)
    assert net.stats.for_node("A").packets_sent == 1  # exactly one, no retries
