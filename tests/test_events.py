"""Unit tests for listener plumbing (events module)."""

from repro.core.events import (
    CompositeListener,
    Delivery,
    RecordingListener,
    SessionListener,
    ViewChange,
    ensure_composite,
)
from repro.core.states import NodeState
from repro.core.token import Ordering


def view(members=("A", "B"), vid=1, at=0.0):
    return ViewChange(vid, members, at)


def delivery(payload="x", origin="A"):
    return Delivery(origin, 1, payload, Ordering.AGREED, 0.0)


def test_base_listener_is_noop():
    listener = SessionListener()
    listener.on_view_change(view())
    listener.on_deliver(delivery())
    listener.on_state_change(NodeState.HUNGRY, NodeState.EATING)
    listener.on_shutdown("bye")  # nothing raised


def test_recording_listener_records_everything():
    rec = RecordingListener()
    rec.on_view_change(view())
    rec.on_deliver(delivery("p1"))
    rec.on_deliver(delivery("p2"))
    rec.on_state_change(NodeState.HUNGRY, NodeState.EATING)
    rec.on_shutdown("reason")
    assert rec.current_members == ("A", "B")
    assert rec.delivered_payloads == ["p1", "p2"]
    assert rec.delivery_keys == [("A", 1), ("A", 1)]
    assert rec.transitions == [(NodeState.HUNGRY, NodeState.EATING)]
    assert rec.shutdowns == ["reason"]


def test_recording_listener_empty_accessors():
    rec = RecordingListener()
    assert rec.current_members == ()
    assert rec.delivered_payloads == []


def test_composite_fans_out_in_order():
    calls = []

    class Tagged(SessionListener):
        def __init__(self, tag):
            self.tag = tag

        def on_deliver(self, d):
            calls.append(self.tag)

    composite = CompositeListener(Tagged(1), Tagged(2))
    composite.add(Tagged(3))
    composite.on_deliver(delivery())
    assert calls == [1, 2, 3]


def test_composite_forwards_all_event_kinds():
    rec = RecordingListener()
    composite = CompositeListener(rec)
    composite.on_view_change(view())
    composite.on_deliver(delivery())
    composite.on_state_change(NodeState.HUNGRY, NodeState.EATING)
    composite.on_shutdown("x")
    assert rec.views and rec.deliveries and rec.transitions and rec.shutdowns


def test_composite_remove():
    rec = RecordingListener()
    composite = CompositeListener(rec)
    composite.remove(rec)
    composite.on_deliver(delivery())
    assert rec.deliveries == []


class _FakeNode:
    def __init__(self):
        self.listener = RecordingListener()


def test_ensure_composite_wraps_once():
    node = _FakeNode()
    original = node.listener
    composite = ensure_composite(node)
    assert isinstance(node.listener, CompositeListener)
    assert original in node.listener.listeners
    again = ensure_composite(node)
    assert again is composite  # no double wrapping


def test_ensure_composite_preserves_original_events():
    node = _FakeNode()
    original = node.listener
    composite = ensure_composite(node)
    extra = RecordingListener()
    composite.add(extra)
    node.listener.on_deliver(delivery("both"))
    assert original.delivered_payloads == ["both"]
    assert extra.delivered_payloads == ["both"]
