"""Property-based tests for the reliable transport under random loss."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.datagram import DatagramNetwork
from repro.net.eventloop import EventLoop
from repro.net.topology import Topology, build_switched_cluster
from repro.transport.multipath import SendStrategy
from repro.transport.reliable import ReliableUnicast, TransportConfig


def make_pair(loss, seed, strategy, segments=1, attempts=3):
    loop = EventLoop(seed=seed)
    topo = Topology()
    build_switched_cluster(topo, ["A", "B"], segments=segments, loss=loss)
    net = DatagramNetwork(loop, topo)
    cfg = TransportConfig(strategy=strategy, attempts_per_route=attempts)
    ta = ReliableUnicast("A", loop, net, cfg)
    tb = ReliableUnicast("B", loop, net, cfg)
    ta.start()
    tb.start()
    return loop, topo, net, ta, tb


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    loss=st.floats(0.0, 0.8),
    seed=st.integers(0, 2**16),
    strategy=st.sampled_from(list(SendStrategy)),
    segments=st.integers(1, 3),
    n_msgs=st.integers(1, 20),
)
def test_success_report_implies_delivery(loss, seed, strategy, segments, n_msgs):
    """Soundness: every True result corresponds to an actual delivery, and
    the receiver never sees a payload twice."""
    loop, topo, net, ta, tb = make_pair(loss, seed, strategy, segments)
    got: list[object] = []
    results: list[bool] = []
    tb.set_receiver(lambda src, p: got.append(p))
    for i in range(n_msgs):
        ta.send("B", f"msg-{i}".encode(), on_result=results.append)
    loop.run_for(10.0)
    assert len(results) == n_msgs  # every send resolves exactly once
    assert len(got) == len(set(got))  # exactly-once delivery
    assert results.count(True) <= len(got)  # success implies delivered
    assert ta.pending_count() == 0


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 2**16),
    strategy=st.sampled_from(list(SendStrategy)),
    attempts=st.integers(1, 5),
)
def test_zero_loss_always_succeeds(seed, strategy, attempts):
    loop, topo, net, ta, tb = make_pair(0.0, seed, strategy, 2, attempts)
    got, results = [], []
    tb.set_receiver(lambda src, p: got.append(p))
    for i in range(10):
        ta.send("B", str(i).encode(), on_result=results.append)
    loop.run_for(5.0)
    assert results == [True] * 10
    assert sorted(got) == [str(i).encode() for i in range(10)]


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**16), strategy=st.sampled_from(list(SendStrategy)))
def test_total_blackout_always_fails_within_bound(seed, strategy):
    loop, topo, net, ta, tb = make_pair(1.0, seed, strategy, 2)
    resolved_at: list[float] = []
    ta.send("B", "x", on_result=lambda ok: resolved_at.append(loop.now))
    loop.run_for(10.0)
    assert len(resolved_at) == 1
    bound = ta.config.failure_detection_bound(2)
    assert resolved_at[0] <= bound + 0.01


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    loss=st.floats(0.3, 0.9),
    seed=st.integers(0, 2**16),
)
def test_redundant_links_never_worse_than_single(loss, seed):
    """Success probability with two segments is at least that with one
    (same seed, same message count)."""

    def successes(segments):
        loop, topo, net, ta, tb = make_pair(
            loss, seed, SendStrategy.PARALLEL, segments
        )
        tb.set_receiver(lambda src, p: None)
        results = []
        for i in range(15):
            ta.send("B", str(i).encode(), on_result=results.append)
        loop.run_for(10.0)
        return results.count(True)

    # Not a per-seed guarantee (different RNG draws), so compare with slack.
    assert successes(2) >= successes(1) - 3
