"""Unit tests for session-layer control messages and multicast internals."""

import pytest

from repro.core.multicast import DeferredPayload
from repro.core.token import Ordering
from repro.core.wire import BodyOdor, NineOneOne, NineOneOneReply, ReplyVerdict
from tests.conftest import make_cluster


def test_control_message_sizes_are_small():
    """The paper stresses BODYODOR is 'a small message'; all control
    messages must be tiny relative to a loaded token."""
    assert NineOneOne("A", 5, 1).wire_size() <= 64
    assert NineOneOneReply("B", 1, ReplyVerdict.GRANT, 5).wire_size() <= 64
    assert BodyOdor("A", "A").wire_size() <= 64


def test_messages_are_frozen():
    msg = NineOneOne("A", 5, 1)
    with pytest.raises(Exception):
        msg.sender = "B"  # type: ignore[misc]


def test_reply_verdicts_enumerated():
    assert {v.value for v in ReplyVerdict} == {
        "grant",
        "deny_have_token",
        "deny_newer_copy",
        "join_pending",
    }


# ----------------------------------------------------------------------
# DeferredPayload: attach-time materialization
# ----------------------------------------------------------------------
def test_deferred_payload_materializes_at_attach():
    c = make_cluster("AB")
    c.start_all()
    state = {"value": "early"}

    def factory():
        return f"snapshot:{state['value']}", 32

    c.node("A").multicast(DeferredPayload(factory))
    state["value"] = "late"  # mutate before the token arrives at A
    c.run(1.0)
    payloads = [d.payload for d in c.listener("B").deliveries]
    assert payloads == ["snapshot:late"]


def test_deferred_payload_sees_prior_ordered_deliveries():
    """The factory runs after every message ordered before it has been
    delivered locally — the property replicated snapshots rely on."""
    c = make_cluster("AB")
    c.start_all()
    seen_at_factory = []

    def factory():
        seen_at_factory.extend(
            d.payload for d in c.listener("A").deliveries
        )
        return "snap", 8

    # B's message will be ordered before A's deferred one (B multicasts
    # via its own earlier token visit or the same round; either way, if it
    # is ordered before, A must have delivered it before materializing).
    c.node("B").multicast("b-first")
    c.run(0.5)
    c.node("A").multicast(DeferredPayload(factory))
    c.run(1.0)
    assert "b-first" in seen_at_factory


def test_deferred_payload_ordering_flag():
    c = make_cluster("AB")
    c.start_all()
    c.node("A").multicast(DeferredPayload(lambda: ("s", 8)), ordering=Ordering.SAFE)
    c.run(1.0)
    d = c.listener("B").deliveries[0]
    assert d.payload == "s"
    assert d.ordering is Ordering.SAFE
