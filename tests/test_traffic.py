"""Unit tests for the flow-level traffic engine."""

import pytest

from repro.apps.traffic import Flow, TrafficEngine
from repro.net.eventloop import EventLoop


def make_engine(admit=None, arrival_rate=100.0, flow_size=100_000.0, vips=None):
    loop = EventLoop(seed=5)
    engine = TrafficEngine(
        loop,
        admit if admit is not None else (lambda f: "gw"),
        vips if vips is not None else ["10.0.0.1"],
        arrival_rate=arrival_rate,
        flow_size=flow_size,
    )
    return loop, engine


def test_requires_vips_and_positive_rates():
    loop = EventLoop()
    with pytest.raises(ValueError):
        TrafficEngine(loop, lambda f: None, [])
    with pytest.raises(ValueError):
        TrafficEngine(loop, lambda f: None, ["v"], arrival_rate=0)
    with pytest.raises(ValueError):
        TrafficEngine(loop, lambda f: None, ["v"], tick=0)


def test_flows_arrive_at_configured_rate():
    loop, engine = make_engine(arrival_rate=200.0)
    engine.add_gateway("gw", capacity_bps=1e9)
    engine.start()
    loop.run_for(5.0)
    # Poisson(200 * 5) = 1000 expected; 5 sigma ~ 160.
    assert 800 < engine.stats.started < 1200


def test_throughput_capped_by_gateway_capacity():
    loop, engine = make_engine(arrival_rate=500.0, flow_size=1e6)
    engine.add_gateway("gw", capacity_bps=10e6)
    engine.start()
    loop.run_for(5.0)
    tp = engine.throughput_bps(since=1.0)
    assert tp == pytest.approx(10e6, rel=0.05)


def test_throughput_matches_offered_load_when_unsaturated():
    loop, engine = make_engine(arrival_rate=10.0, flow_size=100_000.0)
    engine.add_gateway("gw", capacity_bps=1e9)
    engine.start()
    loop.run_for(10.0)
    offered = 10.0 * 100_000.0 * 8  # 8 Mbit/s
    assert engine.throughput_bps(since=1.0) == pytest.approx(offered, rel=0.3)


def test_flows_complete_with_exact_bytes():
    loop, engine = make_engine(arrival_rate=5.0, flow_size=50_000.0)
    engine.add_gateway("gw", capacity_bps=100e6)
    engine.start()
    loop.run_for(5.0)
    done = [f for f in engine.flows.values() if f.done]
    assert done
    for f in done:
        assert f.done_bytes == pytest.approx(f.size_bytes)


def test_capacity_shared_between_flows():
    """Two concurrent flows each get half the capacity (processor sharing)."""
    loop, engine = make_engine(arrival_rate=1e-9)  # no background arrivals
    engine.add_gateway("gw", capacity_bps=8e6)  # 1 MB/s
    engine.start()
    for fid in (1, 2):
        flow = Flow(fid, "10.0.0.1", "c", 80, size_bytes=500_000.0, gateway="gw")
        engine.flows[fid] = flow
        engine.gateways["gw"].flows.add(fid)
    loop.run_for(1.05)
    # Both complete just after 1s (1 MB/s shared over 1 MB total).
    assert all(f.done for f in engine.flows.values())
    assert all(0.9 <= f.finished_at <= 1.1 for f in engine.flows.values())


def test_denied_flows_counted():
    loop, engine = make_engine(admit=lambda f: None)
    engine.add_gateway("gw")
    engine.start()
    loop.run_for(1.0)
    assert engine.stats.denied > 0
    assert engine.stats.started == 0


def test_gateway_down_stalls_its_flows():
    loop, engine = make_engine(arrival_rate=50.0)
    engine.add_gateway("gw", capacity_bps=1e6)  # slow: flows accumulate
    engine.start()
    loop.run_for(2.0)
    active_before = len(engine.gateways["gw"].flows)
    assert active_before > 0
    engine.set_gateway_up("gw", False)
    assert engine.gateways["gw"].flows == set()
    stalled = engine.stalled_flow_ids()
    assert len(stalled) >= active_before


def test_reassign_resumes_stalled_flows():
    loop, engine = make_engine(arrival_rate=50.0)
    engine.add_gateway("gw", capacity_bps=1e6)
    engine.add_gateway("gw2", capacity_bps=1e9)
    engine.start()
    loop.run_for(2.0)
    engine.set_gateway_up("gw", False)
    stalled = engine.stalled_flow_ids()
    t_stall = loop.now
    loop.run_for(0.5)
    resumed = engine.reassign_flows(stalled, lambda f: "gw2")
    assert resumed == len(stalled)
    for fid in stalled:
        assert engine.flows[fid].gateway == "gw2"
        assert engine.flows[fid].total_stall == pytest.approx(0.5, abs=0.01)


def test_reassign_skips_down_targets():
    loop, engine = make_engine(arrival_rate=50.0)
    engine.add_gateway("gw", capacity_bps=1e6)
    engine.add_gateway("gw2")
    engine.start()
    loop.run_for(1.0)
    engine.set_gateway_up("gw", False)
    engine.set_gateway_up("gw2", False)
    stalled = engine.stalled_flow_ids()
    assert engine.reassign_flows(stalled, lambda f: "gw2") == 0


def test_longest_gap_detects_outage():
    loop, engine = make_engine(arrival_rate=100.0, flow_size=200_000.0)
    engine.add_gateway("gw", capacity_bps=50e6)
    engine.start()
    loop.run_for(2.0)
    engine.set_gateway_up("gw", False)
    loop.run_for(1.5)  # outage
    engine.set_gateway_up("gw", True)
    engine.reassign_flows(engine.stalled_flow_ids(), lambda f: "gw")
    loop.run_for(2.0)
    gap = engine.longest_gap()
    assert 1.0 <= gap <= 2.0


def test_longest_gap_zero_when_healthy():
    loop, engine = make_engine(arrival_rate=100.0)
    engine.add_gateway("gw", capacity_bps=100e6)
    engine.start()
    loop.run_for(3.0)
    assert engine.longest_gap() < 0.2
