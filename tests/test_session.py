"""Integration tests for the session-service node lifecycle and token ring.

These exercise the paper's §2.2 behaviours end to end on the simulated
network: group formation, token circulation at the configured rate, state
machine cycling, view-change notification, and graceful departure.
"""

import pytest

from repro.core.states import NodeState
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


# ----------------------------------------------------------------------
# formation
# ----------------------------------------------------------------------
def test_singleton_group_forms():
    c = make_cluster("A")
    c.start_all()
    assert c.node("A").members == ("A",)
    assert c.node("A").group_id == "A"


def test_two_node_group_forms():
    c = make_cluster("AB")
    c.start_all()
    assert set(c.node("A").members) == {"A", "B"}
    assert c.node("A").members == c.node("B").members


def test_eight_node_group_forms():
    c = make_cluster([f"n{i:02d}" for i in range(8)])
    c.start_all()
    views = {cn.node.members for cn in c.nodes.values()}
    assert len(views) == 1
    assert len(next(iter(views))) == 8


def test_all_nodes_get_view_notifications():
    c = make_cluster("ABC")
    c.start_all()
    for nid in "ABC":
        assert c.listener(nid).current_members == c.node(nid).members
        assert len(c.listener(nid).views) >= 1


def test_group_id_is_lowest_node_id(abcd):
    for nid in "ABCD":
        assert abcd.node(nid).group_id == "A"


def test_double_start_rejected():
    c = make_cluster("AB")
    c.start_all()
    with pytest.raises(RuntimeError):
        c.node("A").start_new_group()
    with pytest.raises(RuntimeError):
        c.node("B").start_joining(["A"])


# ----------------------------------------------------------------------
# token circulation
# ----------------------------------------------------------------------
def test_exactly_one_token_normally(abcd):
    """Paper §2.5: token uniqueness — sampled over a quiescent run."""
    for _ in range(200):
        abcd.run(0.003)
        assert len(abcd.token_holders()) <= 1


def test_token_visits_every_node(abcd):
    """Fairness: every node holds the token (paper §2.7)."""
    seen = set()
    for _ in range(400):
        abcd.run(0.003)
        seen.update(abcd.token_holders())
        if len(seen) == 4:
            break
    assert seen == set("ABCD")


def test_token_rate_matches_hop_interval(abcd):
    """With N nodes at hop h the token does ~1/(N*h) roundtrips/sec."""
    node_a = abcd.node("A")
    visits = 0
    orig = node_a.multicast_service.on_token

    def counting(token):
        nonlocal visits
        visits += 1
        return orig(token)

    node_a.multicast_service.on_token = counting
    duration = 2.0
    abcd.run(duration)
    expected = duration / (4 * abcd.config.hop_interval)
    assert visits == pytest.approx(expected, rel=0.25)


def test_nodes_cycle_hungry_eating(abcd):
    abcd.run(1.0)
    transitions = abcd.listener("B").transitions
    pairs = set(transitions)
    assert (NodeState.HUNGRY, NodeState.EATING) in pairs
    assert (NodeState.EATING, NodeState.HUNGRY) in pairs


def test_seq_strictly_increases(abcd):
    node = abcd.node("A")
    seqs = []
    for _ in range(100):
        abcd.run(0.005)
        seqs.append(node.local_copy_seq)
    assert all(b >= a for a, b in zip(seqs, seqs[1:]))
    assert seqs[-1] > seqs[0]


# ----------------------------------------------------------------------
# graceful leave
# ----------------------------------------------------------------------
def test_voluntary_leave_shrinks_group(abcd):
    abcd.node("C").leave()
    assert abcd.run_until_converged(3.0, expected={"A", "B", "D"})
    assert abcd.node("C").state is NodeState.DOWN
    for nid in "ABD":
        assert "C" not in abcd.node(nid).members


def test_leave_of_last_member_dissolves_group():
    c = make_cluster("A")
    c.start_all()
    c.node("A").leave()
    c.run(1.0)
    assert c.node("A").state is NodeState.DOWN


def test_leaver_can_rejoin(abcd):
    abcd.node("C").leave()
    abcd.run_until_converged(3.0, expected={"A", "B", "D"})
    abcd.node("C").start_joining(["A"])
    assert abcd.run_until_converged(5.0, expected=set("ABCD"))


# ----------------------------------------------------------------------
# API guards
# ----------------------------------------------------------------------
def test_multicast_requires_live_node():
    c = make_cluster("AB")
    with pytest.raises(RuntimeError):
        c.node("A").multicast("x")


def test_run_exclusive_requires_live_node():
    c = make_cluster("AB")
    with pytest.raises(RuntimeError):
        c.node("A").run_exclusive(lambda: None)


def test_shutdown_is_idempotent(abcd):
    node = abcd.node("D")
    node.shutdown("test")
    node.shutdown("test-again")
    assert node.shutdown_reason == "test"
    assert abcd.listener("D").shutdowns == ["test"]


def test_determinism_identical_seeds_identical_histories():
    def history(seed):
        c = make_cluster("ABCD", seed=seed)
        c.start_all()
        for i, nid in enumerate("ABCD"):
            c.node(nid).multicast(f"m{i}")
        c.faults.crash_node("B")
        c.run(2.0)
        return (
            c.membership_views(),
            c.all_delivery_orders(),
            c.stats.per_node("task_switches"),
        )

    assert history(777) == history(777)
