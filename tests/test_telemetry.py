"""Unit tests for the raintap telemetry plane (no sockets, no processes).

The shipper and the collector are both plain objects with injected I/O
(``send`` callables, ``on_datagram`` entry points) and an injectable
clock, so the whole wire path — framing, restamping, watermark merge,
gaps, silence, postmortems — is testable synchronously.
"""

import json
import struct

import pytest

from repro.net.eventloop import EventLoop
from repro.obs import FlightRecorder, ProbeBus
from repro.obs.recorder import load_bundle
from repro.runtime.collector import TelemetryCollector, free_udp_ports
from repro.runtime.telemetry import (
    MAX_FRAME_BYTES,
    TELEMETRY_MAGIC,
    TELEMETRY_VERSION,
    FrameError,
    TelemetryShipper,
    decode_frame,
    encode_frame,
)


class FakeClock:
    """Injectable wall clock: ``now`` is set by the test, timers inert."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now
        self.scheduled = []

    def call_later(self, delay, callback, *args, priority=0):
        self.scheduled.append((delay, callback))

        class _Handle:
            def cancel(self) -> None:
                pass

        return _Handle()


# ----------------------------------------------------------------------
# frame codec
# ----------------------------------------------------------------------
def test_frame_roundtrip():
    body = {"t": "probe", "src": "A", "seq": 7, "ev": {"kind": "net.send"}}
    assert decode_frame(encode_frame(body)) == body


def test_frame_is_json_not_pickle():
    data = encode_frame({"t": "mark", "src": "A"})
    assert data.startswith(TELEMETRY_MAGIC)
    # Body after the 9-byte header is plain JSON: parseable by anyone,
    # executable by no one.
    json.loads(data[9:].decode())


@pytest.mark.parametrize(
    "data, where",
    [
        (b"\xff" * (MAX_FRAME_BYTES + 1), "oversized"),
        (b"", "bad-magic"),
        (b"RTA", "bad-magic"),
        (b"NOPE" + bytes(8), "bad-magic"),
        (TELEMETRY_MAGIC + struct.pack(">BI", TELEMETRY_VERSION + 1, 0), "bad-version"),
        # Length field disagrees with the actual payload.
        (TELEMETRY_MAGIC + struct.pack(">BI", TELEMETRY_VERSION, 99) + b"{}", "garbage"),
        # Payload is not JSON at all.
        (TELEMETRY_MAGIC + struct.pack(">BI", TELEMETRY_VERSION, 4) + b"\x00ab\xff", "garbage"),
        # JSON but not a tagged object.
        (TELEMETRY_MAGIC + struct.pack(">BI", TELEMETRY_VERSION, 2) + b"[]", "garbage"),
        (TELEMETRY_MAGIC + struct.pack(">BI", TELEMETRY_VERSION, 2) + b"{}", "garbage"),
    ],
)
def test_decode_rejects_malformed_frames(data, where):
    with pytest.raises(FrameError) as exc:
        decode_frame(data)
    assert exc.value.where == where


def test_encode_rejects_oversized_body():
    with pytest.raises(FrameError) as exc:
        encode_frame({"t": "probe", "pad": "x" * MAX_FRAME_BYTES})
    assert exc.value.where == "oversized"


# ----------------------------------------------------------------------
# shipper
# ----------------------------------------------------------------------
def probed_shipper(**kwargs):
    """(bus, shipper, decoded-frames sink) wired like a worker does it."""
    frames = []
    bus = ProbeBus(EventLoop(seed=1))
    shipper = TelemetryShipper("A", lambda d: frames.append(decode_frame(d)), **kwargs)
    bus.subscribe(shipper.on_probe)
    return bus, shipper, frames


def test_shipper_restamps_onto_the_epoch():
    bus, shipper, frames = probed_shipper(clock_offset=1000.0)
    bus.emit("A", "token.accept", "B", 1, 5, 0)
    (frame,) = frames
    assert frame["t"] == "probe" and frame["src"] == "A" and frame["seq"] == 1
    # sim time 0.0 + offset: the shipped stamp lives on the shared epoch.
    assert frame["ev"]["at"] == 1000.0
    assert frame["ev"]["kind"] == "token.accept"
    assert shipper.shipped == 1


def test_oversized_probe_consumes_its_seq():
    bus, shipper, frames = probed_shipper()
    bus.emit("A", "net.send", "s", "d", "x" * (MAX_FRAME_BYTES + 1), 1)
    assert frames == [] and shipper.oversized == 1 and shipper.shipped == 0
    bus.emit("A", "token.accept", "B", 1, 5, 0)
    # seq 1 was burned by the unshippable event — the collector sees an
    # honest telemetry.gap instead of a silently complete stream.
    assert frames[0]["seq"] == 2


def test_mark_and_bye_frames():
    bus, shipper, frames = probed_shipper()
    shipper.mark()
    shipper.bye()
    assert [f["t"] for f in frames] == ["mark", "bye"]
    assert isinstance(frames[0]["now"], float)
    assert frames[1]["shipped"] == 0


def test_pull_answers_with_chunked_ring():
    frames = []
    bus = ProbeBus(EventLoop(seed=1))
    recorder = FlightRecorder(bus, capacity=512)
    shipper = TelemetryShipper(
        "A", lambda d: frames.append(decode_frame(d)), recorder=recorder
    )
    for i in range(30):
        bus.emit("A", "token.accept", "B", 1, i, 0)
    shipper.on_datagram(encode_frame({"t": "pull"}))
    kinds = [f["t"] for f in frames]
    assert kinds == ["ring", "ring", "ring_end"]  # 30 events / 24 per chunk
    assert [f["part"] for f in frames[:2]] == [0, 1]
    end = frames[-1]
    assert end["parts"] == 2 and end["count"] == 30
    assert sum(len(f["events"]) for f in frames[:2]) == 30


def test_shipper_ignores_garbage_from_the_collector():
    bus, shipper, frames = probed_shipper()
    shipper.on_datagram(b"\x00junk")  # no raise, no reply
    shipper.on_datagram(encode_frame({"t": "mark", "src": "?"}))  # not a pull
    assert frames == []


# ----------------------------------------------------------------------
# collector
# ----------------------------------------------------------------------
def probe_frame(node: str, seq: int, at: float, kind="token.accept", args=None):
    return encode_frame(
        {
            "t": "probe",
            "src": node,
            "seq": seq,
            "ev": {
                "n": 0,
                "at": at,
                "node": node,
                "kind": kind,
                "args": ["x", 1, seq, 0] if args is None else args,
            },
        }
    )


def collected(**kwargs):
    """(collector, released events) with a FakeClock and no rules."""
    clock = FakeClock()
    collector = TelemetryCollector([], clock=clock, **kwargs)
    released = []
    collector.listeners.append(released.append)
    return collector, clock, released


def test_watermark_merge_releases_in_time_order():
    collector, clock, released = collected()
    peer_a, peer_b = ("127.0.0.1", 1), ("127.0.0.1", 2)
    # Arrival order disagrees with time order across the two sources.
    clock.now = 4.0
    collector.on_datagram(probe_frame("A", 1, at=1.0), peer_a)
    collector.on_datagram(probe_frame("A", 2, at=3.0), peer_a)
    collector.on_datagram(probe_frame("B", 1, at=2.0), peer_b)
    collector.on_datagram(probe_frame("B", 2, at=4.0), peer_b)
    clock.now = 4.5
    collector.flush()
    # Safe horizon = min(3.0, 4.0) - reorder: only the events both
    # watermarks have passed are out, and they come out time-ordered.
    assert [(e.node, e.at) for e in released] == [("A", 1.0), ("B", 2.0)]
    # Mark heartbeats advance both watermarks past 4.0 and free the rest.
    for node, peer in (("A", peer_a), ("B", peer_b)):
        collector.on_datagram(
            encode_frame(
                {"t": "mark", "src": node, "seq": 2, "shipped": 2, "now": 9.0}
            ),
            peer,
        )
    clock.now = 4.6
    collector.flush()
    assert [(e.node, e.at) for e in released] == [
        ("A", 1.0), ("B", 2.0), ("A", 3.0), ("B", 4.0),
    ]
    # Released ordinals are canonical: 1..N in release order.
    assert [e.n for e in released] == [1, 2, 3, 4]
    assert collector.events_released == 4


def test_seq_gap_is_reported_and_counted():
    collector, clock, released = collected()
    collector.on_datagram(probe_frame("A", 1, at=1.0), ("p", 1))
    collector.on_datagram(probe_frame("A", 4, at=2.0), ("p", 1))
    assert collector.gaps == 1 and collector.events_lost == 2
    clock.now = 10.0
    collector.flush(force=True)
    gap = [e for e in released if e.kind == "telemetry.gap"]
    assert len(gap) == 1
    assert gap[0].args == ("A", 2, 4, 2)  # expected seq 2, got 4, lost 2


def test_duplicate_frames_are_ignored():
    collector, clock, released = collected()
    frame = probe_frame("A", 1, at=1.0)
    collector.on_datagram(frame, ("p", 1))
    collector.on_datagram(frame, ("p", 1))  # late twin
    assert collector.sources["A"].received == 1
    assert collector.gaps == 0
    clock.now = 10.0
    collector.flush(force=True)
    assert len([e for e in released if e.kind == "token.accept"]) == 1


@pytest.mark.parametrize(
    "data, where",
    [
        (b"\xffgarbage-no-magic", "bad-magic"),
        (b"\xff" * (MAX_FRAME_BYTES + 1), "oversized"),
        (encode_frame({"t": "probe", "src": "A", "seq": "x", "ev": {}}), "garbage"),
        (encode_frame({"t": "probe", "src": "A", "seq": 1,
                       "ev": {"n": 0, "at": 0.0, "node": "A",
                              "kind": "not.a.kind", "args": []}}), "garbage"),
        (encode_frame({"t": "nonsense", "src": "A"}), "garbage"),
        (encode_frame({"t": "probe", "seq": 1, "ev": {}}), "garbage"),  # no src
    ],
)
def test_collector_drops_malformed_frames(data, where):
    collector, clock, released = collected()
    collector.on_datagram(data, ("p", 1))
    assert collector.frames_dropped == {where: 1}
    clock.now = 10.0
    collector.flush(force=True)
    drops = [e for e in released if e.kind == "telemetry.drop"]
    assert len(drops) == 1 and drops[0].args[0] == where
    # Dropped frames show up in the exposition, labelled.
    assert f'raintap_frames_dropped_total{{where="{where}"}} 1' in (
        collector.metrics_text()
    )


def test_hello_with_wrong_schema_is_refused():
    collector, clock, _ = collected()
    collector.on_datagram(
        encode_frame({"t": "hello", "src": "A", "addr": "x", "schema": 99}),
        ("p", 1),
    )
    assert collector.frames_dropped == {"bad-version": 1}


def test_silent_source_stops_stalling_the_horizon():
    collector, clock, released = collected()
    collector.on_datagram(probe_frame("A", 1, at=0.5), ("p", 1))
    collector.on_datagram(probe_frame("B", 1, at=0.6), ("p", 2))
    # B keeps heartbeating; A goes dark.
    clock.now = 5.0
    collector.on_datagram(
        encode_frame({"t": "mark", "src": "B", "seq": 1, "shipped": 1, "now": 5.0}),
        ("p", 2),
    )
    collector.flush()
    # A is declared silent and excluded from the watermark min, so B's
    # stream (and A's stranded event) drain instead of waiting forever.
    assert collector.sources["A"].silent
    assert [(e.node, e.at) for e in released if e.kind == "token.accept"] == [
        ("A", 0.5), ("B", 0.6),
    ]
    clock.now = 6.0
    collector.flush(force=True)
    assert "telemetry.silent" in [e.kind for e in released]


def test_bye_closes_the_source_cleanly():
    collector, clock, released = collected()
    collector.on_datagram(probe_frame("A", 1, at=0.5), ("p", 1))
    collector.on_datagram(
        encode_frame({"t": "bye", "src": "A", "shipped": 1}), ("p", 1)
    )
    assert collector.sources["A"].closed
    clock.now = 0.2  # closed source no longer pins the horizon at -inf
    collector.flush()
    clock.now = 5.0
    collector.flush()
    kinds = [e.kind for e in released]
    assert "telemetry.bye" in kinds and "telemetry.silent" not in kinds


def test_capture_file_has_header_then_records(tmp_path):
    import asyncio

    path = tmp_path / "cap.jsonl"
    clock = FakeClock()
    collector = TelemetryCollector([], clock=clock, capture_path=path)

    async def scenario():
        await collector.open()
        collector.on_datagram(probe_frame("A", 1, at=1.0), ("p", 1))
        clock.now = 10.0
        collector.flush(force=True)
        collector.close()

    asyncio.run(scenario())
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["schema"] == "repro.obs.capture/1"
    assert header["reorder"] == collector.reorder
    records = [json.loads(l) for l in lines[1:]]
    assert [r["n"] for r in records] == list(range(1, len(records) + 1))
    assert records[0]["kind"] == "token.accept" and records[0]["at"] == 1.0


def test_metrics_text_is_never_empty_and_tracks_nodes():
    collector, clock, _ = collected()
    text = collector.metrics_text()  # before any traffic at all
    assert "raintap_events_released_total 0" in text
    assert 'raintap_alerts_total{severity="critical"} 0' in text
    collector.on_datagram(probe_frame("A", 1, at=1.0), ("p", 1))
    clock.now = 10.0
    collector.flush(force=True)
    text = collector.metrics_text()
    assert f"raintap_events_released_total {collector.events_released}" in text
    assert collector.events_released >= 1
    assert 'raintap_node_token_accepts_total{node="A"} 1' in text
    # The collector's own bookkeeping events stay out of per-node series.
    assert 'node="collector"' not in text


def test_postmortem_built_from_pushed_rings(tmp_path):
    pm = tmp_path / "pm.bundle.json"
    collector, clock, _ = collected(postmortem_path=pm)
    collector.on_datagram(probe_frame("A", 1, at=1.0), ("p", 1))
    ring = [
        {"n": 0, "at": 0.8, "node": "A", "kind": "token.accept",
         "args": ["B", 1, 9, 0]},
        {"n": 0, "at": 0.9, "node": "A", "kind": "node.state",
         "args": ["OPERATIONAL", "RECOVERY"]},
        {"bogus": True},  # undecodable ring entries are skipped, not fatal
    ]
    collector.on_datagram(
        encode_frame({"t": "ring", "src": "A", "part": 0, "events": ring}),
        ("p", 1),
    )
    collector.on_datagram(
        encode_frame({"t": "ring_end", "src": "A", "parts": 1, "count": 3}),
        ("p", 1),
    )
    collector._pull_sent = True  # as if an alert had fired the pull
    clock.now = 10.0
    collector.flush(force=True)
    assert collector.postmortem_written == pm
    bundle = load_bundle(pm)
    assert bundle["context"]["plane"] == "raintap"
    assert bundle["context"]["sources"]["A"]["received"] == 1
    assert [e["at"] for e in bundle["events"]] == [0.8, 0.9]


def test_free_udp_ports_are_distinct():
    ports = free_udp_ports(4)
    assert len(set(ports)) == 4
    assert all(1 <= p <= 65535 for p in ports)
