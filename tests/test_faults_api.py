"""Tests for the FaultInjector's surgical-fault and adversity APIs."""

import pytest

from repro.cluster.invariants import InvariantMonitor
from repro.core.states import NodeState
from repro.transport.messages import AckFrame
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


# ----------------------------------------------------------------------
# stacked packet filters (drop_matching / stop_dropping / clear_filters)
# ----------------------------------------------------------------------
def test_drop_matching_drops_only_matching(abcd):
    """A drop rule kills matching packets and nothing else."""
    topo = abcd.topology
    before = abcd.network.packets_dropped
    handle = abcd.faults.drop_matching(
        lambda p: topo.owner_of(p.dst) == "C"
    )
    abcd.run(1.0)
    dropped_during = abcd.network.packets_dropped - before
    assert dropped_during > 0
    # C is cut off in both directions it can be reached; the ring reforms
    # around it once failure detection fires.
    abcd.faults.stop_dropping(handle)
    assert abcd.run_until_converged(20.0, expected=set("ABCD"))


def test_drop_rules_stack_and_clear(abcd):
    """Several concurrent rules compose; clear_filters removes them all."""
    seen = []
    h1 = abcd.faults.drop_matching(
        lambda p: isinstance(p.payload, AckFrame) and not seen.append("ack")
    )
    h2 = abcd.faults.drop_matching(lambda p: False)  # matches nothing
    assert h1 != h2
    abcd.run(0.2)
    assert seen, "first rule never consulted"
    abcd.faults.clear_filters()
    assert abcd.network._filters == {}
    # Dropping the stale handle again is an allowed no-op.
    abcd.faults.stop_dropping(h1)
    assert abcd.run_until_converged(10.0, expected=set("ABCD"))


def test_stacked_filters_coexist_with_legacy_slot(abcd):
    """The legacy single-filter slot and the stacked rules both apply."""
    abcd.network.filter = lambda p: True  # legacy: keep everything
    handle = abcd.faults.drop_matching(lambda p: True)  # stacked: drop all
    before = abcd.network.packets_delivered
    abcd.run(0.2)
    assert abcd.network.packets_delivered == before
    abcd.faults.stop_dropping(handle)
    abcd.network.filter = None
    assert abcd.run_until_converged(20.0, expected=set("ABCD"))


# ----------------------------------------------------------------------
# lose_token and its in-flight blind spot
# ----------------------------------------------------------------------
def test_lose_token_held_path(abcd):
    """While a node holds the token, lose_token destroys it directly."""
    deadline = abcd.loop.now + 2.0
    while abcd.loop.now < deadline and not abcd.token_holders():
        abcd.loop.step()
    assert abcd.token_holders()
    assert abcd.faults.lose_token() is True
    assert abcd.token_holders() == []
    # 911 regenerates the token and the group reconverges.
    deadline = abcd.loop.now + 20.0
    while abcd.loop.now < deadline and not abcd.token_holders():
        abcd.run(0.05)
    assert sum(abcd.node(n).recovery.regenerations for n in "ABCD") >= 1
    assert abcd.run_until_converged(10.0, expected=set("ABCD"))


def test_lose_token_in_flight_blind_spot(abcd):
    """Between holders, lose_token is blind; lose_token_in_flight is not."""
    deadline = abcd.loop.now + 2.0
    while abcd.loop.now < deadline and abcd.token_holders():
        abcd.loop.step()
    assert abcd.token_holders() == [], "never caught the token in flight"
    # The blind spot: no node holds the token, so lose_token does nothing.
    assert abcd.faults.lose_token() is False
    regens_before = sum(abcd.node(n).recovery.regenerations for n in "ABCD")
    # The deferred variant retries until the token lands, then kills it.
    abcd.faults.lose_token_in_flight(timeout=1.0)
    abcd.run(10.0)
    regens_after = sum(abcd.node(n).recovery.regenerations for n in "ABCD")
    assert regens_after > regens_before, "token was never destroyed"
    assert abcd.run_until_converged(10.0, expected=set("ABCD"))


def test_lose_token_in_flight_validates_args(abcd):
    with pytest.raises(ValueError):
        abcd.faults.lose_token_in_flight(timeout=0.0)
    with pytest.raises(ValueError):
        abcd.faults.lose_token_in_flight(poll=-1.0)


# ----------------------------------------------------------------------
# flapping NICs
# ----------------------------------------------------------------------
def test_flap_nic_recovers_and_converges():
    """A gray NIC flaps through a dual-segment cluster; the redundant
    segment carries the group through, and the NIC ends up."""
    c = make_cluster("ABCD", segments=2)
    c.start_all()
    addr = c.faults.flap_nic("B", segment_index=0, period=0.2, duration=1.0)
    c.run(0.01)
    assert c.topology.nic_up(addr) is False  # first toggle is down
    c.run(1.5)
    assert c.topology.nic_up(addr) is True  # forced up after duration
    assert c.run_until_converged(10.0, expected=set("ABCD"))


def test_flap_nic_validates_args(abcd):
    with pytest.raises(ValueError):
        abcd.faults.flap_nic("A", period=0.0)
    with pytest.raises(ValueError):
        abcd.faults.flap_nic("A", duration=-1.0)


# ----------------------------------------------------------------------
# forged duplicate tokens
# ----------------------------------------------------------------------
def test_forge_duplicate_token_plants_second_holder(abcd):
    deadline = abcd.loop.now + 2.0
    while abcd.loop.now < deadline and not abcd.token_holders():
        abcd.loop.step()
    assert len(abcd.token_holders()) == 1
    assert abcd.faults.forge_duplicate_token() is True
    assert len(abcd.token_holders()) == 2
    holders = [abcd.node(h) for h in abcd.token_holders()]
    assert all(h.state is NodeState.EATING for h in holders)


def test_forge_duplicate_token_needs_a_holder(abcd):
    deadline = abcd.loop.now + 2.0
    while abcd.loop.now < deadline and abcd.token_holders():
        abcd.loop.step()
    assert abcd.faults.forge_duplicate_token() is False  # token in flight


# ----------------------------------------------------------------------
# network adversity setters
# ----------------------------------------------------------------------
def test_duplication_delivers_twice_but_protocol_dedups(abcd):
    """Packet duplication doubles deliveries on the wire; transport and
    multicast dedup keep the application stream exactly-once."""
    monitor = InvariantMonitor(abcd, interval=0.001)
    monitor.start()
    abcd.faults.set_duplication(0.5)
    for i in range(10):
        abcd.node("ABCD"[i % 4]).multicast(f"m{i}")
    abcd.run(2.0)
    abcd.faults.clear_adversities()
    abcd.run(2.0)
    monitor.stop()
    assert abcd.network.packets_duplicated > 0
    for nid in "ABCD":
        keys = abcd.listener(nid).delivery_keys
        assert len(keys) == len(set(keys)), f"duplicate delivery at {nid}"
    monitor.assert_clean(max_double_token_time=0.5)


def test_burst_loss_set_and_clear(abcd):
    abcd.faults.set_burst_loss(0.05, 0.3, segment="net0")
    seg = abcd.topology.segment("net0")
    assert seg.burst is not None
    dropped_before = abcd.network.packets_dropped
    abcd.run(2.0)
    assert abcd.network.packets_dropped > dropped_before
    abcd.faults.clear_burst_loss(segment="net0")
    assert seg.burst is None
    assert abcd.run_until_converged(20.0, expected=set("ABCD"))


def test_delay_spikes_slow_but_do_not_break(abcd):
    abcd.faults.set_delay_spikes(0.2, 0.005)
    abcd.node("A").multicast("spiky")
    abcd.run(2.0)
    abcd.faults.set_delay_spikes(0.0, 0.0)
    assert abcd.run_until_converged(10.0, expected=set("ABCD"))
    assert all(abcd.listener(n).deliveries for n in "ABCD")


def test_clear_adversities_resets_segment(abcd):
    abcd.faults.set_duplication(0.3)
    abcd.faults.set_burst_loss(0.1, 0.5)
    abcd.faults.set_delay_spikes(0.1, 0.01)
    abcd.faults.clear_adversities()
    for seg in abcd.topology.segments():
        assert seg.duplicate == 0.0
        assert seg.burst is None
        assert seg.spike_prob == 0.0 and seg.spike_extra == 0.0


# ----------------------------------------------------------------------
# ack blackout (canned false-alarm factory)
# ----------------------------------------------------------------------
def test_ack_blackout_installs_and_self_removes(abcd):
    abcd.faults.ack_blackout("B", "A", duration=0.5)
    assert len(abcd.network._filters) == 1
    abcd.run(1.0)
    assert abcd.network._filters == {}  # removal was scheduled
    assert abcd.run_until_converged(20.0, expected=set("ABCD"))
