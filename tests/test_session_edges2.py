"""Additional edge-case coverage: TBM timeouts, eligible updates, open-group
client lifecycle, and leave-while-joining."""

import pytest

from repro.core.states import NodeState
from repro.core.token import Token
from tests.conftest import make_cluster

pytestmark = pytest.mark.integration


def test_held_tbm_dropped_after_timeout(abcd):
    """A TBM token whose own-token partner never arrives is discarded after
    the hungry timeout (safety valve; the other group 911-regenerates)."""
    node = abcd.node("D")
    # Hand D a fabricated TBM token while its own token keeps circulating...
    # actually: simulate the broken case by injecting a TBM while we prevent
    # merging (the merge fires on next own-token arrival, so pick a node and
    # stop its ring participation first).
    abcd.faults.crash_node("A")
    abcd.faults.crash_node("B")
    abcd.faults.crash_node("C")
    abcd.run(3.0)  # D ends up alone; its singleton token self-circulates
    # Crash D's ring too by removing its token: D will starve...
    node.crash()
    abcd.topology.set_node_up("D", True)
    node.start_joining(["A"])  # dead contact: stays JOINING, no token ever
    tbm = Token(seq=999, membership=("D", "Z"), tbm=True)
    node.merge.handle_tbm(tbm)
    assert node.merge.holding_tbm
    abcd.run(abcd.config.hungry_timeout + 0.5)
    assert not node.merge.holding_tbm  # dropped by the timeout


def test_set_eligible_online(abcd):
    """Eligible Membership 'can be changed and updated online' (§2.4)."""
    abcd.faults.partition(["A", "B"], ["C", "D"])
    for nid in "ABCD":
        abcd.node(nid).set_eligible({"A", "B"})  # C/D not eligible anywhere
    abcd.run(3.0)
    abcd.faults.heal_partition()
    abcd.run(4.0)
    assert set(abcd.node("A").members) == {"A", "B"}  # no merge
    for nid in "ABCD":
        abcd.node(nid).set_eligible({"A", "B", "C", "D"})  # online update
    assert abcd.run_until_converged(10.0, expected=set("ABCD"))


def test_open_group_client_stop_cancels_pending(abcd):
    client = abcd.add_external_client("ext", contacts=["B"])
    abcd.faults.crash_node("B")
    abcd.run(1.0)
    results = []
    client.send_to_group("never", on_result=results.append)
    client.stop()
    abcd.run(5.0)
    assert results == []  # no callback after stop


def test_leave_while_joining():
    c = make_cluster("AB")
    c.node("A").start_new_group()
    c.run(0.5)
    c.node("B").start_joining(["A"])
    c.node("B").leave()  # change of heart before ever holding the token
    c.run(3.0)
    assert c.node("B").state is NodeState.DOWN
    # A's ring is a singleton again (B joined and immediately departed, or
    # never completed the join — either way A converges alone).
    assert c.run_until_converged(5.0, expected={"A"})


def test_flapping_node_converges(abcd):
    """Crash/recover the same node repeatedly: the group always re-admits."""
    for round_no in range(3):
        abcd.faults.crash_node("C")
        assert abcd.run_until_converged(5.0, expected={"A", "B", "D"}), round_no
        abcd.faults.recover_node("C")
        assert abcd.run_until_converged(8.0, expected=set("ABCD")), round_no


def test_cascading_failures(abcd):
    """Crash members one by one faster than full re-convergence."""
    abcd.faults.crash_node("B")
    abcd.run(0.1)
    abcd.faults.crash_node("C")
    abcd.run(0.1)
    abcd.faults.crash_node("D")
    assert abcd.run_until_converged(8.0, expected={"A"})
    assert abcd.node("A").members == ("A",)
    # And the cluster can rebuild from the sole survivor.
    for nid in "BCD":
        abcd.faults.recover_node(nid, contacts=["A"])
    assert abcd.run_until_converged(12.0, expected=set("ABCD"))


def test_leave_with_drain_flushes_outbox(abcd):
    """leave(drain=True) attaches every queued multicast before departing;
    the messages complete delivery after the sender is gone."""
    node = abcd.node("B")
    for i in range(10):
        node.multicast(f"farewell-{i}")
    node.leave(drain=True)
    abcd.run_until_converged(5.0, expected={"A", "C", "D"})
    abcd.run(1.0)
    for nid in "ACD":
        payloads = [d.payload for d in abcd.listener(nid).deliveries]
        assert payloads == [f"farewell-{i}" for i in range(10)], (nid, payloads)
    assert abcd.node("B").state is NodeState.DOWN


def test_leave_without_drain_drops_outbox(abcd):
    node = abcd.node("B")
    # Wait until B is NOT eating so the queue cannot flush synchronously.
    for _ in range(1000):
        abcd.run(0.001)
        if not node.is_eating:
            break
    node.multicast("dropped-on-floor")
    node.leave()
    abcd.run_until_converged(5.0, expected={"A", "C", "D"})
    abcd.run(1.0)
    for nid in "ACD":
        assert "dropped-on-floor" not in [
            d.payload for d in abcd.listener(nid).deliveries
        ]
