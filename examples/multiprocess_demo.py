#!/usr/bin/env python3
"""A Raincore group across real OS processes.

Spawns three worker processes (`repro.runtime.worker`), each owning one
session node and one UDP socket — nothing shared but datagrams on
127.0.0.1.  The parent watches their JSON event streams and reports when
the cross-process group converges and a multicast from one process is
delivered in all three.

Run:  python examples/multiprocess_demo.py
"""

import json
import subprocess
import sys

PORTS = {"A": 42100, "B": 42101, "C": 42102}
PEERS = ",".join(f"{nid}={port}" for nid, port in PORTS.items())
DURATION = 4.0


def spawn(node_id: str) -> subprocess.Popen:
    cmd = [
        sys.executable, "-m", "repro.runtime.worker",
        "--node", node_id,
        "--port", str(PORTS[node_id]),
        "--peers", PEERS,
        "--duration", str(DURATION),
    ]
    if node_id == "A":
        cmd += ["--bootstrap", "--multicast-at", "2.0",
                "--payload", "hello across processes"]
    else:
        cmd += ["--contact", "A"]
    return subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
    )


def main() -> None:
    print(f"spawning 3 worker processes on UDP ports {sorted(PORTS.values())} ...")
    procs = {nid: spawn(nid) for nid in PORTS}
    events = {nid: [] for nid in PORTS}
    for nid, proc in procs.items():
        out, err = proc.communicate(timeout=DURATION + 30)
        assert proc.returncode == 0, f"{nid} failed:\n{err}"
        events[nid] = [json.loads(line) for line in out.splitlines() if line.strip()]

    for nid in PORTS:
        final = next(e for e in reversed(events[nid]) if e["event"] == "done")
        print(f"  process {nid} (pid gone): members={final['members']} "
              f"state={final['state']} datagrams sent={final['packets_sent']}")
        assert sorted(final["members"]) == ["A", "B", "C"]

    delivered = {
        nid: [e for e in events[nid] if e["event"] == "deliver"] for nid in PORTS
    }
    print("\nmulticast delivery across process boundaries:")
    for nid in PORTS:
        assert delivered[nid], f"{nid} delivered nothing"
        d = delivered[nid][0]
        print(f"  {nid} delivered {d['payload']!r} from {d['origin']}")
    print("\nthree OS processes, one Raincore group — same protocol code.")


if __name__ == "__main__":
    main()
