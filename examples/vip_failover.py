#!/usr/bin/env python3
"""Virtual IP Manager demo (paper §3.1).

A pool of four highly-available virtual IPs is spread over a three-node
cluster.  When a node dies, only its VIPs move — the survivors' VIPs are
untouched — and gratuitous ARPs retarget the subnet in well under the
two-second fail-over budget.

Run:  python examples/vip_failover.py
"""

from repro import RaincoreCluster
from repro.apps.vip import ArpSubnet, VirtualIPManager
from repro.data.shared_dict import SharedDict

VIPS = ["10.1.0.1", "10.1.0.2", "10.1.0.3", "10.1.0.4"]


def show(label: str, manager: VirtualIPManager, subnet: ArpSubnet) -> None:
    print(f"\n{label}")
    for vip in VIPS:
        print(
            f"  {vip} -> owner {manager.owner_of(vip)} "
            f"(subnet ARP says {subnet.resolve(vip)})"
        )


def main() -> None:
    cluster = RaincoreCluster(["gw1", "gw2", "gw3"], seed=7)
    subnet = ArpSubnet()
    managers = {}
    for nid in cluster.node_ids:
        node = cluster.node(nid)
        shared = SharedDict(node)
        managers[nid] = VirtualIPManager(node, shared, subnet, VIPS)
    cluster.start_all()
    cluster.run(1.0)
    show("initial assignment (balanced):", managers["gw1"], subnet)

    victim = managers["gw1"].owner_of(VIPS[0])
    print(f"\nunplugging {victim} ...")
    t0 = cluster.loop.now
    cluster.faults.crash_node(victim)

    # Watch until every VIP resolves to a live node again.
    live = {n.node_id for n in cluster.live_nodes()}
    while cluster.loop.now - t0 < 5.0:
        cluster.run(0.05)
        if all(subnet.resolve(v) in live for v in VIPS):
            break
    print(f"fail-over complete in {cluster.loop.now - t0:.3f}s (paper budget: 2s)")
    survivor = next(iter(live))
    show("after fail-over (only the victim's VIPs moved):", managers[survivor], subnet)

    print(f"\ngratuitous ARPs sent: {len(subnet.history)}")
    for t, vip, owner in subnet.history:
        print(f"  t={t:.3f}s  {vip} -> {owner}")


if __name__ == "__main__":
    main()
