#!/usr/bin/env python3
"""Rainwall firewall cluster demo (paper §3.2, Fig. 3).

Runs the paper's benchmark scenario end to end: HTTP traffic through a
cluster of firewalling gateways, throughput scaling from 1 to 4 nodes, and
the famous cable-unplug fail-over with the client-visible hiccup measured.

Run:  python examples/rainwall_cluster.py
"""

from repro.apps.rainwall import RainwallCluster, RainwallConfig


def scaling_run() -> None:
    print("Figure 3 — Rainwall throughput and scaling")
    print(f"{'nodes':>5} | {'Mbit/s':>8} | {'scaling':>7} | {'max Rainwall CPU %':>18}")
    base = None
    for n in (1, 2, 4):
        cfg = RainwallConfig(
            vips=[f"10.1.0.{i}" for i in range(1, n + 1)],
            arrival_rate=500.0,
        )
        rw = RainwallCluster([f"g{i}" for i in range(n)], seed=42, config=cfg)
        rw.start()
        rw.run(6.0)
        tp = rw.throughput_mbps(since=rw.loop.now - 4.0)
        cpu = max(rw.rainwall_cpu_percent(6.0).values())
        base = base if base is not None else tp
        print(f"{n:>5} | {tp:>8.1f} | {tp / base:>6.2f}x | {cpu:>17.2f}%")
    print("paper:  95 / 187 / 357 Mbit/s — scaling 1.97x and 3.76x, CPU < 1%\n")


def failover_run() -> None:
    print("cable-unplug fail-over (paper: under two seconds)")
    rw = RainwallCluster(
        ["g0", "g1"], seed=11, config=RainwallConfig(arrival_rate=300.0)
    )
    rw.start()
    rw.run(3.0)
    print(f"  steady state: {rw.throughput_mbps(since=1.0):.1f} Mbit/s on 2 gateways")
    rw.unplug_gateway("g1")
    rw.run(6.0)
    stalls = [f.total_stall for f in rw.engine.flows.values()]
    lost = sum(1 for f in rw.engine.flows.values() if not f.done and f.gateway is None)
    print(f"  g1 shut down: {rw.raincore.node('g1').shutdown_reason}")
    print(f"  connections lost: {lost}")
    print(f"  worst per-connection hiccup: {max(stalls):.3f}s")
    print(
        f"  traffic resumed at {rw.throughput_mbps(since=rw.loop.now - 2.0):.1f} "
        f"Mbit/s on the survivor"
    )


if __name__ == "__main__":
    scaling_run()
    failover_run()
