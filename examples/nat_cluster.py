#!/usr/bin/env python3
"""Clustered stateful NAT demo — sharing arbitrary application state.

Three NAT gateways allocate public ports for client connections.  The
allocation is arbitrated by the token's total order (no two gateways can
ever hand out the same port), the table is replicated everywhere, and a
gateway failure does not disturb a single existing translation — the
paper's "transparent fail-over ... without the clients or the servers
aware of the failures" (§1).

Run:  python examples/nat_cluster.py
"""

from repro import RaincoreCluster
from repro.apps.nat import NatTable


def main() -> None:
    cluster = RaincoreCluster(["gw1", "gw2", "gw3"], seed=12)
    nats = {
        nid: NatTable(cluster.node(nid), port_range=(30000, 30099))
        for nid in cluster.node_ids
    }
    cluster.start_all()

    # Concurrent allocations from every gateway: uniqueness by total order.
    print("allocating 9 translations concurrently from 3 gateways ...")
    shown = []
    for i in range(9):
        gw = cluster.node_ids[i % 3]
        nats[gw].allocate(
            i, f"10.0.0.{i}:51{i:03d}", on_mapped=lambda m: shown.append(m)
        )
    cluster.run(1.0)
    for m in sorted(shown, key=lambda m: m.flow_id):
        print(f"  flow {m.flow_id}: {m.client:>17} -> :{m.public_port} (via {m.gateway})")
    ports = [m.public_port for m in shown]
    print(f"unique ports: {len(set(ports))}/{len(ports)}")

    # Replicas agree byte for byte.
    assert nats["gw1"].snapshot() == nats["gw3"].snapshot()
    print(f"replicated table agrees on all gateways ({nats['gw1'].size()} entries)")

    # Transparent fail-over: kill a gateway; its translations persist.
    print("\ncrashing gw2 ...")
    before = nats["gw1"].snapshot()
    cluster.faults.crash_node("gw2")
    cluster.run_until_converged(3.0, expected={"gw1", "gw3"})
    after = nats["gw1"].snapshot()
    assert before == after
    print("every translation survived intact:", before == after)
    flow2 = nats["gw3"].translation(1)
    print(
        f"e.g. flow 1 still maps {flow2.client} -> :{flow2.public_port}; a "
        "surviving gateway can keep translating it — the far end never knows."
    )


if __name__ == "__main__":
    main()
