#!/usr/bin/env python3
"""Hierarchical Raincore demo — the paper's §5 scalability extension.

Nine machines in three sub-group rings, bridged by a leaders' ring.  Local
multicast stays inside a sub-group; global multicast is relayed through the
top ring and delivered in one total order everywhere.  Killing a leader
promotes the next member, which joins the top ring via the ordinary 911
protocol — no special machinery.

Run:  python examples/hierarchical_cluster.py
"""

from repro.hierarchy import HierarchicalCluster

GROUPS = [
    ["a1", "a2", "a3"],
    ["b1", "b2", "b3"],
    ["c1", "c2", "c3"],
]


def main() -> None:
    h = HierarchicalCluster(GROUPS, seed=4)
    h.start()
    print(f"sub-group rings: { {min(g): h.members[g[0]].local.members for g in GROUPS} }")
    print(f"leaders' ring:   {h.top_view()}")

    # Local multicast: one cheap token ride inside the sub-group.
    h.members["b2"].multicast_local("b-internal state")
    h.run(1.0)
    print(f"\nlocal multicast seen by b1: {h.local_log['b1']}")
    print(f"local multicast seen by a1: {h.local_log['a1']} (different sub-group)")

    # Global multicast: local ring -> leader -> top ring -> every ring.
    for sender in ("a2", "c3", "b1"):
        h.members[sender].multicast_global(f"global from {sender}")
    h.run(3.0)
    print("\nglobal delivery order (identical at every machine):")
    print(f"  a3: {[p for _, p in h.global_log['a3']]}")
    print(f"  c1: {[p for _, p in h.global_log['c1']]}")
    assert all(h.global_log[n] == h.global_log["a3"] for n in h.machine_ids)

    # Leader fail-over across both planes.
    print("\ncrashing leader a1 ...")
    h.crash_machine("a1")
    h.run_until_formed(12.0)
    print(f"new leaders: {h.current_leaders()}; top ring: {h.top_view()}")
    h.members["a3"].multicast_global("still works")
    h.run(3.0)
    reach = sum(
        1 for n in h.live_machines() if ("a3", "still works") in h.global_log[n]
    )
    print(f"post-failover global multicast reached {reach}/{len(h.live_machines())}")


if __name__ == "__main__":
    main()
