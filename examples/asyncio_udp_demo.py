#!/usr/bin/env python3
"""The same protocol stack on real UDP sockets (asyncio runtime).

Every other example runs in simulated time; this one forms a Raincore
group over actual UDP datagrams on 127.0.0.1, driven by wall-clock timers —
the protocol code is byte-for-byte identical (paper §2.1: "In typical
implementations, it uses UDP").

Run:  python examples/asyncio_udp_demo.py
"""

import asyncio

from repro.core.config import RaincoreConfig
from repro.core.events import RecordingListener
from repro.core.session import RaincoreNode
from repro.runtime import AsyncioScheduler, UdpFabric

NODE_IDS = ["alpha", "beta", "gamma"]
BASE_PORT = 40000


async def main() -> None:
    fabric = UdpFabric({nid: BASE_PORT + i for i, nid in enumerate(NODE_IDS)})
    scheduler = AsyncioScheduler(asyncio.get_event_loop(), seed=7)
    config = RaincoreConfig.tuned(ring_size=len(NODE_IDS), hop_interval=0.02)

    nodes, listeners = {}, {}
    for nid in NODE_IDS:
        listeners[nid] = RecordingListener()
        nodes[nid] = RaincoreNode(nid, scheduler, fabric, config, listeners[nid])
    await fabric.open_all()

    first, *rest = NODE_IDS
    nodes[first].start_new_group()
    for nid in rest:
        nodes[nid].start_joining([first])

    # Wait (in real time!) for the group to form.
    for _ in range(100):
        await asyncio.sleep(0.05)
        if all(set(n.members) == set(NODE_IDS) for n in nodes.values()):
            break
    print(f"group formed over real UDP: {nodes[first].members}")

    nodes["beta"].multicast(b"hello from beta, via an actual datagram")
    for _ in range(100):
        await asyncio.sleep(0.05)
        if all(listeners[nid].deliveries for nid in NODE_IDS):
            break
    for nid in NODE_IDS:
        d = listeners[nid].deliveries[0]
        print(f"  {nid} delivered {d.payload!r} from {d.origin}")

    print("\nkilling gamma (socket closed, process state dropped) ...")
    nodes["gamma"].crash()
    fabric.close("gamma")
    for _ in range(200):
        await asyncio.sleep(0.05)
        if all(set(nodes[nid].members) == {"alpha", "beta"} for nid in ("alpha", "beta")):
            break
    print(f"survivors converged: {nodes['alpha'].members}")

    stats = {nid: fabric.stats.for_node(nid).packets_sent for nid in NODE_IDS}
    print(f"real datagrams sent per node: {stats}")

    for n in nodes.values():
        n.crash()
    fabric.close_all()


if __name__ == "__main__":
    asyncio.run(main())
