#!/usr/bin/env python3
"""Distributed Data Service demo: locks and replicated state (paper §2.7).

Three nodes contend for a named lock (granted in token order, FIFO, fair),
hold it *without* staying in the EATING state, and survive the owner's
crash.  A replicated dictionary shares state with the same total order.

Run:  python examples/lock_manager_demo.py
"""

from repro import RaincoreCluster
from repro.data import DistributedLockManager, SharedDict


def main() -> None:
    cluster = RaincoreCluster(["A", "B", "C"], seed=3)
    locks = {nid: DistributedLockManager(cluster.node(nid)) for nid in "ABC"}
    store = {nid: SharedDict(cluster.node(nid)) for nid in "ABC"}
    cluster.start_all()

    # --- contended acquisition -----------------------------------------
    grant_order = []
    for nid in "ABC":
        locks[nid].acquire(
            "config-table", on_granted=lambda nid=nid: grant_order.append(nid)
        )
    cluster.run(1.0)
    owner = grant_order[0]
    print(f"lock granted to {owner}; waiters (same at every replica):")
    for nid in "ABC":
        print(f"  {nid} sees owner={locks[nid].owner('config-table')} "
              f"waiters={locks[nid].waiters('config-table')}")

    # The owner updates shared state while holding the lock...
    store[owner].set("config", {"mode": "active-active", "vips": 4})
    cluster.run(1.0)
    print(f"\nreplicated config at C: {store['C'].get('config')}")

    # --- hand-over ------------------------------------------------------
    locks[owner].release("config-table")
    cluster.run(1.0)
    print(f"after release, granted in FIFO order so far: {grant_order}")

    # --- fault tolerance --------------------------------------------------
    current = grant_order[-1]
    print(f"\ncrashing the current lock owner {current} ...")
    cluster.faults.crash_node(current)
    cluster.run(4.0)
    survivors = [n for n in "ABC" if n != current]
    print(f"grant order after purge: {grant_order}")
    for nid in survivors:
        print(f"  {nid} sees owner={locks[nid].owner('config-table')}")
    print("(the dead owner's lock was purged and the next waiter promoted)")


if __name__ == "__main__":
    main()
