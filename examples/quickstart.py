#!/usr/bin/env python3
"""Quickstart: a four-node Raincore group on the simulated network.

Demonstrates the three services of the Raincore Distributed Session Service
(Fan & Bruck, IPPS 2001 §2): group membership, reliable multicast with
agreed ordering, and token-based mutual exclusion — plus the aggressive
failure detection and automatic 911 rejoin.

Run:  python examples/quickstart.py
"""

from repro import Ordering, RaincoreCluster


def main() -> None:
    # Build a 4-node cluster on one switched segment.  Everything runs in
    # virtual time: run(1.0) advances the simulation by one second.
    cluster = RaincoreCluster(["A", "B", "C", "D"], seed=2024)
    cluster.start_all()
    print(f"group formed, ring order: {'-'.join(cluster.node('A').members)}")

    # --- reliable multicast with agreed ordering -----------------------
    cluster.node("A").multicast(b"state update #1")
    cluster.node("C").multicast(b"state update #2")
    cluster.node("A").multicast(b"commit", ordering=Ordering.SAFE)
    cluster.run(1.0)
    for nid in "ABCD":
        payloads = [d.payload for d in cluster.listener(nid).deliveries]
        print(f"{nid} delivered (identical order everywhere): {payloads}")

    # --- mutual exclusion: the token is the master lock ----------------
    def critical_section() -> None:
        holders = cluster.token_holders()
        print(f"critical section on B; token holders right now: {holders}")

    cluster.node("B").run_exclusive(critical_section)
    cluster.run(0.5)

    # --- failure detection and fail-over -------------------------------
    print("\ncrashing node C ...")
    cluster.faults.crash_node("C")
    cluster.run_until_converged(3.0, expected={"A", "B", "D"})
    print(f"membership after crash:  {cluster.node('A').members}")

    print("recovering node C (rejoins via a 911 join request) ...")
    cluster.faults.recover_node("C")
    cluster.run_until_converged(5.0, expected={"A", "B", "C", "D"})
    print(f"membership after rejoin: {cluster.node('A').members}")

    # --- the paper's cost metric ---------------------------------------
    switches = cluster.stats.per_node("task_switches")
    print(f"\nGC task switches per node so far: {switches}")
    print("(one per token arrival — the paper's L-per-second argument)")


if __name__ == "__main__":
    main()
