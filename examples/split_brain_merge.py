#!/usr/bin/env python3
"""Split-brain and group-merge demo (paper §2.4).

A six-node group is partitioned three ways.  Each sub-group keeps operating
independently (its own token, its own multicast stream).  When the network
heals, BODYODOR discovery beacons find the other sub-groups and the
lower-group-id-joins-higher TBM handshake merges everyone back into a
single ring without deadlock.

Run:  python examples/split_brain_merge.py
"""

from repro import RaincoreCluster


def show_views(cluster: RaincoreCluster, label: str) -> None:
    print(f"\n{label}")
    seen = set()
    for nid in cluster.node_ids:
        node = cluster.node(nid)
        if node.state.value == "down":
            continue
        view = node.members
        if view not in seen:
            seen.add(view)
            print(f"  group id {node.group_id}: ring {'-'.join(view)}")


def main() -> None:
    cluster = RaincoreCluster(list("ABCDEF"), seed=5)
    cluster.start_all()
    show_views(cluster, "formed: one group")

    print("\npartitioning into {A,B} | {C,D} | {E,F} ...")
    cluster.faults.partition(["A", "B"], ["C", "D"], ["E", "F"])
    cluster.run(3.0)
    show_views(cluster, "split-brain: three independent groups")

    # Each sub-group still works: multicast stays inside the partition.
    cluster.node("A").multicast("AB-internal")
    cluster.node("C").multicast("CD-internal")
    cluster.run(1.0)
    print(
        f"\n  B delivered {[d.payload for d in cluster.listener('B').deliveries]}"
        f"\n  D delivered {[d.payload for d in cluster.listener('D').deliveries]}"
    )

    print("\nhealing the partition; discovery + merge protocols take over ...")
    cluster.faults.heal_partition()
    t0 = cluster.loop.now
    ok = cluster.run_until_converged(20.0, expected=set("ABCDEF"))
    assert ok
    print(f"merged back into one group in {cluster.loop.now - t0:.2f}s")
    show_views(cluster, "after merge:")

    beacons = sum(cluster.node(n).merge.beacons_sent for n in cluster.node_ids)
    merges = sum(cluster.node(n).merge.merges_completed for n in cluster.node_ids)
    print(f"\nBODYODOR beacons sent: {beacons}; TBM merges completed: {merges}")

    cluster.node("F").multicast("post-merge hello")
    cluster.run(1.0)
    got = sum(
        1
        for nid in cluster.node_ids
        if "post-merge hello" in [d.payload for d in cluster.listener(nid).deliveries]
    )
    print(f"post-merge multicast reached {got}/6 nodes")


if __name__ == "__main__":
    main()
