"""E13 (ablation) — split-brain merge convergence (paper §2.4).

The paper argues the discovery/merge design is deadlock-free for any
number of sub-groups (group-id ordering) but gives no timings.  This bench
measures time from partition heal to full membership convergence as a
function of (a) the number of sub-groups and (b) the BODYODOR beacon
period — the discovery latency knob the paper explicitly keeps "low
frequency" to bound overhead.
"""

from __future__ import annotations

from benchmarks.conftest import node_names
from repro.cluster.harness import RaincoreCluster
from repro.core.config import RaincoreConfig
from repro.metrics import Table

N = 8


def merge_time(k_groups: int, beacon: float, seed: int = 47) -> float:
    """Seconds from heal to convergence for N nodes split k ways."""
    ids = node_names(N)
    cfg = RaincoreConfig.tuned(ring_size=N, bodyodor_interval=beacon)
    cluster = RaincoreCluster(ids, seed=seed, config=cfg)
    cluster.start_all()
    groups = [ids[i::k_groups] for i in range(k_groups)]
    cluster.faults.partition(*groups)
    cluster.run(3.0)
    cluster.faults.heal_partition()
    t0 = cluster.loop.now
    assert cluster.run_until_converged(120.0, expected=set(ids)), (
        f"k={k_groups} beacon={beacon}: {cluster.membership_views()}"
    )
    return cluster.loop.now - t0


def test_e13_merge_convergence(benchmark):
    def sweep():
        rows = []
        for k in (2, 3, 4):
            for beacon in (0.25, 1.0):
                rows.append((k, beacon, merge_time(k, beacon)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        f"E13: heal-to-convergence time, {N} nodes split k ways",
        ["sub-groups k", "beacon period (s)", "merge time (s)", "beacon periods"],
    )
    for k, beacon, t in rows:
        table.add_row(k, beacon, t, t / beacon)
    table.add_note(
        "k sub-groups need k-1 pairwise TBM merges, serialized by the "
        "group-id order; each costs ~one beacon period of discovery plus "
        "two token interchanges"
    )
    table.print()

    by = {(k, b): t for k, b, t in rows}
    # Merges always complete (deadlock freedom) — asserted inside merge_time.
    # More sub-groups should not be dramatically slower than k=2 ...
    for beacon in (0.25, 1.0):
        assert by[(4, beacon)] <= 8 * max(by[(2, beacon)], beacon)
    # ... and a faster beacon must speed up discovery-dominated merges.
    assert by[(2, 0.25)] <= by[(2, 1.0)] + 0.5
