"""E3 — Figure 3: Rainwall throughput and scaling.

Paper (Fig. 3, §4.2): running Rainwall on 1, 2 and 4 Sun Ultra-5 gateways in
a switched Fast Ethernet lab gives 95 / 187 / 357 Mbit/s of web traffic —
scaling factors 1.97× and 3.76× — with "Rainwall CPU usage below 1%"
throughout.

Our substitution (DESIGN.md §2): simulated gateways whose forwarding
capacity is calibrated to the paper's measured single-node rate (95 Mbit/s
through Fast Ethernet), carrying a flow-level HTTP workload heavy enough to
saturate the largest cluster.  The scaling factors and the sub-1% CPU figure
are *outputs* of the model, not inputs.
"""

from __future__ import annotations

import pytest

from repro.apps.rainwall import RainwallCluster, RainwallConfig
from repro.metrics import Table, bar_chart

PAPER = {1: 95.0, 2: 187.0, 4: 357.0}
WARMUP = 2.0
MEASURE = 5.0


def run_fig3():
    rows = []
    for n in (1, 2, 4):
        cfg = RainwallConfig(
            vips=[f"10.1.0.{i}" for i in range(1, n + 1)],
            arrival_rate=500.0,
            flow_size=500_000.0,
        )
        rw = RainwallCluster([f"g{i}" for i in range(n)], seed=42, config=cfg)
        rw.start()
        rw.run(WARMUP + MEASURE)
        tp = rw.throughput_mbps(since=rw.loop.now - MEASURE)
        cpu = max(rw.rainwall_cpu_percent(WARMUP + MEASURE).values())
        rows.append((n, tp, cpu))
    return rows


def test_e3_fig3_throughput_scaling(benchmark):
    rows = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    base = rows[0][1]

    table = Table(
        "E3 (Figure 3): Rainwall throughput and scaling",
        [
            "nodes",
            "measured Mbit/s",
            "paper Mbit/s",
            "measured scaling",
            "paper scaling",
            "max Rainwall CPU %",
        ],
    )
    paper_base = PAPER[1]
    for n, tp, cpu in rows:
        table.add_row(n, tp, PAPER[n], tp / base, PAPER[n] / paper_base, cpu)
    table.add_note(
        "absolute numbers calibrated by the 95 Mbit/s single-gateway rate; "
        "scaling factors and CPU share are model outputs"
    )
    table.print()
    print(
        bar_chart(
            "Figure 3 — Rainwall Throughput and Scaling (Mbit/s)",
            [f"{n} node{'s' if n > 1 else ''}" for n, _, _ in rows],
            [tp for _, tp, _ in rows],
            reference={
                f"{n} node{'s' if n > 1 else ''}": PAPER[n] for n, _, _ in rows
            },
        )
        + "\n"
    )

    by_n = {n: tp for n, tp, _ in rows}
    # Single gateway reproduces the calibrated base rate.
    assert by_n[1] == pytest.approx(95.0, rel=0.05)
    # Near-linear scaling, the paper's headline (1.97x, 3.76x).
    assert 1.8 <= by_n[2] / by_n[1] <= 2.05
    assert 3.4 <= by_n[4] / by_n[1] <= 4.1
    # "Throughout the test, Rainwall CPU usage is below 1%."
    assert all(cpu < 1.0 for _, _, cpu in rows)
