"""E1 — CPU task-switching overhead (paper §4.1, the headline analysis).

Paper: with N nodes each multicasting M messages/s and the token doing L
roundtrips/s (L < M), Raincore costs **L** GC task-switches per node per
second; a broadcast-based protocol costs **at least M·N**; two-phase-commit
ordering costs **up to 6·M·N**.

This bench measures GC wakeups per node per second for all four protocols
on identical workloads and checks the hierarchy and rough factors.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import baseline_workload, raincore_workload
from repro.metrics import Table

M_RATE = 50.0  # messages per node per second
DURATION = 2.0
HOP = 0.005  # token hop interval -> L = 1/(N * HOP) roundtrips/s


def measure(n: int) -> dict[str, float]:
    """GC task-switches per node per second for each protocol."""
    out: dict[str, float] = {}
    rc = raincore_workload(n, M_RATE, DURATION, hop_interval=HOP, seed=1)
    out["raincore"] = rc.stats.total("task_switches") / n / DURATION
    for kind in ("broadcast", "sequencer", "2pc"):
        bc = baseline_workload(kind, n, M_RATE, DURATION, seed=1)
        # Baselines drain for an extra second; normalize over send window.
        out[kind] = bc.stats.total("task_switches") / n / DURATION
    return out


@pytest.mark.parametrize("n", [4])
def test_e1_hierarchy_holds(benchmark, n):
    """Raincore « broadcast < 2PC, with factors in the paper's ballpark."""
    results = benchmark.pedantic(measure, args=(n,), rounds=1, iterations=1)
    L = 1.0 / (n * HOP)
    mn = M_RATE * n

    table = Table(
        f"E1: GC task-switches per node per second (N={n}, M={M_RATE:.0f}/node/s)",
        ["protocol", "measured /node/s", "paper's prediction", "measured/predicted"],
    )
    table.add_row("raincore", results["raincore"], f"L = {L:.0f}", results["raincore"] / L)
    table.add_row("broadcast", results["broadcast"], f">= M*N = {mn:.0f}", results["broadcast"] / mn)
    table.add_row("sequencer", results["sequencer"], "~ M*N", results["sequencer"] / mn)
    table.add_row("2pc", results["2pc"], f"<= 6*M*N = {6*mn:.0f}", results["2pc"] / mn)
    table.add_note("paper §4.1: L for Raincore vs M*N (broadcast) vs up to 6*M*N (2PC)")
    table.print()

    # Shape assertions (the paper's qualitative claims).
    assert results["raincore"] < results["broadcast"] < results["2pc"]
    # Raincore is within 2x of the analytic L (timers/failure-free overhead).
    assert results["raincore"] <= 2.2 * L
    # Broadcast costs at least ~M*N wakeups in aggregate terms.
    assert results["broadcast"] >= 0.8 * mn
    # 2PC lands between 2*M*N and 6*M*N.
    assert 1.5 * mn <= results["2pc"] <= 6.0 * mn


def test_e1_scaling_with_cluster_size(benchmark):
    """Raincore's per-node wakeups *fall* with N (token visits each node
    less often) while broadcast's grow linearly in N — the crossover the
    paper's design banks on."""

    def sweep():
        rows = {}
        for n in (2, 4, 8):
            rc = raincore_workload(n, M_RATE, DURATION, hop_interval=HOP, seed=2)
            bc = baseline_workload("broadcast", n, M_RATE, DURATION, seed=2)
            rows[n] = (
                rc.stats.total("task_switches") / n / DURATION,
                bc.stats.total("task_switches") / n / DURATION,
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        "E1b: per-node wakeups/s vs cluster size",
        ["N", "raincore", "broadcast", "broadcast/raincore"],
    )
    for n, (rc, bc) in rows.items():
        table.add_row(n, rc, bc, bc / rc)
    table.print()

    advantage = {n: bc / rc for n, (rc, bc) in rows.items()}
    # The advantage grows superlinearly with N (L shrinks, M*N grows).
    assert advantage[4] > advantage[2]
    assert advantage[8] > advantage[4]
    assert advantage[8] > 10.0
