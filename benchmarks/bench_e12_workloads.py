"""E12 (ablation) — Figure 3 scaling under realistic traffic mixes.

The Fig. 3 calibration run uses fixed-size downloads.  Real web traffic is
heavy-tailed (mice and elephants), which is precisely the case where
per-connection load balancing with a *shared load table* earns its keep —
a few elephants can pin one gateway while others idle.  This ablation
re-runs the throughput scaling sweep under Pareto and bimodal size
distributions and checks that the paper's near-linear scaling is a
property of the architecture, not of the convenient workload.
"""

from __future__ import annotations

import pytest

from repro.apps.rainwall import RainwallCluster, RainwallConfig
from repro.apps.workloads import bimodal, constant, pareto
from repro.metrics import Table

MEAN_SIZE = 500_000.0
WARMUP = 2.0
MEASURE = 5.0


def run_scaling(workload_name: str):
    results = {}
    for n in (1, 2, 4):
        cfg = RainwallConfig(
            vips=[f"10.1.0.{i}" for i in range(1, n + 1)],
            arrival_rate=500.0,
            flow_size=MEAN_SIZE,  # replaced below once the loop RNG exists
        )
        rw = RainwallCluster([f"g{i}" for i in range(n)], seed=77, config=cfg)
        rng = rw.loop.rng
        if workload_name == "fixed":
            rw.engine.flow_size = constant(MEAN_SIZE)
        elif workload_name == "pareto":
            rw.engine.flow_size = pareto(rng, mean=MEAN_SIZE, alpha=1.3)
        elif workload_name == "bimodal":
            rw.engine.flow_size = bimodal(
                rng, small=MEAN_SIZE / 10, large=10 * MEAN_SIZE, p_large=0.09
            )
        rw.start()
        rw.run(WARMUP + MEASURE)
        tp = rw.throughput_mbps(since=rw.loop.now - MEASURE)
        # Forwarding balance across gateways (1.0 = perfectly even).
        fwd = [p.forwarded_bytes for p in rw.engine.gateways.values()]
        balance = min(fwd) / max(fwd) if max(fwd) > 0 and n > 1 else 1.0
        results[n] = (tp, balance)
    return results


def test_e12_scaling_robust_to_workload(benchmark):
    def sweep():
        return {
            name: run_scaling(name) for name in ("fixed", "pareto", "bimodal")
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        "E12: Fig. 3 scaling vs traffic mix (Mbit/s; balance = min/max gateway share)",
        ["workload", "1 node", "2 nodes", "4 nodes", "4-node scaling", "4-node balance"],
    )
    for name, by_n in results.items():
        table.add_row(
            name,
            by_n[1][0],
            by_n[2][0],
            by_n[4][0],
            by_n[4][0] / by_n[1][0],
            by_n[4][1],
        )
    table.add_note(
        "heavy tails stress per-connection balancing; the shared load "
        "table keeps gateways within a few percent of each other"
    )
    table.print()

    for name, by_n in results.items():
        scaling4 = by_n[4][0] / by_n[1][0]
        assert 3.3 <= scaling4 <= 4.1, f"{name}: scaling {scaling4:.2f}"
        assert by_n[4][1] > 0.8, f"{name}: balance {by_n[4][1]:.2f}"
