"""E11 (ablation) — choosing the token rate L (paper §2.2, §4.1).

The token is "passed at a regular time interval"; that interval is the
protocol's master dial.  The paper's overhead analysis presumes L < M (the
token ticks slower than the message rate) — but how slow should it go?
Spinning the token faster costs idle wakeups and idle bytes (the paper's
task-switching budget); spinning it slower delays multicast attach (a
message waits ~half a traversal for the token) and slows failure probing
(a dead neighbour is only discovered when someone tries to hand it the
token).

This bench sweeps the hop interval on a 4-node ring and reports all three
costs, verifying the monotone trade-offs the design relies on.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import node_names
from repro.cluster.harness import RaincoreCluster
from repro.core.config import RaincoreConfig
from repro.metrics import Table

N = 4
IDLE_WINDOW = 5.0
K_MSGS = 8


def idle_cost(hop: float, seed: int = 41) -> tuple[float, float]:
    """(wakeups/s/node, bytes/s/node) of an idle ring."""
    cfg = RaincoreConfig.tuned(ring_size=N, hop_interval=hop)
    cluster = RaincoreCluster(node_names(N), seed=seed, config=cfg)
    cluster.start_all()
    cluster.run(1.0)
    cluster.stats.reset()
    cluster.run(IDLE_WINDOW)
    return (
        cluster.stats.total("task_switches") / N / IDLE_WINDOW,
        cluster.stats.total("bytes_sent") / N / IDLE_WINDOW,
    )


def attach_latency(hop: float, seed: int = 41) -> float:
    """Mean delay from multicast() to delivery at the *origin* — i.e. the
    wait for the token plus local processing."""
    cfg = RaincoreConfig.tuned(ring_size=N, hop_interval=hop)
    cluster = RaincoreCluster(node_names(N), seed=seed, config=cfg)
    cluster.start_all()
    cluster.run(1.0)
    ids = cluster.node_ids
    waits = []
    for i in range(K_MSGS):
        origin = ids[i % N]
        t0 = cluster.loop.now
        before = len(cluster.listener(origin).deliveries)
        cluster.node(origin).multicast(f"m{i}")
        while len(cluster.listener(origin).deliveries) <= before:
            cluster.run(hop / 4)
        waits.append(cluster.loop.now - t0)
        cluster.run(3 * N * hop)  # decorrelate phases between trials
    return sum(waits) / len(waits)


def crash_detection(hop: float, seed: int = 41) -> float:
    """Time from a member crash to survivor-view convergence."""
    cfg = RaincoreConfig.tuned(ring_size=N, hop_interval=hop)
    cluster = RaincoreCluster(node_names(N), seed=seed, config=cfg)
    cluster.start_all()
    cluster.run(0.5)
    victim = cluster.node_ids[2]
    t0 = cluster.loop.now
    cluster.faults.crash_node(victim)
    survivors = set(cluster.node_ids) - {victim}
    while not cluster.converged(expected=survivors):
        cluster.run(0.005)
        assert cluster.loop.now - t0 < 60.0
    return cluster.loop.now - t0


def test_e11_token_rate_tradeoffs(benchmark):
    hops = (0.002, 0.010, 0.050)

    def sweep():
        return {
            hop: (*idle_cost(hop), attach_latency(hop), crash_detection(hop))
            for hop in hops
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        f"E11: token rate dial (N={N})",
        [
            "hop (ms)",
            "L (roundtrips/s)",
            "idle wakeups/s/node",
            "idle bytes/s/node",
            "attach latency (s)",
            "crash detection (s)",
        ],
    )
    for hop in hops:
        wps, bps, attach, detect = results[hop]
        table.add_row(hop * 1e3, 1.0 / (N * hop), wps, bps, attach, detect)
    table.add_note(
        "faster token = more idle overhead but snappier multicast and "
        "failure discovery; the paper's regime keeps L below the message "
        "rate M so piggybacking amortizes the idle cost"
    )
    table.print()

    # Idle overhead rises as the hop shrinks...
    wakeups = [results[h][0] for h in hops]
    assert wakeups[0] > wakeups[1] > wakeups[2]
    # ...and tracks the analytic rate L = 1/(N*hop).
    for hop in hops:
        assert results[hop][0] == pytest.approx(1.0 / (N * hop), rel=0.25)
    # Attach latency and detection latency shrink with a faster token.
    attaches = [results[h][2] for h in hops]
    detects = [results[h][3] for h in hops]
    assert attaches[0] < attaches[2]
    assert detects[0] < detects[2]