"""E7 (ablation) — redundant links in the Transport Service (paper §2.1).

Paper: "The Transport Service allows each node to have multiple physical
addresses.  This allows redundant links between the nodes in the group,
therefore makes the group more resilient to link failures and less likely
being partitioned."

We measure, under increasing per-segment packet loss, how often a 4-node
group suffers spurious membership churn (failure-detector false alarms
leading to removals and 911 rejoins) with one segment versus two redundant
segments, and for the SEQUENTIAL versus PARALLEL sending strategies.
"""

from __future__ import annotations

from benchmarks.conftest import node_names
from repro.cluster.harness import RaincoreCluster
from repro.core.config import RaincoreConfig
from repro.metrics import Table
from repro.transport.multipath import SendStrategy
from repro.transport.reliable import TransportConfig

N = 4
WINDOW = 20.0  # virtual seconds observed per cell


def churn(segments: int, loss: float, strategy: SendStrategy, seed: int = 17) -> int:
    """Membership-change events observed during a fault-free (but lossy)
    window — every one of them is protocol churn, not a real failure."""
    tcfg = TransportConfig(strategy=strategy)
    cfg = RaincoreConfig.tuned(ring_size=N, hop_interval=0.01, transport=tcfg)
    cluster = RaincoreCluster(
        node_names(N), seed=seed, segments=segments, loss=loss, config=cfg
    )
    cluster.start_all()
    for cn in cluster.nodes.values():
        cn.listener.views.clear()
    cluster.run(WINDOW)
    return sum(len(cn.listener.views) for cn in cluster.nodes.values())


def test_e7_redundant_links_suppress_churn(benchmark):
    def sweep():
        rows = []
        for loss in (0.05, 0.15, 0.30):
            rows.append(
                (
                    loss,
                    churn(1, loss, SendStrategy.SEQUENTIAL),
                    churn(2, loss, SendStrategy.SEQUENTIAL),
                    churn(2, loss, SendStrategy.PARALLEL),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        f"E7: spurious membership events in {WINDOW:.0f}s vs per-segment loss",
        ["loss", "1 link", "2 links (sequential)", "2 links (parallel)"],
    )
    for loss, one, two_seq, two_par in rows:
        table.add_row(loss, one, two_seq, two_par)
    table.add_note(
        "paper §2.1: redundant links make the group more resilient to "
        "link failures and less likely to partition"
    )
    table.print()

    for loss, one, two_seq, two_par in rows:
        # Redundancy never hurts; at high loss it must strictly win.
        assert two_seq <= one
        assert two_par <= one
    high = rows[-1]
    assert high[1] > 0, "test setup: 30% loss should cause churn on one link"
    assert high[3] <= high[1] // 2, "parallel multipath should cut churn at least 2x"
