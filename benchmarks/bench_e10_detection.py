"""E10 (ablation) — how aggressive should failure detection be? (paper §2.2)

Paper: "Raincore uses an aggressive failure detection protocol that
achieves fast failure detection convergence time" — one transport
failure-on-delivery and the neighbour is gone.  The transport's retry
budget is therefore *the* detection knob: fewer/faster retries detect real
crashes sooner but misfire more often on a lossy network (false alarms the
911 protocol then has to heal, paper §2.3).

We sweep the retry budget and measure both sides of the trade:
* detection latency — crash a member, time until survivors' views converge;
* false-alarm churn — spurious membership events under 20% loss with no
  real failures.
"""

from __future__ import annotations

from benchmarks.conftest import node_names
from repro.cluster.harness import RaincoreCluster
from repro.core.config import RaincoreConfig
from repro.metrics import Table
from repro.transport.reliable import TransportConfig

N = 4
CHURN_WINDOW = 20.0
LOSS = 0.20


def make_cluster(tcfg: TransportConfig, loss: float, seed: int) -> RaincoreCluster:
    cfg = RaincoreConfig.tuned(ring_size=N, hop_interval=0.01, transport=tcfg)
    cluster = RaincoreCluster(node_names(N), seed=seed, config=cfg)
    # Form on a clean network, then dial in the loss for the measurement
    # window: the ablation is about steady-state behaviour, not about
    # bootstrapping through a 20%-loss storm with a hair-trigger detector.
    cluster.start_all()
    cluster.topology.segment("net0").loss = loss
    return cluster


def detection_latency(tcfg: TransportConfig, seed: int = 31) -> float:
    cluster = make_cluster(tcfg, 0.0, seed)
    cluster.run(0.5)
    victim = cluster.node_ids[-1]
    t0 = cluster.loop.now
    cluster.faults.crash_node(victim)
    survivors = set(cluster.node_ids) - {victim}
    deadline = t0 + 30.0
    while cluster.loop.now < deadline:
        cluster.run(0.005)
        if cluster.converged(expected=survivors):
            return cluster.loop.now - t0
    raise AssertionError("survivors never converged")


def false_alarm_churn(tcfg: TransportConfig, seed: int = 31) -> int:
    cluster = make_cluster(tcfg, LOSS, seed)
    for cn in cluster.nodes.values():
        cn.listener.views.clear()
    cluster.run(CHURN_WINDOW)
    return sum(len(cn.listener.views) for cn in cluster.nodes.values())


def test_e10_detection_aggressiveness_tradeoff(benchmark):
    budgets = {
        "hair-trigger (1x25ms)": TransportConfig(retx_timeout=0.025, attempts_per_route=1),
        "aggressive (3x50ms, paper)": TransportConfig(retx_timeout=0.05, attempts_per_route=3),
        "conservative (6x100ms)": TransportConfig(retx_timeout=0.10, attempts_per_route=6),
    }

    def sweep():
        return {
            label: (detection_latency(tcfg), false_alarm_churn(tcfg))
            for label, tcfg in budgets.items()
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        f"E10: failure-detection aggressiveness (N={N}, churn at {LOSS:.0%} loss)",
        [
            "retry budget",
            "detection bound (s)",
            "measured detection (s)",
            f"spurious view events / {CHURN_WINDOW:.0f}s",
        ],
    )
    for label, tcfg in budgets.items():
        detect, churn_events = results[label]
        table.add_row(
            label, tcfg.failure_detection_bound(1), detect, churn_events
        )
    table.add_note(
        "paper §2.2-2.3: aggressive detection is safe *because* the 911 "
        "protocol heals false alarms automatically; the knob trades "
        "detection speed against churn under loss"
    )
    table.print()

    labels = list(budgets)
    detects = [results[l][0] for l in labels]
    churns = [results[l][1] for l in labels]
    # Detection latency increases monotonically with the retry budget...
    assert detects[0] < detects[2]
    # ...false-alarm churn decreases with it...
    assert churns[0] >= churns[1] >= churns[2]
    # ...and even the hair-trigger config converges (911 self-healing):
    # detection_latency() itself asserts convergence for every cell.
    # The paper's setting detects well under its 2 s fail-over budget.
    assert detects[1] < 2.0
