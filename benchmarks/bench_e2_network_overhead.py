"""E2 — network overhead (paper §4.1, second analysis).

Paper: "in a cluster of N nodes, when each node needs to multicast one
message of M bytes, there will be (N−1)² packets of M bytes on the network
when a broadcast-based protocol is used.  Number of packets will be doubled
if acknowledgements are implemented. ...  In contrast, using the token-based
protocol, there are N packets of N × M bytes."

We measure the *marginal* packets/bytes of the workload: the same cluster
is run with and without the multicasts (same seed, same window) and the
difference is attributed to the messages.  This is what makes the token
protocol comparable — its token circulates whether or not it carries
payload, and the paper's N-packets figure refers to the loaded passes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import node_names, raincore_workload
from repro.baselines import build_baseline_cluster, BroadcastNode
from repro.cluster.harness import RaincoreCluster
from repro.core.config import RaincoreConfig
from repro.metrics import Table

MSG_BYTES = 1000
HOP = 0.005


def raincore_marginal(n: int) -> tuple[int, int]:
    """(marginal packets, marginal bytes) for one M-byte multicast from
    every node, over the idle token baseline."""

    def run(with_load: bool):
        cluster = raincore_workload(
            n, 1.0, 1.0, size=MSG_BYTES, hop_interval=HOP, seed=3
        ) if with_load else _idle(n)
        return (
            cluster.stats.total("packets_sent"),
            cluster.stats.total("bytes_sent"),
        )

    def _idle(n):
        ids = node_names(n)
        cluster = RaincoreCluster(
            ids, seed=3, config=RaincoreConfig.tuned(ring_size=n, hop_interval=HOP)
        )
        cluster.start_all()
        cluster.run(1.0)
        cluster.stats.reset()
        cluster.run(1.0)
        return cluster

    loaded = run(True)
    idle = run(False)
    return loaded[0] - idle[0], loaded[1] - idle[1]


def broadcast_total(n: int) -> tuple[int, int]:
    """(packets, bytes) for one M-byte multicast from every node."""
    ids = node_names(n)
    cluster = build_baseline_cluster(BroadcastNode, ids, seed=3)
    cluster.stats.reset()
    for nid in ids:
        cluster[nid].multicast("x" * MSG_BYTES, size=MSG_BYTES)
    cluster.run(2.0)
    return cluster.stats.total("packets_sent"), cluster.stats.total("bytes_sent")


def test_e2_packet_and_byte_overhead(benchmark):
    def sweep():
        rows = []
        for n in (2, 4, 8, 16):
            bp, bb = broadcast_total(n)
            rp, rb = raincore_marginal(n)
            rows.append((n, bp, bb, rp, rb))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        f"E2: wire cost of one {MSG_BYTES}-byte multicast from each of N nodes",
        [
            "N",
            "bcast pkts (paper 2(N-1)^2)",
            "bcast bytes",
            "raincore marginal pkts (paper ~N)",
            "raincore marginal bytes (paper ~N*N*M)",
        ],
    )
    for n, bp, bb, rp, rb in rows:
        table.add_row(n, bp, bb, rp, rb)
    table.add_note(
        "broadcast packets = data + acks = 2*N*(N-1); paper counts the "
        "(N-1)^2 receive-side packets and doubles for acks"
    )
    table.print()

    for n, bp, bb, rp, rb in rows:
        # Broadcast: N*(N-1) data packets + as many acks (quadratic in N).
        assert bp == pytest.approx(2 * n * (n - 1), rel=0.15)
        # Raincore's marginal packets stay ~linear-in-N (the messages ride
        # token passes that happen anyway; margin comes from payload bytes
        # plus the handful of passes that grow by the attached payloads).
        assert rp <= n + 3
        # Marginal bytes: each of the N messages rides ~(N-1) hops before
        # it has reached everyone and retires — N(N-1)M total, the paper's
        # "N packets of N*M bytes" with the loaded hop count made exact.
        assert rb == pytest.approx(n * (n - 1) * MSG_BYTES, rel=0.15)

    # Crossover/shape: broadcast's packet count grows quadratically,
    # Raincore's marginal count linearly — the gap must widen with N.
    small = rows[0]
    large = rows[-1]
    assert (large[1] / max(1, large[3])) > (small[1] / max(1, small[3]))
