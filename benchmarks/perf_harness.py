#!/usr/bin/env python
"""Standalone driver for the simulator perf-regression harness.

Thin wrapper around :mod:`repro.perf` (the same engine behind
``raincore-repro bench``) so the benchmark directory has a one-command
entry point:

    PYTHONPATH=src python benchmarks/perf_harness.py
    PYTHONPATH=src python benchmarks/perf_harness.py --quick \
        --check benchmarks/BENCH_simulator.json

Writes ``benchmarks/BENCH_simulator.json`` by default; pass ``--out`` to
redirect, or ``--check BASELINE`` to gate on a committed baseline instead
of overwriting it (the CI perf-smoke job does exactly that).

Besides the simulator-throughput rates, the suite measures
``probe_overhead_ratio``: the loaded reference ring with the probe bus and
flight recorder attached vs the shipped probes-disabled configuration.
The gate keeps enabled-probe overhead under the bound recorded in
``BENCH_baseline.json``; disabled probes are a single attribute load plus
a None test per probe point, so any measurable cost there would already
trip the ``loaded_ring_events_per_sec`` gate.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--out" not in argv and "--check" not in argv:
        argv += ["--out", os.path.join(os.path.dirname(__file__), "BENCH_simulator.json")]
    sys.exit(main(["bench", *argv]))
