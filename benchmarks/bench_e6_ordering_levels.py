"""E6 (ablation) — the cost of the consistency levels (paper §2.6).

Paper: "Interestingly, it requires no extra cost to achieve agreed ordering
than no ordering.  Safe multicast can also be achieved by Raincore, which
requires that TOKEN travels one more round."

We measure delivery latency for AGREED vs SAFE multicast across ring sizes
and verify the structural claims: agreed ordering arrives within one ring
traversal (i.e. the cost of reliability alone — there is nothing cheaper on
a token), and safe ordering costs almost exactly one extra traversal.
"""

from __future__ import annotations

from benchmarks.conftest import node_names
from repro.cluster.harness import RaincoreCluster
from repro.core.config import RaincoreConfig
from repro.core.token import Ordering
from repro.metrics import Table

HOP = 0.002
K_MSGS = 8


def paired_latencies(n: int) -> tuple[float, float]:
    """Phase-matched comparison: each trial sends one AGREED and one SAFE
    message from the same node at the same instant, so both attach on the
    same token visit and the difference is purely the ordering level."""
    ids = node_names(n)
    cluster = RaincoreCluster(
        ids, seed=9, config=RaincoreConfig.tuned(ring_size=n, hop_interval=HOP)
    )
    cluster.start_all()
    cluster.run(0.5)
    agreed_lat, safe_lat = [], []
    for i in range(K_MSGS):
        origin = ids[i % n]
        t0 = cluster.loop.now
        cluster.node(origin).multicast(("agreed", i), size=100)
        cluster.node(origin).multicast(("safe", i), size=100, ordering=Ordering.SAFE)
        done: dict[str, float] = {}
        deadline = t0 + 5.0
        while cluster.loop.now < deadline and len(done) < 2:
            cluster.run(0.0005)
            for kind in ("agreed", "safe"):
                if kind in done:
                    continue
                if all(
                    any(d.payload == (kind, i) for d in cluster.listener(nid).deliveries)
                    for nid in ids
                ):
                    done[kind] = cluster.loop.now - t0
        agreed_lat.append(done["agreed"])
        safe_lat.append(done["safe"])
    return sum(agreed_lat) / K_MSGS, sum(safe_lat) / K_MSGS


def test_e6_safe_costs_one_extra_round(benchmark):
    def sweep():
        return [(n, *paired_latencies(n)) for n in (2, 4, 8)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        f"E6: agreed vs safe delivery latency, hop={HOP*1e3:.0f} ms (seconds)",
        ["N", "agreed", "safe", "safe - agreed", "extra rings ((safe-agreed)/(N*hop))"],
    )
    for n, agreed, safe in rows:
        table.add_row(n, agreed, safe, safe - agreed, (safe - agreed) / (n * HOP))
    table.add_note(
        'paper §2.6: agreed ordering is free; safe "requires that TOKEN '
        'travels one more round"'
    )
    table.print()

    for n, agreed, safe in rows:
        traversal = n * HOP
        # Agreed completes within ~1.5 traversals (reliability's own cost).
        assert agreed <= 1.6 * traversal + 0.01
        # Safe costs roughly one extra traversal: the confirmation forms at
        # the last audience receiver and the delivery round then covers the
        # remaining (N-1)/N of the ring, so the floor is ~0.5 at N=2.
        extra = (safe - agreed) / traversal
        assert 0.35 <= extra <= 2.2, f"N={n}: extra rounds {extra:.2f}"
