"""E5 — multicast delivery latency (paper §4.1's latency discussion).

Paper: "Raincore is designed for a high throughput, high-speed networking
environment.  It is realistic to assume that the network latency is very
low.  This fact alleviates the latency concerns over the token-based
protocols."

A token-based multicast completes within ~one ring traversal (N hops of the
hop interval), while broadcast-style protocols finish in a couple of network
round-trips regardless of N.  We measure completion latency (send → last
member delivered) versus N for Raincore, plain broadcast and 2PC, and show
that with a LAN-scale hop interval the token's latency stays in the paper's
acceptable regime while its overhead advantage (E1) holds.
"""

from __future__ import annotations

from benchmarks.conftest import BASELINES, build_baseline_cluster, node_names
from repro.cluster.harness import RaincoreCluster
from repro.core.config import RaincoreConfig
from repro.metrics import Table

HOP = 0.002  # 2 ms hold per node: a fast LAN token
K_MSGS = 10


def raincore_latency(n: int) -> float:
    ids = node_names(n)
    cluster = RaincoreCluster(
        ids, seed=5, config=RaincoreConfig.tuned(ring_size=n, hop_interval=HOP)
    )
    cluster.start_all()
    cluster.run(0.5)
    latencies = []
    for i in range(K_MSGS):
        t0 = cluster.loop.now
        cluster.node(ids[i % n]).multicast(f"m{i}", size=100)
        target = {nid: len(cluster.listener(nid).deliveries) for nid in ids}
        deadline = t0 + 5.0
        while cluster.loop.now < deadline:
            cluster.run(0.0002)
            if all(
                len(cluster.listener(nid).deliveries) > target[nid] for nid in ids
            ):
                break
        latencies.append(cluster.loop.now - t0)
    return sum(latencies) / len(latencies)


def baseline_latency(kind: str, n: int) -> float:
    ids = node_names(n)
    cluster = build_baseline_cluster(BASELINES[kind], ids, seed=5)
    counts = {nid: 0 for nid in ids}
    for nid in ids:
        cluster[nid].set_deliver(lambda o, p, nid=nid: counts.__setitem__(nid, counts[nid] + 1))
    latencies = []
    for i in range(K_MSGS):
        t0 = cluster.loop.now
        before = dict(counts)
        cluster[ids[i % n]].multicast(f"m{i}", size=100)
        deadline = t0 + 5.0
        while cluster.loop.now < deadline:
            cluster.run(0.0002)
            if all(counts[nid] > before[nid] for nid in ids):
                break
        latencies.append(cluster.loop.now - t0)
    return sum(latencies) / len(latencies)


def test_e5_latency_vs_cluster_size(benchmark):
    def sweep():
        rows = []
        for n in (2, 4, 8):
            rows.append(
                (
                    n,
                    raincore_latency(n),
                    baseline_latency("broadcast", n),
                    baseline_latency("2pc", n),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        f"E5: multicast completion latency, hop={HOP*1e3:.0f} ms (seconds)",
        ["N", "raincore", "broadcast", "2pc", "raincore rings (latency/(N*hop))"],
    )
    for n, rc, bc, tp in rows:
        table.add_row(n, rc, bc, tp, rc / (n * HOP))
    table.add_note(
        "token latency ~ one ring traversal and grows with N; broadcast "
        "latency ~ network RTTs and stays flat — the paper trades this "
        "for the E1/E2 overhead win in a low-latency LAN"
    )
    table.print()

    for n, rc, bc, tp in rows:
        # Token multicast completes within ~1.5 ring traversals.
        assert rc <= 1.6 * n * HOP + 0.01
        # Broadcast is faster in raw latency (the paper concedes this).
        assert bc < rc
        # 2PC pays extra phases over plain broadcast.
        assert tp > bc
    # Raincore latency grows with N; broadcast stays flat-ish.
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][2] < 5 * rows[0][2]
