"""E9 (extension ablation) — hierarchical scalability (paper §5).

The paper's first future-work item is "the hierarchical design that extends
the scalability of the protocol".  The flat ring's multicast latency and
its failure-detection timeouts both grow linearly with N; splitting N nodes
into √N sub-rings bridged by a leaders' ring makes the longest ring O(√N).

We measure cluster-wide multicast completion latency and the tuned HUNGRY
timeout (the token-recovery bound) for flat vs hierarchical layouts of the
same N, and check the crossover: the hierarchy wins once rings get large.
"""

from __future__ import annotations

import math

from benchmarks.conftest import node_names
from repro.cluster.harness import RaincoreCluster
from repro.core.config import RaincoreConfig
from repro.hierarchy import HierarchicalCluster
from repro.metrics import Table

HOP = 0.005
K_MSGS = 5


def flat_latency(n: int) -> tuple[float, float]:
    """(mean completion latency, tuned hungry timeout) for a flat ring."""
    cfg = RaincoreConfig.tuned(ring_size=n, hop_interval=HOP)
    cluster = RaincoreCluster(node_names(n), seed=13, config=cfg)
    cluster.start_all(form_time=5.0 + n)
    cluster.run(0.5)
    ids = cluster.node_ids
    lats = []
    for i in range(K_MSGS):
        t0 = cluster.loop.now
        before = {nid: len(cluster.listener(nid).deliveries) for nid in ids}
        cluster.node(ids[i % n]).multicast(f"m{i}", size=100)
        deadline = t0 + 30.0
        while cluster.loop.now < deadline:
            cluster.run(0.002)
            if all(len(cluster.listener(nid).deliveries) > before[nid] for nid in ids):
                break
        lats.append(cluster.loop.now - t0)
    return sum(lats) / len(lats), cfg.hungry_timeout


def hier_latency(n: int) -> tuple[float, float]:
    """Same measurements for ~sqrt(N) groups of ~sqrt(N) nodes."""
    g = round(math.sqrt(n))
    groups = []
    for gi in range(g):
        letter = chr(ord("a") + gi)
        groups.append([f"{letter}{i:02d}" for i in range(n // g)])
    h = HierarchicalCluster(groups, seed=13, hop_interval=HOP)
    h.start(budget=10.0 + n)
    h.run(0.5)
    senders = h.machine_ids
    lats = []
    for i in range(K_MSGS):
        t0 = h.loop.now
        before = {nid: len(h.global_log[nid]) for nid in h.machine_ids}
        h.members[senders[i % len(senders)]].multicast_global(f"m{i}", size=100)
        deadline = t0 + 30.0
        while h.loop.now < deadline:
            h.run(0.002)
            if all(len(h.global_log[nid]) > before[nid] for nid in h.machine_ids):
                break
        lats.append(h.loop.now - t0)
    ring = max(len(grp) for grp in groups)
    hungry = RaincoreConfig.tuned(ring_size=ring, hop_interval=HOP).hungry_timeout
    return sum(lats) / len(lats), hungry


def test_e9_hierarchy_scales_latency(benchmark):
    def sweep():
        rows = []
        for n in (9, 36, 64):
            fl, fh = flat_latency(n)
            hl, hh = hier_latency(n)
            rows.append((n, fl, hl, fh, hh))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        f"E9: flat vs hierarchical (sqrt-N groups), hop={HOP*1e3:.0f} ms",
        [
            "N",
            "flat latency (s)",
            "hier latency (s)",
            "latency ratio",
            "flat hungry timeout (s)",
            "hier hungry timeout (s)",
        ],
    )
    for n, fl, hl, fh, hh in rows:
        table.add_row(n, fl, hl, fl / hl, fh, hh)
    table.add_note(
        "paper §5: the hierarchical design extends scalability — latency "
        "and recovery bounds grow with the longest ring, O(sqrt N) here"
    )
    table.print()

    by_n = {n: (fl, hl, fh, hh) for n, fl, hl, fh, hh in rows}
    # At small N the extra relay hops make the hierarchy slower or ~equal;
    # at 64 nodes the sqrt-length rings must win on latency.
    assert by_n[64][0] > by_n[64][1]
    # The win grows with N.
    assert by_n[64][0] / by_n[64][1] > by_n[9][0] / by_n[9][1]
    # Failure-detection/recovery bounds shrink accordingly at every N.
    for n, (fl, hl, fh, hh) in by_n.items():
        assert hh <= fh
