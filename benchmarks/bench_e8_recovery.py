"""E8 (ablation) — 911 token-regeneration behaviour (paper §2.3, §2.5).

The paper proves token *everlastingness*: "when a TOKEN disappears from the
system due to node failure, it will be regenerated within a finite amount
of time."  The recovery time is governed by the HUNGRY timeout plus one 911
grant round.  We inject repeated token losses across ring sizes and HUNGRY
timeouts and measure recovery time and winner uniqueness.
"""

from __future__ import annotations

from benchmarks.conftest import node_names
from repro.cluster.harness import RaincoreCluster
from repro.core.config import RaincoreConfig
from repro.metrics import Table

LOSSES_PER_CELL = 5


def recovery_times(n: int, hungry_timeout: float, seed: int = 29):
    cfg = RaincoreConfig.tuned(
        ring_size=n, hop_interval=0.005, hungry_timeout=hungry_timeout
    )
    cluster = RaincoreCluster(node_names(n), seed=seed, config=cfg)
    cluster.start_all()
    times = []
    for _ in range(LOSSES_PER_CELL):
        cluster.run(0.2)
        # The token may be in flight; nudge until we catch a holder.
        while not cluster.faults.lose_token():
            cluster.run(0.002)
        t0 = cluster.loop.now
        deadline = t0 + hungry_timeout * 10 + 5.0
        while cluster.loop.now < deadline:
            cluster.run(0.005)
            if cluster.token_holders():
                break
        assert cluster.token_holders(), "token never regenerated"
        times.append(cluster.loop.now - t0)
        assert cluster.run_until_converged(5.0)
    total_regens = sum(
        cluster.node(nid).recovery.regenerations for nid in node_names(n)
    )
    return times, total_regens


def test_e8_regeneration_time_and_uniqueness(benchmark):
    def sweep():
        rows = []
        for n in (2, 4, 8):
            for hungry in (0.25, 0.5, 1.0):
                times, regens = recovery_times(n, hungry)
                rows.append((n, hungry, max(times), sum(times) / len(times), regens))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        f"E8: 911 token regeneration over {LOSSES_PER_CELL} injected losses",
        ["N", "hungry timeout (s)", "max recovery (s)", "mean recovery (s)", "regenerations"],
    )
    for n, hungry, worst, mean, regens in rows:
        table.add_row(n, hungry, worst, mean, regens)
    table.add_note(
        "recovery ~ hungry timeout + one 911 round; exactly one node "
        "regenerates per loss (paper §2.3's seq-number arbitration)"
    )
    table.print()

    for n, hungry, worst, mean, regens in rows:
        # Bounded recovery: timeout + grant round + slack.
        assert worst <= hungry + 1.0
        # Everlasting + unique: one regeneration per injected loss.
        assert regens == LOSSES_PER_CELL
        # Recovery time is dominated by (and thus tracks) the timeout knob.
        assert mean >= 0.8 * hungry
