"""Shared drivers for the experiment benchmarks (DESIGN.md §4, E1–E8).

Each ``bench_e*.py`` file regenerates one table or figure from the paper.
Run them with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the reproduced tables; without it the assertions alone verify
the paper's qualitative claims (who wins, by roughly what factor).
"""

from __future__ import annotations

from repro.baselines import (
    BroadcastNode,
    SequencerNode,
    TwoPhaseNode,
    build_baseline_cluster,
)
from repro.cluster.harness import RaincoreCluster
from repro.core.config import RaincoreConfig

__all__ = [
    "node_names",
    "drive_multicast",
    "raincore_workload",
    "baseline_workload",
    "BASELINES",
]

BASELINES = {
    "broadcast": BroadcastNode,
    "sequencer": SequencerNode,
    "2pc": TwoPhaseNode,
}


def node_names(n: int) -> list[str]:
    return [f"n{i:02d}" for i in range(n)]


def drive_multicast(loop, senders, rate_per_node: float, duration: float, size: int):
    """Schedule ``rate_per_node`` multicasts/s from each sender for
    ``duration`` seconds, phase-staggered so sends do not all coincide."""
    interval = 1.0 / rate_per_node
    count = int(rate_per_node * duration)
    for k, (name, send) in enumerate(senders.items()):
        phase = (k / max(1, len(senders))) * interval
        for i in range(count):
            loop.call_later(
                phase + i * interval, send, f"{name}-m{i}", size
            )


def raincore_workload(
    n: int,
    rate_per_node: float,
    duration: float,
    *,
    size: int = 100,
    hop_interval: float = 0.005,
    seed: int = 0,
    warmup: float = 1.0,
):
    """Form a Raincore cluster, drive the multicast workload, return the
    cluster with stats covering exactly the measurement window."""
    ids = node_names(n)
    cluster = RaincoreCluster(
        ids,
        seed=seed,
        config=RaincoreConfig.tuned(ring_size=n, hop_interval=hop_interval),
    )
    cluster.start_all()
    cluster.run(warmup)
    cluster.stats.reset()
    senders = {
        nid: (lambda payload, sz, nid=nid: cluster.node(nid).multicast(payload, size=sz))
        for nid in ids
    }
    drive_multicast(cluster.loop, senders, rate_per_node, duration, size)
    cluster.run(duration)
    return cluster


def baseline_workload(
    kind: str,
    n: int,
    rate_per_node: float,
    duration: float,
    *,
    size: int = 100,
    seed: int = 0,
):
    """Same workload over one of the broadcast-style baselines."""
    ids = node_names(n)
    cluster = build_baseline_cluster(BASELINES[kind], ids, seed=seed)
    cluster.stats.reset()
    senders = {
        nid: (lambda payload, sz, nid=nid: cluster[nid].multicast(payload, size=sz))
        for nid in ids
    }
    drive_multicast(cluster.loop, senders, rate_per_node, duration, size)
    cluster.run(duration + 1.0)  # drain in-flight ordering rounds
    return cluster
