"""Meta-benchmark: raw performance of the simulation substrate.

Unlike E1–E12 (which measure *simulated* quantities), this one measures
wall-clock throughput of the simulator itself — the number a contributor
watches for performance regressions (CONTRIBUTING.md).  pytest-benchmark's
timing is the metric here, so these use real rounds.
"""

from __future__ import annotations

from repro.cluster.harness import RaincoreCluster
from repro.core.config import RaincoreConfig
from repro.net.eventloop import EventLoop


def test_event_loop_throughput(benchmark):
    """Dispatch rate of the bare event loop (events/second)."""

    def spin():
        loop = EventLoop(seed=1)
        count = 50_000
        for i in range(count):
            loop.call_later(i * 1e-6, lambda: None)
        loop.run_until_idle()
        return count

    events = benchmark(spin)
    assert events == 50_000


def test_token_ring_throughput(benchmark):
    """Full-stack cost of one simulated second of an 8-node loaded ring."""

    def one_second():
        cluster = RaincoreCluster(
            [f"n{i}" for i in range(8)],
            seed=2,
            config=RaincoreConfig.tuned(ring_size=8, hop_interval=0.005),
        )
        cluster.start_all()
        for i in range(50):
            cluster.node(f"n{i % 8}").multicast(f"m{i}", size=200)
        cluster.run(1.0)
        return cluster.loop.events_processed

    events = benchmark(one_second)
    # Sanity: ~200 token hops/second at ~3 events per hop actually ran.
    assert events > 400
