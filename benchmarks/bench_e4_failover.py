"""E4 — the two-second fail-over claim (paper §3.2).

Paper: "The fail-over time of Rainwall is under two seconds.  For example,
suppose a client is downloading a file from a server through a firewall.
If a network cable connecting one of the Rainwall firewalls is accidentally
unplugged, the client, instead of losing the connection, will only see
about 2-seconds hick-up in the traffic flow, before it fully resumes."

We run the exact experiment: mid-download, unplug one gateway's cable, and
measure (a) the longest per-connection stall and (b) when aggregate traffic
recovers — across several seeds, since fail-over latency depends on where
the token is when the cable goes.
"""

from __future__ import annotations

import pytest

from repro.apps.rainwall import RainwallCluster, RainwallConfig
from repro.metrics import Table

SEEDS = (7, 11, 23)


def run_failover(seed: int):
    cfg = RainwallConfig(arrival_rate=300.0, flow_size=500_000.0)
    rw = RainwallCluster(["g0", "g1"], seed=seed, config=cfg)
    rw.start()
    rw.run(3.0)
    pre = rw.throughput_mbps(since=1.0)
    rw.unplug_gateway("g1")
    rw.run(6.0)
    post = rw.throughput_mbps(since=rw.loop.now - 2.0)
    max_stall = max(f.total_stall for f in rw.engine.flows.values())
    disconnects = sum(
        1
        for f in rw.engine.flows.values()
        if not f.done and f.gateway is None
    )
    return pre, post, max_stall, disconnects


def test_e4_failover_under_two_seconds(benchmark):
    def sweep():
        return {seed: run_failover(seed) for seed in SEEDS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        "E4: cable-unplug fail-over (2-gateway Rainwall)",
        [
            "seed",
            "pre Mbit/s",
            "post Mbit/s",
            "max connection stall (s)",
            "lost connections",
        ],
    )
    for seed, (pre, post, stall, lost) in results.items():
        table.add_row(seed, pre, post, stall, lost)
    table.add_note("paper: fail-over under 2 s; clients see a hiccup, not a disconnect")
    table.print()

    for seed, (pre, post, stall, lost) in results.items():
        # Traffic flowed on both gateways before the fault ...
        assert pre == pytest.approx(190.0, rel=0.1)
        # ... resumes at single-gateway capacity ...
        assert post == pytest.approx(95.0, rel=0.1)
        # ... nobody is disconnected, and the hiccup is far under 2 s.
        assert lost == 0
        assert stall < 2.0
