"""Replicated work queue — a Data Service distribution primitive.

A FIFO queue whose pushes and pops are serialized by the group's
agreed-ordered multicast: every replica applies the same operations in the
same order, so an item is handed to **exactly one** popper even when many
nodes pop concurrently — the token's total order is the arbitration, no
extra locking needed.

Semantics
---------
* ``push(item)`` appends; ``pop(callback)`` requests the next item.  Pops
  queue FIFO when the queue is empty and are satisfied by later pushes.
* An item is *consumed* at the instant its assignment op is delivered; if
  the assignee crashes afterwards, the item is not re-queued (at-most-once
  hand-off — re-execution semantics belong to the application, which can
  re-push).  Pending pops of a dead node are dropped by the usual
  lowest-id-survivor purge.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.events import Delivery, SessionListener, ViewChange, ensure_composite
from repro.core.session import RaincoreNode

__all__ = ["ReplicatedQueue", "QueueOp"]

#: Bound on the remembered hand-off log (raincheck RC205: every replicated
#: append needs a prune path; a deque's maxlen is this log's).
ASSIGNMENT_LOG_WINDOW = 4096


@dataclass(frozen=True)
class QueueOp:
    """One replicated queue operation."""

    kind: str  # "push" | "pop" | "purge"
    queue: str
    node: str  # pusher / popper / purged node
    req_id: int  # pop correlation id (0 otherwise)
    item: Any = None

    def wire_size(self) -> int:
        return 24 + len(self.queue)


class ReplicatedQueue(SessionListener):
    """A named, group-replicated FIFO with exactly-one hand-off."""

    def __init__(self, node: RaincoreNode, name: str) -> None:
        self.node = node
        self.name = name
        ensure_composite(node).add(self)
        self._items: deque[Any] = deque()
        self._waiters: deque[tuple[str, int]] = deque()
        self._req_ids = itertools.count(1)
        self._callbacks: dict[int, Callable[[Any], None]] = {}
        self._last_view: tuple[str, ...] = ()
        self._purged_views: set[int] = set()
        #: replicated hand-off log, bounded so a long-lived queue cannot
        #: grow replica memory without bound (oldest entries fall off)
        self.assignments: deque[tuple[str, Any]] = deque(
            maxlen=ASSIGNMENT_LOG_WINDOW
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def push(self, item: Any) -> None:
        """Append ``item`` for some member to pop."""
        self.node.multicast(QueueOp("push", self.name, self.node.node_id, 0, item))

    def pop(self, callback: Callable[[Any], None]) -> int:
        """Request the next item; ``callback(item)`` fires on hand-off."""
        req_id = next(self._req_ids)
        self._callbacks[req_id] = callback
        self.node.multicast(QueueOp("pop", self.name, self.node.node_id, req_id))
        return req_id

    def depth(self) -> int:
        """Items currently unassigned in this replica's view."""
        return len(self._items)

    def waiting(self) -> int:
        """Pop requests currently queued in this replica's view."""
        return len(self._waiters)

    # ------------------------------------------------------------------
    # replicated state machine
    # ------------------------------------------------------------------
    def on_deliver(self, delivery: Delivery) -> None:
        op = delivery.payload
        if not isinstance(op, QueueOp) or op.queue != self.name:
            return
        if op.kind == "push":
            self._items.append(op.item)
        elif op.kind == "pop":
            self._waiters.append((op.node, op.req_id))
        elif op.kind == "purge":
            self._waiters = deque(
                (n, r) for n, r in self._waiters if n != op.node
            )
        self._drain()

    def _drain(self) -> None:
        while self._items and self._waiters:
            item = self._items.popleft()
            popper, req_id = self._waiters.popleft()
            self.assignments.append((popper, item))
            if popper == self.node.node_id:
                callback = self._callbacks.pop(req_id, None)
                if callback is not None:
                    callback(item)

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def on_view_change(self, view: ViewChange) -> None:
        removed = set(self._last_view) - set(view.members)
        self._last_view = view.members
        if not removed or not view.members:
            return
        if self.node.node_id != min(view.members):
            return
        if view.view_id in self._purged_views:
            return
        self._purged_views.add(view.view_id)
        for dead in sorted(removed):
            self.node.multicast(QueueOp("purge", self.name, dead, 0))
