"""Replicated dictionary — part of the Raincore Distributed Data Service.

Paper §5 (future work): "The ambition is to provide developers an
environment where they will be able to develop distributed networking
applications with the ease of developing a multi-thread shared-memory
application on a single processor."  This module is that environment's
first primitive: a key-value store replicated across the group by
agreed-ordered multicast.

Consistency model
-----------------
* Writes (``set`` / ``delete``) are multicast operations; every member
  applies them in the group's single total order, so replicas never
  diverge while co-members.
* Reads are local and therefore may momentarily lag the total order by the
  in-flight window — the standard trade of token-replicated state.
* **State transfer and anti-entropy** follow the Data Service replica
  discipline (:mod:`repro.data.replica`): join-time snapshots materialized
  at token-attach time, growth-triggered snapshots from the lowest-id
  synced member, sync-requests from unsynced replicas, and deterministic
  self-declaration when an entire group lacks history.
* **Merge reconciliation**: after a split-brain heals, the snapshot rules
  converge the cluster on the coordinator's state — the lower-group-id
  partition wins, mirroring the merge protocol's own tie-break.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.core.session import RaincoreNode
from repro.data.replica import ReplicaBase

__all__ = ["SharedDict", "DictOp", "DictSnapshot"]


def _estimate_size(obj: object) -> int:
    """Crude wire-size model for replicated values."""
    if isinstance(obj, (bytes, bytearray, str)):
        return len(obj)
    if isinstance(obj, dict):
        return sum(_estimate_size(k) + _estimate_size(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(_estimate_size(v) for v in obj)
    return 8


@dataclass(frozen=True)
class DictOp:
    """One replicated write: set or delete."""

    kind: str  # "set" | "del"
    key: str
    value: object  # None for del

    def wire_size(self) -> int:
        return 16 + len(self.key) + _estimate_size(self.value)


@dataclass(frozen=True)
class DictSnapshot:
    """Full-state transfer for joiners (and merge reconciliation)."""

    state: dict
    version: int  # ops applied at the sender when materialized

    def wire_size(self) -> int:
        return 16 + _estimate_size(self.state)


class SharedDict(ReplicaBase):
    """A group-replicated ``dict`` with local reads and multicast writes.

    Attach before starting the node (so the first view is observed)::

        shared = SharedDict(node)
        node.start_joining(["A"])
        ...
        shared.set("load:B", 17)
        shared.get("load:A")
    """

    SERVICE = "shared-dict"

    def __init__(self, node: RaincoreNode) -> None:
        self._state: dict[str, object] = {}
        self._version = 0
        super().__init__(node)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def set(self, key: str, value: object) -> None:
        """Replicate ``key = value`` to the whole group."""
        self.node.multicast(DictOp("set", key, value))

    def delete(self, key: str) -> None:
        """Replicate deletion of ``key``."""
        self.node.multicast(DictOp("del", key, None))

    def get(self, key: str, default: object = None) -> object:
        """Local read of this replica."""
        return self._state.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._state

    def __len__(self) -> int:
        return len(self._state)

    def keys(self) -> Iterator[str]:
        return iter(sorted(self._state))

    def snapshot(self) -> dict[str, object]:
        """Copy of the local replica state."""
        return dict(self._state)

    @property
    def version(self) -> int:
        """Number of operations applied at this replica."""
        return self._version

    # ------------------------------------------------------------------
    # ReplicaBase hooks
    # ------------------------------------------------------------------
    def _is_op(self, payload: Any) -> bool:
        return isinstance(payload, DictOp)

    def _is_snapshot(self, payload: Any) -> bool:
        return isinstance(payload, DictSnapshot)

    def _apply_op(self, op: DictOp) -> None:
        self._version += 1
        if op.kind == "set":
            self._state[op.key] = op.value
        elif op.kind == "del":
            self._state.pop(op.key, None)

    def _snapshot_payload(self) -> DictSnapshot:
        return DictSnapshot(dict(self._state), self._version)

    def _install_snapshot(self, snap: DictSnapshot) -> None:
        # Everyone applies snapshots in full: a no-op for in-sync members
        # by construction; after a merge it reconciles the partitions.
        self._state = dict(snap.state)
        self._version = snap.version
