"""Raincore Distributed Data Service (paper Fig. 2, §2.7, §5).

Replicated shared state over the session service's agreed-ordered
multicast: a distributed lock manager and a replicated dictionary — the
building blocks the paper's applications (Virtual IP Manager, Rainwall)
use to share assignment tables and load information.
"""

from repro.data.barrier import BarrierOp, DistributedBarrier
from repro.data.lock_manager import DistributedLockManager, LockOp
from repro.data.queue import QueueOp, ReplicatedQueue
from repro.data.replica import ReplicaBase, SyncRequest
from repro.data.resync import (
    ContinuationPoint,
    LogEntry,
    ResyncAck,
    ResyncDelta,
    ResyncSnapshot,
    Segment,
    SegmentedLog,
)
from repro.data.rwlock import ReadWriteLockManager, RwOp
from repro.data.shared_dict import DictOp, DictSnapshot, SharedDict

__all__ = [
    "ContinuationPoint",
    "LogEntry",
    "ResyncAck",
    "ResyncDelta",
    "ResyncSnapshot",
    "Segment",
    "SegmentedLog",
    "BarrierOp",
    "DistributedBarrier",
    "DistributedLockManager",
    "LockOp",
    "QueueOp",
    "ReplicatedQueue",
    "ReplicaBase",
    "SyncRequest",
    "ReadWriteLockManager",
    "RwOp",
    "DictOp",
    "DictSnapshot",
    "SharedDict",
]
