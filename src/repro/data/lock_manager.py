"""Distributed lock manager — part of the Raincore Distributed Data Service.

Paper §2.7: "a Raincore distributed lock manager is implemented as part of
the Raincore Distributed Data Service, using the mutual exclusion service to
acquire and release data locks.  The data locks ..., comparing to this
master-lock, can be associated with one or more shared data items, and can
be owned by a node without requiring the node to remain in the EATING
state."

Design
------
The lock table is replicated state driven exclusively by the group's
agreed-ordered multicast stream: every node applies the same
acquire/release/purge operations in the same order, so the tables agree
without any extra coordination — the token's total order *is* the lock
arbitration.  Each lock has an owner and a FIFO wait queue (fairness
mirrors the token's own round-robin fairness).

Fault tolerance: when a member disappears from the view, the lowest-id
surviving member multicasts a ``purge`` op for it.  Because the purge rides
the same ordered stream, every replica drops the dead node's ownerships and
queue entries at the same logical instant; waiting requesters are promoted
deterministically.  Purges are idempotent, so duplicated purges (e.g. after
a leadership change mid-purge) are harmless.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.core.events import Delivery, SessionListener, ViewChange, ensure_composite
from repro.core.session import RaincoreNode

__all__ = ["DistributedLockManager", "LockOp"]


@dataclass(frozen=True)
class LockOp:
    """One replicated lock-table operation."""

    kind: str  # "acquire" | "release" | "purge"
    lock: str  # lock name ("" for purge)
    node: str  # requester / releaser / purged node
    req_id: int  # correlates grants with acquire calls (0 for purge)

    def wire_size(self) -> int:
        return 24 + len(self.lock) + len(self.node)


@dataclass
class _LockState:
    """Owner plus FIFO waiters; queue[0] is the owner."""

    queue: deque = field(default_factory=deque)  # of (node, req_id)


class DistributedLockManager(SessionListener):
    """Named, fault-tolerant, fair distributed locks over one group.

    Attach one manager per node *before* driving traffic::

        dlm = DistributedLockManager(node)
        dlm.acquire("vip-table", on_granted=lambda: ...)
        ...
        dlm.release("vip-table")

    Grant callbacks fire on the acquiring node once its request reaches the
    front of the replicated queue.  ``acquire`` while already owning or
    waiting raises — locks are not reentrant (matching the paper's framing
    of locks as exclusive data-item ownership).
    """

    def __init__(self, node: RaincoreNode) -> None:
        self.node = node
        ensure_composite(node).add(self)
        self._locks: dict[str, _LockState] = {}
        self._req_ids = itertools.count(1)
        self._grant_callbacks: dict[int, Callable[[], None]] = {}
        self._my_requests: dict[str, int] = {}  # lock -> my outstanding req_id
        self._last_view: tuple[str, ...] = ()
        self._purged: set[tuple[str, int]] = set()  # (node, view_id) dedupe
        # Counters for tests/diagnostics.
        self.grants_seen = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def acquire(self, lock: str, on_granted: Callable[[], None] | None = None) -> int:
        """Request ``lock``; ``on_granted`` fires when we own it.

        Returns the request id.  The request is serialized through the
        token's agreed order, so concurrent acquires from different nodes
        are granted in a single well-defined order.
        """
        if lock in self._my_requests:
            raise RuntimeError(
                f"{self.node.node_id}: already holding or waiting for {lock!r}"
            )
        req_id = next(self._req_ids)
        self._my_requests[lock] = req_id
        if on_granted is not None:
            self._grant_callbacks[req_id] = on_granted
        self.node.multicast(LockOp("acquire", lock, self.node.node_id, req_id))
        return req_id

    def release(self, lock: str) -> None:
        """Release ``lock`` (or withdraw a queued request for it)."""
        if lock not in self._my_requests:
            raise RuntimeError(f"{self.node.node_id}: does not hold {lock!r}")
        req_id = self._my_requests.pop(lock)
        self._grant_callbacks.pop(req_id, None)
        self.node.multicast(LockOp("release", lock, self.node.node_id, req_id))

    def owner(self, lock: str) -> str | None:
        """Current owner of ``lock`` in this replica's table."""
        state = self._locks.get(lock)
        if state is None or not state.queue:
            return None
        return state.queue[0][0]

    def owns(self, lock: str) -> bool:
        return self.owner(lock) == self.node.node_id

    def waiters(self, lock: str) -> list[str]:
        state = self._locks.get(lock)
        if state is None:
            return []
        return [n for n, _ in list(state.queue)[1:]]

    def table(self) -> dict[str, str]:
        """Snapshot of lock → owner (diagnostics / agreement tests)."""
        return {
            name: state.queue[0][0]
            for name, state in self._locks.items()
            if state.queue
        }

    # ------------------------------------------------------------------
    # replicated state machine
    # ------------------------------------------------------------------
    def on_deliver(self, delivery: Delivery) -> None:
        op = delivery.payload
        if not isinstance(op, LockOp):
            return
        if op.kind == "acquire":
            self._apply_acquire(op)
        elif op.kind == "release":
            self._apply_release(op)
        elif op.kind == "purge":
            self._apply_purge(op.node)

    def _apply_acquire(self, op: LockOp) -> None:
        state = self._locks.setdefault(op.lock, _LockState())
        state.queue.append((op.node, op.req_id))
        if len(state.queue) == 1:
            self._granted(op.lock)

    def _apply_release(self, op: LockOp) -> None:
        state = self._locks.get(op.lock)
        if state is None:
            return
        had_owner = bool(state.queue)
        owner = state.queue[0] if had_owner else None
        try:
            state.queue.remove((op.node, op.req_id))
        except ValueError:
            return  # stale release (e.g. after a purge); ignore
        if had_owner and owner == (op.node, op.req_id) and state.queue:
            self._granted(op.lock)

    def _apply_purge(self, dead: str) -> None:
        for lock, state in self._locks.items():
            if not state.queue:
                continue
            owner = state.queue[0]
            state.queue = deque(
                (n, r) for n, r in state.queue if n != dead
            )
            if owner[0] == dead and state.queue:
                self._granted(lock)

    def _granted(self, lock: str) -> None:
        self.grants_seen += 1
        node_id, req_id = self._locks[lock].queue[0]
        if node_id == self.node.node_id:
            callback = self._grant_callbacks.pop(req_id, None)
            if callback is not None:
                callback()

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def on_view_change(self, view: ViewChange) -> None:
        removed = set(self._last_view) - set(view.members)
        self._last_view = view.members
        if not removed or not view.members:
            return
        if self.node.node_id != min(view.members):
            return  # the lowest-id survivor issues the purge
        for dead in sorted(removed):
            key = (dead, view.view_id)
            if key in self._purged:
                continue
            self._purged.add(key)
            self.node.multicast(LockOp("purge", "", dead, 0))
