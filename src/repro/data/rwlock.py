"""Replicated read/write locks — shared data items with concurrent readers.

The paper frames Data Service locks as "associated with one or more shared
data items" (§2.7).  For read-mostly state (routing tables, policy
configuration) exclusive locks serialize needlessly; this manager adds the
standard shared/exclusive discipline on the same replicated-queue
foundation as :class:`~repro.data.lock_manager.DistributedLockManager`:

* any number of concurrent **readers**, or exactly one **writer**;
* requests are granted in the token's total order (writer-fairness: a
  waiting writer blocks later readers, so writers cannot starve);
* dead holders are purged through the ordered stream by the lowest-id
  survivor, promoting waiters deterministically.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.core.events import Delivery, SessionListener, ViewChange, ensure_composite
from repro.core.session import RaincoreNode

__all__ = ["ReadWriteLockManager", "RwOp"]


@dataclass(frozen=True)
class RwOp:
    """One replicated read/write-lock operation."""

    kind: str  # "acquire" | "release" | "purge"
    lock: str
    mode: str  # "r" | "w" ("" for purge)
    node: str
    req_id: int

    def wire_size(self) -> int:
        return 24 + len(self.lock) + len(self.node)


@dataclass
class _RwState:
    """holders = active grants; queue = waiting requests, FIFO."""

    holders: dict[tuple[str, int], str] = field(default_factory=dict)  # -> mode
    queue: deque = field(default_factory=deque)  # of (node, req_id, mode)

    @property
    def write_held(self) -> bool:
        return any(m == "w" for m in self.holders.values())


class ReadWriteLockManager(SessionListener):
    """Named shared/exclusive locks over one Raincore group."""

    def __init__(self, node: RaincoreNode) -> None:
        self.node = node
        ensure_composite(node).add(self)
        self._locks: dict[str, _RwState] = {}
        self._req_ids = itertools.count(1)
        self._callbacks: dict[int, Callable[[], None]] = {}
        self._mine: dict[tuple[str, str], int] = {}  # (lock, mode) -> req_id
        self._last_view: tuple[str, ...] = ()
        self._purged: set[tuple[str, int]] = set()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def acquire_read(self, lock: str, on_granted: Callable[[], None] | None = None) -> int:
        """Request a shared grant on ``lock``."""
        return self._acquire(lock, "r", on_granted)

    def acquire_write(self, lock: str, on_granted: Callable[[], None] | None = None) -> int:
        """Request an exclusive grant on ``lock``."""
        return self._acquire(lock, "w", on_granted)

    def _acquire(
        self, lock: str, mode: str, on_granted: Callable[[], None] | None
    ) -> int:
        key = (lock, mode)
        if key in self._mine:
            raise RuntimeError(
                f"{self.node.node_id}: already holding/waiting {mode!r} on {lock!r}"
            )
        req_id = next(self._req_ids)
        self._mine[key] = req_id
        if on_granted is not None:
            self._callbacks[req_id] = on_granted
        self.node.multicast(RwOp("acquire", lock, mode, self.node.node_id, req_id))
        return req_id

    def release(self, lock: str, mode: str) -> None:
        """Release this node's grant (or queued request) of ``mode``."""
        key = (lock, mode)
        if key not in self._mine:
            raise RuntimeError(f"{self.node.node_id}: no {mode!r} hold on {lock!r}")
        req_id = self._mine.pop(key)
        self._callbacks.pop(req_id, None)
        self.node.multicast(RwOp("release", lock, mode, self.node.node_id, req_id))

    def readers(self, lock: str) -> list[str]:
        state = self._locks.get(lock)
        if state is None:
            return []
        return sorted(n for (n, _), m in state.holders.items() if m == "r")

    def writer(self, lock: str) -> str | None:
        state = self._locks.get(lock)
        if state is None:
            return None
        for (n, _), m in state.holders.items():
            if m == "w":
                return n
        return None

    def waiting(self, lock: str) -> int:
        state = self._locks.get(lock)
        return len(state.queue) if state else 0

    # ------------------------------------------------------------------
    # replicated state machine
    # ------------------------------------------------------------------
    def on_deliver(self, delivery: Delivery) -> None:
        op = delivery.payload
        if not isinstance(op, RwOp):
            return
        if op.kind == "acquire":
            state = self._locks.setdefault(op.lock, _RwState())
            state.queue.append((op.node, op.req_id, op.mode))
            self._promote(op.lock)
        elif op.kind == "release":
            state = self._locks.get(op.lock)
            if state is None:
                return
            if state.holders.pop((op.node, op.req_id), None) is None:
                # Withdrawing a queued request.
                state.queue = deque(
                    e for e in state.queue if e[:2] != (op.node, op.req_id)
                )
            self._promote(op.lock)
        elif op.kind == "purge":
            self._purge(op.node)

    def _promote(self, lock: str) -> None:
        """Grant the FIFO-eligible prefix of the wait queue.

        A writer at the head waits for all holders to clear, then enters
        alone; readers at the head enter together until the first waiting
        writer (writer-fairness).
        """
        state = self._locks[lock]
        while state.queue:
            node, req_id, mode = state.queue[0]
            if mode == "w":
                if state.holders:
                    return
            else:
                if state.write_held:
                    return
            state.queue.popleft()
            state.holders[(node, req_id)] = mode
            self._granted(node, req_id)
            if mode == "w":
                return

    def _purge(self, dead: str) -> None:
        for lock, state in self._locks.items():
            state.holders = {
                k: m for k, m in state.holders.items() if k[0] != dead
            }
            state.queue = deque(e for e in state.queue if e[0] != dead)
            self._promote(lock)

    def _granted(self, node: str, req_id: int) -> None:
        if node == self.node.node_id:
            callback = self._callbacks.pop(req_id, None)
            if callback is not None:
                callback()

    # ------------------------------------------------------------------
    def on_view_change(self, view: ViewChange) -> None:
        removed = set(self._last_view) - set(view.members)
        self._last_view = view.members
        if not removed or not view.members:
            return
        if self.node.node_id != min(view.members):
            return
        for dead in sorted(removed):
            key = (dead, view.view_id)
            if key in self._purged:
                continue
            self._purged.add(key)
            self.node.multicast(RwOp("purge", "", "", dead, 0))
