"""Replicated-state-machine base: op ordering, snapshots, anti-entropy.

Every Data Service replica (shared dictionary, NAT table, …) follows the
same discipline:

* **ops** ride the agreed-ordered multicast and are applied identically by
  every *synced* replica;
* an **unsynced** replica (a joiner, or a member that never received its
  state transfer before a partition) buffers ops and waits for a
  **snapshot** — whose content is materialized at token-attach time so it
  sits at a well-defined position in the total order; buffered (hence
  earlier-ordered) ops are dropped when the snapshot arrives;
* on every view **growth**, the lowest-id *surviving* member — lowest id
  among nodes present in both the old and new view, i.e. one that
  witnessed the order the joiners missed — multicasts a snapshot
  (idempotent; no view-id dedup — ids collide across lineages).  Picking
  the lowest id of the *new* view is wrong: when the minimum-id node is
  itself the (stale) rejoiner, its own view diff is empty and nobody
  else elects itself, so no transfer ever happens (found by chaos
  campaigning; minimal reproducer: crash the minimum-id node late in a
  write workload, let it rejoin);
* a **restart is amnesia**: a node that went DOWN and starts again must
  not trust its pre-crash replica — it re-enters the unsynced state and
  reacquires a snapshot before applying (or serving) anything new;
* **anti-entropy** (the part a first implementation gets wrong): an
  unsynced member cannot rely on growth events alone — it periodically
  multicasts a ``SyncRequest`` until synced, and every synced member
  answers with a snapshot.  If *nobody* answers (the whole group is
  unsynced — possible when a partition stranded everyone before their
  state transfer), the lowest-id member declares its local state
  authoritative after a few fruitless requests and snapshots it; the
  group deterministically adopts that state.  Without this rule an
  unsynced minimum-id member deadlocks the whole group's reconciliation
  (found by randomized fuzzing; see docs/FINDINGS.md §4).

Subclasses implement four hooks: :meth:`_is_op`, :meth:`_apply_op`,
:meth:`_snapshot_payload`, :meth:`_install_snapshot`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.events import Delivery, SessionListener, ViewChange, ensure_composite
from repro.core.multicast import DeferredPayload
from repro.core.session import RaincoreNode

__all__ = ["ReplicaBase", "SyncRequest"]

#: Fruitless sync requests before a minimum-id member self-declares.
SELF_DECLARE_AFTER = 3


@dataclass(frozen=True)
class SyncRequest:
    """An unsynced replica asking the group for a state snapshot.

    ``service`` namespaces the request so multiple replica services on one
    group do not answer each other's requests.
    """

    service: str
    requester: str

    def wire_size(self) -> int:
        return 16 + len(self.service)


class ReplicaBase(SessionListener):
    """Common machinery for group-replicated state machines."""

    #: Subclasses set a unique name (namespaces snapshots/sync requests).
    SERVICE: str = ""

    def __init__(self, node: RaincoreNode) -> None:
        if not self.SERVICE:
            raise TypeError("subclass must set SERVICE")
        self.node = node
        ensure_composite(node).add(self)
        self._synced: bool | None = None
        self._buffer: list[Any] = []
        self._last_view: tuple[str, ...] = ()
        self._sync_requests_sent = 0
        self._sync_timer = None

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    def _is_op(self, payload: Any) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _apply_op(self, op: Any) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _snapshot_payload(self) -> Any:  # pragma: no cover - abstract
        """Return the full-state snapshot object (materialized at attach)."""
        raise NotImplementedError

    def _install_snapshot(self, snap: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def _is_snapshot(self, payload: Any) -> bool:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    @property
    def synced(self) -> bool:
        """False while this replica still awaits its state transfer."""
        return bool(self._synced)

    # ------------------------------------------------------------------
    # replicated stream
    # ------------------------------------------------------------------
    def on_deliver(self, delivery: Delivery) -> None:
        payload = delivery.payload
        if self._is_snapshot(payload):
            probe = self.node.probe
            if probe is not None:
                probe.emit(
                    self.node.node_id,
                    "state.install",
                    self.SERVICE,
                    not self._synced,
                )
            self._install_snapshot(payload)
            if not self._synced:
                self._synced = True
                # Buffered ops are ordered before this snapshot: contained
                # in it or reconciled away by design.  Never replay.
                self._buffer.clear()
                self._cancel_sync_timer()
            return
        if isinstance(payload, SyncRequest):
            if (
                payload.service == self.SERVICE
                and self._synced
                and payload.requester != self.node.node_id
            ):
                self._multicast_snapshot()
            return
        if not self._is_op(payload):
            return
        if not self._synced:
            self._buffer.append(payload)
            return
        self._apply_op(payload)

    def _multicast_snapshot(self) -> None:
        def materialize():
            snap = self._snapshot_payload()
            size = getattr(snap, "wire_size", lambda: 64)()
            return snap, size

        probe = self.node.probe
        if probe is not None:
            probe.emit(self.node.node_id, "state.snapshot", self.SERVICE)
        self.node.multicast(DeferredPayload(materialize))

    # ------------------------------------------------------------------
    # lifecycle: a restart is amnesia
    # ------------------------------------------------------------------
    def on_state_change(self, old, new) -> None:
        from repro.core.states import NodeState

        if old is not NodeState.DOWN or new is not NodeState.JOINING:
            return
        # The node is starting (or restarting).  A real crashed process
        # lost its replica; trusting the pre-crash `_synced` flag silently
        # serves — and extends — stale state after rejoin.  Re-enter the
        # unsynced protocol; the local state stays readable but the next
        # snapshot overwrites it wholesale.  A founding singleton is
        # re-synced immediately by the first view change.
        self._synced = False
        self._buffer.clear()
        self._last_view = ()
        self._sync_requests_sent = 0
        self._cancel_sync_timer()

    # ------------------------------------------------------------------
    # membership handling
    # ------------------------------------------------------------------
    def on_view_change(self, view: ViewChange) -> None:
        previous = self._last_view
        self._last_view = view.members
        if self._synced is None:
            # Founding singleton: trivially synced (the group IS us).
            self._synced = len(view.members) == 1
        if not self._synced and len(view.members) == 1:
            # We became a singleton group: our local state is, by
            # definition, the whole group's state now.
            self._synced = True
            self._buffer.clear()
            self._cancel_sync_timer()
        if not self._synced:
            self._arm_sync_timer()
            return
        added = set(view.members) - set(previous)
        if not added or previous == ():
            return
        # State transfer falls to the lowest-id *survivor* of the previous
        # view — it witnessed the order the joiners missed.  min(members)
        # may be a stale rejoiner whose own view diff is empty.
        survivors = set(previous) & set(view.members)
        sender = min(survivors) if survivors else min(view.members)
        if self.node.node_id != sender:
            return
        self._multicast_snapshot()

    # ------------------------------------------------------------------
    # anti-entropy for unsynced replicas
    # ------------------------------------------------------------------
    def _arm_sync_timer(self) -> None:
        if self._sync_timer is not None:
            return
        self._sync_timer = self.node.loop.call_later(
            2.0 * self.node.config.join_retry, self._sync_tick
        )

    def _cancel_sync_timer(self) -> None:
        if self._sync_timer is not None:
            self._sync_timer.cancel()
            self._sync_timer = None
        self._sync_requests_sent = 0

    def _sync_tick(self) -> None:
        from repro.core.states import NodeState

        self._sync_timer = None
        if self.node.state is NodeState.DOWN:
            return  # a restart's first view change re-arms us
        if self._synced or not self.node.is_member:
            if not self._synced:
                self._arm_sync_timer()  # not even a member yet; keep waiting
            return
        members = self.node.members
        if (
            self._sync_requests_sent >= SELF_DECLARE_AFTER
            and members
            and min(members) == self.node.node_id
        ):
            # Nobody in the group could answer: the whole group is
            # unsynced.  As its minimum-id member, declare our local state
            # authoritative and publish it — deterministic and terminal.
            self._synced = True
            self._buffer.clear()
            self._sync_requests_sent = 0
            self._multicast_snapshot()
            return
        self._sync_requests_sent += 1
        probe = self.node.probe
        if probe is not None:
            probe.emit(self.node.node_id, "state.sync_request", self.SERVICE)
        self.node.multicast(SyncRequest(self.SERVICE, self.node.node_id))
        self._arm_sync_timer()
