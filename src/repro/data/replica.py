"""Replicated-state-machine base: op ordering, snapshots, anti-entropy,
bounded-state resync.

Every Data Service replica (shared dictionary, NAT table, …) follows the
same discipline:

* **ops** ride the agreed-ordered multicast and are applied identically by
  every *synced* replica; each applied op is also appended to a segmented,
  hash-chained, prunable log (:mod:`repro.data.resync`) whose retained
  window serves certified delta catch-up;
* an **unsynced** replica (a joiner, or a member that never received its
  state transfer before a partition) buffers ops and periodically
  multicasts a ``SyncRequest`` carrying its certified position
  ``(seq, digest)``.  Synced members answer along the **degradation
  ladder** (docs/RESYNC.md):

  1. position certifies inside the retained window → a
     :class:`~repro.data.resync.ResyncDelta` (the missing tail, O(window));
  2. position out of window or divergent → a
     :class:`~repro.data.resync.ResyncSnapshot` (continuation-point state
     transfer, O(state)) installed by *every* member, which also
     reconciles split-brain histories;
  3. repeated fallbacks with no certified ack in between → the peer is
     **quarantined** from the view with a structured reason
     (:meth:`RaincoreNode.quarantine_peer`) instead of stalling the ring.
     A ``resync_window_bytes`` of 0 disables the window and quarantines
     immediately — the documented degenerate boundary.

* on every view **growth**, the lowest-id *surviving* member — lowest id
  among nodes present in both the old and new view, i.e. one that
  witnessed the order the joiners missed — becomes the resync coordinator
  for the joiners.  It defers the (pre-resync-era unconditional) full
  snapshot behind a short timer and watches :class:`ResyncAck` positions:
  a joiner that certifies in-window is served a delta instead, so a short
  partition rejoin costs O(window) messages, not O(history).  If a joiner
  never certifies (fresh node, divergent merge side) the timer falls back
  to the snapshot.  On a divergent ack (split-brain merge), the member
  that is the minimum id of the merged view reconciles everyone with a
  snapshot — preserving the lower-group-id-wins rule, since the group id
  *is* the minimum member id;
* every synced member multicasts a :class:`ResyncAck` when a segment
  seals, on view growth and after installing state.  Acks ride the agreed
  order, so every replica sees every ack at the same stream position and
  prunes deterministically once all live view members acknowledge a
  segment;
* a **restart is amnesia**: a node that went DOWN and starts again must
  not trust its pre-crash replica — state *and* log — and re-enters the
  unsynced protocol (:meth:`ReplicaBase.forget`);
* **anti-entropy** (the part a first implementation gets wrong): an
  unsynced member cannot rely on growth events alone — it periodically
  multicasts a ``SyncRequest`` until synced, and every synced member
  answers.  If *nobody* answers (the whole group is unsynced — possible
  when a partition stranded everyone before their state transfer), the
  lowest-id member declares its local state authoritative after a few
  fruitless requests and snapshots it; the group deterministically adopts
  that state.  Without this rule an unsynced minimum-id member deadlocks
  the whole group's reconciliation (found by randomized fuzzing; see
  docs/FINDINGS.md §4).

Subclasses implement four hooks: :meth:`_is_op`, :meth:`_apply_op`,
:meth:`_snapshot_payload`, :meth:`_install_snapshot`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.events import Delivery, SessionListener, ViewChange, ensure_composite
from repro.core.multicast import DeferredPayload
from repro.core.session import RaincoreNode
from repro.core.states import NodeState
from repro.data.resync import (
    GENESIS_DIGEST,
    ContinuationPoint,
    ResyncAck,
    ResyncDelta,
    ResyncSnapshot,
    SegmentedLog,
    state_digest,
)
from repro.transport.messages import stream_message

__all__ = ["ReplicaBase", "SyncRequest"]

#: Fruitless sync requests before a minimum-id member self-declares.
SELF_DECLARE_AFTER = 3

#: Growth-snapshot deferral, in units of ``join_retry``: long enough for a
#: joiner's first SyncRequest (one ``join_retry`` after its view change) or
#: a merge peer's growth ack to arrive and be served a certified delta;
#: short enough that the fallback snapshot still lands well inside the
#: convergence budgets the pre-resync protocol met.
GROWTH_DEFER_RETRIES = 3.0


@stream_message
@dataclass(frozen=True)
class SyncRequest:
    """An unsynced replica asking the group for catch-up.

    ``service`` namespaces the request so multiple replica services on one
    group do not answer each other's requests.  ``seq``/``digest`` carry
    the requester's certified position: answerers use them to pick the
    rung of the degradation ladder (delta / snapshot / quarantine).
    """

    service: str
    requester: str
    seq: int = 0
    digest: str = GENESIS_DIGEST

    def wire_size(self) -> int:
        return 24 + len(self.service) + len(self.digest)


class ReplicaBase(SessionListener):
    """Common machinery for group-replicated state machines."""

    #: Subclasses set a unique name (namespaces snapshots/sync requests).
    SERVICE: str = ""

    def __init__(self, node: RaincoreNode) -> None:
        if not self.SERVICE:
            raise TypeError("subclass must set SERVICE")
        self.node = node
        ensure_composite(node).add(self)
        self._synced: bool | None = None
        self._buffer: list[Any] = []
        self._last_view: tuple[str, ...] = ()
        self._sync_requests_sent = 0
        self._sync_timer = None
        # Bounded-state resync (docs/RESYNC.md).
        self._log = SegmentedLog(node.config.resync_segment_ops)
        self._applied_seq = 0
        self._acked: dict[str, tuple[int, str]] = {}
        self._strikes: dict[str, int] = {}
        self._pending_growth: set[str] = set()
        self._growth_timer = None

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    def _is_op(self, payload: Any) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _apply_op(self, op: Any) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _snapshot_payload(self) -> Any:  # pragma: no cover - abstract
        """Return the full-state snapshot object (materialized at attach)."""
        raise NotImplementedError

    def _install_snapshot(self, snap: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def _is_snapshot(self, payload: Any) -> bool:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    @property
    def synced(self) -> bool:
        """False while this replica still awaits its state transfer."""
        return bool(self._synced)

    @property
    def applied_seq(self) -> int:
        """Ops applied to this replica (its position in the total order)."""
        return self._applied_seq

    @property
    def continuation(self) -> ContinuationPoint:
        """The log's current certified continuation point."""
        return self._log.cont

    def buffered_bytes(self) -> int:
        """Retained resync-window bytes (the budgeted quantity)."""
        return self._log.buffered_bytes()

    def forget(self) -> None:
        """Full amnesia: drop state trust, the op log and the chain.

        Used by the restart path (a crashed process lost its in-memory
        replica *and* its log) and by tests that model corruption.  The
        subclass's own state is left in place — it stays locally readable
        but the next snapshot or delta overwrites/extends it wholesale
        only after re-certification from genesis.
        """
        self._synced = False
        self._buffer.clear()
        self._sync_requests_sent = 0
        self._cancel_sync_timer()
        self._log = SegmentedLog(self.node.config.resync_segment_ops)
        self._applied_seq = 0
        self._acked.clear()
        self._strikes.clear()
        self._clear_growth()

    # ------------------------------------------------------------------
    # replicated stream
    # ------------------------------------------------------------------
    def on_deliver(self, delivery: Delivery) -> None:
        payload = delivery.payload
        if isinstance(payload, ResyncSnapshot):
            if payload.service == self.SERVICE:
                self._handle_snapshot(payload)
            return
        if isinstance(payload, ResyncDelta):
            if payload.service == self.SERVICE:
                self._handle_delta(payload)
            return
        if isinstance(payload, ResyncAck):
            if payload.service == self.SERVICE:
                self._handle_ack(payload)
            return
        if isinstance(payload, SyncRequest):
            if payload.service == self.SERVICE:
                self._handle_sync_request(payload)
            return
        if not self._is_op(payload):
            return
        if not self._synced:
            self._buffer.append(payload)
            return
        self._apply_and_log(payload)

    def _apply_and_log(self, op: Any) -> None:
        self._apply_op(op)
        self._applied_seq += 1
        size = getattr(op, "wire_size", lambda: 64)()
        _entry, sealed = self._log.append(op, int(size))
        if sealed:
            self._multicast_ack()
        self._enforce_budget()
        self._emit_buffer_level()

    # ------------------------------------------------------------------
    # state transfer: snapshots and deltas
    # ------------------------------------------------------------------
    def _handle_snapshot(self, snap: ResyncSnapshot) -> None:
        if not self._is_snapshot(snap.inner):
            return  # wrong payload type for this service: drop, don't crash
        probe = self.node.probe
        if probe is not None:
            probe.emit(
                self.node.node_id,
                "state.install",
                self.SERVICE,
                not self._synced,
            )
        self._install_snapshot(snap.inner)
        self._applied_seq = snap.applied_seq
        self._log.adopt(snap.applied_seq, snap.digest, state_digest(snap.inner))
        if not self._synced:
            self._synced = True
            # Buffered ops are ordered before this snapshot: contained
            # in it or reconciled away by design.  Never replay.
            self._buffer.clear()
            self._cancel_sync_timer()
        # The snapshot is a fresh common base for the whole group: growth
        # reconciliation is settled and past failures are forgiven.
        self._clear_growth()
        self._strikes.clear()
        self._emit_buffer_level()
        self._multicast_ack()

    def _handle_delta(self, delta: ResyncDelta) -> None:
        if delta.target != self.node.node_id:
            return
        certified = self._log.digest_at(delta.from_seq)
        if certified != delta.from_digest:
            # We cannot certify the delta's base position: our history has
            # genuinely diverged from the answerer's (e.g. the group
            # ordered new ops between a merge and this delta's attach, and
            # we applied them onto the prefix we had).  A synced replica
            # must not keep extending a forked chain — re-enter the
            # unsynced protocol; the ladder answers our certified-position
            # SyncRequest with a reconciling snapshot.
            if self._synced:
                self._synced = False
                self._arm_sync_timer()
            return
        # The base certifies, but we may have moved past it since the
        # answerer observed our position (live ops ordered between our
        # merge ack and this delta's attach get delivered to us first —
        # we cannot tell op #55 from op #51 on the live stream).  Verify
        # the overlap: every delta entry at a position we already applied
        # must match our own chain digest there.  A match means a stale
        # duplicate prefix (another answerer, or live traffic the delta
        # also covers); a mismatch means we applied *different* ops onto
        # the shared base — a silent fork, not a duplicate.
        for entry in delta.entries:
            if entry.seq > self._applied_seq:
                break
            if self._log.digest_at(entry.seq) != entry.digest:
                if self._synced:
                    self._synced = False
                    self._arm_sync_timer()
                return
        tail = [e for e in delta.entries if e.seq > self._applied_seq]
        if not tail:
            return  # fully covered already — nothing to reconcile
        # Certified at or behind our head with a matching overlap: take
        # the missing tail.  Synced-but-behind targets take it too: a
        # merged-back member whose history is a strict prefix of the
        # group's (it wrote nothing while away) is synced — it was its
        # own singleton group — yet missing every op it was partitioned
        # from.
        for entry in tail:
            self._apply_op(entry.payload)
            self._applied_seq += 1
            self._log.append(entry.payload, entry.size)
        self._synced = True
        self._buffer.clear()
        self._cancel_sync_timer()
        self._clear_growth()
        self._enforce_budget()
        self._emit_buffer_level()
        self._multicast_ack()

    def _handle_sync_request(self, req: SyncRequest) -> None:
        if req.requester == self.node.node_id or not self._synced:
            return
        self._serve_peer(req.requester, req.seq, req.digest)

    def _serve_peer(self, peer: str, seq: int, digest: str) -> None:
        """One rung of the degradation ladder for one lagging peer."""
        node = self.node
        if node.config.resync_window_bytes == 0:
            # Window disabled: every resync is out-of-window by definition.
            self._pending_growth.discard(peer)
            node.quarantine_peer(peer, "resync-window-disabled")
            return
        certified = self._log.digest_at(seq)
        if certified is not None and certified == digest:
            self._strikes.pop(peer, None)
            self._pending_growth.discard(peer)
            if not self._pending_growth:
                self._cancel_growth_timer()
            self._multicast_delta(peer, seq, digest)
            return
        # Out of window, or a divergent history (split-brain survivor).
        strikes = self._strikes.get(peer, 0) + 1
        self._strikes[peer] = strikes
        if strikes > node.config.resync_quarantine_after:
            self._pending_growth.discard(peer)
            node.quarantine_peer(peer, "resync-failed-repeatedly")
            return
        probe = node.probe
        if probe is not None:
            probe.emit(
                node.node_id,
                "resync.snapshot_fallback",
                self.SERVICE,
                peer,
                seq,
                self._log.cont.upto_seq,
            )
        self._multicast_snapshot()

    def _multicast_delta(self, peer: str, from_seq: int, from_digest: str) -> None:
        """Queue a certified delta for ``peer`` (materialized at attach).

        At attach time this node has applied every op ordered before the
        delta, so ``entries_after(from_seq)`` is exactly what the target
        is missing.  If the window shrank past ``from_seq`` meanwhile
        (forced prune), the factory degrades to a snapshot.
        """

        def materialize() -> tuple[ResyncDelta | ResyncSnapshot, int]:
            if self._log.digest_at(from_seq) == from_digest:
                entries = tuple(self._log.entries_after(from_seq))
                delta = ResyncDelta(
                    self.SERVICE, peer, from_seq, from_digest, entries
                )
                probe = self.node.probe
                if probe is not None:
                    probe.emit(
                        self.node.node_id,
                        "resync.delta",
                        self.SERVICE,
                        peer,
                        from_seq,
                        len(entries),
                        delta.wire_size(),
                    )
                return delta, delta.wire_size()
            snap = self._materialize_snapshot()
            return snap, snap.wire_size()

        self.node.multicast(DeferredPayload(materialize))

    def _materialize_snapshot(self) -> ResyncSnapshot:
        inner = self._snapshot_payload()
        return ResyncSnapshot(
            self.SERVICE, inner, self._applied_seq, self._log.head_digest
        )

    def _multicast_snapshot(self) -> None:
        def materialize() -> tuple[ResyncSnapshot, int]:
            snap = self._materialize_snapshot()
            return snap, snap.wire_size()

        probe = self.node.probe
        if probe is not None:
            probe.emit(self.node.node_id, "state.snapshot", self.SERVICE)
        self.node.multicast(DeferredPayload(materialize))

    # ------------------------------------------------------------------
    # acks and pruning (the "log burning")
    # ------------------------------------------------------------------
    def _multicast_ack(self) -> None:
        self.node.multicast(
            ResyncAck(
                self.SERVICE,
                self.node.node_id,
                self._applied_seq,
                self._log.head_digest,
            )
        )

    def _handle_ack(self, ack: ResyncAck) -> None:
        previous = self._acked.get(ack.sender)
        if previous is None or ack.seq >= previous[0]:
            self._acked[ack.sender] = (ack.seq, ack.digest)
        if ack.sender != self.node.node_id and self._synced:
            if ack.sender in self._pending_growth:
                self._reconcile_growth_ack(ack)
            certified = self._log.digest_at(ack.seq)
            if certified is not None and certified == ack.digest:
                # A certified position is proof of successful resync.
                self._strikes.pop(ack.sender, None)
        self._maybe_prune()

    def _reconcile_growth_ack(self, ack: ResyncAck) -> None:
        """The growth coordinator saw a joiner's position: pick a rung."""
        certified = self._log.digest_at(ack.seq)
        if certified is not None and certified == ack.digest:
            if ack.seq < self._applied_seq:
                self._serve_peer(ack.sender, ack.seq, ack.digest)
            else:
                self._pending_growth.discard(ack.sender)
                if not self._pending_growth:
                    self._cancel_growth_timer()
            return
        # Divergent or out-of-window joiner (typically the other side of a
        # healed split-brain).  The minimum id of the merged view owns the
        # reconciling snapshot — the group id *is* the min member id, so
        # this preserves lower-group-id-wins.  Everyone else defers (their
        # growth timer stays armed as the safety net).
        members = self.node.members
        if members and min(members) == self.node.node_id:
            self._serve_peer(ack.sender, ack.seq, ack.digest)

    def _maybe_prune(self) -> None:
        """Cooperative prune: drop segments every live member acked past.

        Runs at ack delivery — the same stream position on every replica —
        so same-seed runs prune byte-identically.
        """
        members = self.node.members
        if not members or not self._synced:
            return
        floor = min(self._acked.get(m, (0, ""))[0] for m in members)
        if floor <= self._log.cont.upto_seq:
            return
        dropped, freed = self._log.prune_to(
            floor, state_digest(self._snapshot_payload())
        )
        if dropped:
            self._emit_prune(dropped, freed, forced=False)
            self._emit_buffer_level()

    def _enforce_budget(self) -> None:
        budget = self.node.config.resync_window_bytes
        if self._log.buffered_bytes() <= budget:
            return
        dropped, freed = self._log.force_prune(
            budget, state_digest(self._snapshot_payload())
        )
        if dropped:
            self._emit_prune(dropped, freed, forced=True)

    def _emit_prune(self, segments: int, freed: int, forced: bool) -> None:
        probe = self.node.probe
        if probe is not None:
            probe.emit(
                self.node.node_id,
                "resync.prune",
                self.SERVICE,
                self._log.cont.upto_seq,
                segments,
                freed,
                forced,
            )

    def _emit_buffer_level(self) -> None:
        probe = self.node.probe
        if probe is not None:
            probe.emit(
                self.node.node_id,
                "resync.buffer",
                "replica:" + self.SERVICE,
                self._log.buffered_bytes(),
                self.node.config.resync_window_bytes,
            )

    # ------------------------------------------------------------------
    # lifecycle: a restart is amnesia
    # ------------------------------------------------------------------
    def on_state_change(self, old: NodeState, new: NodeState) -> None:
        if new is NodeState.DOWN:
            # Crash/shutdown: a timer left armed here would fire on the
            # dead node and try to multicast.
            self._cancel_sync_timer()
            self._clear_growth()
            return
        if old is not NodeState.DOWN or new is not NodeState.JOINING:
            return
        # The node is starting (or restarting).  A real crashed process
        # lost its replica — state machine and log; trusting the pre-crash
        # `_synced` flag silently serves — and extends — stale state after
        # rejoin.  Re-enter the unsynced protocol; the local state stays
        # readable but the next snapshot or certified delta overwrites it
        # wholesale.  A founding singleton is re-synced immediately by the
        # first view change.
        self.forget()
        self._last_view = ()

    # ------------------------------------------------------------------
    # membership handling
    # ------------------------------------------------------------------
    def on_view_change(self, view: ViewChange) -> None:
        if self.node.node_id not in view.members:
            # We were dropped from the view (departure, eviction, stale
            # back-to-back view churn): a sync timer left armed here would
            # fire after we are gone and multicast into the wrong group.
            self._last_view = view.members
            self._cancel_sync_timer()
            self._clear_growth()
            return
        previous = self._last_view
        self._last_view = view.members
        for peer in list(self._pending_growth):
            if peer not in view.members:
                self._pending_growth.discard(peer)
        if self._synced is None:
            # Founding singleton: trivially synced (the group IS us).
            self._synced = len(view.members) == 1
        if not self._synced and len(view.members) == 1:
            # We became a singleton group: our local state is, by
            # definition, the whole group's state now.
            self._synced = True
            self._buffer.clear()
            self._cancel_sync_timer()
        if not self._synced:
            self._arm_sync_timer()
            return
        added = set(view.members) - set(previous)
        if not added or previous == ():
            return
        # Advertise our certified position: the growth coordinator (and a
        # merged-in peer's own coordinator) serves certified deltas from
        # these acks instead of unconditional full snapshots.
        self._multicast_ack()
        # Resync coordination falls to the lowest-id *survivor* of the
        # previous view — it witnessed the order the joiners missed.
        # min(members) may be a stale rejoiner whose own view diff is empty.
        survivors = set(previous) & set(view.members)
        sender = min(survivors) if survivors else min(view.members)
        if self.node.node_id != sender:
            return
        self._pending_growth.update(added)
        self._arm_growth_timer()

    # ------------------------------------------------------------------
    # growth coordination
    # ------------------------------------------------------------------
    def _arm_growth_timer(self) -> None:
        self._cancel_growth_timer()
        self._growth_timer = self.node.loop.call_later(
            GROWTH_DEFER_RETRIES * self.node.config.join_retry,
            self._growth_tick,
        )

    def _cancel_growth_timer(self) -> None:
        if self._growth_timer is not None:
            self._growth_timer.cancel()
            self._growth_timer = None

    def _clear_growth(self) -> None:
        self._pending_growth.clear()
        self._cancel_growth_timer()

    def _growth_tick(self) -> None:
        """Deferral expired with unresolved joiners: snapshot fallback."""
        self._growth_timer = None
        if (
            not self._synced
            or not self._pending_growth
            or not self.node.is_member
        ):
            return
        # A pending peer that acked *ahead* of us knows strictly more than
        # we do: we have nothing to teach it, and snapshotting our own
        # state would overwrite the longer history with our stale one (the
        # merged-back-singleton trap).  Its catch-up flows the other way —
        # the majority's coordinator serves *us*.  Fresh joiners acked at 0
        # (or never acked) and stay eligible.
        pending = [
            peer
            for peer in sorted(self._pending_growth)
            if self._acked.get(peer, (0, ""))[0] <= self._applied_seq
        ]
        self._pending_growth.clear()
        if not pending:
            return
        probe = self.node.probe
        if probe is not None:
            for peer in pending:
                acked = self._acked.get(peer, (0, ""))[0]
                probe.emit(
                    self.node.node_id,
                    "resync.snapshot_fallback",
                    self.SERVICE,
                    peer,
                    acked,
                    self._log.cont.upto_seq,
                )
        self._multicast_snapshot()

    # ------------------------------------------------------------------
    # anti-entropy for unsynced replicas
    # ------------------------------------------------------------------
    def _arm_sync_timer(self) -> None:
        if self._sync_timer is not None:
            return
        # The first request goes out quickly (a joiner's common case: the
        # coordinator is waiting for our position); retries back off.
        retries = 1.0 if self._sync_requests_sent == 0 else 2.0
        self._sync_timer = self.node.loop.call_later(
            retries * self.node.config.join_retry, self._sync_tick
        )

    def _cancel_sync_timer(self) -> None:
        if self._sync_timer is not None:
            self._sync_timer.cancel()
            self._sync_timer = None
        self._sync_requests_sent = 0

    def _sync_tick(self) -> None:
        from repro.core.states import NodeState

        self._sync_timer = None
        if self.node.state is NodeState.DOWN:
            return  # a restart's first view change re-arms us
        if self._synced or not self.node.is_member:
            if not self._synced:
                self._arm_sync_timer()  # not even a member yet; keep waiting
            return
        members = self.node.members
        if (
            self._sync_requests_sent >= SELF_DECLARE_AFTER
            and members
            and min(members) == self.node.node_id
        ):
            # Nobody in the group could answer: the whole group is
            # unsynced.  As its minimum-id member, declare our local state
            # authoritative and publish it — deterministic and terminal.
            self._synced = True
            self._buffer.clear()
            self._sync_requests_sent = 0
            self._multicast_snapshot()
            return
        self._sync_requests_sent += 1
        probe = self.node.probe
        if probe is not None:
            probe.emit(self.node.node_id, "state.sync_request", self.SERVICE)
        self.node.multicast(
            SyncRequest(
                self.SERVICE,
                self.node.node_id,
                self._applied_seq,
                self._log.head_digest,
            )
        )
        self._arm_sync_timer()
