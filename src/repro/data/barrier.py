"""Distributed barrier — a Data Service coordination primitive.

The paper's §5 ambition for the Data Service is to let developers build
distributed networking applications "with the ease of developing a
multi-thread shared-memory application on a single processor".  A barrier
is the canonical such primitive; this one is built purely on the session
service's agreed-ordered multicast, the same way as the lock manager.

Semantics
---------
* ``wait(callback)`` enters the current barrier *generation*; the callback
  fires once every expected participant has arrived.
* The **expected set** of a generation is the group membership recorded on
  the *first* arrival of that generation — the total order makes "first"
  identical at every replica, so all replicas agree on who must show up.
* Members that die while a generation is open are excluded via the same
  lowest-id-survivor **purge** pattern the lock manager uses, so a crash
  never wedges the barrier: it completes over the survivors.
* Generations are numbered; arrivals for generation g+1 may be issued
  before g completes (they queue in order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.events import Delivery, SessionListener, ViewChange, ensure_composite
from repro.core.session import RaincoreNode

__all__ = ["DistributedBarrier", "BarrierOp"]


@dataclass(frozen=True)
class BarrierOp:
    """One replicated barrier operation: an arrival or a purge."""

    kind: str  # "arrive" | "purge"
    barrier: str
    node: str  # arriving node / purged node
    generation: int  # arrival's generation (0 for purge)
    expected: tuple[str, ...] = ()  # membership snapshot on first arrival

    def wire_size(self) -> int:
        return 24 + len(self.barrier) + 8 * max(1, len(self.expected))


@dataclass
class _Generation:
    expected: set[str] = field(default_factory=set)
    arrived: set[str] = field(default_factory=set)
    complete: bool = False


class DistributedBarrier(SessionListener):
    """A named, generation-counted, fault-tolerant group barrier."""

    def __init__(self, node: RaincoreNode, name: str) -> None:
        self.node = node
        self.name = name
        ensure_composite(node).add(self)
        self._generations: dict[int, _Generation] = {}
        self._my_generation = 0  # next generation this node will enter
        self._callbacks: dict[int, Callable[[], None]] = {}
        self._last_view: tuple[str, ...] = ()
        self._purged_views: set[int] = set()
        self.completions = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def wait(self, callback: Callable[[], None] | None = None) -> int:
        """Enter the next barrier generation; returns its number.

        ``callback`` fires on this node when the generation completes.
        """
        generation = self._my_generation
        self._my_generation += 1
        if callback is not None:
            self._callbacks[generation] = callback
        self.node.multicast(
            BarrierOp(
                "arrive",
                self.name,
                self.node.node_id,
                generation,
                tuple(self.node.members),
            )
        )
        return generation

    def generation_state(self, generation: int) -> tuple[set[str], set[str]]:
        """(expected, arrived) for diagnostics; empty sets if unknown."""
        gen = self._generations.get(generation)
        if gen is None:
            return set(), set()
        return set(gen.expected), set(gen.arrived)

    def is_complete(self, generation: int) -> bool:
        gen = self._generations.get(generation)
        return bool(gen and gen.complete)

    # ------------------------------------------------------------------
    # replicated state machine
    # ------------------------------------------------------------------
    def on_deliver(self, delivery: Delivery) -> None:
        op = delivery.payload
        if not isinstance(op, BarrierOp) or op.barrier != self.name:
            return
        if op.kind == "arrive":
            self._apply_arrive(op)
        elif op.kind == "purge":
            self._apply_purge(op.node)

    def _apply_arrive(self, op: BarrierOp) -> None:
        gen = self._generations.get(op.generation)
        if gen is None:
            # First arrival defines who is expected (identical everywhere,
            # because this op sits at one position in the total order).
            gen = _Generation(expected=set(op.expected))
            self._generations[op.generation] = gen
        gen.arrived.add(op.node)
        self._check(op.generation)

    def _apply_purge(self, dead: str) -> None:
        for generation, gen in self._generations.items():
            if not gen.complete and dead in gen.expected:
                gen.expected.discard(dead)
                self._check(generation)

    def _check(self, generation: int) -> None:
        gen = self._generations[generation]
        if gen.complete or not gen.expected <= gen.arrived:
            return
        gen.complete = True
        self.completions += 1
        callback = self._callbacks.pop(generation, None)
        if callback is not None:
            callback()

    # ------------------------------------------------------------------
    # failure handling (same pattern as the lock manager)
    # ------------------------------------------------------------------
    def on_view_change(self, view: ViewChange) -> None:
        removed = set(self._last_view) - set(view.members)
        self._last_view = view.members
        if not removed or not view.members:
            return
        if self.node.node_id != min(view.members):
            return
        if view.view_id in self._purged_views:
            return
        self._purged_views.add(view.view_id)
        for dead in sorted(removed):
            self.node.multicast(BarrierOp("purge", self.name, dead, 0))
