"""Bounded-state session resync: segmented prunable op logs with
certified continuation points.

The paper's reliable multicast and replica layer buffer operations until
they are acknowledged around the ring, so a long partition or a slow
rejoiner grows unbounded catch-up state.  This module adapts tinySSB's
*log burning* / sliding-window-of-bounded-feeds idea to the Raincore Data
Service: each replica keeps its applied-op history in fixed-size,
hash-chained **segments**, and everything before the retained window is
compacted into a **continuation point** — the last pruned sequence number
plus the chain digest at that point and a digest of the compacted prefix
state.  The chain digest plays the role of tinySSB's signed continuation:
a peer whose ``(seq, digest)`` pair matches ours *provably* shares our
history prefix, so catch-up needs only the retained tail (O(window)), not
the full history.

Pruning discipline (docs/RESYNC.md):

* a segment **seals** once it holds ``resync_segment_ops`` ops; sealed
  segments are acknowledged around the ring (:class:`ResyncAck` rides the
  agreed-ordered multicast, so every replica sees every ack at the same
  stream position);
* a sealed segment is pruned once **every live view member** has
  acknowledged past its end — the cooperative path;
* when retained bytes exceed ``resync_window_bytes`` anyway, the oldest
  segments are **force-pruned** — the budget is a hard bound, enforced
  live by the ``buffer-bound`` contract rule; peers that fall behind the
  shrunken window degrade to a continuation-point snapshot instead.

Everything here is pure deterministic bookkeeping: no timers, no I/O.
The protocol driving it lives in :mod:`repro.data.replica`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.transport.messages import stream_message

__all__ = [
    "GENESIS_DIGEST",
    "chain_digest",
    "state_digest",
    "LogEntry",
    "Segment",
    "ContinuationPoint",
    "SegmentedLog",
    "ResyncAck",
    "ResyncDelta",
    "ResyncSnapshot",
]

#: Chain digest of the empty history (before the first op).  Sixteen hex
#: chars — 64 bits of the SHA-256 — is plenty for corruption/divergence
#: detection (this is an integrity check, not an adversarial signature).
GENESIS_DIGEST = "0" * 16

_DIGEST_HEX = 16


def chain_digest(prev: str, seq: int, payload: Any, size: int) -> str:
    """Fold one applied op into the rolling hash chain.

    Hashes the *modelled identity* of the op — its type, repr and wire
    size — which is deterministic across same-seed runs (ops are plain
    frozen dataclasses of JSON-safe values).
    """
    h = hashlib.sha256()
    h.update(prev.encode())
    h.update(str(seq).encode())
    h.update(type(payload).__name__.encode())
    h.update(repr(payload).encode())
    h.update(str(size).encode())
    return h.hexdigest()[:_DIGEST_HEX]


def state_digest(snapshot_payload: Any) -> str:
    """Digest of a compacted prefix state (the certified part of a
    continuation point).  Uses the snapshot payload's repr — frozen
    dataclasses of deterministic values, like ops."""
    h = hashlib.sha256()
    h.update(type(snapshot_payload).__name__.encode())
    h.update(repr(snapshot_payload).encode())
    return h.hexdigest()[:_DIGEST_HEX]


@dataclass(frozen=True)
class LogEntry:
    """One applied op retained in the prunable window.

    ``digest`` is the chain digest *after* applying this entry, so an ack
    carrying ``(seq, digest)`` certifies the whole prefix up to ``seq``.
    """

    seq: int
    payload: Any
    size: int
    digest: str


@dataclass
class Segment:
    """A run of consecutive log entries, pruned as a unit."""

    base_seq: int  # entries cover seqs (base_seq, base_seq + len]
    entries: list[LogEntry] = field(default_factory=list)
    sealed: bool = False

    @property
    def last_seq(self) -> int:
        return self.entries[-1].seq if self.entries else self.base_seq

    def bytes(self) -> int:
        return sum(e.size for e in self.entries)


@dataclass(frozen=True)
class ContinuationPoint:
    """The certified compaction horizon of a segmented log.

    ``upto_seq`` is the last pruned sequence number, ``digest`` the chain
    digest at that seq, and ``state_digest`` the digest of the compacted
    prefix state at the most recent compaction.  Monotone by construction:
    pruning and snapshot adoption only ever move ``upto_seq`` forward
    (asserted by the chaos invariants).
    """

    upto_seq: int
    digest: str
    state_digest: str


class SegmentedLog:
    """Hash-chained, segment-granular, budget-bounded op log."""

    __slots__ = ("segment_ops", "cont", "_segments", "_bytes")

    def __init__(self, segment_ops: int) -> None:
        if segment_ops < 1:
            raise ValueError("segment_ops must be at least 1")
        self.segment_ops = segment_ops
        self.cont = ContinuationPoint(0, GENESIS_DIGEST, "")
        self._segments: list[Segment] = []
        self._bytes = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def head_seq(self) -> int:
        if self._segments:
            return self._segments[-1].last_seq
        return self.cont.upto_seq

    @property
    def head_digest(self) -> str:
        for segment in reversed(self._segments):
            if segment.entries:
                return segment.entries[-1].digest
        return self.cont.digest

    def buffered_bytes(self) -> int:
        """Retained window size in modelled bytes (incremental)."""
        return self._bytes

    def segment_count(self) -> int:
        return len(self._segments)

    def digest_at(self, seq: int) -> str | None:
        """Chain digest at ``seq`` if certifiable, else None.

        Certifiable means: exactly the continuation point, or a retained
        entry.  ``None`` marks an out-of-window (or never-seen) position —
        the degradation ladder then falls back to a snapshot.
        """
        if seq == self.cont.upto_seq:
            return self.cont.digest
        if seq < self.cont.upto_seq:
            return None
        for segment in self._segments:
            if seq <= segment.base_seq:
                return None  # gap (cannot happen with contiguous appends)
            if seq <= segment.last_seq:
                return segment.entries[seq - segment.base_seq - 1].digest
        return None  # ahead of our head: we cannot vouch for it

    def entries_after(self, seq: int) -> list[LogEntry]:
        """The retained tail strictly after ``seq`` (the delta payload)."""
        tail: list[LogEntry] = []
        for segment in self._segments:
            if segment.last_seq <= seq:
                continue
            for entry in segment.entries:
                if entry.seq > seq:
                    tail.append(entry)
        return tail

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def append(self, payload: Any, size: int) -> tuple[LogEntry, bool]:
        """Append the next applied op; returns ``(entry, sealed)``.

        ``sealed`` is True when this append completed a segment — the
        replica acknowledges its position around the ring at that moment.
        """
        seq = self.head_seq + 1
        digest = chain_digest(self.head_digest, seq, payload, size)
        entry = LogEntry(seq, payload, size, digest)
        if not self._segments or self._segments[-1].sealed:
            self._segments.append(Segment(base_seq=seq - 1))
        segment = self._segments[-1]
        segment.entries.append(entry)
        self._bytes += size
        sealed = len(segment.entries) >= self.segment_ops
        if sealed:
            segment.sealed = True
        return entry, sealed

    def adopt(self, upto_seq: int, digest: str, state_dig: str) -> None:
        """Reset onto a continuation point received with a snapshot.

        The snapshot *is* the compacted prefix: everything before it is
        outside our window now, and subsequent appends grow a fresh
        segment aligned on the adopted seq.
        """
        self.cont = ContinuationPoint(upto_seq, digest, state_dig)
        self._segments = []
        self._bytes = 0

    # ------------------------------------------------------------------
    # shrink (the "log burning")
    # ------------------------------------------------------------------
    def prune_to(self, floor_seq: int, state_dig: str) -> tuple[int, int]:
        """Drop sealed segments fully acknowledged below ``floor_seq``.

        Returns ``(segments_dropped, bytes_freed)``; advances the
        continuation point to the last dropped entry.
        """
        dropped = 0
        freed = 0
        while self._segments:
            segment = self._segments[0]
            if not segment.sealed or segment.last_seq > floor_seq:
                break
            freed += segment.bytes()
            last = segment.entries[-1]
            self.cont = ContinuationPoint(last.seq, last.digest, state_dig)
            self._segments.pop(0)
            dropped += 1
        self._bytes -= freed
        return dropped, freed

    def force_prune(self, budget: int, state_dig: str) -> tuple[int, int]:
        """Shed oldest segments until retained bytes fit ``budget``.

        Seals the open segment if that is what it takes: the budget is a
        hard bound, and a shrunken delta window (degrading some peers to
        snapshot resync) beats unbounded memory.
        """
        dropped = 0
        freed = 0
        while self._bytes - freed > budget and self._segments:
            segment = self._segments[0]
            segment.sealed = True
            freed += segment.bytes()
            last = segment.entries[-1]
            self.cont = ContinuationPoint(last.seq, last.digest, state_dig)
            self._segments.pop(0)
            dropped += 1
        self._bytes -= freed
        return dropped, freed


# ----------------------------------------------------------------------
# wire messages (ride the agreed-ordered multicast)
# ----------------------------------------------------------------------
@stream_message
@dataclass(frozen=True)
class ResyncAck:
    """A replica certifying its applied position ``(seq, digest)``.

    Multicast on segment seal, on view growth and after installing a
    snapshot or delta.  Every member delivers every ack at the same
    stream position, so prune decisions are replica-deterministic.
    """

    service: str
    sender: str
    seq: int
    digest: str

    def wire_size(self) -> int:
        return 24 + len(self.service) + len(self.digest)


@stream_message
@dataclass(frozen=True)
class ResyncDelta:
    """Certified catch-up for an in-window peer: the retained tail after
    its certified position.  Materialized at token-attach time, so the
    entries cover exactly the ops ordered before the delta itself."""

    service: str
    target: str
    from_seq: int
    from_digest: str
    entries: tuple[LogEntry, ...]

    def wire_size(self) -> int:
        return 32 + len(self.service) + sum(e.size + 24 for e in self.entries)


@stream_message
@dataclass(frozen=True)
class ResyncSnapshot:
    """Continuation-point state transfer: the service snapshot plus the
    sender's certified position, so the receiver can adopt the chain and
    serve (and certify) future resyncs itself."""

    service: str
    inner: Any
    applied_seq: int
    digest: str

    def wire_size(self) -> int:
        inner_size = getattr(self.inner, "wire_size", lambda: 64)()
        return 32 + len(self.service) + int(inner_size)
