"""Cluster harness and fault injection for simulated Raincore deployments."""

from repro.cluster.faults import FaultInjector
from repro.cluster.harness import ClusterNode, RaincoreCluster
from repro.cluster.invariants import InvariantMonitor, Violation

__all__ = [
    "FaultInjector",
    "ClusterNode",
    "RaincoreCluster",
    "InvariantMonitor",
    "Violation",
]
