"""Cluster harness: build and drive a simulated Raincore cluster.

Wires together the event loop, topology, datagram network and one
:class:`~repro.core.session.RaincoreNode` per member, with a
:class:`~repro.core.events.RecordingListener` on each — the standard setup
used by the tests, the benchmarks and the examples.  The harness also hosts
the convergence predicates (membership agreement, token liveness) that the
paper's Quiescent Period arguments (§2.5) are tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.faults import FaultInjector
from repro.core.config import RaincoreConfig
from repro.core.events import RecordingListener
from repro.core.session import RaincoreNode
from repro.core.states import NodeState
from repro.net.datagram import DatagramNetwork
from repro.net.eventloop import EventLoop
from repro.net.topology import Topology, build_switched_cluster

__all__ = ["RaincoreCluster", "ClusterNode"]


@dataclass
class ClusterNode:
    """One harness-managed node with its recording listener."""

    node: RaincoreNode
    listener: RecordingListener
    addresses: list[str] = field(default_factory=list)

    @property
    def node_id(self) -> str:
        return self.node.node_id


class RaincoreCluster:
    """A simulated cluster of Raincore session-service nodes.

    Parameters
    ----------
    node_ids:
        Member names; ring/group ids use lexicographic order, so name nodes
        ``A, B, C, ...`` or ``n00, n01, ...`` for readable group ids.
    seed:
        Event-loop RNG seed; same seed → identical run.
    segments:
        Number of redundant switched LAN segments (NICs per node).
    config:
        Shared protocol config; defaults to
        :meth:`RaincoreConfig.tuned` for the cluster size.
    loss, latency:
        Per-segment packet loss probability and one-way latency.
    auto_eligible:
        When True (default) every node's Eligible Membership is the full
        node list, so healed partitions re-merge automatically (paper §2.4).
    """

    def __init__(
        self,
        node_ids: list[str],
        *,
        seed: int = 0,
        segments: int = 1,
        config: RaincoreConfig | None = None,
        loss: float = 0.0,
        latency: float = 100e-6,
        jitter: float = 20e-6,
        auto_eligible: bool = True,
    ) -> None:
        if not node_ids:
            raise ValueError("cluster needs at least one node")
        if len(set(node_ids)) != len(node_ids):
            raise ValueError("node ids must be unique")
        self.node_ids = list(node_ids)
        self.loop = EventLoop(seed=seed)
        self.topology = Topology()
        addr_map = build_switched_cluster(
            self.topology,
            self.node_ids,
            segments=segments,
            loss=loss,
            latency=latency,
            jitter=jitter,
        )
        self.network = DatagramNetwork(self.loop, self.topology)
        self.config = (
            config
            if config is not None
            else RaincoreConfig.tuned(ring_size=len(node_ids))
        )
        self.nodes: dict[str, ClusterNode] = {}
        self._auto_eligible = auto_eligible
        for node_id in self.node_ids:
            listener = RecordingListener()
            node = RaincoreNode(
                node_id, self.loop, self.network, self.config, listener
            )
            if auto_eligible:
                node.set_eligible(self.node_ids)
            self.nodes[node_id] = ClusterNode(node, listener, addr_map[node_id])
        self.faults = FaultInjector(self)
        # Probe bus (repro.obs): None until enable_probes() opts in, so the
        # default harness pays nothing for observability.
        self.probes = None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def enable_probes(self):
        """Attach one probe bus to every layer of the cluster; idempotent.

        Returns the :class:`~repro.obs.probe.ProbeBus`.  Imported lazily so
        clusters that never observe pay no import cost either.
        """
        if self.probes is None:
            from repro.obs.probe import ProbeBus

            bus = ProbeBus(self.loop)
            self.network.probe = bus
            for cn in self.nodes.values():
                cn.node.probe = bus
                cn.node.transport.probe = bus
            self.probes = bus
        return self.probes

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __getitem__(self, node_id: str) -> ClusterNode:
        return self.nodes[node_id]

    def node(self, node_id: str) -> RaincoreNode:
        return self.nodes[node_id].node

    def listener(self, node_id: str) -> RecordingListener:
        return self.nodes[node_id].listener

    def live_nodes(self) -> list[RaincoreNode]:
        return [
            cn.node for cn in self.nodes.values() if cn.node.state is not NodeState.DOWN
        ]

    @property
    def stats(self):
        return self.network.stats

    # ------------------------------------------------------------------
    # startup patterns
    # ------------------------------------------------------------------
    def start_all(self, form_time: float | None = None) -> None:
        """Bootstrap: first node forms the group, the rest join it, then run
        until the full membership converges.

        ``form_time`` bounds the virtual time spent waiting (default: scales
        with cluster size and join timers).
        """
        first, *rest = self.node_ids
        self.node(first).start_new_group()
        for node_id in rest:
            self.node(node_id).start_joining([first])
        budget = (
            form_time
            if form_time is not None
            else 2.0 + len(self.node_ids) * (self.config.join_retry + 0.5)
        )
        if not self.run_until_converged(budget):
            raise RuntimeError(
                f"cluster failed to form within {budget}s: "
                f"{ {n: self.node(n).members for n in self.node_ids} }"
            )

    def run(self, duration: float) -> None:
        """Advance virtual time by ``duration`` seconds."""
        self.loop.run_for(duration)

    def run_until_converged(
        self, budget: float, expected: set[str] | None = None, step: float = 0.05
    ) -> bool:
        """Run until every live node agrees on the membership ``expected``
        (default: the set of currently-live nodes).  Returns True on
        convergence within ``budget`` virtual seconds."""
        deadline = self.loop.now + budget
        while self.loop.now < deadline:
            self.loop.run_for(step)
            if self.converged(expected):
                return True
        return self.converged(expected)

    def converged(self, expected: set[str] | None = None) -> bool:
        """All live nodes are members and share the same membership view."""
        live = self.live_nodes()
        if not live:
            return False
        want = expected if expected is not None else {n.node_id for n in live}
        views = {frozenset(n.members) for n in live}
        states_ok = all(
            n.state in (NodeState.HUNGRY, NodeState.EATING) for n in live
        )
        return states_ok and views == {frozenset(want)}

    def membership_views(self) -> dict[str, tuple[str, ...]]:
        """Current membership view at every live node."""
        return {
            n.node_id: n.members
            for n in self.live_nodes()
        }

    def token_holders(self) -> list[str]:
        """Nodes currently holding a live token (normally zero or one)."""
        return [n.node_id for n in self.live_nodes() if n.has_token]

    # ------------------------------------------------------------------
    # elasticity
    # ------------------------------------------------------------------
    def add_node(
        self, node_id: str, contacts: list[str] | None = None, start: bool = True
    ) -> ClusterNode:
        """Grow a *running* cluster: provision a new member and join it.

        Attaches one NIC per existing segment, registers the node with the
        harness, extends every member's Eligible Membership (so partitions
        involving the newcomer re-merge), and — unless ``start=False`` —
        immediately starts the 911 join via ``contacts`` (default: all
        current members).
        """
        if node_id in self.nodes:
            raise ValueError(f"duplicate node {node_id!r}")
        self.topology.add_node(node_id)
        addresses = []
        for seg in self.topology.segments():
            addr = f"{node_id}@{seg.name}"
            self.topology.attach(node_id, addr, seg.name)
            addresses.append(addr)
        listener = RecordingListener()
        node = RaincoreNode(node_id, self.loop, self.network, self.config, listener)
        if self.probes is not None:
            node.probe = self.probes
            node.transport.probe = self.probes
        self.node_ids.append(node_id)
        self.nodes[node_id] = ClusterNode(node, listener, addresses)
        if self._auto_eligible:
            for cn in self.nodes.values():
                cn.node.set_eligible(self.node_ids)
        if start:
            pool = contacts if contacts is not None else [
                n.node_id for n in self.live_nodes() if n.node_id != node_id
            ]
            if pool:
                node.start_joining(pool)
            else:
                node.start_new_group()
        return self.nodes[node_id]

    # ------------------------------------------------------------------
    # open group communication (paper §2.6)
    # ------------------------------------------------------------------
    def add_external_client(
        self, client_id: str, contacts: list[str] | None = None, **kwargs
    ):
        """Attach an outside (non-member) node and return its
        :class:`~repro.core.opengroup.OpenGroupClient`."""
        from repro.core.opengroup import OpenGroupClient

        self.topology.add_node(client_id)
        self.topology.attach(client_id, f"{client_id}@net0", "net0")
        return OpenGroupClient(
            client_id,
            self.loop,
            self.network,
            contacts if contacts is not None else list(self.node_ids),
            **kwargs,
        )

    # ------------------------------------------------------------------
    # aggregate observations
    # ------------------------------------------------------------------
    def all_delivery_orders(self) -> dict[str, list[tuple[str, int]]]:
        """Per-node delivery order of multicast ids, for ordering checks."""
        return {
            node_id: cn.listener.delivery_keys for node_id, cn in self.nodes.items()
        }

    def total_deliveries(self) -> int:
        return sum(len(cn.listener.deliveries) for cn in self.nodes.values())
