"""Continuous invariant checking for simulated clusters.

Tests usually assert invariants at the end of a scenario; this monitor
checks them *during* the run, sampling on every simulation tick, so a
transient violation (two tokens coexisting for a few milliseconds, a seq
running backwards) cannot hide between assertions.

Checked invariants (DESIGN.md §5):

* **P1 token uniqueness (per group)** — at most one live token among the
  holders of any one group (holders sharing a group id).  Split-brain
  legitimately yields one token *per sub-group*; duplicates within a
  group are the violation.  The known transient exception (a duplicate
  born from total ack loss on a delivered forward, healed by the seq
  guard) is *counted*, not failed, unless ``strict=True``; the window's
  duration is bounded and reported.
* **seq monotonicity** — no node's last-seen sequence ever decreases.
* **state legality** — every node's state is a valid enum member and a
  token holder is EATING.

Usage::

    monitor = InvariantMonitor(cluster, interval=0.001)
    monitor.start()
    ... run the scenario ...
    monitor.assert_clean()        # or inspect .violations / .double_token_time
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.states import NodeState

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.harness import RaincoreCluster

__all__ = ["InvariantMonitor", "Violation"]


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    at: float
    kind: str
    detail: str


@dataclass
class InvariantMonitor:
    """Samples cluster-wide invariants on a fixed virtual-time interval."""

    cluster: "RaincoreCluster"
    interval: float = 0.001
    strict: bool = False  #: treat transient double tokens as violations
    violations: list[Violation] = field(default_factory=list)
    double_token_time: float = 0.0  #: cumulative seconds with >1 holder
    samples: int = 0
    #: Called with each Violation the moment it is flagged — the flight
    #: recorder hooks this to snapshot its rings at first-violation time,
    #: before later traffic evicts the interesting events.
    on_violation: Callable[[Violation], None] | None = None
    _last_seqs: dict[str, int] = field(default_factory=dict)
    _running: bool = False

    def start(self) -> None:
        self._running = True
        self._arm()

    def stop(self) -> None:
        self._running = False

    def _arm(self) -> None:
        self.cluster.loop.call_later(self.interval, self._sample)

    def _sample(self) -> None:
        if not self._running:
            return
        now = self.cluster.loop.now
        self.samples += 1
        # A crashed node restarts with a fresh seq horizon: forget it while
        # it is down so its rebirth is not misread as a seq regression.
        live_ids = {n.node_id for n in self.cluster.live_nodes()}
        for stale in sorted(set(self._last_seqs) - live_ids):
            del self._last_seqs[stale]
        # Group tokens by the holder's group identity: one token per
        # sub-group is legitimate split-brain; two in one group is not.
        holders_by_group: dict[str, list[str]] = {}
        for node in self.cluster.live_nodes():
            if node.has_token:
                holders_by_group.setdefault(node.group_id, []).append(
                    node.node_id
                )
        doubled = {g: hs for g, hs in holders_by_group.items() if len(hs) > 1}
        if doubled:
            self.double_token_time += self.interval
            if self.strict:
                self._flag(now, "token-uniqueness", f"holders={doubled}")
        for node in self.cluster.live_nodes():
            seq = node._last_seen_seq
            prev = self._last_seqs.get(node.node_id)
            # A node that restarted legitimately resets its seq horizon.
            if prev is not None and seq < prev and node.state is not NodeState.JOINING:
                self._flag(
                    now,
                    "seq-monotonicity",
                    f"{node.node_id}: {prev} -> {seq}",
                )
            self._last_seqs[node.node_id] = seq
            if node.has_token and node.state is not NodeState.EATING:
                self._flag(
                    now,
                    "state-legality",
                    f"{node.node_id} holds token in {node.state.value}",
                )
        self._arm()

    def _flag(self, at: float, kind: str, detail: str) -> None:
        violation = Violation(at, kind, detail)
        self.violations.append(violation)
        if self.on_violation is not None:
            self.on_violation(violation)

    # ------------------------------------------------------------------
    def assert_clean(self, max_double_token_time: float = 0.0) -> None:
        """Raise if any violation was observed.

        ``max_double_token_time`` permits a bounded transient duplicate
        window (non-strict mode); the FLP-grounded impossibility means 0 is
        only achievable in fault-free or fail-stop-only runs.
        """
        if self.violations:
            raise AssertionError(
                f"{len(self.violations)} invariant violations; first: "
                f"{self.violations[0]}"
            )
        if self.double_token_time > max_double_token_time:
            raise AssertionError(
                f"double-token time {self.double_token_time:.4f}s exceeds "
                f"allowance {max_double_token_time:.4f}s"
            )
