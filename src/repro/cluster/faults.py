"""Fault injection for cluster scenarios.

Every failure mode the paper discusses, as one-line injections:

* node crash / recovery (fail-stop, rejoin via 911 — paper §2.3);
* cable unplug (the Rainwall fail-over experiment — paper §3.2);
* pairwise link cut (the ABCD → ACD → ACBD example — paper §2.3);
* partition / heal (split-brain and merge — paper §2.4);
* token loss (direct injection for 911 recovery studies — paper §2.3);
* failure-detector false alarm (wrongful removal — paper §2.3);

plus the adversarial extensions the chaos engine (:mod:`repro.chaos`)
schedules:

* surgical packet drops (:meth:`FaultInjector.drop_matching`), including
  the canned one-way ACK blackout that manufactures false alarms;
* flapping ("gray") NICs, per-segment packet duplication, Gilbert–Elliott
  burst loss and delay spikes (:mod:`repro.net.adversity`);
* forged duplicate tokens — a direct injection of the duplicate that the
  paper's sequence-number guard must kill.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.states import NodeState
from repro.net.datagram import Datagram
from repro.transport.messages import AckFrame

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.harness import RaincoreCluster

__all__ = ["FaultInjector"]


class FaultInjector:
    """Mutates a :class:`RaincoreCluster`'s topology and nodes mid-run."""

    def __init__(self, cluster: "RaincoreCluster") -> None:
        self.cluster = cluster

    # ------------------------------------------------------------------
    # node faults
    # ------------------------------------------------------------------
    def crash_node(self, node_id: str) -> None:
        """Fail-stop a node: protocol halts and its NICs go silent."""
        self.cluster.node(node_id).crash()
        self.cluster.topology.set_node_up(node_id, False)

    def recover_node(self, node_id: str, contacts: list[str] | None = None) -> None:
        """Restart a crashed node and have it rejoin via a 911."""
        self.cluster.topology.set_node_up(node_id, True)
        node = self.cluster.node(node_id)
        if contacts is None:
            contacts = [
                n.node_id
                for n in self.cluster.live_nodes()
                if n.node_id != node_id
            ]
        if contacts:
            node.start_joining(contacts)
        else:
            node.start_new_group()

    # ------------------------------------------------------------------
    # link faults
    # ------------------------------------------------------------------
    def unplug_cable(self, node_id: str, segment_index: int = 0) -> str:
        """Unplug one NIC of a node (paper §3.2's benchmark fault).

        Returns the affected address so the test can replug it.
        """
        addr = self.cluster.topology.addresses_of(node_id)[segment_index]
        self.cluster.topology.set_nic_up(addr, False)
        return addr

    def replug_cable(self, address: str) -> None:
        self.cluster.topology.set_nic_up(address, True)

    def cut_link(self, node_a: str, node_b: str) -> None:
        """Cut all paths between exactly two nodes (others unaffected)."""
        self.cluster.topology.block_node_pair(node_a, node_b)

    def restore_link(self, node_a: str, node_b: str) -> None:
        self.cluster.topology.unblock_node_pair(node_a, node_b)

    def flap_nic(
        self,
        node_id: str,
        segment_index: int = 0,
        period: float = 0.2,
        duration: float = 2.0,
    ) -> str:
        """A "gray" NIC: one interface flaps down/up every ``period/2``
        seconds for ``duration`` seconds, then is forced back up.

        The toggle schedule is laid out up front on the event loop, so a
        flap is a deterministic, replayable fault like any other.  Returns
        the flapping address.
        """
        if period <= 0.0 or duration <= 0.0:
            raise ValueError("period and duration must be positive")
        addr = self.cluster.topology.addresses_of(node_id)[segment_index]
        loop = self.cluster.loop
        half = period / 2.0
        t, up = 0.0, False
        while t < duration:
            loop.call_later(t, self.cluster.topology.set_nic_up, addr, up)
            up = not up
            t += half
        loop.call_later(duration, self.cluster.topology.set_nic_up, addr, True)
        return addr

    # ------------------------------------------------------------------
    # surgical packet filters
    # ------------------------------------------------------------------
    def drop_matching(self, pred: Callable[[Datagram], bool]) -> int:
        """Drop every packet ``pred`` matches, until :meth:`stop_dropping`.

        The first-class form of the network's send-filter hook: filters
        stack (several concurrent drop rules compose), and callers get a
        handle instead of reaching into the fabric.  Returns that handle.
        """
        return self.cluster.network.add_filter(lambda packet: not pred(packet))

    def stop_dropping(self, handle: int) -> None:
        """Remove one :meth:`drop_matching` rule (idempotent)."""
        self.cluster.network.remove_filter(handle)

    def clear_filters(self) -> None:
        """Remove every installed drop rule."""
        self.cluster.network.clear_filters()

    def ack_blackout(self, src_node: str, dst_node: str, duration: float) -> int:
        """Drop all transport ACKs ``src_node`` → ``dst_node`` for
        ``duration`` seconds.

        The canned scenario that manufactures failure-detector false
        alarms: data flows, acknowledgements do not, so the sender's
        failure-on-delivery fires against a live peer.  Returns the filter
        handle (already scheduled for removal).
        """
        topo = self.cluster.topology

        def one_way_acks(packet: Datagram) -> bool:
            if not isinstance(packet.payload, AckFrame):
                return False
            return (
                topo.owner_of(packet.src) == src_node
                and topo.owner_of(packet.dst) == dst_node
            )

        handle = self.drop_matching(one_way_acks)
        self.cluster.loop.call_later(duration, self.stop_dropping, handle)
        return handle

    # ------------------------------------------------------------------
    # network adversities (per-segment models, repro.net.adversity)
    # ------------------------------------------------------------------
    def _adversity_segments(self, segment: str | None):
        topo = self.cluster.topology
        return [topo.segment(segment)] if segment is not None else topo.segments()

    def set_duplication(self, prob: float, segment: str | None = None) -> None:
        """Deliver a fraction ``prob`` of packets twice (UDP permits it)."""
        for seg in self._adversity_segments(segment):
            seg.duplicate = prob

    def set_burst_loss(
        self,
        p_enter: float,
        p_exit: float,
        loss_bad: float = 1.0,
        loss_good: float = 0.0,
        segment: str | None = None,
    ) -> None:
        """Attach a Gilbert–Elliott burst-loss channel to segment(s)."""
        from repro.net.adversity import GilbertElliott

        for seg in self._adversity_segments(segment):
            seg.burst = GilbertElliott(p_enter, p_exit, loss_good, loss_bad)

    def clear_burst_loss(self, segment: str | None = None) -> None:
        """Detach the burst-loss channel, leaving other adversities alone."""
        for seg in self._adversity_segments(segment):
            seg.burst = None

    def set_delay_spikes(
        self, prob: float, extra: float, segment: str | None = None
    ) -> None:
        """A fraction ``prob`` of packets is delayed by ``extra`` seconds."""
        for seg in self._adversity_segments(segment):
            seg.spike_prob = prob
            seg.spike_extra = extra

    def clear_adversities(self, segment: str | None = None) -> None:
        """Reset duplication, burst loss and spikes to the benign model."""
        for seg in self._adversity_segments(segment):
            seg.clear_adversities()

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------
    def partition(self, *groups: list[str]) -> None:
        """Split the cluster into isolated groups (split-brain injection)."""
        self.cluster.topology.partition(list(groups))

    def heal_partition(self) -> None:
        self.cluster.topology.heal_partition()

    # ------------------------------------------------------------------
    # protocol-level faults
    # ------------------------------------------------------------------
    def lose_token(self) -> bool:
        """Destroy the live token wherever it currently is.

        Emulates the holder dying at the worst moment without actually
        killing it: the holder silently forgets the token (its local copy
        survives, as the paper's protocol requires).  Returns True if a
        token was found and destroyed.  If the token is in flight (between
        holders), nothing happens and False is returned — use
        :meth:`lose_token_in_flight` to catch that window too.
        """
        for node in self.cluster.live_nodes():
            if node.has_token:
                token = node._live_token
                node._live_token = None
                # The holder believes it already forwarded: it waits HUNGRY
                # like everyone else, with its local copy intact.
                node._local_copy = token.copy()
                node._cancel_timer("_forward_timer")
                if node.state is NodeState.EATING:
                    node._transition(NodeState.HUNGRY)
                    node._arm_hungry_timer()
                return True
        return False

    def lose_token_in_flight(self, timeout: float = 1.0, poll: float = 0.0005) -> None:
        """Destroy the token even when it is currently between holders.

        :meth:`lose_token` has a blind spot: while the token datagram is in
        flight no node holds it, so the call silently does nothing.  This
        variant retries on the event loop every ``poll`` virtual seconds
        and kills the token the moment it lands, giving up after
        ``timeout`` seconds (e.g. when a 911 regeneration already replaced
        it).  Deterministic: retries are ordinary scheduled events.
        """
        if timeout <= 0.0 or poll <= 0.0:
            raise ValueError("timeout and poll must be positive")
        deadline = self.cluster.loop.now + timeout

        def attempt() -> None:
            if self.lose_token():
                return
            if self.cluster.loop.now + poll > deadline:
                return
            self.cluster.loop.call_later(poll, attempt)

        attempt()

    def forge_duplicate_token(self) -> bool:
        """Adversarial injection: clone the live token onto another member.

        Manufactures, in one step, the duplicate-token state that a false
        alarm (ack lost on a delivered forward) produces over several —
        two members of *one* group both believe they hold the token.  The
        clone enters through the normal acceptance path, so the protocol's
        seq guard is what must reap it; the strict
        :class:`~repro.cluster.invariants.InvariantMonitor` flags the
        window.  Returns True if a duplicate was planted.
        """
        holder = next(
            (n for n in self.cluster.live_nodes() if n.has_token), None
        )
        if holder is None:
            return False
        token = holder._live_token
        candidates = [
            n
            for n in self.cluster.live_nodes()
            if n is not holder
            and n.state is NodeState.HUNGRY
            and token.has_member(n.node_id)
            and n._last_seen_seq < token.seq
        ]
        if not candidates:
            return False
        victim = min(candidates, key=lambda n: n.node_id)
        victim._accept_token(token.copy())
        return True

    def false_alarm(self, accuser_id: str, victim_id: str) -> None:
        """Inject a failure-detector false alarm: ``accuser`` wrongly
        removes ``victim`` from its local copy of the ring next time it
        holds the token.

        Implemented as a transient link cut that heals immediately after
        one token pass attempt, so the transport's failure-on-delivery
        fires once — exactly a false alarm.
        """
        cluster = self.cluster
        cluster.topology.block_node_pair(accuser_id, victim_id)
        bound = cluster.config.transport.failure_detection_bound(
            len(cluster.topology.addresses_of(accuser_id))
        )
        ring = max(1, len(cluster.node(accuser_id).members))
        heal_after = bound + ring * cluster.config.hop_interval + 0.05
        cluster.loop.call_later(
            heal_after,
            cluster.topology.unblock_node_pair,
            accuser_id,
            victim_id,
        )
