"""Fault injection for cluster scenarios.

Every failure mode the paper discusses, as one-line injections:

* node crash / recovery (fail-stop, rejoin via 911 — paper §2.3);
* cable unplug (the Rainwall fail-over experiment — paper §3.2);
* pairwise link cut (the ABCD → ACD → ACBD example — paper §2.3);
* partition / heal (split-brain and merge — paper §2.4);
* token loss (direct injection for 911 recovery studies — paper §2.3);
* failure-detector false alarm (wrongful removal — paper §2.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.states import NodeState

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.harness import RaincoreCluster

__all__ = ["FaultInjector"]


class FaultInjector:
    """Mutates a :class:`RaincoreCluster`'s topology and nodes mid-run."""

    def __init__(self, cluster: "RaincoreCluster") -> None:
        self.cluster = cluster

    # ------------------------------------------------------------------
    # node faults
    # ------------------------------------------------------------------
    def crash_node(self, node_id: str) -> None:
        """Fail-stop a node: protocol halts and its NICs go silent."""
        self.cluster.node(node_id).crash()
        self.cluster.topology.set_node_up(node_id, False)

    def recover_node(self, node_id: str, contacts: list[str] | None = None) -> None:
        """Restart a crashed node and have it rejoin via a 911."""
        self.cluster.topology.set_node_up(node_id, True)
        node = self.cluster.node(node_id)
        if contacts is None:
            contacts = [
                n.node_id
                for n in self.cluster.live_nodes()
                if n.node_id != node_id
            ]
        if contacts:
            node.start_joining(contacts)
        else:
            node.start_new_group()

    # ------------------------------------------------------------------
    # link faults
    # ------------------------------------------------------------------
    def unplug_cable(self, node_id: str, segment_index: int = 0) -> str:
        """Unplug one NIC of a node (paper §3.2's benchmark fault).

        Returns the affected address so the test can replug it.
        """
        addr = self.cluster.topology.addresses_of(node_id)[segment_index]
        self.cluster.topology.set_nic_up(addr, False)
        return addr

    def replug_cable(self, address: str) -> None:
        self.cluster.topology.set_nic_up(address, True)

    def cut_link(self, node_a: str, node_b: str) -> None:
        """Cut all paths between exactly two nodes (others unaffected)."""
        self.cluster.topology.block_node_pair(node_a, node_b)

    def restore_link(self, node_a: str, node_b: str) -> None:
        self.cluster.topology.unblock_node_pair(node_a, node_b)

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------
    def partition(self, *groups: list[str]) -> None:
        """Split the cluster into isolated groups (split-brain injection)."""
        self.cluster.topology.partition(list(groups))

    def heal_partition(self) -> None:
        self.cluster.topology.heal_partition()

    # ------------------------------------------------------------------
    # protocol-level faults
    # ------------------------------------------------------------------
    def lose_token(self) -> bool:
        """Destroy the live token wherever it currently is.

        Emulates the holder dying at the worst moment without actually
        killing it: the holder silently forgets the token (its local copy
        survives, as the paper's protocol requires).  Returns True if a
        token was found and destroyed.  If the token is in flight (between
        holders), nothing happens — call again after a small run.
        """
        for node in self.cluster.live_nodes():
            if node.has_token:
                token = node._live_token
                node._live_token = None
                # The holder believes it already forwarded: it waits HUNGRY
                # like everyone else, with its local copy intact.
                node._local_copy = token.copy()
                node._cancel_timer("_forward_timer")
                if node.state is NodeState.EATING:
                    node._transition(NodeState.HUNGRY)
                    node._arm_hungry_timer()
                return True
        return False

    def false_alarm(self, accuser_id: str, victim_id: str) -> None:
        """Inject a failure-detector false alarm: ``accuser`` wrongly
        removes ``victim`` from its local copy of the ring next time it
        holds the token.

        Implemented as a transient link cut that heals immediately after
        one token pass attempt, so the transport's failure-on-delivery
        fires once — exactly a false alarm.
        """
        cluster = self.cluster
        cluster.topology.block_node_pair(accuser_id, victim_id)
        bound = cluster.config.transport.failure_detection_bound(
            len(cluster.topology.addresses_of(accuser_id))
        )
        ring = max(1, len(cluster.node(accuser_id).members))
        heal_after = bound + ring * cluster.config.hop_interval + 0.05
        cluster.loop.call_later(
            heal_after,
            cluster.topology.unblock_node_pair,
            accuser_id,
            victim_id,
        )
