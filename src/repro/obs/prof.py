"""Hot-path attribution profiler: the *non-deterministic* telemetry channel.

The deterministic probe stream (:mod:`repro.obs.probe`) answers *what the
protocol did*; this module answers *where the wall-clock went while it did
it*.  The two channels are deliberately segregated:

* Probe events are stamped with **sim time** only (raincheck RC402) and are
  byte-identical per seed — they may never carry wall-clock readings.
* The :class:`Profiler` reads ``time.perf_counter`` freely (this module is
  on raincheck's RC101 wall-clock allowlist, next to :mod:`repro.perf`) but
  never writes into the probe stream, never mutates protocol state, and
  never influences scheduling — attaching it cannot move a byte of a golden
  trace (pinned by tests/test_prof.py).

Hooking
-------
:class:`~repro.net.eventloop.EventLoop` carries a public ``profile``
attribute (``None`` by default — one attribute load + ``None`` test per
dispatch, the same zero-cost idiom as ``probe``).  When set, every
callback dispatch is bracketed by two ``perf_counter`` reads and accounted
under the *shared function object* (``getattr(cb, "__func__", cb)``), so
per-event cost is two clock reads and two dict operations — no string
formatting, no allocation beyond the bounded trace timeline.  Names are
resolved from ``__module__``/``__qualname__`` only at report time.

Outputs
-------
* :meth:`Profiler.table` / :meth:`Profiler.render_table` — per-callback
  wall-time attribution sorted by total time, with an explicit
  ``(scheduler)`` residual row so the rows always sum to the measured run
  wall time (the ≥95 % attribution requirement is checked against
  :meth:`Profiler.coverage`).
* :meth:`Profiler.trace_json` — Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto loadable), one complete ``"X"`` event
  per dispatched callback, bounded by ``timeline_limit``.
* :meth:`Profiler.to_dict` — picklable summary shipped from shard workers
  to the coordinator (per-epoch wall durations feed the utilization
  imbalance report in :mod:`repro.parallel.coordinator`).
"""

from __future__ import annotations

import json
import time
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.eventloop import EventLoop
    from repro.obs.probe import ProbeBus, ProbeEvent

__all__ = ["Profiler", "imbalance", "render_epoch_stats"]


def _callable_name(key: object) -> str:
    """Human name for an accounting key, resolved only at report time."""
    qualname = getattr(key, "__qualname__", None) or getattr(
        key, "__name__", None
    )
    if qualname is None:
        return repr(key)
    module = getattr(key, "__module__", "") or ""
    name = f"{module}.{qualname}" if module else str(qualname)
    # The repro. prefix is noise in a table that is all repro code.
    return name[6:] if name.startswith("repro.") else name


class Profiler:
    """Sampling-free wall-clock accounting for one event loop.

    Parameters
    ----------
    timeline_limit:
        Maximum number of per-dispatch spans retained for the Chrome trace
        export.  Accounting (counts/totals) is exact regardless; only the
        visual timeline is bounded.  ``0`` disables span retention.
    label:
        Name used for the trace process row (e.g. ``"shard-0"``).
    """

    # One wall-clock source for the whole channel; swappable in tests.
    clock = staticmethod(time.perf_counter)

    __slots__ = (
        "timeline_limit",
        "label",
        "events",
        "run_wall",
        "epoch_walls",
        "heap_depth_max",
        "heap_depth_sum",
        "probe_counts",
        "timeline_truncated",
        "_stats",
        "_timeline",
        "_origin",
        "_run_depth",
        "_run_t0",
        "_run_is_epoch",
    )

    def __init__(self, timeline_limit: int = 50_000, label: str = "sim") -> None:
        self.timeline_limit = timeline_limit
        self.label = label
        #: Callbacks dispatched while attached.
        self.events = 0
        #: Total wall seconds spent inside run_until/run_epoch/step calls.
        self.run_wall = 0.0
        #: Wall seconds of each run_epoch call (sharded lockstep runs).
        self.epoch_walls: list[float] = []
        self.heap_depth_max = 0
        self.heap_depth_sum = 0
        #: Probe kind -> emission count (filled via attach_bus).
        self.probe_counts: dict[str, int] = {}
        self.timeline_truncated = False
        # key (shared function object) -> [calls, total_seconds]
        self._stats: dict[object, list[Any]] = {}
        # (key, start_rel_s, dur_s, sim_at) spans for the trace export.
        self._timeline: list[tuple[object, float, float, float]] = []
        self._origin: float | None = None
        self._run_depth = 0
        self._run_t0 = 0.0
        self._run_is_epoch = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, loop: "EventLoop") -> "Profiler":
        """Install onto ``loop`` (its ``profile`` attribute); returns self."""
        loop.profile = self
        return self

    def detach(self, loop: "EventLoop") -> None:
        if loop.profile is self:
            loop.profile = None

    def attach_bus(self, bus: "ProbeBus") -> "Profiler":
        """Additionally count probe emissions per kind (read-only tap)."""
        bus.subscribe(self._on_probe)
        return self

    def _on_probe(self, event: "ProbeEvent") -> None:
        counts = self.probe_counts
        counts[event.kind] = counts.get(event.kind, 0) + 1

    # ------------------------------------------------------------------
    # accounting (called from the EventLoop dispatch hot path)
    # ------------------------------------------------------------------
    def begin_run(self, epoch: bool = False) -> None:
        """Bracket entry of a run loop; nests (step() inside run_until is
        impossible today, but reentrancy is cheap to tolerate)."""
        if self._run_depth == 0:
            self._run_t0 = self.clock()
            self._run_is_epoch = epoch
            if self._origin is None:
                self._origin = self._run_t0
        self._run_depth += 1

    def end_run(self) -> None:
        self._run_depth -= 1
        if self._run_depth == 0:
            wall = self.clock() - self._run_t0
            self.run_wall += wall
            if self._run_is_epoch:
                self.epoch_walls.append(wall)

    def account(
        self,
        callback: Callable[..., None],
        t0: float,
        t1: float,
        depth: int,
        at: float,
    ) -> None:
        """Record one dispatched callback.

        ``callback`` is keyed by its shared function object so every bound
        method of a class accumulates into one row; ``depth`` is the heap
        size after the pop; ``at`` is the sim time of the event.
        """
        key = getattr(callback, "__func__", callback)
        stat = self._stats.get(key)
        if stat is None:
            stat = self._stats[key] = [0, 0.0]
        stat[0] += 1
        stat[1] += t1 - t0
        self.events += 1
        if depth > self.heap_depth_max:
            self.heap_depth_max = depth
        self.heap_depth_sum += depth
        timeline = self._timeline
        if len(timeline) < self.timeline_limit:
            origin = self._origin
            if origin is None:
                origin = self._origin = t0
            timeline.append((key, t0 - origin, t1 - t0, at))
        elif self.timeline_limit:
            self.timeline_truncated = True

    def record_epoch_wall(self, wall: float) -> None:
        """Record one externally-timed epoch (used when loops are driven
        by a harness that brackets epochs itself)."""
        self.epoch_walls.append(wall)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def callback_wall(self) -> float:
        """Wall seconds attributed to callbacks (excludes scheduler time)."""
        return sum(stat[1] for stat in self._stats.values())

    @property
    def heap_depth_mean(self) -> float:
        return self.heap_depth_sum / self.events if self.events else 0.0

    def coverage(self) -> float:
        """Fraction of measured run wall time attributed to callbacks.

        The remainder is heap maintenance, clock bookkeeping, and the
        profiler's own clock reads — reported as the ``(scheduler)`` row so
        the table always sums to the run wall.
        """
        if self.run_wall <= 0.0:
            return 1.0
        return min(1.0, self.callback_wall / self.run_wall)

    def table(self) -> list[dict[str, Any]]:
        """Attribution rows sorted by total wall time, residual row last."""
        run_wall = self.run_wall if self.run_wall > 0.0 else self.callback_wall
        rows = []
        for key, (calls, total) in self._stats.items():
            rows.append(
                {
                    "name": _callable_name(key),
                    "calls": calls,
                    "total_s": total,
                    "mean_us": (total / calls) * 1e6 if calls else 0.0,
                    "share": total / run_wall if run_wall else 0.0,
                }
            )
        rows.sort(key=lambda r: (-r["total_s"], r["name"]))
        residual = max(0.0, self.run_wall - self.callback_wall)
        if self.run_wall > 0.0:
            rows.append(
                {
                    "name": "(scheduler)",
                    "calls": self.events,
                    "total_s": residual,
                    "mean_us": (residual / self.events) * 1e6
                    if self.events
                    else 0.0,
                    "share": residual / run_wall if run_wall else 0.0,
                }
            )
        return rows

    def render_table(self, top: int | None = None) -> str:
        """The attribution table as aligned text (rows sum to run wall)."""
        rows = self.table()
        if top is not None and top > 0 and len(rows) > top + 1:
            # Keep the residual row; fold the tail into one "(other)" row.
            head, tail = rows[:top], rows[top:-1]
            folded = {
                "name": f"(other: {len(tail)} callbacks)",
                "calls": sum(r["calls"] for r in tail),
                "total_s": sum(r["total_s"] for r in tail),
                "mean_us": 0.0,
                "share": sum(r["share"] for r in tail),
            }
            rows = head + ([folded] if tail else []) + rows[-1:]
        name_w = max([len(r["name"]) for r in rows] + [len("callback")])
        lines = [
            f"profile: {self.events} events, run wall "
            f"{self.run_wall * 1e3:.2f} ms, callback coverage "
            f"{self.coverage() * 100.0:.1f}%, heap depth mean "
            f"{self.heap_depth_mean:.1f} max {self.heap_depth_max}",
            f"{'callback':<{name_w}}  {'calls':>9}  {'total ms':>10}  "
            f"{'mean µs':>9}  {'share':>6}",
        ]
        for r in rows:
            lines.append(
                f"{r['name']:<{name_w}}  {r['calls']:>9}  "
                f"{r['total_s'] * 1e3:>10.3f}  {r['mean_us']:>9.2f}  "
                f"{r['share'] * 100.0:>5.1f}%"
            )
        if self.probe_counts:
            total = sum(self.probe_counts.values())
            top_kinds = sorted(
                self.probe_counts.items(), key=lambda kv: (-kv[1], kv[0])
            )[:8]
            lines.append(
                f"probes: {total} emitted; top kinds: "
                + " ".join(f"{k}={c}" for k, c in top_kinds)
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Chrome trace-event export
    # ------------------------------------------------------------------
    def trace_events(self, pid: int = 0) -> list[dict[str, Any]]:
        """Complete ("X" phase) trace events, timestamps in µs from origin."""
        out: list[dict[str, Any]] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": self.label},
            }
        ]
        for key, start, dur, at in self._timeline:
            out.append(
                {
                    "name": _callable_name(key),
                    "cat": "dispatch",
                    "ph": "X",
                    "ts": start * 1e6,
                    "dur": dur * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "args": {"sim_time": at},
                }
            )
        return out

    def trace_json(self, pid: int = 0) -> str:
        """A ``chrome://tracing``-loadable JSON document."""
        return json.dumps(
            {
                "traceEvents": self.trace_events(pid),
                "displayTimeUnit": "ms",
                "metadata": {
                    "tool": "repro prof",
                    "events": self.events,
                    "run_wall_s": self.run_wall,
                    "timeline_truncated": self.timeline_truncated,
                },
            },
            sort_keys=True,
        )

    # ------------------------------------------------------------------
    # wire form (shard workers ship this to the coordinator)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Picklable / JSON-safe summary of everything accounted."""
        return {
            "label": self.label,
            "events": self.events,
            "run_wall_s": self.run_wall,
            "callback_wall_s": self.callback_wall,
            "coverage": self.coverage(),
            "heap_depth_max": self.heap_depth_max,
            "heap_depth_mean": self.heap_depth_mean,
            "epoch_walls_s": list(self.epoch_walls),
            "callbacks": self.table(),
            "probe_counts": dict(sorted(self.probe_counts.items())),
            "timeline_truncated": self.timeline_truncated,
        }


# ----------------------------------------------------------------------
# cross-shard epoch statistics (coordinator side)
# ----------------------------------------------------------------------
def imbalance(profiles: list[dict[str, Any]]) -> float:
    """Utilization imbalance across shard workers: max busy / mean busy.

    1.0 means perfectly balanced; 2.0 means the busiest worker did twice
    the mean work (the lockstep barrier makes it the critical path).
    Workers with no epoch timings contribute zero busy time.
    """
    busy = [sum(p.get("epoch_walls_s", ())) for p in profiles]
    if not busy or sum(busy) <= 0.0:
        return 1.0
    mean = sum(busy) / len(busy)
    return max(busy) / mean if mean > 0.0 else 1.0


def render_epoch_stats(profiles: list[dict[str, Any]]) -> str:
    """Per-worker epoch wall summary plus the imbalance figure."""
    lines = ["per-shard epochs:"]
    for p in profiles:
        walls = p.get("epoch_walls_s", [])
        busy = sum(walls)
        worst = max(walls) if walls else 0.0
        lines.append(
            f"  {p.get('label', '?'):>10}: {len(walls)} epochs, busy "
            f"{busy * 1e3:.2f} ms, worst epoch {worst * 1e3:.3f} ms, "
            f"{p.get('events', 0)} events, coverage "
            f"{p.get('coverage', 0.0) * 100.0:.1f}%"
        )
    lines.append(f"utilization imbalance (max/mean busy): {imbalance(profiles):.3f}")
    return "\n".join(lines)
