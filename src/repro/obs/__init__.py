"""repro.obs — deterministic cross-layer observability.

Six pieces (docs/OBSERVABILITY.md, docs/MONITORING.md):

* :mod:`repro.obs.probe` — the probe bus: typed, zero-cost-when-disabled
  event emission from every layer, with the probe catalogue.
* :mod:`repro.obs.registry` — counters/gauges/histograms with sim-time
  windowing, unifying the ad-hoc ``NodeStats`` counters into one export.
* :mod:`repro.obs.recorder` — the flight recorder (bounded per-node event
  rings) and failure-time diagnostic bundles.
* :mod:`repro.obs.monitor` — the contract monitor: a live SLO rules
  engine evaluating the paper's overhead bounds over the probe stream.
* :mod:`repro.obs.diff` — trace diff: first-divergence localization
  between two probe exports or bundles.
* :mod:`repro.obs.scenario` — the shared quickstart scenario used by the
  ``repro obs`` CLI and the determinism tests.
* :mod:`repro.obs.prof` — the hot-path wall-clock profiler: the separate
  non-deterministic channel (docs/PROFILING.md).
* :mod:`repro.obs.spans` — span/episode reconstruction over the probe
  stream (token laps, 911 episodes, merge windows, resync ladders).
* :mod:`repro.obs.agg` — bounded-state streaming aggregation with
  deterministic cross-shard merge.
"""

from repro.obs.agg import (
    BoundedHistogram,
    StreamAggregator,
    merge_rollups,
    render_rollup,
    rollup_json,
)
from repro.obs.diff import (
    Divergence,
    canonical_records,
    first_divergence,
    load_events,
    render_divergence,
)
from repro.obs.monitor import (
    CONTRACT_RULES,
    Alert,
    ContractMonitor,
    RuleSpec,
    RuleWindow,
    contract_rule,
    paper_contract_rules,
    realtime_contract_rules,
    render_alerts,
)
from repro.obs.prof import Profiler, imbalance, render_epoch_stats
from repro.obs.probe import (
    PROBE_CATALOG,
    ProbeBus,
    ProbeEvent,
    event_from_record,
    event_record,
    events_to_jsonl,
    format_event,
)
from repro.obs.recorder import (
    BUNDLE_SCHEMA,
    SUPPORTED_SCHEMAS,
    FlightRecorder,
    build_bundle,
    bundle_events,
    bundle_to_json,
    causal_chain,
    dump_bundle,
    load_bundle,
    render_bundle,
    render_chain,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ProbeMetrics,
)
from repro.obs.spans import Span, SpanTimeline, reconstruct_spans

__all__ = [
    "BoundedHistogram",
    "StreamAggregator",
    "merge_rollups",
    "render_rollup",
    "rollup_json",
    "Profiler",
    "imbalance",
    "render_epoch_stats",
    "Span",
    "SpanTimeline",
    "reconstruct_spans",
    "PROBE_CATALOG",
    "ProbeBus",
    "ProbeEvent",
    "event_from_record",
    "event_record",
    "events_to_jsonl",
    "format_event",
    "BUNDLE_SCHEMA",
    "SUPPORTED_SCHEMAS",
    "FlightRecorder",
    "build_bundle",
    "bundle_events",
    "bundle_to_json",
    "causal_chain",
    "dump_bundle",
    "load_bundle",
    "render_bundle",
    "render_chain",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProbeMetrics",
    "CONTRACT_RULES",
    "Alert",
    "ContractMonitor",
    "RuleSpec",
    "RuleWindow",
    "contract_rule",
    "paper_contract_rules",
    "realtime_contract_rules",
    "render_alerts",
    "Divergence",
    "canonical_records",
    "first_divergence",
    "load_events",
    "render_divergence",
]
