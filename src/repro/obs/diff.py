"""Trace diff: localize the first divergence between two probe streams.

"Golden output changed" and "replay mismatch" usually arrive as a byte
diff over thousands of JSONL lines — technically precise, causally
useless.  This module turns the question around: given two probe exports
or diagnostic bundles (same seed across versions, shrunk vs. full trace),
it aligns the streams, finds the **first divergence point** by
(sim-time, node, probe-kind) with a bisection over the event prefix, and
renders a focused two-column report around it.  Everything downstream of
the first divergence is cascade; the first differing event is where the
causal investigation starts.

Works on anything that contains probe events:

* a JSONL export (``repro obs export``, one ``event_record`` per line);
* a diagnostic bundle (``repro.obs.bundle/1`` or ``/2``);
* a raintap collector capture (``repro.obs.capture/1`` header line, then
  event records with wall-clock ``at`` — docs/TELEMETRY.md);

via :func:`load_events`, which sniffs the format.  The comparison is
over canonical event records (ordinal, sim-time, node, kind, args), so
two exports of byte-identical runs compare equal regardless of which
container they were stored in.

CLI: ``repro obs diff LEFT RIGHT`` (docs/MONITORING.md has a worked
example); exit code 0 = no divergence, 1 = divergence found.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.obs.probe import ProbeEvent, event_record
from repro.obs.recorder import load_bundle

__all__ = [
    "Divergence",
    "load_events",
    "canonical_records",
    "first_divergence",
    "render_divergence",
]


@dataclass(frozen=True)
class Divergence:
    """The first point where two probe streams disagree.

    ``index`` is the position in stream order (0-based): both streams are
    identical for exactly ``index`` events.  ``left``/``right`` are the
    canonical records at that position — ``None`` when that side's stream
    ended (one stream is a strict prefix of the other).  ``at``, ``node``
    and ``kind`` locate the divergence for humans and machines alike,
    taken from whichever side has an event at the divergence point.
    """

    index: int
    at: float
    node: str
    kind: str
    left: dict | None
    right: dict | None

    def describe(self) -> str:
        return (
            f"first divergence at event #{self.index}: "
            f"t={self.at:.6f}s node={self.node} kind={self.kind}"
        )


def _record_of(item: object) -> dict:
    """Canonical record for one stream element (ProbeEvent or record dict)."""
    if isinstance(item, ProbeEvent):
        return event_record(item)
    if isinstance(item, dict):
        missing = [k for k in ("n", "at", "node", "kind", "args") if k not in item]
        if missing:
            raise ValueError(
                f"not a probe event record (missing {', '.join(missing)}): "
                f"{sorted(item)[:8]}"
            )
        return {
            "n": item["n"],
            "at": item["at"],
            "node": item["node"],
            "kind": item["kind"],
            "args": item["args"],
        }
    raise ValueError(f"cannot interpret {type(item).__name__} as a probe event")


def canonical_records(events: list) -> list[dict]:
    """Normalize a stream (ProbeEvents or record dicts) to canonical
    records in stream order, so comparisons never depend on the container
    the events travelled in."""
    return [_record_of(e) for e in events]


#: Schema-prefix of raintap collector capture files (the header line's
#: ``schema`` value).  A literal, not an import: ``repro.obs`` never
#: imports the runtime package.
_CAPTURE_PREFIX = "repro.obs.capture/"


def _capture_header(text: str) -> dict | None:
    """The capture header object iff ``text`` starts with one, else None."""
    first = text.lstrip().split("\n", 1)[0]
    try:
        obj = json.loads(first)
    except json.JSONDecodeError:
        return None
    if isinstance(obj, dict) and str(obj.get("schema", "")).startswith(
        _CAPTURE_PREFIX
    ):
        return obj
    return None


def load_events(path: str | Path) -> list[dict]:
    """Load probe-event records from an export, bundle, or capture file.

    Sniffs the format: a first line whose JSON object claims a
    ``repro.obs.capture/*`` schema is a collector capture (header
    skipped, wall-clock records follow); a whole-file JSON object
    carrying a ``schema`` key is a bundle (validated by the bundle
    loader, any supported schema); otherwise the file is treated as a
    JSONL export with one event record per line.  Raises ``ValueError``
    with the offending path/line on anything malformed.

    Capture files are written live by a collector and may have been cut
    off mid-write (a killed soak run): a **final** line that is torn —
    undecodable *and* missing its newline — is dropped silently.  A torn
    line anywhere else is interleaved corruption and still raises.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ValueError(f"cannot read {path}: {exc}") from exc
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path} is empty — not a probe export or bundle")
    header = _capture_header(stripped)
    if header is not None:
        schema = str(header["schema"])
        if schema != _CAPTURE_PREFIX + "1":
            raise ValueError(
                f"{path}: unsupported capture schema {schema!r} "
                f"(supported: {_CAPTURE_PREFIX}1)"
            )
        body = stripped.split("\n", 1)
        return _load_jsonl(path, body[1] if len(body) > 1 else "",
                           first_lineno=2, tolerate_torn_tail=True)
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None  # multiple documents: fall through to JSONL parsing
        if isinstance(doc, dict) and "schema" in doc:
            # one JSON document claiming a schema: a bundle
            # (load_bundle validates it against SUPPORTED_SCHEMAS)
            bundle = load_bundle(path)
            return canonical_records(bundle["events"])
    return _load_jsonl(path, text, first_lineno=1, tolerate_torn_tail=False)


def _load_jsonl(
    path: Path, text: str, *, first_lineno: int, tolerate_torn_tail: bool
) -> list[dict]:
    records: list[dict] = []
    lines = text.splitlines()
    last_index = len(lines) - 1
    ends_with_newline = text.endswith("\n")
    for i, line in enumerate(lines):
        lineno = first_lineno + i
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            if tolerate_torn_tail and i == last_index and not ends_with_newline:
                break  # torn final line of a live capture: drop it
            raise ValueError(
                f"{path}:{lineno}: not JSON ({exc.msg}) — "
                "expected a JSONL probe export"
            ) from exc
        try:
            records.append(_record_of(obj))
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from exc
    if not records:
        raise ValueError(f"{path} contains no probe event records")
    return records


def first_divergence(left: list, right: list) -> Divergence | None:
    """Locate the first index where two streams disagree, or ``None``.

    Bisection over the event prefix: probe whether ``left[:k] ==
    right[:k]`` for midpoints ``k``, narrowing to the exact boundary of
    the longest common prefix.  Prefix equality is monotone in ``k``
    (equal prefixes stay equal when shortened), which is what makes the
    bisection sound; it also makes the common case — two identical
    multi-thousand-event exports — cheap to confirm: the first probe at
    ``k = n`` settles it.
    """
    a = canonical_records(left)
    b = canonical_records(right)
    shared = min(len(a), len(b))
    lo, hi = 0, shared  # invariant: a[:lo] == b[:lo]; a[:hi+..] unknown/unequal
    if a[:shared] == b[:shared]:
        lo = shared
    else:
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if a[lo:mid] == b[lo:mid]:
                lo = mid
            else:
                hi = mid - 1
        # lo is now the longest common prefix; a[lo] != b[lo] with lo < shared
    if lo == len(a) and lo == len(b):
        return None
    la = a[lo] if lo < len(a) else None
    rb = b[lo] if lo < len(b) else None
    anchor = la if la is not None else rb
    assert anchor is not None
    return Divergence(
        index=lo,
        at=float(anchor["at"]),
        node=str(anchor["node"]),
        kind=str(anchor["kind"]),
        left=la,
        right=rb,
    )


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt(record: dict | None) -> str:
    if record is None:
        return "(end of stream)"
    args = ",".join(repr(a) for a in record["args"])
    return f"n={record['n']} t={record['at']:.6f} {record['node']} {record['kind']}({args})"


def render_divergence(
    left: list,
    right: list,
    divergence: Divergence | None,
    *,
    context: int = 3,
    left_label: str = "left",
    right_label: str = "right",
) -> str:
    """Two-column report focused on the divergence point.

    Shows the last ``context`` shared events (one column — they are
    identical by construction), then the two streams side by side from
    the first differing event.  With ``divergence=None`` the report is a
    single "no divergence" line, stable for CI gating.
    """
    if divergence is None:
        n = len(left)
        return f"no divergence: {n} events identical"
    a = canonical_records(left)
    b = canonical_records(right)
    i = divergence.index
    lines = [divergence.describe()]
    start = max(0, i - context)
    if start < i:
        lines.append(f"  shared prefix (last {i - start} of {i} events):")
        for rec in a[start:i]:
            lines.append(f"    = {_fmt(rec)}")
    lines.append(f"  {left_label} / {right_label} from event #{i}:")
    for k in range(i, i + context + 1):
        la = a[k] if k < len(a) else None
        rb = b[k] if k < len(b) else None
        if la is None and rb is None:
            break
        marker = "!" if k == i else "|"
        lines.append(f"    {marker} L {_fmt(la)}")
        lines.append(f"    {marker} R {_fmt(rb)}")
    return "\n".join(lines)
