"""Flight recorder: bounded per-node probe rings and diagnostic bundles.

The recorder keeps the *recent* probe history of every node in a bounded
ring (old events fall off the back), so that when something finally goes
wrong — an invariant violation, a chaos-campaign failure, a harness
assertion — the moments leading up to it are still in memory and can be
dumped as one self-contained **diagnostic bundle**: reason, sim time,
recent events, metrics snapshot, and (for chaos runs) the fault schedule.

Bundles are plain JSON with fully sorted keys; two runs with the same seed
produce byte-identical bundles.  ``repro obs render`` turns a bundle back
into the familiar timeline/swimlane views and can extract the causal chain
of a single multicast span (attach → token hops → delivery).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Iterable

from repro.metrics.trace import TraceEvent, render_swimlanes, render_timeline
from repro.obs.probe import (
    ProbeBus,
    ProbeEvent,
    event_from_record,
    event_record,
    format_event,
)

__all__ = [
    "BUNDLE_SCHEMA",
    "SUPPORTED_SCHEMAS",
    "FlightRecorder",
    "build_bundle",
    "bundle_to_json",
    "dump_bundle",
    "load_bundle",
    "bundle_events",
    "render_bundle",
    "causal_chain",
    "render_chain",
]

#: Bundle format identifier; bump on incompatible layout changes.
#: /2 added the ``alerts`` section (contract-monitor Alert records).
BUNDLE_SCHEMA = "repro.obs.bundle/2"

#: Schemas :func:`load_bundle` accepts.  /1 bundles (pre-monitor) load
#: with an empty ``alerts`` section so downstream readers see one shape.
SUPPORTED_SCHEMAS = ("repro.obs.bundle/1", "repro.obs.bundle/2")

#: Sections every bundle must carry (``alerts`` is backfilled for /1).
_REQUIRED_SECTIONS = (
    "reason",
    "detail",
    "at",
    "nodes",
    "context",
    "events",
    "metrics",
)


class FlightRecorder:
    """Bounded ring of recent probe events, one ring per node.

    Subscribes to a :class:`ProbeBus` and keeps the last ``capacity``
    events of each node.  :meth:`snapshot` returns the union in global
    emission order — exactly what a diagnostic bundle wants at the moment
    of failure.
    """

    def __init__(self, bus: ProbeBus, capacity: int = 512) -> None:
        self.capacity = capacity
        self.events_seen = 0
        self._rings: dict[str, deque[ProbeEvent]] = {}
        self._bus = bus
        bus.subscribe(self._on_event)

    def _on_event(self, event: ProbeEvent) -> None:
        ring = self._rings.get(event.node)
        if ring is None:
            ring = self._rings[event.node] = deque(maxlen=self.capacity)
        ring.append(event)
        self.events_seen += 1

    def close(self) -> None:
        """Detach from the bus (rings keep their contents)."""
        self._bus.unsubscribe(self._on_event)

    def node_events(self, node: str) -> list[ProbeEvent]:
        """This node's retained events, oldest first."""
        return list(self._rings.get(node, ()))

    def snapshot(self) -> list[ProbeEvent]:
        """All retained events across nodes, in global emission order."""
        events: list[ProbeEvent] = []
        for ring in self._rings.values():
            events.extend(ring)
        events.sort(key=lambda e: e.n)
        return events

    @property
    def nodes(self) -> list[str]:
        return sorted(self._rings)


# ----------------------------------------------------------------------
# diagnostic bundles
# ----------------------------------------------------------------------
def build_bundle(
    reason: str,
    *,
    detail: str = "",
    at: float = 0.0,
    events: Iterable[ProbeEvent] = (),
    context: dict | None = None,
    metrics: dict | None = None,
    schedule: dict | None = None,
    alerts: list[dict] | None = None,
) -> dict:
    """Assemble one self-contained diagnostic bundle.

    ``reason`` is the machine-readable failure class (e.g.
    ``"invariant:token-uniqueness"``); ``context`` carries free-form
    deterministic metadata (seed, scenario name, node states); ``alerts``
    are contract-monitor Alert records (``Alert.record()``) fired before
    the bundle was cut — *which contract broke first*.  All keys are
    sorted at dump time, so equal inputs give equal bytes.
    """
    ordered = sorted(events, key=lambda e: e.n)
    nodes = sorted({e.node for e in ordered})
    return {
        "schema": BUNDLE_SCHEMA,
        "reason": reason,
        "detail": detail,
        "at": at,
        "nodes": nodes,
        "context": context if context is not None else {},
        "events": [event_record(e) for e in ordered],
        "metrics": metrics if metrics is not None else {},
        "schedule": schedule,
        "alerts": alerts if alerts is not None else [],
    }


def bundle_to_json(bundle: dict) -> str:
    """Canonical bundle serialization (sorted keys, 2-space indent)."""
    return json.dumps(bundle, sort_keys=True, indent=2) + "\n"


def dump_bundle(bundle: dict, path: str | Path) -> Path:
    """Write the bundle to ``path`` and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(bundle_to_json(bundle))
    return path


def load_bundle(path: str | Path) -> dict:
    """Load and validate a diagnostic bundle.

    Accepts every schema in :data:`SUPPORTED_SCHEMAS`; /1 bundles gain an
    empty ``alerts`` section so downstream readers see one shape.  Every
    failure mode — unreadable file, malformed JSON, foreign or unknown
    schema, missing sections — raises ``ValueError`` naming the path and
    the problem, never a bare ``KeyError``.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ValueError(f"cannot read bundle {path}: {exc}") from exc
    try:
        bundle = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not JSON ({exc.msg})") from exc
    if not isinstance(bundle, dict):
        raise ValueError(
            f"{path} is not a diagnostic bundle (top level is "
            f"{type(bundle).__name__}, expected an object)"
        )
    schema = bundle.get("schema")
    if schema not in SUPPORTED_SCHEMAS:
        raise ValueError(
            f"{path} is not a diagnostic bundle (schema={schema!r}, "
            f"supported: {', '.join(SUPPORTED_SCHEMAS)})"
        )
    missing = [key for key in _REQUIRED_SECTIONS if key not in bundle]
    if missing:
        raise ValueError(
            f"{path}: bundle (schema {schema}) is missing required "
            f"section(s): {', '.join(missing)}"
        )
    if not isinstance(bundle["events"], list):
        raise ValueError(
            f"{path}: bundle 'events' must be a list, got "
            f"{type(bundle['events']).__name__}"
        )
    if schema == "repro.obs.bundle/1":
        bundle.setdefault("alerts", [])
    return bundle


def bundle_events(bundle: dict) -> list[ProbeEvent]:
    """Rehydrate the bundle's probe events (global emission order)."""
    return [event_from_record(r) for r in bundle["events"]]


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _trace_events(
    events: Iterable[ProbeEvent],
    kinds: set[str] | None = None,
    node: str | None = None,
) -> list[TraceEvent]:
    """Adapt probe events to the trace renderers' event shape.

    The probe ``kind`` maps to the trace ``kind`` column and the lazily
    formatted fields become the detail string — formatting happens here,
    at render time, never at the emitting call site.
    """
    out: list[TraceEvent] = []
    for e in events:
        if kinds is not None and e.kind not in kinds:
            continue
        if node is not None and e.node != node:
            continue
        formatted = format_event(e)
        detail = formatted[len(e.kind) :].lstrip()
        out.append(TraceEvent(at=e.at, node=e.node, kind=e.kind, detail=detail))
    return out


def render_bundle(
    bundle: dict,
    *,
    swimlanes: bool = False,
    kinds: set[str] | None = None,
    node: str | None = None,
    limit: int = 60,
) -> str:
    """Render a bundle as the existing timeline or swimlane view."""
    events = bundle_events(bundle)
    traced = _trace_events(events, kinds=kinds, node=node)
    header = (
        f"bundle: {bundle['reason']}"
        + (f" — {bundle['detail']}" if bundle.get("detail") else "")
        + f"  (at {bundle['at']:.4f}s, {len(events)} events)"
    )
    if swimlanes:
        body = render_swimlanes(traced, bundle["nodes"], limit=limit)
    else:
        body = render_timeline(traced, limit=limit)
    alerts = bundle.get("alerts") or []
    if alerts:
        lines = [f"contract alerts ({len(alerts)}):"]
        for a in alerts:
            lines.append(
                f"  [{a['severity']}] {a['rule']} node={a['node']} "
                f"at={a['at']:.3f}s: {a['detail']}"
            )
        return header + "\n" + "\n".join(lines) + "\n" + body
    return header + "\n" + body


# ----------------------------------------------------------------------
# causal chains
# ----------------------------------------------------------------------
def _is_token_ctx(ctx: object) -> bool:
    return isinstance(ctx, tuple) and len(ctx) == 5 and ctx[0] == "tok"


def causal_chain(
    events: Iterable[ProbeEvent], origin: str, msg_no: int
) -> list[ProbeEvent]:
    """The causal chain of one multicast span ``origin#msg_no``.

    Returns, in global emission order: the span's own ``mcast.*`` events
    (attach on the origin, deliveries and confirmation everywhere) plus
    every token movement that carried it between first attach and last
    delivery — ``transport.tx`` hops whose trace context shows piggybacked
    messages, ``token.accept`` on the receiving side, and any
    regeneration/merge the token's lineage went through in that window.
    """
    ordered = sorted(events, key=lambda e: e.n)
    span = [
        e
        for e in ordered
        if e.kind.startswith("mcast.") and e.args[0] == origin and e.args[1] == msg_no
    ]
    if not span:
        return []
    start, end = span[0].n, span[-1].n
    chain: list[ProbeEvent] = []
    for e in ordered:
        if e.n < start or e.n > end:
            continue
        if e in span:
            chain.append(e)
        elif e.kind == "token.accept" and e.args[3] > 0:
            chain.append(e)
        elif e.kind in ("token.regen", "token.merge"):
            chain.append(e)
        elif e.kind == "transport.tx" and _is_token_ctx(e.args[4]) and e.args[4][3] > 0:
            chain.append(e)
    return chain


def render_chain(events: Iterable[ProbeEvent], origin: str, msg_no: int) -> str:
    """Human-readable causal chain for the span ``origin#msg_no``."""
    chain = causal_chain(events, origin, msg_no)
    if not chain:
        return f"span {origin}#{msg_no}: no events"
    lines = [f"span {origin}#{msg_no}: {len(chain)} events"]
    for e in chain:
        lines.append(f"{e.at:>9.4f}s  {e.node:<4} {format_event(e)}")
    return "\n".join(lines)
