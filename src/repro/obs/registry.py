"""Metrics registry: counters, gauges and histograms over sim time.

Unifies the ad-hoc per-node counters of :class:`~repro.net.stats.NodeStats`
(which stay as the hot-path increment sites) with probe-derived metrics in
one registry with a stable JSON/JSONL export.  Histograms keep a bounded
deque of ``(sim_time, value)`` samples, so summaries can be computed over a
trailing virtual-time window — "multicasts per hop over the last 2 virtual
seconds" — not just since process start.

Everything here is cold-path: the registry is fed by probe-bus events and
by explicit snapshots, never by per-packet protocol code.
"""

from __future__ import annotations

import json
from collections import deque
from typing import TYPE_CHECKING, Iterable

from repro.obs.probe import ProbeBus, ProbeEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.stats import StatsRegistry

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "ProbeMetrics"]


class Counter:
    """Monotonic per-(node, name) event count."""

    __slots__ = ("node", "name", "value")

    def __init__(self, node: str, name: str) -> None:
        self.node = node
        self.name = name
        self.value = 0

    def inc(self, delta: int = 1) -> None:
        self.value += delta


class Gauge:
    """Last-write-wins sampled value (e.g. a NodeStats snapshot)."""

    __slots__ = ("node", "name", "value")

    def __init__(self, node: str, name: str) -> None:
        self.node = node
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Value distribution with running totals and a sim-time sample window.

    Running aggregates (count/total/min/max) cover the histogram's whole
    life; the bounded ``samples`` deque of ``(at, value)`` pairs supports
    windowed summaries (``since=``) and percentiles over recent history.
    """

    __slots__ = ("node", "name", "count", "total", "min", "max", "samples")

    def __init__(self, node: str, name: str, window: int = 1024) -> None:
        self.node = node
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.samples: deque[tuple[float, float]] = deque(maxlen=window)

    def observe(self, at: float, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.samples.append((at, value))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def window_values(self, since: float | None = None) -> list[float]:
        """Sampled values with ``at >= since`` (all retained when None)."""
        if since is None:
            return [v for _, v in self.samples]
        return [v for at, v in self.samples if at >= since]

    def percentile(self, q: float, since: float | None = None) -> float:
        """Nearest-rank percentile (``q`` in [0, 1]) over the window."""
        values = sorted(self.window_values(since))
        if not values:
            return 0.0
        rank = min(len(values) - 1, max(0, int(q * len(values))))
        return values[rank]

    def summary(self, since: float | None = None) -> dict[str, float | int]:
        """Stable summary dict: lifetime aggregates + windowed percentiles."""
        window = self.window_values(since)
        out: dict[str, float | int] = {
            "count": self.count,
            "total": round(self.total, 9),
            "mean": round(self.mean, 9),
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "window_count": len(window),
        }
        if window:
            ordered = sorted(window)
            out["p50"] = ordered[min(len(ordered) - 1, int(0.50 * len(ordered)))]
            out["p95"] = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
        return out


class MetricsRegistry:
    """All counters/gauges/histograms of one simulation, keyed (node, name).

    The pseudo-node ``"*"`` is conventional for cluster-wide series.
    Export order is fully sorted, so one seed yields one byte stream.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, str], Counter] = {}
        self._gauges: dict[tuple[str, str], Gauge] = {}
        self._histograms: dict[tuple[str, str], Histogram] = {}

    # -- accessors (create on first use) --------------------------------
    def counter(self, node: str, name: str) -> Counter:
        key = (node, name)
        got = self._counters.get(key)
        if got is None:
            got = self._counters[key] = Counter(node, name)
        return got

    def gauge(self, node: str, name: str) -> Gauge:
        key = (node, name)
        got = self._gauges.get(key)
        if got is None:
            got = self._gauges[key] = Gauge(node, name)
        return got

    def histogram(self, node: str, name: str, window: int = 1024) -> Histogram:
        key = (node, name)
        got = self._histograms.get(key)
        if got is None:
            got = self._histograms[key] = Histogram(node, name, window)
        return got

    # -- ingest ----------------------------------------------------------
    def capture_node_stats(self, stats: "StatsRegistry") -> None:
        """Snapshot every :class:`~repro.net.stats.NodeStats` counter into
        gauges (``stats.<counter>``), unifying the hot-path accounting with
        the probe-derived series in one export."""
        for s in stats:
            for attr in (
                "packets_sent",
                "packets_received",
                "bytes_sent",
                "bytes_received",
                "task_switches",
                "messages_multicast",
                "messages_delivered",
            ):
                self.gauge(s.node_id, f"stats.{attr}").set(getattr(s, attr))

    # -- export ----------------------------------------------------------
    def to_dict(self, since: float | None = None) -> dict:
        """Nested ``{node: {name: value}}`` maps, keys fully sorted."""
        counters: dict[str, dict[str, int]] = {}
        for (node, name), c in sorted(self._counters.items()):
            counters.setdefault(node, {})[name] = c.value
        gauges: dict[str, dict[str, float]] = {}
        for (node, name), g in sorted(self._gauges.items()):
            gauges.setdefault(node, {})[name] = g.value
        histograms: dict[str, dict[str, dict]] = {}
        for (node, name), h in sorted(self._histograms.items()):
            histograms.setdefault(node, {})[name] = h.summary(since)
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def to_jsonl(self, since: float | None = None) -> str:
        """One ``{"node":..,"metric":..,...}`` object per line, sorted."""
        lines: list[str] = []
        for (node, name), c in sorted(self._counters.items()):
            lines.append(_line("counter", node, name, c.value))
        for (node, name), g in sorted(self._gauges.items()):
            lines.append(_line("gauge", node, name, g.value))
        for (node, name), h in sorted(self._histograms.items()):
            lines.append(_line("histogram", node, name, h.summary(since)))
        return "\n".join(lines)


def _line(kind: str, node: str, name: str, value: object) -> str:
    return json.dumps(
        {"type": kind, "node": node, "metric": name, "value": value},
        sort_keys=True,
        separators=(",", ":"),
    )


class ProbeMetrics:
    """Bus subscriber deriving standard metrics from the probe stream.

    Per node: one ``probe.<kind>`` counter per event kind, plus histograms
    for the series the paper's arguments are made of — token inter-arrival
    (the wakeup rate L, §4.1), piggybacked messages per hop (the multicast
    batching), and datagram sizes (the byte overhead).
    """

    def __init__(self, bus: ProbeBus, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._last_accept: dict[str, float] = {}
        bus.subscribe(self._on_event)

    def _on_event(self, event: ProbeEvent) -> None:
        reg = self.registry
        reg.counter(event.node, f"probe.{event.kind}").value += 1
        kind = event.kind
        if kind == "token.accept":
            last = self._last_accept.get(event.node)
            if last is not None:
                reg.histogram(event.node, "token.interarrival").observe(
                    event.at, event.at - last
                )
            self._last_accept[event.node] = event.at
            reg.histogram(event.node, "token.msgs_per_hop").observe(
                event.at, event.args[3]
            )
        elif kind == "net.send":
            reg.histogram(event.node, "net.sent_bytes").observe(
                event.at, event.args[3]
            )
        elif kind == "mcast.attach":
            reg.histogram(event.node, "mcast.payload_bytes").observe(
                event.at, event.args[3]
            )


def iter_sorted(events: Iterable[ProbeEvent]) -> list[ProbeEvent]:
    """Events in global emission order (the bus ordinal)."""
    return sorted(events, key=lambda e: e.n)
