"""Span/episode reconstruction: fold the probe stream into typed latency
spans matching the paper's narrative.

The deterministic probe stream is an interleaved firehose of point events;
the paper's claims are about *intervals*: a token circulates one lap in
``n * hop_interval``, a crashed member is detected within 0.15 s and the
ring regenerates via 911, a token-bucket merge heals a partition, a
rejoining replica descends the resync ladder.  :func:`reconstruct_spans`
rebuilds those intervals as typed :class:`Span` values:

``token.lap``
    One full circulation observed at a node: consecutive ``token.accept``
    events at the same node.
``episode.911``
    One failure-recovery episode per accused victim: from the victim's
    ``node.shutdown``/down-transition (failure instant) through the
    ``fd.fire`` verdict, any ``token.regen`` it entailed (a crashed token
    holder regenerates via starvation *before* failure-on-delivery names
    the victim), to the first ``view.change`` excluding the victim and
    the next ``token.accept`` (ring stable again).  Attrs decompose the
    latency: ``detect`` is the fd.arm→fd.fire verdict latency — exactly
    the monitor's fd-latency pairing and the paper's 0.15 s bound —
    ``regen`` and ``stabilize`` cover recovery.  Regenerations with no
    accused victim (pure token loss) become victimless episodes.
``merge.tbm``
    One token-bucket merge window around a ``token.merge``: from the last
    pre-merge ``view.change`` at the merging node to the first post-merge
    one.
``resync.ladder``
    One resync descent per (peer, contiguous activity): counts delta
    rounds, snapshot fallbacks and quarantines, recording the deepest
    rung reached.

Everything here is a pure fold over sim-time-stamped events — no wall
clock, no randomness — so timelines are as deterministic as the stream
itself, and :meth:`SpanTimeline.to_records` exports are diffable with
``repro obs diff`` like any other probe export.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.obs.probe import ProbeEvent

__all__ = [
    "DEFAULT_BOUNDS",
    "Span",
    "SpanTimeline",
    "reconstruct_spans",
]

#: Default contract bounds for SpanTimeline.check(): the paper's 0.15 s
#: failure-detection requirement, checked per 911 episode.
DEFAULT_BOUNDS: dict[str, float] = {"episode.911.detect": 0.15}


@dataclass(frozen=True, slots=True)
class Span:
    """One typed interval reconstructed from the probe stream.

    ``attrs`` is a sorted tuple of (name, value) pairs so spans are
    hashable and render deterministically.
    """

    kind: str
    node: str
    start: float
    end: float
    attrs: tuple[tuple[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def get(self, name: str, default: Any = None) -> Any:
        for key, value in self.attrs:
            if key == name:
                return value
        return default


def _attrs(**kwargs: Any) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted((k, v) for k, v in kwargs.items() if v is not None))


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted values (deterministic)."""
    if not sorted_values:
        return 0.0
    exact = q * len(sorted_values)
    rank = int(exact)
    if rank < exact:
        rank += 1
    return sorted_values[max(0, min(len(sorted_values), max(1, rank)) - 1)]


class SpanTimeline:
    """An ordered collection of reconstructed spans with summary queries."""

    __slots__ = ("spans",)

    def __init__(self, spans: list[Span]) -> None:
        self.spans = sorted(
            spans, key=lambda s: (s.start, s.end, s.node, s.kind)
        )

    def of_kind(self, kind: str) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]

    def kinds(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for s in self.spans:
            counts[s.kind] = counts.get(s.kind, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-kind duration stats: count, p50, p95, max (seconds)."""
        by_kind: dict[str, list[float]] = {}
        for s in self.spans:
            by_kind.setdefault(s.kind, []).append(s.duration)
        out: dict[str, dict[str, float]] = {}
        for kind in sorted(by_kind):
            durations = sorted(by_kind[kind])
            out[kind] = {
                "count": float(len(durations)),
                "p50": _percentile(durations, 0.50),
                "p95": _percentile(durations, 0.95),
                "max": durations[-1],
            }
        return out

    def check(
        self,
        bounds: dict[str, float] | None = None,
        tolerance: float = 0.10,
    ) -> list[str]:
        """Check contract bounds; returns human-readable breach strings.

        Bound keys: ``episode.911.detect`` (per-episode fd verdict
        latency, checked at ``bound * (1 + tolerance)`` exactly like the
        monitor's fd-latency rule) and ``<kind>.p95`` / ``<kind>.max``
        (duration percentiles per kind, checked without tolerance).
        """
        bounds = DEFAULT_BOUNDS if bounds is None else bounds
        breaches: list[str] = []
        summary = self.summary()
        for key in sorted(bounds):
            bound = bounds[key]
            if key == "episode.911.detect":
                limit = bound * (1.0 + tolerance)
                for s in self.of_kind("episode.911"):
                    detect = s.get("detect")
                    if detect is None:
                        if s.get("victim") is None or s.get("via") != "fd":
                            # Pure token loss, or starvation detection (a
                            # dead holder is never accused): no fd verdict.
                            continue
                        breaches.append(
                            f"episode.911 at t={s.start:.6f} "
                            f"(victim={s.get('victim')}): detection latency "
                            f"unattributable (no matching fd.arm)"
                        )
                    elif detect > limit:
                        breaches.append(
                            f"episode.911 at t={s.start:.6f} "
                            f"(victim={s.get('victim')}): detect "
                            f"{detect:.6f}s > bound {bound}s (+{tolerance:.0%})"
                        )
                continue
            kind, _, metric = key.rpartition(".")
            stats = summary.get(kind)
            if stats is None or metric not in stats:
                continue
            if stats[metric] > bound:
                breaches.append(
                    f"{kind}: {metric} {stats[metric]:.6f}s > bound {bound}s"
                )
        return breaches

    def to_records(self) -> list[dict[str, Any]]:
        """Probe-record-shaped dicts: loadable by ``repro obs diff``."""
        records = []
        for i, s in enumerate(self.spans):
            flat: list[Any] = [round(s.end, 9), round(s.duration, 9)]
            for key, value in s.attrs:
                flat.append(key)
                flat.append(
                    round(value, 9) if isinstance(value, float) else value
                )
            records.append(
                {
                    "n": i + 1,
                    "at": round(s.start, 9),
                    "node": s.node,
                    "kind": f"span.{s.kind}",
                    "args": flat,
                }
            )
        return records

    def render(self, limit: int = 40, kind: str | None = None) -> str:
        """Timeline view: header, per-kind stats, then the span rows."""
        spans = self.spans if kind is None else self.of_kind(kind)
        counts = self.kinds()
        lines = [
            f"spans: {len(self.spans)} ("
            + " ".join(f"{k}={c}" for k, c in counts.items())
            + ")"
        ]
        for k, stats in self.summary().items():
            lines.append(
                f"  {k}: n={int(stats['count'])} p50={stats['p50']:.6f}s "
                f"p95={stats['p95']:.6f}s max={stats['max']:.6f}s"
            )
        shown = spans[:limit] if limit else spans
        if shown:
            lines.append(f"{'start':>12}  {'dur':>10}  {'kind':<14} node  detail")
        for s in shown:
            detail = " ".join(
                f"{k}={v:.6f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in s.attrs
            )
            lines.append(
                f"{s.start:>12.6f}  {s.duration:>10.6f}  {s.kind:<14} "
                f"{s.node}  {detail}"
            )
        if limit and len(spans) > limit:
            lines.append(f"... {len(spans) - limit} more spans (raise --limit)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# reconstruction
# ----------------------------------------------------------------------
def _token_laps(events: list[ProbeEvent]) -> list[Span]:
    last_accept: dict[str, float] = {}
    spans: list[Span] = []
    for e in events:
        if e.kind != "token.accept":
            continue
        last = last_accept.get(e.node)
        if last is not None:
            spans.append(
                Span(
                    kind="token.lap",
                    node=e.node,
                    start=last,
                    end=e.at,
                    attrs=_attrs(gen=e.args[1], seq=e.args[2]),
                )
            )
        last_accept[e.node] = e.at
    return spans


def _down_times(events: list[ProbeEvent]) -> dict[str, list[float]]:
    """Per-node instants where the node observably went down."""
    downs: dict[str, list[float]] = {}
    for e in events:
        if e.kind == "node.shutdown" or (
            e.kind == "node.state" and e.args[1] == "down"
        ):
            downs.setdefault(e.node, []).append(e.at)
    return downs


def _episodes(events: list[ProbeEvent]) -> list[Span]:
    downs = _down_times(events)
    fires = [e for e in events if e.kind == "fd.fire"]
    regens = [e for e in events if e.kind == "token.regen"]
    views = [e for e in events if e.kind == "view.change"]
    accepts = [e for e in events if e.kind == "token.accept"]

    def stable_after(at: float, victim: object) -> tuple[float | None, float]:
        """(end-of-episode accept time, stable-view time) after ``at``."""
        stable_view = None
        for v in views:
            if v.at < at:
                continue
            members = v.args[1]
            if not isinstance(members, tuple) or victim not in members:
                stable_view = v
                break
        floor = stable_view.at if stable_view is not None else at
        for a in accepts:
            if a.at > floor:
                return a.at, floor
        return None, floor

    spans: list[Span] = []
    used_regens: set[int] = set()
    episode_end: dict[object, float] = {}
    for fire in fires:
        victim, seq = fire.args
        # One episode per victim removal: further accusations of the same
        # victim before the ring restabilized are the same episode.
        if fire.at <= episode_end.get(victim, -1.0):
            continue

        # Detection latency: the monitor's arm -> verdict pairing.  The
        # fd.arm for this (peer, seq) was recorded above (last arm wins
        # among re-arms, identical to check_fd_latency).
        armed_at = None
        for e in events:
            if (
                e.kind == "fd.arm"
                and e.args[0] == victim
                and e.args[1] == seq
                and e.at <= fire.at
            ):
                armed_at = e.at
        # Failure instant: the victim's last observable down transition.
        failure_at = None
        for at in reversed(downs.get(victim, [])):  # type: ignore[arg-type]
            if at <= fire.at:
                failure_at = at
                break

        start = failure_at if failure_at is not None else (
            armed_at if armed_at is not None else fire.at
        )
        # A 911 regeneration belongs to this episode if it happened after
        # the failure instant (holder crash: starvation regenerates the
        # token *before* failure-on-delivery accuses the victim).
        regen = None
        for i, r in enumerate(regens):
            if i in used_regens or r.at < start:
                continue
            regen = r
            used_regens.add(i)
            break

        end_at, stable_at = stable_after(fire.at, victim)
        end = end_at if end_at is not None else max(stable_at, fire.at)
        episode_end[victim] = end
        spans.append(
            Span(
                kind="episode.911",
                node=regen.node if regen is not None else fire.node,
                start=start,
                end=max(end, start),
                attrs=_attrs(
                    victim=victim,
                    via="fd",
                    detect=(fire.at - armed_at)
                    if armed_at is not None
                    else None,
                    gen=regen.args[0] if regen is not None else None,
                    parent=regen.args[1] if regen is not None else None,
                    regen=(regen.at - start) if regen is not None else None,
                    stabilize=max(end - fire.at, 0.0),
                ),
            )
        )
    # Regenerations not tied to any fd verdict: starvation detection (a
    # crashed token *holder* cannot be accused — the token died with it —
    # so the hungry timeout finds the loss) or a pure token-loss fault.
    # Infer victims from the membership delta across the regeneration.
    for i, r in enumerate(regens):
        if i in used_regens:
            continue
        gen, parent, _seq = r.args
        before: tuple | None = None
        after: tuple | None = None
        for v in views:
            members = v.args[1]
            if not isinstance(members, tuple):
                continue
            if v.at < r.at:
                before = members
            elif after is None:
                after = members
        victim = None
        if before is not None and after is not None:
            lost = sorted(set(before) - set(after))
            if len(lost) == 1:
                victim = lost[0]
        failure_at = None
        if victim is not None:
            for at in reversed(downs.get(victim, [])):
                if at <= r.at:
                    failure_at = at
                    break
        start = failure_at if failure_at is not None else r.at
        end_at, stable_at = stable_after(r.at, victim)
        end = end_at if end_at is not None else r.at
        spans.append(
            Span(
                kind="episode.911",
                node=r.node,
                start=start,
                end=max(end, start),
                attrs=_attrs(
                    victim=victim,
                    via="starvation",
                    gen=gen,
                    parent=parent,
                    regen=(r.at - start) if failure_at is not None else None,
                    stabilize=max(end - r.at, 0.0),
                ),
            )
        )
    return spans


def _merge_windows(events: list[ProbeEvent]) -> list[Span]:
    views_by_node: dict[str, list[float]] = {}
    for e in events:
        if e.kind == "view.change":
            views_by_node.setdefault(e.node, []).append(e.at)
    spans: list[Span] = []
    for e in events:
        if e.kind != "token.merge":
            continue
        gen, left, right, _seq = e.args
        node_views = views_by_node.get(e.node, [])
        start = e.at
        for at in reversed(node_views):
            if at <= e.at:
                start = at
                break
        end = e.at
        for at in node_views:
            if at > e.at:
                end = at
                break
        spans.append(
            Span(
                kind="merge.tbm",
                node=e.node,
                start=start,
                end=max(end, start),
                attrs=_attrs(gen=gen, left=left, right=right),
            )
        )
    return spans


#: Resync rung depths: the ladder descends delta -> snapshot -> quarantine.
_RESYNC_DEPTH = {"delta": 1, "snapshot": 2, "quarantine": 3}


def _resync_ladders(events: list[ProbeEvent]) -> list[Span]:
    # Group resync activity per peer; a gap larger than _GAP closes the
    # descent (a later resync of the same peer is a new span).
    _GAP = 5.0
    open_spans: dict[str, dict[str, Any]] = {}
    spans: list[Span] = []

    def close(peer: str) -> None:
        st = open_spans.pop(peer)
        deepest = max(st["rungs"], key=lambda r: _RESYNC_DEPTH[r])
        spans.append(
            Span(
                kind="resync.ladder",
                node=peer,
                start=st["start"],
                end=st["end"],
                attrs=_attrs(
                    deltas=st["deltas"],
                    snapshots=st["snapshots"],
                    quarantines=st["quarantines"],
                    deepest=deepest,
                ),
            )
        )

    for e in events:
        if e.kind == "resync.delta":
            peer, rung = e.args[1], "delta"
        elif e.kind == "resync.snapshot_fallback":
            peer, rung = e.args[1], "snapshot"
        elif e.kind == "resync.quarantine":
            peer, rung = e.args[0], "quarantine"
        else:
            continue
        st = open_spans.get(peer)  # type: ignore[arg-type]
        if st is not None and e.at - st["end"] > _GAP:
            close(peer)  # type: ignore[arg-type]
            st = None
        if st is None:
            st = open_spans[peer] = {  # type: ignore[index]
                "start": e.at,
                "end": e.at,
                "deltas": 0,
                "snapshots": 0,
                "quarantines": 0,
                "rungs": set(),
            }
        st["end"] = e.at
        st["rungs"].add(rung)
        st[rung + "s"] += 1
    for peer in sorted(open_spans):
        close(peer)
    return spans


def reconstruct_spans(events: Iterable[ProbeEvent]) -> SpanTimeline:
    """Fold a probe stream (any source: sim, sharded merge, real UDP) into
    a :class:`SpanTimeline`.  Events are sorted by ``(at, n)`` first, so
    unsorted inputs are fine."""
    ordered = sorted(events, key=lambda e: (e.at, e.n))
    spans = (
        _token_laps(ordered)
        + _episodes(ordered)
        + _merge_windows(ordered)
        + _resync_ladders(ordered)
    )
    return SpanTimeline(spans)
