"""Contract monitor: a live SLO rules engine over the probe bus.

The paper's pitch is a *quantitative overhead contract*: with the token at
L roundtrips/s each node pays L group-communication wakeups per second
(§4.1), a bounded bandwidth share, and failure detection inside a fixed
window (§2.2/§3.2).  :mod:`repro.obs` made every layer emit probes; this
module *watches* them while a run executes and turns a degraded cluster —
token-rate collapse, wakeup inflation, detection-bound overruns, ring
stalls — into structured :class:`Alert` records the moment the bound
breaks, instead of a post-mortem over exported streams.

Design rules:

* **Deterministic and sim-time driven.**  The monitor ticks on the event
  loop (``call_later``), windows are trailing *virtual*-time intervals,
  and rule evaluation is a pure function of the events in the window —
  two runs with one seed fire byte-identical alerts.
* **Injectable clock.**  The monitor itself never names a time source: it
  reads ``now``/``call_later`` from whatever clock it was handed — the
  simulator's virtual loop by default (``bus.loop``), or a wall-clock
  adapter when watching a real multi-process cluster
  (:mod:`repro.runtime.collector`, docs/TELEMETRY.md).  In wall-clock
  mode events arrive via :meth:`ContractMonitor.ingest` after the
  collector's watermark merge, so windows still see a time-ordered feed.
* **Declarative rules.**  A :class:`RuleSpec` is data: window, severity,
  for-duration, JSON-safe params, plus a registered pure check function.
  The paper-contract rule set is built by :func:`paper_contract_rules`
  from a :class:`~repro.core.config.RaincoreConfig`, so the bounds being
  enforced are the ones the cluster was actually provisioned with.
* **Pure rule functions** (raincheck RC403): a check decorated with
  :func:`contract_rule` may consult only its :class:`RuleWindow` — no
  wall clock, no ambient state, no mutation.  Derived facts a rule needs
  beyond raw events (continuous uptime, current view size) are computed
  deterministically by the monitor and passed *in* the window.
* **Read-only.**  The monitor never emits probes and never touches
  protocol state; attaching it cannot change a run (the
  ``monitor_overhead_ratio`` benchmark gates its cost).

``repro watch`` renders the monitor's rolling status as a plain-text,
redraw-free feed (CI-safe); chaos bundles carry fired alerts in their
``alerts`` section (schema ``repro.obs.bundle/2``), so every failure
artifact says which contract broke first.  Full walkthroughs live in
docs/MONITORING.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.obs.probe import ProbeBus, ProbeEvent
from repro.spec.protocol import LIFECYCLE as _SPEC_LIFECYCLE_PAIRS

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import RaincoreConfig

__all__ = [
    "Alert",
    "Breach",
    "RuleSpec",
    "RuleWindow",
    "ContractMonitor",
    "CONTRACT_RULES",
    "contract_rule",
    "paper_contract_rules",
    "realtime_contract_rules",
    "render_alerts",
]

#: Node states (``node.state`` probes) in which a node is a ring member
#: owed token visits.  STARVING counts: it is the distress state a stalled
#: ring produces, and excluding it would blind the monitor to exactly the
#: collapse it exists to catch.  JOINING/DOWN nodes are not yet owed
#: anything, so their windows reset.
_UP_STATES = frozenset({"hungry", "eating", "starving"})


@dataclass(frozen=True)
class RuleWindow:
    """Everything a rule function may look at — its *entire* world.

    ``events`` is the trailing window of probe events, already filtered
    to the rule's scope (one node's events for node-scope rules, every
    node's for cluster scope), in global emission order.  ``uptime`` and
    ``view_size`` are derived deterministically from the probe stream by
    the monitor so rules stay pure functions of their inputs.
    """

    start: float  #: window start (sim time)
    end: float  #: evaluation instant (sim time)
    node: str  #: node under evaluation, or ``"*"`` for cluster scope
    events: tuple[ProbeEvent, ...]
    #: seconds the node has been continuously up (member states) at ``end``;
    #: for cluster scope, the longest such uptime over all nodes.
    uptime: float
    #: current membership-view size at ``end`` (from ``view.change``).
    view_size: int
    params: Mapping[str, float]

    def kinds(self, kind: str) -> list[ProbeEvent]:
        """The window's events of one probe kind, in emission order."""
        return [e for e in self.events if e.kind == kind]

    @property
    def span(self) -> float:
        return self.end - self.start


#: A rule check's verdict: ``None`` when healthy, else (value, bound,
#: detail) — the measured quantity, the bound it broke, and a short
#: human-readable explanation rendered into the Alert.
Breach = tuple[float, float, str]

#: name -> registered pure check function (populated by @contract_rule).
CONTRACT_RULES: dict[str, Callable[[RuleWindow], Breach | None]] = {}


def contract_rule(name: str):
    """Register a pure rule check under ``name`` (decorator).

    Functions registered here are statically held to the purity contract
    by raincheck RC403: no wall clock, no ambient state, no mutation —
    the :class:`RuleWindow` argument is the entire accessible world.
    """

    def deco(fn: Callable[[RuleWindow], Breach | None]):
        CONTRACT_RULES[name] = fn
        return fn

    return deco


@dataclass(frozen=True)
class RuleSpec:
    """One declarative SLO rule: which check, over what window, how strict.

    ``for_duration`` debounces: the check must report a breach at every
    tick for that long before an alert fires, so one slow hop does not
    page.  ``params`` are JSON-safe numbers baked into the spec (bounds,
    tolerances) — they ride along into the alert record so an artifact
    is self-describing.
    """

    name: str  #: registered check name (key into CONTRACT_RULES)
    summary: str
    window: float  #: trailing virtual seconds the check looks at
    severity: str = "critical"  #: "warning" | "critical"
    for_duration: float = 0.0  #: continuous-breach seconds before alerting
    scope: str = "node"  #: "node" | "cluster"
    params: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in CONTRACT_RULES:
            raise ValueError(f"unknown contract rule {self.name!r}")
        if self.window <= 0.0:
            raise ValueError("window must be positive")
        if self.severity not in ("warning", "critical"):
            raise ValueError(f"severity must be warning|critical, not {self.severity!r}")
        if self.scope not in ("node", "cluster"):
            raise ValueError(f"scope must be node|cluster, not {self.scope!r}")


@dataclass(frozen=True)
class Alert:
    """One fired contract violation — the structured answer to "which
    bound broke, where, and when"."""

    rule: str
    severity: str
    node: str  #: node id, or ``"*"`` for cluster-scope rules
    at: float  #: sim time the alert fired (breach sustained for_duration)
    since: float  #: sim time the continuous breach began
    value: float  #: measured quantity at fire time
    bound: float  #: the bound it violated
    detail: str

    def record(self) -> dict:
        """JSON-safe, key-stable record (bundled into ``alerts``)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "node": self.node,
            "at": round(self.at, 9),
            "since": round(self.since, 9),
            "value": round(self.value, 9),
            "bound": round(self.bound, 9),
            "detail": self.detail,
        }

    def describe(self) -> str:
        return (
            f"[{self.severity}] {self.rule} node={self.node} "
            f"at={self.at:.3f}s (since {self.since:.3f}s): {self.detail}"
        )


def alert_from_record(record: dict) -> Alert:
    """Rebuild an :class:`Alert` from :meth:`Alert.record` output."""
    return Alert(
        rule=record["rule"],
        severity=record["severity"],
        node=record["node"],
        at=record["at"],
        since=record["since"],
        value=record["value"],
        bound=record["bound"],
        detail=record["detail"],
    )


# ----------------------------------------------------------------------
# the built-in paper-contract checks (pure functions of the window)
# ----------------------------------------------------------------------
@contract_rule("token-rate")
def check_token_rate(w: RuleWindow) -> Breach | None:
    """Token visit rate within tolerance of the configured L (§2.2/§4.1).

    With the ring at its current view size N and a hop interval h, each
    member should see ``token.accept`` about every N*h seconds — the
    roundtrip rate L = 1/(N*h).  A collapse (delay spikes, heavy loss,
    a wedged predecessor) shows up as observed visits/s far below L.
    """
    if w.uptime < w.span:  # joining/rebooting nodes get a full window first
        return None
    if w.kinds("view.change"):
        # Reconfiguration window: visits earned under the old view would
        # be judged against the new view's L.  Rates resume one full
        # window after the membership settles.
        return None
    hop = w.params["hop_interval"]
    tolerance = w.params["tolerance"]
    expected = 1.0 / (max(1, w.view_size) * hop)
    floor = expected * (1.0 - tolerance)
    observed = len(w.kinds("token.accept")) / w.span
    if observed < floor:
        return (
            observed,
            floor,
            f"token visits {observed:.1f}/s < {floor:.1f}/s "
            f"(L={expected:.1f}/s for view of {w.view_size}, "
            f"tolerance {tolerance:.0%})",
        )
    return None


@contract_rule("wakeup-budget")
def check_wakeup_budget(w: RuleWindow) -> Breach | None:
    """GC task wakeups per second stay within L·(1+ε) (paper §4.1).

    The paper's CPU argument: token-ring group communication costs each
    node L wakeups/s, against M·N for broadcast emulation and up to
    6·M·N for 2PC.  ``min_rate`` (default 0) arms the other direction —
    a floor, for asserting that :mod:`repro.baselines` adapters really
    do pay their higher wakeup bill.
    """
    if w.uptime < w.span:
        return None
    if w.kinds("view.change"):
        return None  # mixed-regime window (see check_token_rate)
    hop = w.params["hop_interval"]
    epsilon = w.params["epsilon"]
    slack = w.params["slack"]
    expected = 1.0 / (max(1, w.view_size) * hop)
    ceiling = expected * (1.0 + epsilon) + slack
    observed = len(w.kinds("core.wakeup")) / w.span
    if observed > ceiling:
        return (
            observed,
            ceiling,
            f"{observed:.1f} wakeups/s > {ceiling:.1f}/s "
            f"(L={expected:.1f}/s for view of {w.view_size}, ε={epsilon:g})",
        )
    floor = w.params.get("min_rate", 0.0)
    if floor > 0.0 and observed < floor:
        return (
            observed,
            floor,
            f"{observed:.1f} wakeups/s < configured floor {floor:.1f}/s",
        )
    return None


@contract_rule("fd-latency")
def check_fd_latency(w: RuleWindow) -> Breach | None:
    """Failure detection fires within the transport bound (§2.2, §3.2).

    Pairs each detector *verdict* — ``fd.fire`` (peer accused) or
    ``fd.false_alarm`` (ring had moved on) — with its ``fd.arm`` for the
    same (peer, seq) and demands arm→verdict latency within the
    configured detection bound (the paper's 0.15 s on a single route).
    An ack blackout stretches detection past the bound: data flows, acks
    do not, so the sender exhausts every retry before reaching a verdict.
    """
    bound = w.params["bound"]
    tolerance = w.params["tolerance"]
    limit = bound * (1.0 + tolerance)
    armed: dict[tuple[object, object], float] = {}
    worst: tuple[float, ProbeEvent] | None = None
    for e in w.events:
        if e.kind == "fd.arm":
            armed[(e.args[0], e.args[1])] = e.at
        elif e.kind in ("fd.fire", "fd.false_alarm"):
            at_armed = armed.pop((e.args[0], e.args[1]), None)
            if at_armed is None:
                continue
            latency = e.at - at_armed
            if worst is None or latency > worst[0]:
                worst = (latency, e)
    if worst is not None and worst[0] > limit:
        latency, e = worst
        return (
            latency,
            limit,
            f"failure-on-delivery verdict ({e.kind}) for peer {e.args[0]} "
            f"took {latency:.3f}s > {limit:.3f}s detection bound",
        )
    return None


@contract_rule("bandwidth-share")
def check_bandwidth_share(w: RuleWindow) -> Breach | None:
    """Per-node send bandwidth stays inside its provisioned share (§4.1).

    The token's wire size is flow-controlled to ``max_token_bytes``, and
    a member forwards it once per visit — so sent bytes/s stay within
    budget ≈ token_budget · visits/s plus a fixed allowance for acks,
    beacons and recovery chatter.
    """
    if w.uptime < w.span:
        return None
    budget = w.params["budget"]
    sent = 0.0
    for e in w.kinds("net.send"):
        sent += e.args[3]
    rate = sent / w.span
    if rate > budget:
        return (
            rate,
            budget,
            f"sending {rate / 1e3:.1f} kB/s > budgeted share {budget / 1e3:.1f} kB/s",
        )
    return None


@contract_rule("buffer-bound")
def check_buffer_bound(w: RuleWindow) -> Breach | None:
    """Every bounded buffer stays inside its budget (docs/RESYNC.md).

    The resync layer emits ``resync.buffer`` level samples (component,
    bytes, budget) whenever a bounded buffer changes.  The budget rides
    in the event itself, so one rule covers every component — replica op
    logs, transport retransmit buffers — without per-component config.
    Only the latest sample per component counts: a level that was high
    and has already been pruned back is not a breach.
    """
    latest: dict[object, ProbeEvent] = {}
    for e in w.kinds("resync.buffer"):
        latest[e.args[0]] = e
    worst: Breach | None = None
    for e in latest.values():
        component, level, budget = e.args[0], e.args[1], e.args[2]
        if not isinstance(level, (int, float)) or not isinstance(
            budget, (int, float)
        ):
            continue
        if budget <= 0:  # bound disabled for this component
            continue
        if level > budget and (worst is None or level > worst[0]):
            worst = (
                float(level),
                float(budget),
                f"buffer {component} holds {level} B > budget {budget} B",
            )
    return worst


#: Allowed ``node.state`` probe transitions, derived from the protocol
#: spec's lifecycle table (probe args carry lowercase ``NodeState.value``).
_SPEC_LIFECYCLE: frozenset[tuple[str, str]] = frozenset(
    (src.lower(), dst.lower()) for src, dst in _SPEC_LIFECYCLE_PAIRS
)


@contract_rule("state-transitions")
def check_state_transitions(w: RuleWindow) -> Breach | None:
    """Every observed lifecycle transition is allowed by the spec.

    The spec's lifecycle table (``repro.spec.protocol.LIFECYCLE``) is the
    same data ``repro spec check`` diffs against
    ``repro.core.states.VALID_TRANSITIONS``; this rule closes the loop at
    runtime, so a node driven through an undeclared transition (by a bug
    or a bypassed ``_transition``) raises an alert even though the static
    gates passed.
    """
    worst: Breach | None = None
    illegal = 0
    for e in w.kinds("node.state"):
        old, new = str(e.args[0]), str(e.args[1])
        if (old, new) not in _SPEC_LIFECYCLE:
            illegal += 1
            worst = (
                float(illegal),
                0.0,
                f"lifecycle transition {old}->{new} is not in the protocol "
                "spec",
            )
    return worst


@contract_rule("telemetry-liveness")
def check_telemetry_liveness(w: RuleWindow) -> Breach | None:
    """Every registered probe source keeps shipping (cluster scope).

    The collector emits ``telemetry.silent`` when a source that said
    ``hello`` stops shipping frames — events *and* heartbeat marks — for
    longer than the silence timeout without a clean ``bye``.  On a real
    cluster that is what a killed worker looks like from the telemetry
    plane: the process is gone, so no probe (not even ``node.shutdown``)
    ever arrives.  Any silent source in the window is a breach.
    """
    silents = w.kinds("telemetry.silent")
    if silents:
        e = silents[-1]
        return (
            float(len(silents)),
            0.0,
            f"probe source {e.args[0]} silent for {e.args[1]}s "
            "(no frames, no bye — worker dead or unreachable)",
        )
    return None


@contract_rule("ring-liveness")
def check_ring_liveness(w: RuleWindow) -> Breach | None:
    """The ring is circulating *somewhere* (cluster scope).

    A window long enough to cover HUNGRY timeout plus a 911 round with
    zero ``token.accept`` anywhere — while at least one node has been up
    throughout — means the token is gone and regeneration is not
    happening: the protocol's one unrecoverable degradation.
    """
    if w.uptime < w.span:  # nobody has been up a full window yet
        return None
    accepts = len(w.kinds("token.accept"))
    if accepts == 0:
        return (
            0.0,
            1.0,
            f"no token.accept anywhere for {w.span:.2f}s "
            "(stall: token lost and not regenerated)",
        )
    return None


# ----------------------------------------------------------------------
# the paper-contract rule set
# ----------------------------------------------------------------------
def paper_contract_rules(
    config: "RaincoreConfig",
    n_nodes: int,
    *,
    segments: int = 1,
    rate_tolerance: float = 0.5,
    wakeup_epsilon: float = 1.0,
    wakeup_slack: float = 10.0,
    detection_bound: float | None = None,
    detection_tolerance: float = 0.10,
    bandwidth_budget: float | None = None,
    window: float = 1.0,
    for_duration: float = 0.5,
) -> list[RuleSpec]:
    """The paper's overhead contract as declarative rules, bounds derived
    from the actual cluster provisioning.

    Parameters mirror the paper's claims: ``detection_bound`` defaults to
    the transport's worst case over ``segments`` routes (0.15 s with the
    default single-route transport — the §4.1 number); the wakeup ceiling
    is L·(1+ε) plus a small absolute ``wakeup_slack`` for beacons and
    recovery chatter; the bandwidth budget covers one flow-controlled
    token forward per visit plus an ack/beacon allowance.
    """
    hop = config.hop_interval
    if detection_bound is None:
        detection_bound = config.transport.failure_detection_bound(segments)
    if bandwidth_budget is None:
        visits_per_sec = 1.0 / max(1, n_nodes) / hop * max(1, n_nodes)
        # one token forward per hop interval is the worst case a single
        # node can legally sustain (it forwards only when it holds the
        # token, but a 2-member view visits every 2*hop); budget on the
        # small-view worst case so partitions stay in-contract.
        visits_per_sec = 1.0 / (2.0 * hop)
        bandwidth_budget = (config.max_token_bytes + 4096) * visits_per_sec
    stall_window = max(4.0 * config.hungry_timeout, 2.0)
    return [
        RuleSpec(
            name="token-rate",
            summary="token visit rate within tolerance of configured L",
            window=window,
            severity="critical",
            for_duration=for_duration,
            scope="node",
            params={"hop_interval": hop, "tolerance": rate_tolerance},
        ),
        RuleSpec(
            name="wakeup-budget",
            summary="GC wakeups/node/s within L*(1+eps)",
            window=window,
            severity="warning",
            for_duration=for_duration,
            scope="node",
            params={
                "hop_interval": hop,
                "epsilon": wakeup_epsilon,
                "slack": wakeup_slack,
            },
        ),
        RuleSpec(
            name="fd-latency",
            summary="failure detection within the transport bound",
            window=max(window, 2.0 * detection_bound + 0.5),
            severity="critical",
            for_duration=0.0,  # one overrun is already a contract breach
            scope="node",
            params={"bound": detection_bound, "tolerance": detection_tolerance},
        ),
        RuleSpec(
            name="bandwidth-share",
            summary="per-node send bandwidth within provisioned share",
            window=window,
            severity="warning",
            for_duration=for_duration,
            scope="node",
            params={"budget": bandwidth_budget},
        ),
        RuleSpec(
            name="ring-liveness",
            summary="token circulating somewhere in the cluster",
            window=stall_window,
            severity="critical",
            for_duration=0.0,  # the window itself is the debounce
            scope="cluster",
            params={},
        ),
        RuleSpec(
            name="buffer-bound",
            summary="bounded buffers stay inside their byte budgets",
            window=window,
            severity="critical",
            for_duration=0.0,  # an overrun is a hard-bound violation
            scope="node",
            params={},
        ),
        RuleSpec(
            name="state-transitions",
            summary="node.state transitions stay inside the spec lifecycle",
            window=window,
            severity="critical",
            for_duration=0.0,  # one undeclared transition is a bug
            scope="node",
            params={},
        ),
    ]


def realtime_contract_rules(
    config: "RaincoreConfig",
    n_nodes: int,
    *,
    segments: int = 1,
    silence_timeout: float = 1.0,
    **overrides,
) -> list[RuleSpec]:
    """The paper rule set retuned for a wall-clock multi-process cluster.

    Same bounds, looser tolerances: on real sockets the OS scheduler —
    not the simulator — decides when timers fire, so a loaded CI runner
    legitimately jitters hop timing by tens of percent.  The sim-time
    defaults would page on noise; these defaults page on collapse.  Adds
    the ``telemetry-liveness`` rule, which only makes sense when probes
    cross a process boundary: a silent source is a dead worker.

    Keyword overrides pass straight through to
    :func:`paper_contract_rules` (e.g. ``detection_bound=...``).
    """
    overrides.setdefault("rate_tolerance", 0.7)
    overrides.setdefault("wakeup_epsilon", 2.0)
    overrides.setdefault("wakeup_slack", 30.0)
    overrides.setdefault("detection_tolerance", 1.0)
    overrides.setdefault("window", 1.5)
    overrides.setdefault("for_duration", 1.0)
    rules = paper_contract_rules(config, n_nodes, segments=segments, **overrides)
    rules.append(
        RuleSpec(
            name="telemetry-liveness",
            summary="every registered probe source keeps shipping",
            window=max(2.0 * silence_timeout, 2.0),
            severity="critical",
            for_duration=0.0,  # a silent worker is already the incident
            scope="cluster",
            params={"silence_timeout": silence_timeout},
        )
    )
    return rules


# ----------------------------------------------------------------------
# the monitor
# ----------------------------------------------------------------------
class _NodeTrack:
    """Deterministic per-node derived state (fed only by probe events)."""

    __slots__ = ("up_since", "view_size")

    def __init__(self) -> None:
        self.up_since: float | None = None
        self.view_size = 1


class ContractMonitor:
    """Evaluates a rule set over the live probe stream of one cluster.

    Subscribes to the bus, retains a trailing buffer bounded by the
    longest rule window, and ticks on the event loop every ``interval``
    virtual seconds.  At each tick every rule is evaluated per scope;
    breaches must persist ``for_duration`` before they latch an
    :class:`Alert` (re-armed after the breach clears).

    The monitor is passive: it never emits probes, draws no randomness,
    and mutates nothing outside itself — attaching it cannot change a
    run's behaviour, only observe it.
    """

    def __init__(
        self,
        bus: ProbeBus | None,
        rules: list[RuleSpec],
        *,
        interval: float = 0.25,
        clock=None,
    ) -> None:
        if interval <= 0.0:
            raise ValueError("interval must be positive")
        if bus is None and clock is None:
            raise ValueError("need a bus or an explicit clock")
        self.bus = bus
        #: The time source: anything with ``now`` and ``call_later``.
        #: Defaults to the bus's (virtual) loop; a wall-clock adapter here
        #: is what "ContractMonitor in wall-clock mode" means.
        self.loop = clock if clock is not None else bus.loop
        self.rules = list(rules)
        self.interval = interval
        self.alerts: list[Alert] = []
        self.ticks = 0
        self.started_at: float | None = None
        self._events: list[ProbeEvent] = []
        self._horizon = max((r.window for r in self.rules), default=1.0)
        self._tracks: dict[str, _NodeTrack] = {}
        #: (rule name, node) -> sim time the current continuous breach began
        self._breached_since: dict[tuple[str, str], float] = {}
        #: breaches currently latched as alerts (cleared when healthy again)
        self._latched: set[tuple[str, str]] = set()
        #: last evaluation per (rule, node): (value, bound, breached)
        self._last: dict[tuple[str, str], tuple[float | None, float | None, bool]] = {}
        self._timer = None
        self._running = False
        if bus is not None:
            bus.subscribe(self._on_event)

    # ------------------------------------------------------------------
    # stream ingestion (derived state is probe-driven and deterministic)
    # ------------------------------------------------------------------
    def _track(self, node: str) -> _NodeTrack:
        track = self._tracks.get(node)
        if track is None:
            track = self._tracks[node] = _NodeTrack()
        return track

    def ingest(self, event: ProbeEvent) -> None:
        """Feed one event directly (no bus): the collector's entry point.

        Events must arrive in non-decreasing ``at`` order — the
        collector's watermark merge guarantees that for wall-clock
        streams, exactly as the bus guarantees it for sim time.
        """
        self._on_event(event)

    def _on_event(self, event: ProbeEvent) -> None:
        self._events.append(event)
        kind = event.kind
        if kind == "node.state":
            track = self._track(event.node)
            if event.args[1] in _UP_STATES:
                if track.up_since is None:
                    track.up_since = event.at
            else:
                track.up_since = None
        elif kind == "view.change":
            self._track(event.node).view_size = max(1, len(event.args[1]))

    def _prune(self, now: float) -> None:
        cutoff = now - self._horizon
        events = self._events
        drop = 0
        for e in events:
            if e.at >= cutoff:
                break
            drop += 1
        if drop:
            del events[:drop]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin ticking on the event loop (idempotent)."""
        if self._running:
            return
        self._running = True
        if self.started_at is None:
            self.started_at = self.loop.now
        self._schedule()

    def stop(self) -> None:
        """Stop ticking and detach from the bus; alerts remain readable."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self.bus is not None:
            self.bus.unsubscribe(self._on_event)

    def _schedule(self) -> None:
        self._timer = self.loop.call_later(self.interval, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        self.evaluate()
        self._schedule()

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _uptime(self, node: str, now: float) -> float:
        track = self._tracks.get(node)
        if track is None or track.up_since is None:
            return 0.0
        return now - track.up_since

    def _cluster_uptime(self, now: float) -> float:
        return max(
            (self._uptime(node, now) for node in self._tracks), default=0.0
        )

    def _cluster_view_size(self) -> int:
        return max((t.view_size for t in self._tracks.values()), default=1)

    def _window_for(self, rule: RuleSpec, node: str, now: float) -> RuleWindow:
        start = now - rule.window
        if node == "*":
            events = tuple(e for e in self._events if e.at >= start)
            uptime = self._cluster_uptime(now)
            view = self._cluster_view_size()
        else:
            events = tuple(
                e for e in self._events if e.node == node and e.at >= start
            )
            uptime = self._uptime(node, now)
            view = self._track(node).view_size
        return RuleWindow(
            start=start,
            end=now,
            node=node,
            events=events,
            uptime=uptime,
            view_size=view,
            params=rule.params,
        )

    def evaluate(self, now: float | None = None) -> list[Alert]:
        """Run one evaluation pass; returns alerts fired by *this* pass.

        Called automatically by the tick loop; callable directly for a
        final sweep at run end (``now`` defaults to the sim clock).
        """
        if now is None:
            now = self.loop.now
        self.ticks += 1
        self._prune(now)
        fired: list[Alert] = []
        # The monitor only learns about a node when it probes; a run's
        # node population is therefore probe-derived and deterministic.
        nodes = sorted(self._tracks)
        for rule in self.rules:
            targets = ["*"] if rule.scope == "cluster" else nodes
            check = CONTRACT_RULES[rule.name]
            for node in targets:
                key = (rule.name, node)
                breach = check(self._window_for(rule, node, now))
                if breach is None:
                    self._breached_since.pop(key, None)
                    self._latched.discard(key)
                    self._last[key] = (None, None, False)
                    continue
                value, bound, detail = breach
                self._last[key] = (value, bound, True)
                since = self._breached_since.setdefault(key, now)
                if key in self._latched:
                    continue
                if now - since >= rule.for_duration:
                    alert = Alert(
                        rule=rule.name,
                        severity=rule.severity,
                        node=node,
                        at=now,
                        since=since,
                        value=value,
                        bound=bound,
                        detail=detail,
                    )
                    self.alerts.append(alert)
                    fired.append(alert)
                    self._latched.add(key)
        return fired

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def alert_records(self) -> list[dict]:
        """All fired alerts as JSON-safe records (bundle ``alerts`` form)."""
        return [a.record() for a in self.alerts]

    def status_line(self, now: float | None = None) -> str:
        """One redraw-free health line for the ``repro watch`` feed.

        ``t=<sim>s  <ok|ALERT>  <node>:<state> ...`` where a node's state
        is ``ok`` or the comma-joined names of its currently-breached
        rules; cluster-scope breaches show under the ``*`` pseudo-node.
        """
        if now is None:
            now = self.loop.now
        nodes = sorted(self._tracks)
        marks: list[str] = []
        any_breach = False
        for node in nodes + ["*"]:
            breached = sorted(
                rule_name
                for (rule_name, rule_node), (_, _, bad) in self._last.items()
                if rule_node == node and bad
            )
            if node == "*" and not breached:
                continue
            if breached:
                any_breach = True
                marks.append(f"{node}:{','.join(breached)}")
            else:
                marks.append(f"{node}:ok")
        flag = "ALERT" if any_breach or self.alerts else "ok   "
        body = "  ".join(marks) if marks else "(no nodes probed yet)"
        return f"t={now:8.2f}s  {flag}  {body}  alerts={len(self.alerts)}"


def render_alerts(alerts: list[Alert] | list[dict]) -> str:
    """Human-readable alert digest (accepts Alert objects or records)."""
    if not alerts:
        return "no contract alerts"
    shaped = [
        a if isinstance(a, Alert) else alert_from_record(a) for a in alerts
    ]
    lines = [f"{len(shaped)} contract alert(s):"]
    for a in shaped:
        lines.append("  " + a.describe())
    return "\n".join(lines)
