"""The shared observability quickstart scenario.

``repro obs summary`` / ``repro obs export`` and the determinism tests all
need the *same* short, fully seeded scenario so that their outputs are
comparable (and, for the tests, byte-identical across runs).  This module
is that scenario: form a group, multicast, crash the last member, recover
it — the CLI quickstart, but with the probe bus, a flight recorder and the
probe-derived metrics attached from the first event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.harness import RaincoreCluster
from repro.obs.probe import ProbeBus, ProbeEvent
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import MetricsRegistry, ProbeMetrics

__all__ = ["ScenarioRun", "run_quickstart"]


@dataclass
class ScenarioRun:
    """Everything the quickstart scenario observed."""

    cluster: RaincoreCluster
    bus: ProbeBus
    #: complete probe stream in emission order (not ring-bounded)
    events: list[ProbeEvent] = field(default_factory=list)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    recorder: FlightRecorder | None = None


def run_quickstart(
    nodes: int = 4,
    seed: int = 2024,
    duration: float = 1.0,
    *,
    crash: bool = True,
    recorder_capacity: int = 512,
) -> ScenarioRun:
    """Run the quickstart scenario with full observability attached.

    Deterministic in ``(nodes, seed, duration, crash)``: the returned
    event stream and metrics are byte-stable across runs with equal
    arguments (the determinism golden test pins this).
    """
    ids = [chr(ord("A") + i) for i in range(nodes)]
    cluster = RaincoreCluster(ids, seed=seed)
    bus = cluster.enable_probes()
    run = ScenarioRun(cluster=cluster, bus=bus)
    bus.subscribe(run.events.append)
    run.recorder = FlightRecorder(bus, capacity=recorder_capacity)
    ProbeMetrics(bus, run.registry)

    cluster.start_all()
    cluster.node(ids[0]).multicast(b"obs-quickstart")
    cluster.run(duration)
    if crash and nodes > 2:
        victim = ids[-1]
        cluster.faults.crash_node(victim)
        cluster.run_until_converged(5.0, expected=set(ids) - {victim})
        cluster.faults.recover_node(victim)
        cluster.run_until_converged(8.0, expected=set(ids))
    run.registry.capture_node_stats(cluster.stats)
    return run
