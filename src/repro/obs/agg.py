"""Streaming probe aggregation: bounded-state telemetry for scale runs.

At N=1000 a raw probe stream no longer fits in memory, but the questions
the ROADMAP's scale experiments ask — who talks, what drops where, how
fast tokens circulate — only need *reducers*.  :class:`StreamAggregator`
subscribes to a :class:`~repro.obs.probe.ProbeBus` and folds every event
into bounded per-node state (the Bert paper's bounded-per-node-state
discipline applied to the telemetry itself): integer counters, fixed
geometric-bucket histograms, and nothing proportional to the event count.

Determinism contract (pinned by tests/test_agg.py)
--------------------------------------------------
Rollups are **byte-identical across shard counts**.  The rules that make
that true:

* All cross-node reductions are either integer sums or are computed at
  *export* time from the merged per-node state in sorted node order —
  never by folding floats in stream order, which would make the result
  depend on how nodes interleave (and therefore on placement).
* Per-node float state (histogram totals) is accumulated in that node's
  own event order, which the sharded engine already guarantees is
  placement-invariant (docs/PARALLEL.md).
* Merging rollups from disjoint node sets is a union; overlapping nodes
  (re-aggregating a split stream) sum counters bucket-wise.
* Top-K talkers are derived from exact per-node byte counters with a
  total ``(bytes desc, node asc)`` order — no approximate sketches, whose
  contents would depend on partitioning.

The same aggregator works on simulated runs, sharded workers (each worker
aggregates locally and ships :meth:`to_dict`; the coordinator calls
:func:`merge_rollups`), and real-UDP runs (:mod:`repro.runtime.udp` emits
the same ``net.*`` probe kinds).
"""

from __future__ import annotations

import json
from bisect import bisect_right
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.probe import ProbeBus, ProbeEvent

__all__ = [
    "DEFAULT_LATENCY_EDGES",
    "BoundedHistogram",
    "StreamAggregator",
    "merge_rollups",
    "rollup_json",
    "render_rollup",
]

#: Geometric bucket edges (seconds) for latency-ish observations: 100 µs
#: to 10 s in a 1-2-5 ladder.  14 edges -> 15 buckets, fixed forever.
DEFAULT_LATENCY_EDGES: tuple[float, ...] = (
    0.0001,
    0.0002,
    0.0005,
    0.001,
    0.002,
    0.005,
    0.01,
    0.02,
    0.05,
    0.1,
    0.2,
    0.5,
    1.0,
    10.0,
)

_ROLLUP_SCHEMA = 1


class BoundedHistogram:
    """Fixed-bucket histogram: state is ``len(edges)+1`` integers + extrema.

    Bucket *i* counts observations ``v`` with ``edges[i-1] < v <= edges[i]``
    (first bucket: ``v <= edges[0]``; last: ``v > edges[-1]``).
    """

    __slots__ = ("edges", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, edges: tuple[float, ...] = DEFAULT_LATENCY_EDGES) -> None:
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = 0.0
        self.vmax = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.edges, value)] += 1
        if self.count == 0 or value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        self.count += 1
        self.total += value

    def quantile(self, q: float) -> float:
        """Upper bucket edge covering quantile ``q`` (conservative bound)."""
        if self.count == 0:
            return 0.0
        exact = q * self.count
        rank = int(exact)
        if rank < exact:
            rank += 1  # nearest-rank: ceil(q * n)
        rank = max(1, rank)
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.edges[i] if i < len(self.edges) else self.vmax
        return self.vmax

    def to_dict(self) -> dict[str, Any]:
        return {
            "counts": list(self.counts),
            "count": self.count,
            "total": round(self.total, 9),
            "min": round(self.vmin, 9),
            "max": round(self.vmax, 9),
        }

    @classmethod
    def merge_dicts(cls, dicts: list[dict[str, Any]]) -> dict[str, Any]:
        """Bucket-wise sum of histogram dicts (same edge set assumed)."""
        if not dicts:
            return cls().to_dict()
        counts = [0] * len(dicts[0]["counts"])
        count = 0
        total = 0.0
        vmin = 0.0
        vmax = 0.0
        for d in dicts:
            for i, c in enumerate(d["counts"]):
                counts[i] += c
            if d["count"]:
                vmin = d["min"] if count == 0 else min(vmin, d["min"])
                vmax = max(vmax, d["max"])
            count += d["count"]
            total += d["total"]
        return {
            "counts": counts,
            "count": count,
            "total": round(total, 9),
            "min": round(vmin, 9),
            "max": round(vmax, 9),
        }


class _NodeAgg:
    """Bounded per-node reducer state (no event retention)."""

    __slots__ = (
        "events",
        "packets_sent",
        "bytes_sent",
        "packets_received",
        "bytes_received",
        "packets_dropped",
        "bytes_dropped",
        "token_accepts",
        "token_gap",
        "_last_token_at",
    )

    def __init__(self) -> None:
        self.events = 0
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_received = 0
        self.bytes_received = 0
        self.packets_dropped = 0
        self.bytes_dropped = 0
        self.token_accepts = 0
        #: Inter-arrival of token.accept at this node (one lap of the ring).
        self.token_gap = BoundedHistogram()
        self._last_token_at: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "events": self.events,
            "packets_sent": self.packets_sent,
            "bytes_sent": self.bytes_sent,
            "packets_received": self.packets_received,
            "bytes_received": self.bytes_received,
            "packets_dropped": self.packets_dropped,
            "bytes_dropped": self.bytes_dropped,
            "token_accepts": self.token_accepts,
            "token_gap": self.token_gap.to_dict(),
        }


class StreamAggregator:
    """Online reducers over the probe stream; subscribe-and-forget.

    ``observe`` handles one event in O(1) dict work; nothing is retained.
    ``to_dict`` produces the canonical rollup; :func:`merge_rollups` merges
    rollups from shard workers into the identical document a serial run
    would produce.
    """

    __slots__ = ("events", "by_kind", "drops_by_where", "_nodes")

    def __init__(self) -> None:
        self.events = 0
        self.by_kind: dict[str, int] = {}
        self.drops_by_where: dict[str, int] = {}
        self._nodes: dict[str, _NodeAgg] = {}

    # ------------------------------------------------------------------
    def attach(self, bus: "ProbeBus") -> "StreamAggregator":
        bus.subscribe(self.observe)
        return self

    def _node(self, node: str) -> _NodeAgg:
        agg = self._nodes.get(node)
        if agg is None:
            agg = self._nodes[node] = _NodeAgg()
        return agg

    def observe(self, event: "ProbeEvent") -> None:
        self.events += 1
        kind = event.kind
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        node = self._node(event.node)
        node.events += 1
        if kind == "net.send":
            size = event.args[3]
            node.packets_sent += 1
            node.bytes_sent += size  # type: ignore[operator]
        elif kind == "net.deliver":
            size = event.args[3]
            node.packets_received += 1
            node.bytes_received += size  # type: ignore[operator]
        elif kind == "net.drop":
            size = event.args[3]
            where = event.args[4]
            node.packets_dropped += 1
            node.bytes_dropped += size  # type: ignore[operator]
            self.drops_by_where[where] = (  # type: ignore[index]
                self.drops_by_where.get(where, 0) + 1  # type: ignore[arg-type]
            )
        elif kind == "token.accept":
            node.token_accepts += 1
            last = node._last_token_at
            if last is not None:
                node.token_gap.observe(event.at - last)
            node._last_token_at = event.at

    def observe_all(self, events: Iterable["ProbeEvent"]) -> None:
        for event in events:
            self.observe(event)

    # ------------------------------------------------------------------
    def to_dict(self, top_k: int = 8) -> dict[str, Any]:
        """The canonical rollup document (sorted keys, derived fields)."""
        per_node = {
            node: self._nodes[node].to_dict() for node in sorted(self._nodes)
        }
        return _finalize(
            {
                "schema": _ROLLUP_SCHEMA,
                "events": self.events,
                "by_kind": dict(sorted(self.by_kind.items())),
                "drops_by_where": dict(sorted(self.drops_by_where.items())),
                "per_node": per_node,
            },
            top_k,
        )

    def to_json(self, top_k: int = 8) -> str:
        return rollup_json(self.to_dict(top_k))


def _finalize(state: dict[str, Any], top_k: int) -> dict[str, Any]:
    """Fill derived fields from per-node state in deterministic order.

    Every float reduction here walks ``per_node`` in sorted-node order,
    so a merged rollup and a serial rollup derive bit-identical values.
    """
    per_node = state["per_node"]
    talkers = sorted(
        ((d["bytes_sent"], node) for node, d in per_node.items()),
        key=lambda t: (-t[0], t[1]),
    )
    state["top_talkers"] = [
        {"node": node, "bytes_sent": sent}
        for sent, node in talkers[:top_k]
        if sent > 0
    ]
    state["totals"] = {
        "nodes": len(per_node),
        "packets_sent": sum(d["packets_sent"] for d in per_node.values()),
        "bytes_sent": sum(d["bytes_sent"] for d in per_node.values()),
        "packets_dropped": sum(
            d["packets_dropped"] for d in per_node.values()
        ),
        "token_accepts": sum(d["token_accepts"] for d in per_node.values()),
    }
    return state


def merge_rollups(rollups: list[dict[str, Any]], top_k: int = 8) -> dict[str, Any]:
    """Merge worker rollups into the document a serial run would produce.

    Disjoint node sets union; overlapping nodes (re-aggregation of a split
    stream) sum counters and merge histograms bucket-wise.
    """
    by_kind: dict[str, int] = {}
    drops: dict[str, int] = {}
    per_node_parts: dict[str, list[dict[str, Any]]] = {}
    events = 0
    for r in rollups:
        if r.get("schema") != _ROLLUP_SCHEMA:
            raise ValueError(
                f"cannot merge rollup schema {r.get('schema')!r}; "
                f"expected {_ROLLUP_SCHEMA}"
            )
        events += r["events"]
        for k, c in r["by_kind"].items():
            by_kind[k] = by_kind.get(k, 0) + c
        for w, c in r["drops_by_where"].items():
            drops[w] = drops.get(w, 0) + c
        for node, d in r["per_node"].items():
            per_node_parts.setdefault(node, []).append(d)
    per_node: dict[str, dict[str, Any]] = {}
    for node in sorted(per_node_parts):
        parts = per_node_parts[node]
        if len(parts) == 1:
            per_node[node] = parts[0]
        else:
            merged = {
                key: sum(p[key] for p in parts)
                for key in (
                    "events",
                    "packets_sent",
                    "bytes_sent",
                    "packets_received",
                    "bytes_received",
                    "packets_dropped",
                    "bytes_dropped",
                    "token_accepts",
                )
            }
            merged["token_gap"] = BoundedHistogram.merge_dicts(
                [p["token_gap"] for p in parts]
            )
            per_node[node] = merged
    return _finalize(
        {
            "schema": _ROLLUP_SCHEMA,
            "events": events,
            "by_kind": dict(sorted(by_kind.items())),
            "drops_by_where": dict(sorted(drops.items())),
            "per_node": per_node,
        },
        top_k,
    )


def rollup_json(rollup: dict[str, Any]) -> str:
    """Canonical byte-stable serialization (compact, key-sorted)."""
    return json.dumps(rollup, sort_keys=True, separators=(",", ":"))


def render_rollup(rollup: dict[str, Any], top: int = 8) -> str:
    """Human-readable rollup summary for the CLI."""
    totals = rollup["totals"]
    lines = [
        f"rollup: {rollup['events']} probe events over "
        f"{totals['nodes']} nodes",
        f"  traffic: {totals['packets_sent']} pkts / "
        f"{totals['bytes_sent']} bytes sent, "
        f"{totals['packets_dropped']} dropped, "
        f"{totals['token_accepts']} token accepts",
    ]
    if rollup["drops_by_where"]:
        lines.append(
            "  drops: "
            + " ".join(
                f"{w}={c}" for w, c in sorted(rollup["drops_by_where"].items())
            )
        )
    if rollup["top_talkers"]:
        lines.append(
            "  top talkers: "
            + " ".join(
                f"{t['node']}={t['bytes_sent']}B"
                for t in rollup["top_talkers"][:top]
            )
        )
    top_kinds = sorted(
        rollup["by_kind"].items(), key=lambda kv: (-kv[1], kv[0])
    )[:top]
    lines.append(
        "  top kinds: " + " ".join(f"{k}={c}" for k, c in top_kinds)
    )
    return "\n".join(lines)
