"""The probe bus: typed, deterministic protocol events from every layer.

Every layer of the stack carries an optional ``probe`` attribute (a
:class:`ProbeBus` or ``None``).  Instrumented call sites follow one idiom::

    probe = self.probe
    if probe is not None:
        probe.emit(self.node_id, "token.accept", src, gen, seq, n_msgs)

so a disabled probe costs exactly one attribute load and one ``None`` test
on the hot path — unmeasurable next to the work being observed (the
``probe_overhead_ratio`` benchmark in :mod:`repro.perf` gates this).

Design rules (enforced by raincheck RC401/RC402, docs/DETERMINISM.md):

* **Lazy formatting** — ``emit`` takes raw positional values, never
  pre-formatted strings.  The field names live in :data:`PROBE_CATALOG`;
  rendering happens only at export/inspection time.
* **Sim-time only** — events are timestamped by the bus from the event
  loop's virtual clock.  Callers cannot pass a timestamp, and
  :class:`ProbeEvent` is only constructed inside :mod:`repro.obs`.
* **Deterministic values** — arguments must be JSON-safe primitives
  (str/int/float/bool/None or tuples thereof) derived from protocol state.
  Process-global artifacts (``id()``, ``PiggybackedMessage.uid``) are
  banned from the stream: two runs with one seed must produce
  byte-identical exports.

The full probe catalogue with per-field semantics is documented in
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.eventloop import EventLoop

__all__ = [
    "PROBE_CATALOG",
    "ProbeEvent",
    "ProbeBus",
    "format_event",
    "event_record",
    "event_from_record",
    "events_to_jsonl",
    "renumber_events",
]

#: kind -> positional field names.  ``emit`` validates arity against this
#: table, and every exporter/renderer uses it to name the raw arguments.
PROBE_CATALOG: dict[str, tuple[str, ...]] = {
    # -- net: the unreliable datagram layer ---------------------------------
    "net.send": ("src", "dst", "frame", "size"),
    "net.drop": ("src", "dst", "frame", "size", "where"),
    "net.deliver": ("src", "dst", "frame", "size"),
    "net.dup": ("src", "dst", "frame", "size"),
    # -- core: one GC task wakeup batch (paper §4.1 task-switch accounting) --
    "core.wakeup": (),
    # -- transport: acknowledged unicast ------------------------------------
    "transport.tx": ("peer", "msg_id", "attempt", "frame", "ctx"),
    "transport.ack": ("peer", "msg_id"),
    "transport.rx": ("peer", "msg_id", "dup"),
    "transport.fail": ("peer", "msg_id"),
    # -- core: session state machine ----------------------------------------
    "node.state": ("old", "new"),
    "node.shutdown": ("reason",),
    "view.change": ("view_id", "members"),
    # -- core: token lineage and travel -------------------------------------
    "token.bootstrap": ("gen",),
    "token.accept": ("src", "gen", "seq", "msgs"),
    "token.stale": ("src", "gen", "seq"),
    "token.foreign": ("src", "gen", "seq"),
    "token.regen": ("gen", "parent", "seq"),
    "token.merge": ("gen", "left", "right", "seq"),
    # -- core: failure detector (failure-on-delivery, paper §2.2) -----------
    "fd.arm": ("peer", "seq"),
    "fd.fire": ("peer", "seq"),
    "fd.false_alarm": ("peer", "seq"),
    # -- core: reliable multicast spans (origin, msg_no) --------------------
    "mcast.attach": ("origin", "msg_no", "ordering", "size", "audience", "gen"),
    "mcast.deliver": ("origin", "msg_no", "ordering"),
    "mcast.confirm": ("origin", "msg_no"),
    # -- core: 911 recovery and join (paper §2.3) ---------------------------
    "recovery.round": ("round_id", "last_seq", "peers"),
    "recovery.denied": ("round_id",),
    "recovery.join": ("contact", "attempt"),
    # -- core: replica state transfer ---------------------------------------
    "state.snapshot": ("service",),
    "state.install": ("service", "late"),
    "state.sync_request": ("service",),
    # -- data: bounded-state resync (docs/RESYNC.md) ------------------------
    "resync.prune": ("service", "upto", "segments", "bytes", "forced"),
    "resync.delta": ("service", "peer", "from_seq", "entries", "bytes"),
    "resync.snapshot_fallback": ("service", "peer", "peer_seq", "window_floor"),
    "resync.quarantine": ("peer", "reason", "active"),
    "resync.buffer": ("component", "bytes", "budget"),
    # -- telemetry: the live probe-shipping plane (docs/TELEMETRY.md) --------
    "telemetry.hello": ("source", "addr", "schema"),
    "telemetry.gap": ("source", "expected", "got", "lost"),
    "telemetry.drop": ("where", "size"),
    "telemetry.silent": ("source", "quiet"),
    "telemetry.bye": ("source", "shipped"),
    # -- apps ----------------------------------------------------------------
    "app.vip_install": ("vip",),
    "app.vip_release": ("vip",),
}


class ProbeEvent:
    """One emitted probe: bus-assigned ordinal, sim time, node, kind, args.

    ``n`` is the bus's global emission ordinal — sorting by it reconstructs
    the exact cluster-wide interleaving, including ties at one virtual
    instant.  ``args`` stays the raw positional tuple; field names come
    from :data:`PROBE_CATALOG` only when somebody looks.
    """

    __slots__ = ("n", "at", "node", "kind", "args")

    def __init__(
        self, n: int, at: float, node: str, kind: str, args: tuple
    ) -> None:
        self.n = n
        self.at = at
        self.node = node
        self.kind = kind
        self.args = args

    def data(self) -> dict[str, object]:
        """Field-name → value mapping per the catalogue (lazy formatting)."""
        return dict(zip(PROBE_CATALOG[self.kind], self.args))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProbeEvent({self.n}, {self.at:.6f}, {self.node}, {self.kind}, {self.args})"


class ProbeBus:
    """Per-cluster event sink fanning probe events out to subscribers.

    The bus stamps each event with the loop's virtual time and a global
    emission ordinal, then calls every subscriber synchronously — so a
    subscriber observes protocol state exactly as it was at the emitting
    call site.  Subscribers must not mutate protocol state.
    """

    __slots__ = ("loop", "events_emitted", "_listeners")

    def __init__(self, loop: "EventLoop") -> None:
        self.loop = loop
        self.events_emitted = 0
        self._listeners: list[Callable[[ProbeEvent], None]] = []

    def subscribe(self, listener: Callable[[ProbeEvent], None]) -> None:
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[ProbeEvent], None]) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def emit(self, node: str, kind: str, *args: object) -> None:
        """Emit one probe event (enabled path only — callers None-test first).

        Unknown kinds and arity mismatches raise immediately: a mistyped
        probe point is an instrumentation bug, not data.
        """
        fields = PROBE_CATALOG[kind]
        if len(args) != len(fields):
            raise TypeError(
                f"probe {kind!r} takes {len(fields)} args {fields}, got {len(args)}"
            )
        self.events_emitted += 1
        event = ProbeEvent(self.events_emitted, self.loop.now, node, kind, args)
        for listener in self._listeners:
            listener(event)


# ----------------------------------------------------------------------
# export / rendering helpers (cold path: format only when somebody looks)
# ----------------------------------------------------------------------
def format_event(event: ProbeEvent) -> str:
    """Human-readable one-liner: ``kind field=value ...``."""
    parts = [
        f"{name}={value}" for name, value in zip(PROBE_CATALOG[event.kind], event.args)
    ]
    return event.kind if not parts else f"{event.kind} " + " ".join(parts)


def _jsonable(value: object) -> object:
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


def event_record(event: ProbeEvent) -> dict[str, object]:
    """Stable JSON-safe record of one event (tuples become lists)."""
    return {
        "n": event.n,
        "at": event.at,
        "node": event.node,
        "kind": event.kind,
        "args": [_jsonable(a) for a in event.args],
    }


def event_from_record(record: dict) -> ProbeEvent:
    """Rebuild a :class:`ProbeEvent` from :func:`event_record` output."""
    args = tuple(
        tuple(a) if isinstance(a, list) else a for a in record["args"]
    )
    return ProbeEvent(
        record["n"], record["at"], record["node"], record["kind"], args
    )


def renumber_events(events: Iterable[ProbeEvent]) -> list[ProbeEvent]:
    """Reassign ordinals 1..N in the given order, keeping all else intact.

    Used when canonicalizing merged per-shard streams: ``n`` is a
    per-bus emission counter, so a merged stream must renumber in its
    canonical order to stay byte-stable (see repro.parallel.merge).
    """
    return [
        ProbeEvent(i + 1, e.at, e.node, e.kind, e.args)
        for i, e in enumerate(events)
    ]


def events_to_jsonl(events: Iterable[ProbeEvent]) -> str:
    """One compact, key-sorted JSON object per line (byte-stable per seed)."""
    return "\n".join(
        json.dumps(event_record(e), sort_keys=True, separators=(",", ":"))
        for e in events
    )
