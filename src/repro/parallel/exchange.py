"""Epoch-batched exchange of trunk packets between shards.

Trunk packets are never scheduled directly: the datagram layer hands them
to an exchange (``DatagramNetwork.set_exchange``), which buffers them for
the current epoch and re-injects the whole batch — in **canonical order**
— at the epoch boundary via ``DatagramNetwork.deliver_trunk``.

Canonical order is the total order ``(arrival_time, src, dst, submit_idx)``
where ``submit_idx`` is the submitting buffer's per-epoch counter.  A
source address sends from exactly one shard, so ties on the first three
keys always come from a single buffer, whose relative ``submit_idx`` order
is the same no matter how shards are placed onto workers — this is what
makes the injected order (and therefore the whole trace) shard-count
invariant.

Two implementations:

* :class:`SerialExchange` — everything in one process and one event loop;
  the ``shards=1`` fallback and the chaos-campaign engine.
* :class:`WorkerExchange` — the per-worker half of the process-parallel
  engine: splits each epoch's buffer into locally-destined records and
  per-peer-worker outbound batches (shipped over pipes by the worker main
  loop in :mod:`repro.parallel.worker`).
"""

from __future__ import annotations

from repro.net.datagram import Datagram, DatagramNetwork

__all__ = ["BatchRecord", "SerialExchange", "WorkerExchange", "inject_batch"]

#: One buffered trunk packet: (arrival_time, src, dst, submit_idx, packet).
#: The leading four fields are the canonical sort key; comparison never
#: reaches the packet object itself.
BatchRecord = tuple[float, str, str, int, Datagram]


def inject_batch(network: DatagramNetwork, records: list[BatchRecord]) -> None:
    """Sort a merged batch canonically and schedule every arrival.

    Injection order is preserved by the event loop's FIFO tie sequence at
    ``TRUNK_DELIVERY_PRIORITY``, so same-instant arrivals fire exactly in
    canonical order.
    """
    records.sort(key=lambda r: r[:4])
    for when, _src, _dst, _idx, packet in records:
        network.deliver_trunk(packet, when)


class SerialExchange:
    """In-process exchange: one loop hosts every shard group.

    ``shards=1`` runs are byte-identical to a classic single-loop run for
    workloads with no trunk segments (nothing is ever buffered), and
    byte-identical to the process-parallel engine for workloads with them.
    """

    __slots__ = ("network", "_buffer", "_idx")

    def __init__(self, network: DatagramNetwork) -> None:
        self.network = network
        self._buffer: list[BatchRecord] = []
        self._idx = 0

    def submit(self, packet: Datagram, when: float) -> None:
        self._buffer.append((when, packet.src, packet.dst, self._idx, packet))
        self._idx += 1

    def flush_epoch(self) -> int:
        """Inject the epoch's batch; returns the number of packets moved."""
        moved = len(self._buffer)
        inject_batch(self.network, self._buffer)
        self._buffer = []
        self._idx = 0
        return moved


class WorkerExchange:
    """Per-worker exchange half for the process-parallel engine.

    ``submit`` buffers trunk packets exactly like :class:`SerialExchange`;
    ``drain_epoch`` splits the buffer into records staying on this worker
    and records bound for each peer worker (by the destination address's
    owning group).  The worker main loop ships the outbound map through
    the coordinator and merges inbound batches with the local records
    before calling :func:`inject_batch`.
    """

    __slots__ = ("network", "_worker_of_addr", "_me", "_buffer", "_idx")

    def __init__(
        self,
        network: DatagramNetwork,
        worker_of_addr: dict[str, int],
        me: int,
    ) -> None:
        self.network = network
        self._worker_of_addr = worker_of_addr
        self._me = me
        self._buffer: list[BatchRecord] = []
        self._idx = 0

    def submit(self, packet: Datagram, when: float) -> None:
        self._buffer.append((when, packet.src, packet.dst, self._idx, packet))
        self._idx += 1

    def drain_epoch(self) -> tuple[list[BatchRecord], dict[int, list[BatchRecord]]]:
        """Split and clear the buffer: (stay-local records, per-peer map)."""
        local: list[BatchRecord] = []
        outbound: dict[int, list[BatchRecord]] = {}
        for record in self._buffer:
            worker = self._worker_of_addr[record[2]]
            if worker == self._me:
                local.append(record)
            else:
                outbound.setdefault(worker, []).append(record)
        self._buffer = []
        self._idx = 0
        return local, outbound


def merge_and_inject(
    network: DatagramNetwork,
    local: list[BatchRecord],
    inbound: list[list[BatchRecord]],
) -> int:
    """Merge local + received batches and inject canonically."""
    merged = list(local)
    for batch in inbound:
        merged.extend(batch)
    inject_batch(network, merged)
    return len(merged)


__all__.append("merge_and_inject")
