"""Shardable workloads: full-topology builders with per-shard activation.

A shardable workload is a registered builder that constructs the **entire
topology** (every node, NIC and segment — cheap, and it keeps addressing
and route planning identical in every process) but only *instantiates and
starts* protocol nodes for an ``active`` subset.  The coordinator passes
``active=None`` (everything) for serial runs and the union of a worker's
assigned shard groups for process-parallel runs.

Determinism contract for builders (docs/PARALLEL.md):

* no draw from ``loop.rng`` — every random source must be keyed to an
  entity that lives entirely inside one shard group (the builder calls
  ``topology.seed_segment_rngs``, which covers the datagram layer);
* all load is scheduled as virtual-time timers before the run starts —
  no imperative mid-run driving, so every worker replays the same script;
* cross-group traffic only on deterministic trunk segments.

The reference workload is ``multi_ring``: R independent Raincore token
rings (one LAN segment each, eligibility confined to the ring) joined by
one deterministic trunk segment carrying gateway-to-gateway pings — the
shape of the ROADMAP's multi-ring hierarchy experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.probe import ProbeBus

from repro.core.config import RaincoreConfig
from repro.core.events import RecordingListener
from repro.core.session import RaincoreNode
from repro.net.datagram import Datagram, DatagramNetwork
from repro.net.eventloop import EventLoop
from repro.net.topology import Segment, Topology, derive_rng_seed

__all__ = [
    "TrunkPing",
    "WorkloadInstance",
    "build_workload",
    "multi_ring_node_ids",
    "WORKLOADS",
]


@dataclass(frozen=True, slots=True)
class TrunkPing:
    """Cross-ring gateway ping payload (rides the trunk segment).

    ``slots=True`` (not a manual ``__slots__``) so the generated state
    methods keep the frozen instance picklable across worker pipes.
    """

    ring: int
    n: int


class WorkloadInstance:
    """One built (and possibly partially-activated) workload."""

    def __init__(
        self,
        loop: EventLoop,
        topology: Topology,
        network: DatagramNetwork,
        trunk_segments: tuple[str, ...],
    ) -> None:
        self.loop = loop
        self.topology = topology
        self.network = network
        #: Segments the builder intends as the cut (partitioner input).
        self.trunk_segments = trunk_segments
        #: Active protocol nodes only (inactive nodes exist in the topology
        #: but have no RaincoreNode — their shard runs them elsewhere).
        self.nodes: dict[str, RaincoreNode] = {}
        self.listeners: dict[str, RecordingListener] = {}
        #: Deterministic per-instance counters collected at end of run.
        self.counters: dict[str, int] = {}
        self.probes: ProbeBus | None = None
        self._starters: list[Callable[[], None]] = []

    def enable_probes(self) -> ProbeBus:
        """Attach one probe bus to the network and every active node."""
        if self.probes is None:
            from repro.obs.probe import ProbeBus

            bus = ProbeBus(self.loop)
            self.network.probe = bus
            for node_id in sorted(self.nodes):
                node = self.nodes[node_id]
                node.probe = bus
                node.transport.probe = bus
            self.probes = bus
        return self.probes

    def start(self) -> None:
        """Kick off formation and load timers for the active nodes."""
        for starter in self._starters:
            starter()

    def collect(self) -> dict[str, object]:
        """Deterministic end-of-run facts, keyed disjointly per node."""
        facts: dict[str, object] = {}
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            facts[f"{node_id}.members"] = list(node.members)
            facts[f"{node_id}.seq"] = node.local_copy_seq
            facts[f"{node_id}.deliveries"] = len(
                self.listeners[node_id].deliveries
            )
        for key in sorted(self.counters):
            facts[key] = self.counters[key]
        return facts


def multi_ring_node_ids(rings: int, ring_size: int) -> list[list[str]]:
    """Node ids per ring: ``r<i>n<j>`` with zero-padded, sortable indices."""
    return [
        [f"r{i:02d}n{j:02d}" for j in range(ring_size)] for i in range(rings)
    ]


def build_multi_ring(
    seed: int,
    params: dict,
    active: frozenset[str] | None = None,
) -> WorkloadInstance:
    """R Raincore rings + one deterministic trunk with gateway pings.

    ``params`` knobs (all optional):

    * ``rings`` (4), ``ring_size`` (4) — shape;
    * ``hop_interval`` (0.005) — token hop period per ring;
    * ``ring_latency`` (100e-6), ``ring_jitter`` (20e-6), ``ring_loss``
      (0.0) — per-ring LAN model (jitter/loss draws use the segment's own
      RNG stream);
    * ``trunk_latency`` (0.005) — trunk one-way delay = the lookahead;
    * ``ping_interval`` (0.05), ``ping_start`` (0.5), ``ping_size`` (64) —
      gateway ping traffic to the next ring;
    * ``mcast_interval`` (0.02), ``mcast_start`` (0.25), ``mcast_size``
      (200) — per-node multicast load inside each ring.
    """
    rings = int(params.get("rings", 4))
    ring_size = int(params.get("ring_size", 4))
    if rings < 1 or ring_size < 1:
        raise ValueError("rings and ring_size must be at least 1")
    hop_interval = float(params.get("hop_interval", 0.005))
    ring_latency = float(params.get("ring_latency", 100e-6))
    ring_jitter = float(params.get("ring_jitter", 20e-6))
    ring_loss = float(params.get("ring_loss", 0.0))
    trunk_latency = float(params.get("trunk_latency", 0.005))
    ping_interval = float(params.get("ping_interval", 0.05))
    ping_start = float(params.get("ping_start", 0.5))
    ping_size = int(params.get("ping_size", 64))
    mcast_interval = float(params.get("mcast_interval", 0.02))
    mcast_start = float(params.get("mcast_start", 0.25))
    mcast_size = int(params.get("mcast_size", 200))

    # The loop seed is deliberately segregated from every draw the workload
    # makes: all randomness is per-segment (seed_segment_rngs), so serial
    # and per-worker loops never touch loop.rng and placement cannot move a
    # draw (docs/PARALLEL.md determinism contract).
    loop = EventLoop(seed=derive_rng_seed(seed, "loop"))
    topology = Topology()
    ring_ids = multi_ring_node_ids(rings, ring_size)

    for i in range(rings):
        topology.add_segment(
            Segment(
                name=f"ring{i:02d}",
                latency=ring_latency,
                jitter=ring_jitter,
                loss=ring_loss,
            )
        )
    if rings > 1:
        topology.add_segment(
            Segment(name="trunk", latency=trunk_latency, jitter=0.0, loss=0.0)
        )
    for i, members in enumerate(ring_ids):
        for node_id in members:
            topology.add_node(node_id)
            topology.attach(node_id, f"{node_id}@ring{i:02d}", f"ring{i:02d}")
        if rings > 1:
            # Dedicated gateway element per ring (paper's hierarchy): an
            # application endpoint on both the ring and the trunk.  It is
            # *not* a RaincoreNode, so its trunk binding is never clobbered
            # by a transport rebinding the node's addresses at start().
            gw = f"r{i:02d}gw"
            topology.add_node(gw)
            topology.attach(gw, f"{gw}@ring{i:02d}", f"ring{i:02d}")
            topology.attach(gw, f"{gw}@trunk", "trunk")
    topology.seed_segment_rngs(seed)

    network = DatagramNetwork(loop, topology)
    trunks = ("trunk",) if rings > 1 else ()
    instance = WorkloadInstance(loop, topology, network, trunks)
    config = RaincoreConfig.tuned(ring_size=ring_size, hop_interval=hop_interval)

    def is_active(node_id: str) -> bool:
        return active is None or node_id in active

    for i, members in enumerate(ring_ids):
        active_members = [n for n in members if is_active(n)]
        if active_members and len(active_members) != len(members):
            raise ValueError(
                f"ring {i} is split across workers: {active_members} vs "
                f"{members}; activation must follow shard groups"
            )
        for node_id in active_members:
            listener = RecordingListener()
            node = RaincoreNode(node_id, loop, network, config, listener)
            node.set_eligible(members)
            instance.nodes[node_id] = node
            instance.listeners[node_id] = listener
        if not active_members:
            continue

        def start_ring(members: list[str] = active_members) -> None:
            first, *rest = members
            instance.nodes[first].start_new_group()
            for node_id in rest:
                instance.nodes[node_id].start_joining([first])

        instance._starters.append(start_ring)

        # Per-node multicast load: self-rescheduling timers, staggered by
        # a fixed per-node phase so the schedule is a pure function of the
        # node id.
        for j, node_id in enumerate(active_members):
            phase = mcast_start + (i * ring_size + j) * 1e-4

            def arm_mcast(node_id: str = node_id, phase: float = phase) -> None:
                state = {"k": 0}

                def tick() -> None:
                    node = instance.nodes[node_id]
                    if node.is_member:
                        node.multicast(
                            f"{node_id}.{state['k']}", size=mcast_size
                        )
                        state["k"] += 1
                    loop.call_later(mcast_interval, tick)

                loop.call_at(phase, tick)

            instance._starters.append(arm_mcast)

    # Gateway pings over the trunk: ring i pings ring (i+1) % rings.  The
    # receive handler and counters live with the *destination* gateway, so
    # each worker observes exactly its own shard's state.
    if rings > 1:
        for i in range(rings):
            gateway = f"r{i:02d}gw"
            if not is_active(gateway):
                continue
            src_addr = f"{gateway}@trunk"
            dst_addr = f"r{(i + 1) % rings:02d}gw@trunk"
            instance.counters[f"ping_tx.ring{i:02d}"] = 0
            instance.counters[f"ping_rx.ring{i:02d}"] = 0

            def on_ping(packet: Datagram, ring: int = i) -> None:
                instance.counters[f"ping_rx.ring{ring:02d}"] += 1

            network.bind(src_addr, on_ping)

            def arm_ping(
                ring: int = i, src: str = src_addr, dst: str = dst_addr
            ) -> None:
                state = {"n": 0}

                def tick() -> None:
                    network.send(
                        src, dst, TrunkPing(ring, state["n"]), size=ping_size
                    )
                    instance.counters[f"ping_tx.ring{ring:02d}"] += 1
                    state["n"] += 1
                    loop.call_later(ping_interval, tick)

                loop.call_at(ping_start + ring * 1e-4, tick)

            instance._starters.append(arm_ping)

    return instance


WORKLOADS: dict[str, Callable[..., WorkloadInstance]] = {
    "multi_ring": build_multi_ring,
}


def build_workload(
    name: str,
    seed: int,
    params: dict,
    active: frozenset[str] | None = None,
) -> WorkloadInstance:
    """Build a registered workload by name (raises on unknown names)."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; registered: {sorted(WORKLOADS)}"
        ) from None
    return builder(seed, params, active)
