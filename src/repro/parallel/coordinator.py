"""Sharded simulation coordinator: serial and process-parallel engines.

:class:`ParallelSimulator` partitions a registered workload's topology
into natural shard groups and runs it to a horizon in one of two modes:

* **serial** — every group on the one in-process event loop, with a
  :class:`~repro.parallel.exchange.SerialExchange` batching trunk packets
  per epoch.  This is the ``shards=1`` engine and the reference semantics.
* **process** — groups placed onto K worker processes (greedy balanced,
  deterministic), each running its own event loop in lockstep epochs, with
  the coordinator routing each epoch's trunk batches between workers over
  pipes (hub-and-spoke, one barrier per epoch).

Both modes compute the identical epoch boundaries (``(k+1) * lookahead``),
push every trunk packet — even between co-located groups — through the
same canonically-ordered exchange path, and canonicalize the merged probe
stream, so for a fixed seed the trace bytes are a function of the workload
and horizon alone, never of the shard count (docs/PARALLEL.md).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any

from repro.obs.probe import ProbeEvent
from repro.parallel.exchange import SerialExchange
from repro.parallel.merge import merge_probe_events, merged_stream_jsonl
from repro.parallel.partition import ShardPlan, partition_topology
from repro.parallel.worker import epoch_boundaries, events_from_wire, worker_main
from repro.parallel.workloads import build_workload

__all__ = ["ParallelRunResult", "ParallelSimulator"]


class ParallelRunResult:
    """Outcome of one sharded run (any mode)."""

    __slots__ = (
        "mode",
        "shards",
        "events",
        "epochs",
        "facts",
        "assignment",
        "probe_streams",
        "profiles",
        "rollup",
    )

    def __init__(
        self,
        mode: str,
        shards: int,
        events: int,
        epochs: int,
        facts: dict[str, Any],
        assignment: tuple[int, ...],
        probe_streams: list[list[ProbeEvent]],
        profiles: list[dict[str, Any]] | None = None,
        rollup: dict[str, Any] | None = None,
    ) -> None:
        self.mode = mode
        self.shards = shards
        #: Total events executed across all shard loops.
        self.events = events
        self.epochs = epochs
        #: Merged deterministic end-of-run facts from every shard.
        self.facts = facts
        #: Group index -> worker index placement used for the run.
        self.assignment = assignment
        self.probe_streams = probe_streams
        #: Per-worker profiler summaries (run with ``profile=True``) — the
        #: non-deterministic wall-clock channel, one dict per worker.
        self.profiles = profiles or []
        #: Deterministic merged telemetry rollup (``aggregate=True``):
        #: byte-identical across shard counts (repro.obs.agg).
        self.rollup = rollup

    def probe_events(self) -> list[ProbeEvent]:
        """Canonically merged probe stream (shard-count invariant)."""
        return merge_probe_events(self.probe_streams)

    def stream_jsonl(self) -> str:
        """Canonical merged probe stream as JSONL (golden-trace format)."""
        return merged_stream_jsonl(self.probe_streams)

    def rollup_jsonl(self) -> str:
        """Canonical rollup serialization (requires ``aggregate=True``)."""
        if self.rollup is None:
            raise ValueError("run with aggregate=True to collect a rollup")
        from repro.obs.agg import rollup_json

        return rollup_json(self.rollup)

    def epoch_imbalance(self) -> float:
        """Utilization imbalance across workers (requires ``profile=True``)."""
        from repro.obs.prof import imbalance

        return imbalance(self.profiles)


class ParallelSimulator:
    """Plan and run a registered workload across shard workers."""

    def __init__(
        self, workload: str, seed: int, params: dict | None = None
    ) -> None:
        self.workload = workload
        self.seed = seed
        self.params = dict(params or {})
        self._plan: ShardPlan | None = None

    def plan(self) -> ShardPlan:
        """The natural shard plan (computed once, from topology alone)."""
        if self._plan is None:
            skeleton = build_workload(
                self.workload, self.seed, self.params, active=frozenset()
            )
            self._plan = partition_topology(
                skeleton.topology,
                trunk_segments=skeleton.trunk_segments or None,
            )
        return self._plan

    def run(
        self,
        horizon: float,
        shards: int = 1,
        mode: str = "auto",
        probes: bool = False,
        prepare: Any = None,
        profile: bool = False,
        aggregate: bool = False,
    ) -> ParallelRunResult:
        """Run to ``horizon`` on ``shards`` workers.

        ``mode`` is ``"serial"`` (one process regardless of ``shards``,
        used by the chaos campaign and as the reference), ``"process"``
        (one OS process per shard), or ``"auto"`` (serial iff shards==1).

        ``prepare`` is an optional callable receiving the built
        :class:`~repro.parallel.workloads.WorkloadInstance` before it
        starts — the chaos campaign uses it to arm fault timers.  Serial
        mode only: closures cannot cross process boundaries.

        ``profile=True`` attaches one wall-clock profiler per worker loop
        (results in :attr:`ParallelRunResult.profiles`); ``aggregate=True``
        attaches one streaming aggregator per worker and merges their
        rollups into :attr:`ParallelRunResult.rollup` — a document that is
        byte-identical across shard counts.  Neither touches the probe
        stream or the golden byte-identity contract.
        """
        if mode == "auto":
            mode = "serial" if shards == 1 else "process"
        if mode == "serial":
            return self._run_serial(
                horizon, shards, probes, prepare, profile, aggregate
            )
        if mode == "process":
            if prepare is not None:
                raise ValueError(
                    "prepare hooks are serial-only: a closure cannot be "
                    "shipped to shard worker processes"
                )
            return self._run_process(horizon, shards, probes, profile, aggregate)
        raise ValueError(f"unknown mode {mode!r} (serial|process|auto)")

    # ------------------------------------------------------------------
    # serial engine
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        horizon: float,
        shards: int,
        probes: bool,
        prepare: Any = None,
        profile: bool = False,
        aggregate: bool = False,
    ) -> ParallelRunResult:
        plan = self.plan()
        assignment = plan.assign(min(shards, len(plan.groups)))
        instance = build_workload(self.workload, self.seed, self.params)

        recorded: list[ProbeEvent] = []
        aggregator = None
        if probes or aggregate:
            bus = instance.enable_probes()
            if probes:
                bus.subscribe(recorded.append)
            if aggregate:
                from repro.obs.agg import StreamAggregator

                aggregator = StreamAggregator().attach(bus)
        profiler = None
        if profile:
            from repro.obs.prof import Profiler

            profiler = Profiler(label="serial").attach(instance.loop)

        if prepare is not None:
            prepare(instance)
        instance.start()
        events = 0
        epochs = 0
        if not plan.cut:
            # No trunk segments: nothing to exchange, classic single loop.
            events = instance.loop.run_until(horizon)
        else:
            exchange = SerialExchange(instance.network)
            instance.network.set_exchange(exchange, frozenset(plan.trunks))
            for end in epoch_boundaries(horizon, plan.lookahead):
                events += instance.loop.run_epoch(end)
                exchange.flush_epoch()
                epochs += 1
        return ParallelRunResult(
            mode="serial",
            shards=shards,
            events=events,
            epochs=epochs,
            facts=instance.collect(),
            assignment=assignment,
            probe_streams=[recorded],
            profiles=[profiler.to_dict()] if profiler is not None else None,
            rollup=aggregator.to_dict() if aggregator is not None else None,
        )

    # ------------------------------------------------------------------
    # process engine
    # ------------------------------------------------------------------
    def _run_process(
        self,
        horizon: float,
        shards: int,
        probes: bool,
        profile: bool = False,
        aggregate: bool = False,
    ) -> ParallelRunResult:
        plan = self.plan()
        if not plan.cut:
            raise ValueError(
                "topology has a single shard group (no trunk cut); "
                "process mode cannot split it — use serial"
            )
        assignment = plan.assign(shards)
        boundaries = epoch_boundaries(horizon, plan.lookahead)

        method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        ctx = multiprocessing.get_context(method)
        pipes = [ctx.Pipe(duplex=True) for _ in range(shards)]
        workers = [
            ctx.Process(
                target=worker_main,
                args=(
                    child,
                    self.workload,
                    self.params,
                    self.seed,
                    w,
                    assignment,
                    horizon,
                    probes,
                    profile,
                    aggregate,
                ),
                name=f"repro-shard-{w}",
            )
            for w, (_parent, child) in enumerate(pipes)
        ]
        conns = [parent for parent, _child in pipes]
        for proc in workers:
            proc.start()
        for _parent, child in pipes:
            child.close()

        try:
            for k in range(len(boundaries)):
                outbound: list[dict[int, list]] = []
                for w, conn in enumerate(conns):
                    tag, got_k, batches = conn.recv()
                    if tag != "batch" or got_k != k:
                        raise RuntimeError(
                            f"coordinator: epoch protocol desync from worker "
                            f"{w}: expected batch/{k}, got {tag}/{got_k}"
                        )
                    outbound.append(batches)
                for w, conn in enumerate(conns):
                    inbound = [
                        batches[w] for batches in outbound if w in batches
                    ]
                    conn.send(("inject", k, inbound))

            streams: list[list[ProbeEvent]] = []
            facts: dict[str, Any] = {}
            events = 0
            profiles: list[dict[str, Any]] = []
            rollups: list[dict[str, Any]] = []
            for w, conn in enumerate(conns):
                (
                    tag,
                    probe_records,
                    worker_facts,
                    worker_events,
                    worker_profile,
                    worker_rollup,
                ) = conn.recv()
                if tag != "result":
                    raise RuntimeError(
                        f"coordinator: expected result from worker {w}, "
                        f"got {tag}"
                    )
                streams.append(events_from_wire(probe_records))
                facts.update(worker_facts)
                events += worker_events
                if worker_profile is not None:
                    profiles.append(worker_profile)
                if worker_rollup is not None:
                    rollups.append(worker_rollup)
            for proc in workers:
                proc.join(timeout=30.0)
        finally:
            for conn in conns:
                conn.close()
            for proc in workers:
                if proc.is_alive():  # pragma: no cover - crash cleanup
                    proc.terminate()
                    proc.join()

        rollup = None
        if rollups:
            from repro.obs.agg import merge_rollups

            rollup = merge_rollups(rollups)
        return ParallelRunResult(
            mode="process",
            shards=shards,
            events=events,
            epochs=len(boundaries),
            facts=dict(sorted(facts.items())),
            assignment=assignment,
            probe_streams=streams,
            profiles=profiles or None,
            rollup=rollup,
        )


def available_cpus() -> int:
    """Usable CPU count (for efficiency normalization in benchmarks)."""
    return os.cpu_count() or 1


__all__.append("available_cpus")
