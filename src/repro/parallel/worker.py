"""Shard worker process: one event loop per worker, lockstep epochs.

Each worker builds the *full* topology from the registered workload (so
addressing and routing are identical everywhere) but activates only the
nodes of its assigned shard groups.  It then runs the conservative epoch
loop against the coordinator over a pipe:

``("batch", k, {peer: records})``  worker → coordinator after epoch k
``("inject", k, records)``         coordinator → worker before epoch k+1
``("result", probe_records, facts, events, profile, rollup)``
                                   worker → coordinator at end

``profile`` is the worker's :meth:`~repro.obs.prof.Profiler.to_dict`
(or ``None``): per-callback wall-time attribution plus per-epoch wall
durations, which the coordinator folds into the cross-shard utilization
imbalance report.  ``rollup`` is the worker's local
:meth:`~repro.obs.agg.StreamAggregator.to_dict` (or ``None``); the
coordinator merges worker rollups with
:func:`~repro.obs.agg.merge_rollups` into the byte-identical document a
serial run would produce.  Both ride the result message only — the
profiler's wall-clock readings never enter the probe stream.

The epoch boundaries are computed as ``(k + 1) * epoch`` from epoch
*indices* — never by accumulating floats — so every worker and the serial
engine agree on the exact boundary values (docs/PARALLEL.md).

Workload builders and payload classes are module-level and looked up by
registry name, so the protocol is spawn-safe even though fork is the
preferred start method.
"""

from __future__ import annotations

from multiprocessing.connection import Connection

from repro.net.datagram import Datagram
from repro.obs.probe import ProbeEvent, event_from_record, event_record
from repro.parallel.exchange import BatchRecord, WorkerExchange, merge_and_inject
from repro.parallel.partition import partition_topology
from repro.parallel.workloads import build_workload

__all__ = ["epoch_boundaries", "worker_main"]


def epoch_boundaries(horizon: float, epoch: float) -> list[float]:
    """Exclusive epoch end times covering ``[0, horizon]``.

    Boundaries are ``epoch, 2*epoch, ...`` computed by multiplication (one
    rounding each, identical in every process), with the final boundary
    clamped to ``horizon``.
    """
    if horizon <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if epoch <= 0.0:
        raise ValueError(f"epoch length must be positive, got {epoch}")
    ends: list[float] = []
    k = 1
    while True:
        end = k * epoch
        if end >= horizon:
            ends.append(horizon)
            return ends
        ends.append(end)
        k += 1


def _wire_batch(records: list[BatchRecord]) -> list[tuple]:
    """Pickle-stable wire form of an outbound batch (pure data tuples)."""
    return [
        (when, src, dst, idx, packet.payload, packet.size)
        for when, src, dst, idx, packet in records
    ]


def _unwire_batch(wire: list[tuple]) -> list[BatchRecord]:
    return [
        (when, src, dst, idx, Datagram(src, dst, payload, size))
        for when, src, dst, idx, payload, size in wire
    ]


def worker_main(
    conn: Connection,
    workload: str,
    params: dict,
    seed: int,
    worker_index: int,
    assignment: tuple[int, ...],
    horizon: float,
    probes: bool,
    profile: bool = False,
    aggregate: bool = False,
) -> None:
    """Entry point of one shard worker process."""
    # Topology-only build (active=∅) to derive the plan identically to the
    # coordinator, then the real build activating this worker's nodes.
    skeleton = build_workload(workload, seed, params, active=frozenset())
    plan = partition_topology(
        skeleton.topology, trunk_segments=skeleton.trunk_segments or None
    )
    mine = frozenset(
        node_id
        for group in plan.groups
        if assignment[group.index] == worker_index
        for node_id in group.nodes
    )
    instance = build_workload(workload, seed, params, active=mine)

    worker_of_addr: dict[str, int] = {}
    for edge in plan.cut:
        for addr in sorted(instance.topology.segment(edge.segment).attached):
            owner = instance.topology.owner_of(addr)
            worker_of_addr[addr] = assignment[plan.group_of(owner)]

    exchange = WorkerExchange(instance.network, worker_of_addr, worker_index)
    instance.network.set_exchange(exchange, frozenset(plan.trunks))

    recorded: list[ProbeEvent] = []
    aggregator = None
    if probes or aggregate:
        bus = instance.enable_probes()
        if probes:
            bus.subscribe(recorded.append)
        if aggregate:
            from repro.obs.agg import StreamAggregator

            aggregator = StreamAggregator().attach(bus)
    profiler = None
    if profile:
        from repro.obs.prof import Profiler

        profiler = Profiler(label=f"shard-{worker_index}").attach(
            instance.loop
        )

    instance.start()
    events = 0
    for k, end in enumerate(epoch_boundaries(horizon, plan.lookahead)):
        events += instance.loop.run_epoch(end)
        local, outbound = exchange.drain_epoch()
        conn.send(
            ("batch", k, {w: _wire_batch(b) for w, b in outbound.items()})
        )
        tag, got_k, inbound_wire = conn.recv()
        if tag != "inject" or got_k != k:
            raise RuntimeError(
                f"worker {worker_index}: epoch protocol desync, "
                f"expected inject/{k}, got {tag}/{got_k}"
            )
        merge_and_inject(
            instance.network, local, [_unwire_batch(w) for w in inbound_wire]
        )
    conn.send(
        (
            "result",
            [event_record(e) for e in recorded],
            instance.collect(),
            events,
            profiler.to_dict() if profiler is not None else None,
            aggregator.to_dict() if aggregator is not None else None,
        )
    )
    conn.close()


def events_from_wire(records: list[dict]) -> list[ProbeEvent]:
    """Rebuild a worker's recorded probe stream from its result message."""
    return [event_from_record(r) for r in records]


__all__.append("events_from_wire")
