"""Sharded parallel simulator: conservative lockstep-epoch engine.

Partitions a topology into natural shard groups (connected components
once deterministic *trunk* segments are cut), runs each group's event
loop in lockstep epochs bounded by the minimum trunk latency, and
exchanges cross-shard packets as canonically-ordered batches at epoch
boundaries — so one seed yields identical trace bytes at any shard
count.  See docs/PARALLEL.md for the model and determinism contract.
"""

from repro.parallel.coordinator import (
    ParallelRunResult,
    ParallelSimulator,
    available_cpus,
)
from repro.parallel.exchange import SerialExchange, WorkerExchange
from repro.parallel.merge import merge_probe_events, merged_stream_jsonl
from repro.parallel.partition import (
    CutEdge,
    ShardGroup,
    ShardPlan,
    partition_topology,
)
from repro.parallel.workloads import WORKLOADS, build_workload

__all__ = [
    "CutEdge",
    "ParallelRunResult",
    "ParallelSimulator",
    "SerialExchange",
    "ShardGroup",
    "ShardPlan",
    "WORKLOADS",
    "WorkerExchange",
    "available_cpus",
    "build_workload",
    "merge_probe_events",
    "merged_stream_jsonl",
    "partition_topology",
]
