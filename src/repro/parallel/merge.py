"""Canonical probe-stream merge for sharded runs.

Each shard worker records its own probe stream with worker-local emission
ordinals.  To make the *merged* stream a pure function of the shard plan —
identical bytes for ``shards=1`` and ``shards=K`` — the merge:

1. stably sorts all events by ``(at, node)``: virtual time first, then
   node id for same-instant events from different nodes.  Within one
   ``(at, node)`` pair all events come from a single worker (a node lives
   on exactly one shard), so the stable sort preserves that worker's local
   emission order — which the determinism contract guarantees is
   placement-invariant;
2. renumbers ``n`` 1..N in merged order, replacing the worker-local
   ordinals.

The output therefore matches what a ``shards=1`` serial run emits, byte
for byte, once serialized with ``events_to_jsonl``.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.probe import ProbeEvent, events_to_jsonl, renumber_events

__all__ = ["merge_probe_events", "merged_stream_jsonl"]


def merge_probe_events(
    streams: Iterable[Iterable[ProbeEvent]],
) -> list[ProbeEvent]:
    """Merge per-shard probe streams into one canonical stream."""
    merged: list[ProbeEvent] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=lambda e: (e.at, e.node))
    return renumber_events(merged)


def merged_stream_jsonl(streams: Iterable[Iterable[ProbeEvent]]) -> str:
    """Canonical merged stream, serialized (golden-trace format)."""
    return events_to_jsonl(merge_probe_events(streams))
