"""Sharded chaos campaign: seeded faults against the multi-ring workload.

``repro chaos --shards K`` runs this campaign: the sharded engine (serial
mode — the reference semantics of the lockstep-epoch path, identical to
what the process engine executes) drives a multi-ring workload while a
seeded fault schedule crashes and recovers ring members and flips
adversity knobs on ring segments.  Faults never touch gateways or the
trunk, so the shard cut stays deterministic throughout.

End-of-run checks are phrased as **alerts** (strings), mirroring the
contract-monitor style:

* every ring re-converges — each live member sees the full ring;
* multicast sequence numbers advance after the last fault heals;
* cross-ring pings stay live — every gateway keeps receiving.

All randomness comes from ``derive_rng_seed(seed, "chaos")`` and all
faults are armed as virtual-time timers before the run starts, so a
campaign is exactly replayable from its seed.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.net.topology import derive_rng_seed
from repro.parallel.coordinator import ParallelRunResult, ParallelSimulator
from repro.parallel.workloads import WorkloadInstance, multi_ring_node_ids

__all__ = ["ShardedChaosResult", "run_sharded_campaign"]

#: Ring-segment adversity applied during a fault window.
_FLIP_LOSS = 0.05
_FLIP_JITTER = 300e-6


class ShardedChaosResult:
    """One campaign run: alerts (empty = clean) plus run facts."""

    __slots__ = ("seed", "shards", "alerts", "faults", "result")

    def __init__(
        self,
        seed: int,
        shards: int,
        alerts: list[str],
        faults: list[str],
        result: ParallelRunResult,
    ) -> None:
        self.seed = seed
        self.shards = shards
        self.alerts = alerts
        #: Human-readable fault schedule, in injection order.
        self.faults = faults
        self.result = result

    @property
    def ok(self) -> bool:
        return not self.alerts


def _schedule_faults(
    rng: random.Random,
    rings: int,
    ring_size: int,
    seconds: float,
    faults: list[str],
) -> Callable[[WorkloadInstance], None]:
    """Draw the fault schedule now; return the hook that arms it later.

    Drawing before the build keeps the schedule a pure function of the
    seed.  Every fault is shard-local: victims are non-gateway ring
    members and adversity flips hit ring segments only.
    """
    ring_ids = multi_ring_node_ids(rings, ring_size)
    heal_by = seconds - 4.0
    plans: list[tuple[str, float, float, int, Any]] = []
    for i in range(rings):
        if ring_size >= 3 and rng.random() < 0.75:
            victim = rng.choice(ring_ids[i][1:])
            crash_at = rng.uniform(1.0, max(1.0, heal_by - 3.0))
            recover_at = crash_at + rng.uniform(1.5, 2.5)
            plans.append(("crash", crash_at, recover_at, i, victim))
            faults.append(
                f"t={crash_at:.3f} crash {victim} (recover t={recover_at:.3f})"
            )
        if rng.random() < 0.5:
            flip_at = rng.uniform(1.0, max(1.0, heal_by - 2.0))
            clear_at = flip_at + rng.uniform(1.0, 2.0)
            plans.append(("flip", flip_at, clear_at, i, None))
            faults.append(
                f"t={flip_at:.3f} adversity ring{i:02d} "
                f"loss={_FLIP_LOSS:g} (clear t={clear_at:.3f})"
            )

    def prepare(instance: WorkloadInstance) -> None:
        loop = instance.loop
        topology = instance.topology
        for kind, at, until, ring, victim in plans:
            if kind == "crash":
                members = ring_ids[ring]
                contacts = [n for n in members if n != victim]

                def crash(victim: str = victim) -> None:
                    instance.nodes[victim].crash()
                    topology.set_node_up(victim, False)

                def recover(
                    victim: str = victim, contacts: list[str] = contacts
                ) -> None:
                    topology.set_node_up(victim, True)
                    instance.nodes[victim].start_joining(contacts)

                loop.call_at(at, crash)
                loop.call_at(until, recover)
            else:
                seg = topology.segment(f"ring{ring:02d}")

                def flip(seg: Any = seg) -> None:
                    seg.loss = _FLIP_LOSS
                    seg.jitter = seg.jitter + _FLIP_JITTER

                def clear(seg: Any = seg) -> None:
                    seg.loss = 0.0
                    seg.jitter = seg.jitter - _FLIP_JITTER

                loop.call_at(at, flip)
                loop.call_at(until, clear)

    return prepare


def run_sharded_campaign(
    seed: int,
    shards: int,
    seconds: float = 12.0,
    rings: int | None = None,
    ring_size: int = 3,
    log: Callable[[str], None] | None = None,
) -> ShardedChaosResult:
    """Run one seeded sharded chaos campaign; returns alerts and facts."""
    if seconds < 8.0:
        raise ValueError(
            f"campaign needs >= 8 virtual seconds (faults heal by "
            f"seconds-4), got {seconds:g}"
        )
    if rings is None:
        rings = max(4, shards)
    params = {"rings": rings, "ring_size": ring_size}
    rng = random.Random(derive_rng_seed(seed, "chaos"))
    faults: list[str] = []
    prepare = _schedule_faults(rng, rings, ring_size, seconds, faults)

    # Sequence snapshot 2s before the end: progress after this instant
    # proves the rings kept multicasting after every fault healed.
    snapshot: dict[str, int] = {}

    def prepare_with_snapshot(instance: WorkloadInstance) -> None:
        prepare(instance)

        def snap() -> None:
            for node_id in sorted(instance.nodes):
                snapshot[node_id] = instance.nodes[node_id].local_copy_seq

        instance.loop.call_at(seconds - 2.0, snap)

    sim = ParallelSimulator("multi_ring", seed, params)
    if log is not None:
        log(sim.plan().render_report())
        for line in faults:
            log(f"fault: {line}")
    result = sim.run(
        seconds, shards=shards, mode="serial", prepare=prepare_with_snapshot
    )

    ring_ids = multi_ring_node_ids(rings, ring_size)
    alerts: list[str] = []
    for i, members in enumerate(ring_ids):
        expected = set(members)
        for node_id in members:
            got = set(result.facts[f"{node_id}.members"])
            if got != expected:
                alerts.append(
                    f"ring{i:02d}: {node_id} sees {sorted(got)} instead of "
                    f"the full ring after heal"
                )
        for node_id in members:
            end_seq = result.facts[f"{node_id}.seq"]
            if end_seq <= snapshot.get(node_id, 0):
                alerts.append(
                    f"ring{i:02d}: {node_id} multicast seq stalled at "
                    f"{end_seq} after faults healed"
                )
    if rings > 1:
        for i in range(rings):
            rx = result.facts[f"ping_rx.ring{i:02d}"]
            tx_prev = result.facts[f"ping_tx.ring{(i - 1) % rings:02d}"]
            if rx < tx_prev - 1:
                alerts.append(
                    f"trunk: ring{i:02d} received {rx} pings of {tx_prev} "
                    f"sent by its predecessor (one may be in flight)"
                )
    return ShardedChaosResult(seed, shards, alerts, faults, result)
