"""Locality-aware topology partitioner for the sharded simulator.

The partitioner splits a :class:`~repro.net.topology.Topology` into
**natural shard groups** — the connected components of the node graph once
*trunk* segments are removed — and reports the cut that separates them.

Trunk segments are the inter-shard links.  They must be *deterministic*
(no loss, jitter, duplication, spikes or burst channels): a trunk packet's
arrival time is then ``send_time + latency`` exactly, which gives the
engine its conservative lookahead bound (the epoch length) and keeps every
RNG stream private to one shard.  By default any deterministic segment is
a trunk *candidate*; a candidate whose attached nodes all fall inside one
component anyway is demoted back to a local segment.

The natural grouping — not the worker count — is the unit of determinism:
``ShardPlan.assign`` merely places groups onto workers, and the engine
routes *all* trunk traffic through the epoch exchange even between
co-located groups, so the trace is a function of the plan alone
(docs/PARALLEL.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.net.topology import Topology

__all__ = ["ShardGroup", "CutEdge", "ShardPlan", "partition_topology"]


@dataclass(frozen=True)
class ShardGroup:
    """One natural shard: a connected island of nodes and local segments."""

    __slots__ = ("index", "nodes", "segments")

    index: int
    nodes: tuple[str, ...]
    segments: tuple[str, ...]


@dataclass(frozen=True)
class CutEdge:
    """One trunk segment of the cut, with the groups it bridges."""

    __slots__ = ("segment", "latency", "groups", "attached_nodes")

    segment: str
    latency: float
    groups: tuple[int, ...]
    attached_nodes: tuple[str, ...]


@dataclass(frozen=True)
class ShardPlan:
    """The partition: groups, cut edges, and the lookahead bound."""

    __slots__ = ("groups", "cut", "lookahead")

    groups: tuple[ShardGroup, ...]
    cut: tuple[CutEdge, ...]
    #: Minimum trunk latency — the epoch length.  Cross-shard packets sent
    #: during epoch k cannot arrive before epoch k+1.
    lookahead: float

    @property
    def trunks(self) -> tuple[str, ...]:
        return tuple(edge.segment for edge in self.cut)

    def group_of(self, node_id: str) -> int:
        for group in self.groups:
            if node_id in group.nodes:
                return group.index
        raise KeyError(f"node {node_id!r} not in any shard group")

    def assign(self, workers: int) -> tuple[int, ...]:
        """Place groups onto ``workers`` workers; returns group→worker.

        Greedy longest-processing-time packing by node count, with
        deterministic tie-breaks (group index, then worker id), so every
        process derives the identical placement.
        """
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if workers > len(self.groups):
            raise ValueError(
                f"cannot spread {len(self.groups)} shard groups over "
                f"{workers} workers; reduce --shards or add rings"
            )
        load = [0] * workers
        assignment = [0] * len(self.groups)
        order = sorted(
            self.groups, key=lambda g: (-len(g.nodes), g.index)
        )
        for group in order:
            worker = min(range(workers), key=lambda w: (load[w], w))
            assignment[group.index] = worker
            load[worker] += len(group.nodes)
        return tuple(assignment)

    def cut_report(self) -> dict[str, Any]:
        """Machine-readable cut-cost report (stable key order when dumped)."""
        return {
            "groups": [
                {
                    "index": g.index,
                    "nodes": len(g.nodes),
                    "segments": list(g.segments),
                }
                for g in self.groups
            ],
            "cut_edges": [
                {
                    "segment": e.segment,
                    "latency": e.latency,
                    "bridges_groups": list(e.groups),
                    "attached_nodes": len(e.attached_nodes),
                }
                for e in self.cut
            ],
            "cut_cost_attachments": sum(len(e.attached_nodes) for e in self.cut),
            "lookahead": self.lookahead,
            "balance": {
                "largest_group": max(len(g.nodes) for g in self.groups),
                "smallest_group": min(len(g.nodes) for g in self.groups),
            },
        }

    def render_report(self) -> str:
        """Human-readable one-screen summary of the partition."""
        lines = [
            f"shard plan: {len(self.groups)} groups, "
            f"{len(self.cut)} cut segments, lookahead {self.lookahead:g}s"
        ]
        for g in self.groups:
            lines.append(
                f"  group {g.index}: {len(g.nodes)} nodes "
                f"[{g.nodes[0]}..{g.nodes[-1]}] segments={','.join(g.segments) or '-'}"
            )
        for e in self.cut:
            lines.append(
                f"  cut {e.segment}: latency={e.latency:g}s bridges groups "
                f"{list(e.groups)} ({len(e.attached_nodes)} attachments)"
            )
        return "\n".join(lines)


def partition_topology(
    topology: Topology, trunk_segments: tuple[str, ...] | None = None
) -> ShardPlan:
    """Compute the natural shard partition of ``topology``.

    ``trunk_segments`` names the cut explicitly; by default every
    deterministic segment (see ``Segment.is_deterministic``) is a
    candidate, and candidates that fail to bridge two components are
    demoted to local segments.  Raises ``ValueError`` when an explicit
    trunk has adversity knobs enabled or when the resulting lookahead
    would be zero.
    """
    all_segments = sorted(seg.name for seg in topology.segments())
    if trunk_segments is None:
        candidates = tuple(
            name
            for name in all_segments
            if topology.segment(name).is_deterministic()
        )
    else:
        for name in trunk_segments:
            if not topology.segment(name).is_deterministic():
                raise ValueError(
                    f"trunk segment {name!r} has adversity knobs enabled; "
                    "only deterministic segments may be cut"
                )
        candidates = tuple(sorted(trunk_segments))

    components = topology.connected_components(exclude_segments=candidates)
    component_of = {
        node_id: idx for idx, nodes in enumerate(components) for node_id in nodes
    }

    cut: list[CutEdge] = []
    trunk_names: set[str] = set()
    for name in candidates:
        attached = topology.nodes_on_segment(name)
        spanned = tuple(sorted({component_of[n] for n in attached}))
        if len(spanned) > 1:
            seg = topology.segment(name)
            if seg.latency <= 0.0:
                raise ValueError(
                    f"trunk segment {name!r} has zero latency: the lookahead "
                    "bound (epoch length) must be positive"
                )
            cut.append(CutEdge(name, seg.latency, spanned, attached))
            trunk_names.add(name)

    # Local segments of each group: every non-trunk segment falls entirely
    # inside one component (by construction of the components).
    group_segments: dict[int, list[str]] = {i: [] for i in range(len(components))}
    for name in all_segments:
        if name in trunk_names:
            continue
        attached = topology.nodes_on_segment(name)
        if attached:
            group_segments[component_of[attached[0]]].append(name)

    groups = tuple(
        ShardGroup(idx, nodes, tuple(group_segments[idx]))
        for idx, nodes in enumerate(components)
    )
    lookahead = min((e.latency for e in cut), default=0.0)
    return ShardPlan(groups=groups, cut=tuple(cut), lookahead=lookahead)
