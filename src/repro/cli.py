"""Command-line interface: run scenarios and experiments without pytest.

Installed as ``raincore-repro`` (or ``python -m repro``).  Subcommands:

* ``info`` — package overview and experiment index;
* ``quickstart`` — form a group, multicast, crash and rejoin a member;
* ``trace`` — print a protocol event timeline for a short run;
* ``obs`` — probe-bus observability: live summary, JSONL export,
  diagnostic-bundle rendering, span-timeline reconstruction, and trace
  diff (docs/OBSERVABILITY.md, docs/MONITORING.md);
* ``prof`` — hot-path wall-clock profiler: per-callback attribution
  table, Chrome trace-event export, per-shard epoch utilization
  (docs/PROFILING.md);
* ``watch`` — run a cluster under the live contract monitor and stream
  per-node SLO health (plain-text, redraw-free, CI-safe);
* ``scaling`` — the Figure 3 Rainwall throughput sweep;
* ``failover`` — the §3.2 cable-unplug experiment;
* ``merge`` — split-brain and TBM merge walk-through;
* ``hierarchy`` — the §5 two-plane scalability extension;
* ``soak`` — randomized churn with invariant checks; ``--procs N`` runs
  the REAL multi-process soak instead — N workers over localhost UDP
  with the raintap telemetry plane, gating on clean formation and zero
  wall-clock contract alerts (docs/TELEMETRY.md);
* ``top`` — raintap live view: per-node state, view id and token rate of
  a real multi-process cluster, streamed as redraw-free status lines,
  with SIGKILL fault injection and breach postmortems;
* ``chaos`` — seeded chaos campaigns: generated fault schedules,
  replayable traces, automatic shrinking of failures;
* ``lint`` — raincheck static analysis: determinism and protocol
  invariants checked before any test runs (docs/DETERMINISM.md);
* ``bench`` — wall-clock throughput of the simulator itself, with
  optional regression gating against a committed baseline.

Everything runs in simulated time — each command finishes in seconds of
wall clock regardless of how much virtual time it covers — except ``top``
and ``soak --procs``, which drive a real multi-process cluster and run
for the wall-clock duration you ask for.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="raincore-repro",
        description=(
            "Reproduction of the Raincore Distributed Session Service "
            "(Fan & Bruck, IPPS 2001)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package overview and experiment index")

    p = sub.add_parser("quickstart", help="group formation, multicast, crash, rejoin")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--seed", type=int, default=2024)

    p = sub.add_parser("trace", help="print a protocol event timeline")
    p.add_argument("--nodes", type=int, default=3)
    p.add_argument("--duration", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--limit", type=int, default=60)
    p.add_argument(
        "--quiet", action="store_true",
        help="suppress the rendered output; exit code only (CI use)",
    )
    p.add_argument(
        "--kinds",
        default="state,view,token,deliver,shutdown",
        help="comma-separated event kinds to show",
    )
    p.add_argument(
        "--swimlanes",
        action="store_true",
        help="render one column per node instead of a flat timeline",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the filtered events as a stable JSON array instead",
    )

    p = sub.add_parser(
        "obs",
        help=(
            "probe-bus observability: live summary, JSONL export, bundle "
            "render, trace diff"
        ),
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    q = obs_sub.add_parser(
        "summary",
        help="run the probed quickstart scenario and summarize its streams",
    )
    q.add_argument(
        "file", nargs="?", metavar="FILE", default=None,
        help="summarize this bundle/capture/export instead of running "
        "the scenario (e.g. a raintap postmortem bundle)",
    )
    q.add_argument("--nodes", type=int, default=4)
    q.add_argument("--seed", type=int, default=2024)
    q.add_argument("--duration", type=float, default=1.0)
    q.add_argument(
        "--no-crash", action="store_true",
        help="skip the crash/recover phase of the scenario",
    )

    q = obs_sub.add_parser(
        "export",
        help="run the probed quickstart scenario and export JSONL streams",
    )
    q.add_argument("--nodes", type=int, default=4)
    q.add_argument("--seed", type=int, default=2024)
    q.add_argument("--duration", type=float, default=1.0)
    q.add_argument(
        "--no-crash", action="store_true",
        help="skip the crash/recover phase of the scenario",
    )
    q.add_argument(
        "--metrics", action="store_true",
        help="export the metrics registry instead of the probe event stream",
    )
    q.add_argument(
        "--out", metavar="FILE.jsonl",
        help="write the stream here (default: stdout)",
    )

    q = obs_sub.add_parser(
        "render",
        help="render a diagnostic bundle as timeline/swimlanes/causal chain",
    )
    q.add_argument("bundle", metavar="BUNDLE.json", help="bundle file to render")
    q.add_argument("--swimlanes", action="store_true")
    q.add_argument(
        "--kinds", default=None,
        help="comma-separated probe kinds to show (default: all)",
    )
    q.add_argument("--node", default=None, help="show only this node's events")
    q.add_argument("--limit", type=int, default=60)
    q.add_argument(
        "--span", metavar="ORIGIN#N",
        help="render the causal chain of one multicast span instead",
    )

    q = obs_sub.add_parser(
        "timeline",
        help=(
            "reconstruct the span timeline (token laps, 911 episodes, "
            "merge windows, resync ladders) from a run or an export"
        ),
    )
    q.add_argument(
        "events", nargs="?", metavar="EVENTS",
        help="probe export (.jsonl) or bundle (.json) to reconstruct from "
        "(default: run the probed quickstart scenario)",
    )
    q.add_argument("--nodes", type=int, default=4)
    q.add_argument("--seed", type=int, default=2024)
    q.add_argument("--duration", type=float, default=1.0)
    q.add_argument(
        "--no-crash", action="store_true",
        help="skip the crash/recover phase of the scenario",
    )
    q.add_argument("--limit", type=int, default=40)
    q.add_argument(
        "--kind", default=None,
        help="show only spans of this kind (e.g. episode.911)",
    )
    q.add_argument(
        "--out", metavar="FILE.jsonl",
        help="write the span records as JSONL (repro obs diff compatible)",
    )
    q.add_argument(
        "--check", action="store_true",
        help="check the paper bounds over the spans; exit 1 on breach",
    )
    q.add_argument(
        "--detection-bound", type=float, default=None, metavar="S",
        help="911 detection-latency bound per episode (default 0.15)",
    )

    q = obs_sub.add_parser(
        "diff",
        help=(
            "localize the first divergence between two probe exports "
            "or diagnostic bundles"
        ),
    )
    q.add_argument("left", metavar="LEFT", help="probe export (.jsonl) or bundle (.json)")
    q.add_argument("right", metavar="RIGHT", help="probe export (.jsonl) or bundle (.json)")
    q.add_argument(
        "--context", type=int, default=3,
        help="events of context around the divergence point (default 3)",
    )
    for q2 in obs_sub.choices.values():
        q2.add_argument(
            "--quiet", action="store_true",
            help="suppress informational output; exit code only (CI use)",
        )

    p = sub.add_parser(
        "watch",
        help="live contract monitor: per-node SLO health during a run",
    )
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--seconds", type=float, default=8.0, help="virtual run length")
    p.add_argument("--seed", type=int, default=2024)
    p.add_argument("--segments", type=int, default=1)
    p.add_argument(
        "--report-every", type=float, default=1.0, metavar="S",
        help="virtual seconds between status lines (default 1.0)",
    )
    p.add_argument(
        "--spike-at", type=float, default=None, metavar="T",
        help="inject delay spikes at virtual time T (known-bad demo/CI case)",
    )
    p.add_argument("--spike-prob", type=float, default=1.0)
    p.add_argument("--spike-extra", type=float, default=0.035, metavar="S",
                   help="extra one-way delay per spiked packet (default 0.035)")
    p.add_argument(
        "--blackout-at", type=float, default=None, metavar="T",
        help="inject an ack blackout at virtual time T",
    )
    p.add_argument("--blackout-src", default=None, metavar="NODE")
    p.add_argument("--blackout-dst", default=None, metavar="NODE")
    p.add_argument("--blackout-duration", type=float, default=2.0)
    p.add_argument(
        "--detection-bound", type=float, default=None, metavar="S",
        help="fd-latency bound (default: derived from the transport config)",
    )
    p.add_argument(
        "--fail-on-alerts", action="store_true",
        help="exit 1 if any contract alert fired (CI clean gate)",
    )
    p.add_argument(
        "--expect-alerts", action="store_true",
        help="exit 1 if NO contract alert fired (CI known-bad gate)",
    )
    p.add_argument(
        "--quiet", action="store_true",
        help="only print fired alerts and the final summary",
    )

    p = sub.add_parser(
        "prof",
        help=(
            "hot-path wall-clock profiler: attribution table, Chrome "
            "trace export, per-shard epoch utilization"
        ),
    )
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument(
        "--seconds", type=float, default=10.0,
        help="virtual seconds of the profiled chaos workload",
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--segments", type=int, default=2)
    p.add_argument(
        "--intensity", type=float, default=1.0,
        help="fault event rate multiplier of the chaos schedule",
    )
    p.add_argument(
        "--top", type=int, default=12,
        help="attribution rows to show before folding the tail (default 12)",
    )
    p.add_argument(
        "--trace", metavar="TRACE.json",
        help="write Chrome trace-event JSON here (chrome://tracing, Perfetto)",
    )
    p.add_argument(
        "--timeline-limit", type=int, default=50_000,
        help="max per-dispatch spans retained for the trace export",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the profiler summary as JSON instead of the table",
    )
    p.add_argument(
        "--aggregate", action="store_true",
        help="also attach streaming aggregation and print the rollup",
    )
    p.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="profile the sharded multi-ring engine at K shards instead "
        "of the chaos workload (per-shard epoch walls and imbalance)",
    )
    p.add_argument(
        "--quiet", action="store_true",
        help="suppress the rendered output; exit code only (CI use)",
    )

    p = sub.add_parser("scaling", help="Figure 3: Rainwall throughput sweep")
    p.add_argument("--nodes", type=int, nargs="+", default=[1, 2, 4])
    p.add_argument("--seed", type=int, default=42)

    p = sub.add_parser("failover", help="the 2-second cable-unplug experiment")
    p.add_argument("--seed", type=int, default=11)

    p = sub.add_parser("merge", help="split-brain and group merge walk-through")
    p.add_argument("--seed", type=int, default=5)

    p = sub.add_parser("hierarchy", help="two-plane hierarchical demo (§5)")
    p.add_argument("--groups", type=int, default=3)
    p.add_argument("--group-size", type=int, default=3)
    p.add_argument("--seed", type=int, default=4)

    p = sub.add_parser("soak", help="randomized churn with invariant checks")
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--duration", type=float, default=20.0)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--procs", type=int, default=None, metavar="N",
        help="run a REAL soak instead: N worker processes over localhost "
        "UDP, probes shipped to the raintap collector, wall-clock contract "
        "monitor gating on zero alerts (docs/TELEMETRY.md)",
    )
    p.add_argument(
        "--seconds", type=float, default=5.0,
        help="wall-clock run length of the --procs soak",
    )
    p.add_argument("--hop-interval", type=float, default=0.02)
    p.add_argument(
        "--kill", metavar="NODE@T[,NODE@T]", default=None,
        help="SIGKILL NODE T wall seconds after start (with --procs)",
    )
    p.add_argument(
        "--capture", metavar="FILE.jsonl", default=None,
        help="write the merged probe feed as a capture file (--procs)",
    )
    p.add_argument(
        "--postmortem", metavar="FILE.json", default=None,
        help="where the breach postmortem bundle is written (--procs)",
    )
    p.add_argument(
        "--expect-alerts", action="store_true",
        help="with --procs: invert the gate — exit 0 only if at least one "
        "alert fired and a postmortem bundle was cut (fault-injection CI)",
    )

    p = sub.add_parser(
        "top",
        help="raintap: live terminal view of a real multi-process cluster",
    )
    p.add_argument("--procs", type=int, default=3, metavar="N")
    p.add_argument("--seconds", type=float, default=8.0)
    p.add_argument("--hop-interval", type=float, default=0.02)
    p.add_argument(
        "--every", type=float, default=1.0,
        help="seconds between status lines (redraw-free, CI-safe)",
    )
    p.add_argument(
        "--kill", metavar="NODE@T[,NODE@T]", default=None,
        help="SIGKILL NODE T wall seconds after start",
    )
    p.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve the Prometheus-style /metrics exposition on this port "
        "(0 = pick a free one; printed at start)",
    )
    p.add_argument("--capture", metavar="FILE.jsonl", default=None)
    p.add_argument("--postmortem", metavar="FILE.json", default=None)
    p.add_argument(
        "--expect-alerts", action="store_true",
        help="exit 0 only if at least one alert fired (fault-injection CI)",
    )

    p = sub.add_parser(
        "chaos",
        help="seeded chaos campaigns with replayable traces and shrinking",
    )
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--seconds", type=float, default=30.0, help="fault window (virtual s)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--campaign", type=int, default=1, metavar="N",
        help="run N schedules with seeds seed, seed+1, ...",
    )
    p.add_argument("--segments", type=int, default=2)
    p.add_argument(
        "--intensity", type=float, default=1.0, help="fault event rate multiplier"
    )
    p.add_argument(
        "--strict", action="store_true",
        help="flag every double-token sample instead of bounding the window",
    )
    p.add_argument(
        "--replay", metavar="TRACE.json",
        help="replay a recorded trace instead of generating schedules",
    )
    p.add_argument(
        "--partition", metavar="NODES:DURATION[:AT]",
        help="run one explicit long_partition schedule instead of "
        "generating: isolate the comma-separated NODES for DURATION "
        "virtual seconds starting at AT (default 2.0), e.g. "
        "'n00,n01:20:2'",
    )
    p.add_argument(
        "--artifacts", default="chaos-artifacts", metavar="DIR",
        help="directory for failing traces and their shrunk reproducers",
    )
    p.add_argument(
        "--no-shrink", action="store_true", help="skip shrinking failing schedules"
    )
    p.add_argument(
        "--print-trace", action="store_true",
        help="print the generated (or replayed) schedule's JSON trace",
    )
    p.add_argument(
        "--fail-on-alerts", action="store_true",
        help="exit nonzero if any contract-monitor alert fired (CI clean gate)",
    )
    p.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="run the sharded multi-ring chaos campaign on the lockstep "
        "engine instead of the single-ring schedules (uses --seconds, "
        "--seed, --campaign; other knobs are ignored)",
    )

    p = sub.add_parser(
        "lint",
        help="raincheck: static determinism & protocol-invariant analysis",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(p)

    p = sub.add_parser(
        "spec",
        help="rainspec: protocol spec conformance, model checking, rendering",
    )
    from repro.spec.cli import add_spec_arguments

    add_spec_arguments(p)

    p = sub.add_parser(
        "bench", help="simulator throughput benchmarks and regression gate"
    )
    p.add_argument(
        "--out", metavar="REPORT.json",
        help="write the JSON report here (default: print to stdout only)",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="reduced workload for CI smoke runs (same rate metrics)",
    )
    p.add_argument(
        "--repeats", type=int, default=None,
        help="runs per benchmark, best-of reported (default: 5, or 3 with --quick)",
    )
    p.add_argument(
        "--check", metavar="BASELINE.json",
        help="compare against a baseline report; exit 1 on regression",
    )
    p.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional slowdown vs the baseline (default 0.30)",
    )
    p.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="run only the shard-scaling benchmark at 1..K shards and "
        "print the partition's cut-cost report",
    )
    p.add_argument(
        "--record", metavar="HISTORY.json", nargs="?",
        const="benchmarks/BENCH_history.json",
        help="append {git_sha, date, metrics} to a bench history file "
        "(default benchmarks/BENCH_history.json)",
    )
    p.add_argument(
        "--label", default="", metavar="TEXT",
        help="free-form label stored with the --record history row",
    )

    return parser


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_info(args) -> int:
    import repro

    print(f"raincore-repro {repro.__version__}")
    print(__doc__.split("\n\n")[0])
    print(
        "\nExperiments (pytest benchmarks/bench_<id>_*.py --benchmark-only -s):"
    )
    experiments = [
        ("e1", "CPU task-switching: L vs M*N vs 6*M*N (paper §4.1)"),
        ("e2", "network overhead: (N-1)^2 packets vs token piggybacking"),
        ("e3", "Figure 3: Rainwall throughput and scaling"),
        ("e4", "the 2-second fail-over claim (§3.2)"),
        ("e5", "multicast latency vs cluster size"),
        ("e6", "agreed vs safe ordering cost (§2.6)"),
        ("e7", "redundant-link resilience (§2.1)"),
        ("e8", "911 token regeneration (§2.3)"),
        ("e9", "hierarchical scalability extension (§5)"),
        ("e10", "failure-detection aggressiveness ablation (§2.2)"),
        ("e11", "token-rate dial ablation (§2.2)"),
        ("e12", "Fig. 3 scaling under heavy-tailed workloads"),
        ("e13", "split-brain merge convergence (§2.4)"),
    ]
    for eid, desc in experiments:
        print(f"  {eid:<4} {desc}")
    print("\nSee DESIGN.md and EXPERIMENTS.md for details.")
    return 0


def cmd_quickstart(args) -> int:
    from repro.cluster.harness import RaincoreCluster

    ids = [chr(ord("A") + i) for i in range(args.nodes)]
    cluster = RaincoreCluster(ids, seed=args.seed)
    cluster.start_all()
    print(f"group formed: {'-'.join(cluster.node(ids[0]).members)}")
    cluster.node(ids[0]).multicast(b"hello")
    cluster.run(1.0)
    delivered = sum(
        1 for nid in ids if cluster.listener(nid).deliveries
    )
    print(f"multicast delivered at {delivered}/{len(ids)} nodes")
    victim = ids[-1]
    cluster.faults.crash_node(victim)
    cluster.run_until_converged(5.0, expected=set(ids) - {victim})
    print(f"{victim} crashed; membership now {cluster.node(ids[0]).members}")
    cluster.faults.recover_node(victim)
    ok = cluster.run_until_converged(8.0, expected=set(ids))
    print(f"{victim} rejoined via 911: {cluster.node(ids[0]).members}")
    print(
        f"task switches/node: {cluster.stats.per_node('task_switches')}"
    )
    return 0 if ok else 1


def cmd_trace(args) -> int:
    from repro.cluster.harness import RaincoreCluster
    from repro.metrics.trace import TraceRecorder

    ids = [chr(ord("A") + i) for i in range(args.nodes)]
    cluster = RaincoreCluster(ids, seed=args.seed)
    trace = TraceRecorder(cluster)
    cluster.start_all()
    cluster.node(ids[0]).multicast(b"traced")
    cluster.run(args.duration)
    kinds = set(args.kinds.split(","))
    if args.quiet:
        return 0
    if args.json:
        from repro.metrics.trace import events_to_json

        print(events_to_json(trace.filter(kinds=kinds)))
    elif args.swimlanes:
        from repro.metrics.trace import render_swimlanes

        print(render_swimlanes(trace.filter(kinds=kinds), ids, limit=args.limit))
    else:
        print(trace.render(kinds=kinds, limit=args.limit))
    return 0


def _cli_error(message: str) -> int:
    """Report a usage/load failure on stderr; exit code 2 (not a diff/run
    verdict, which use 0/1)."""
    print(f"error: {message}", file=sys.stderr)
    return 2


def cmd_obs(args) -> int:
    quiet = getattr(args, "quiet", False)
    if args.obs_command == "render":
        from repro.obs import bundle_events, load_bundle, render_bundle, render_chain

        try:
            bundle = load_bundle(args.bundle)
        except ValueError as exc:
            return _cli_error(str(exc))
        if args.span:
            origin, _, msg_no = args.span.partition("#")
            if not msg_no.isdigit():
                return _cli_error(
                    f"--span takes ORIGIN#N (a span id like n01#2), got {args.span!r}"
                )
            text = render_chain(bundle_events(bundle), origin, int(msg_no))
            if not quiet:
                print(text)
            return 0
        kinds = set(args.kinds.split(",")) if args.kinds else None
        text = render_bundle(
            bundle,
            swimlanes=args.swimlanes,
            kinds=kinds,
            node=args.node,
            limit=args.limit,
        )
        if not quiet:
            print(text)
        return 0

    if args.obs_command == "timeline":
        import json as _json

        from repro.obs import load_events, reconstruct_spans

        if args.events:
            try:
                events = load_events(args.events)
            except ValueError as exc:
                return _cli_error(str(exc))
        else:
            from repro.obs.scenario import run_quickstart

            events = run_quickstart(
                nodes=args.nodes,
                seed=args.seed,
                duration=args.duration,
                crash=not args.no_crash,
            ).events
        timeline = reconstruct_spans(events)
        if args.out:
            text = "\n".join(
                _json.dumps(r, sort_keys=True, separators=(",", ":"))
                for r in timeline.to_records()
            )
            try:
                with open(args.out, "w", encoding="utf-8") as fh:
                    fh.write(text + "\n")
            except OSError as exc:
                return _cli_error(f"cannot write {args.out}: {exc}")
            if not quiet:
                print(f"{len(timeline.spans)} span records written to {args.out}")
        if not quiet:
            print(timeline.render(limit=args.limit, kind=args.kind))
        if args.check:
            bounds = (
                {"episode.911.detect": args.detection_bound}
                if args.detection_bound is not None
                else None
            )
            breaches = timeline.check(bounds)
            for breach in breaches:
                print(f"BREACH {breach}")
            if not quiet:
                print(
                    f"bounds check: {len(breaches)} breach(es) over "
                    f"{len(timeline.of_kind('episode.911'))} 911 episode(s)"
                )
            return 1 if breaches else 0
        return 0

    if args.obs_command == "diff":
        from repro.obs import first_divergence, load_events, render_divergence

        try:
            left = load_events(args.left)
            right = load_events(args.right)
        except ValueError as exc:
            return _cli_error(str(exc))
        divergence = first_divergence(left, right)
        report = render_divergence(
            left,
            right,
            divergence,
            context=args.context,
            left_label=args.left,
            right_label=args.right,
        )
        if not quiet:
            print(report)
        elif divergence is not None:
            print(divergence.describe())
        return 0 if divergence is None else 1

    if args.obs_command == "summary" and args.file:
        from repro.obs import load_bundle, load_events, render_alerts

        try:
            bundle = load_bundle(args.file)
        except ValueError:
            bundle = None
        if bundle is not None:
            if quiet:
                return 0
            print(
                f"bundle {args.file}: {bundle['schema']}  "
                f"reason={bundle['reason']}  at={bundle['at']:.3f}s"
            )
            if bundle.get("detail"):
                print(f"  detail: {bundle['detail']}")
            print(f"  nodes: {', '.join(bundle['nodes'])}")
            records = [
                {"kind": e["kind"], "node": e["node"]}
                for e in bundle["events"]
            ]
        else:
            try:
                records = load_events(args.file)
            except ValueError as exc:
                return _cli_error(str(exc))
            if quiet:
                return 0
            ats = [float(r["at"]) for r in records]
            print(
                f"capture {args.file}: {len(records)} events over "
                f"{max(ats) - min(ats):.3f}s"
            )
        by_kind: dict[str, int] = {}
        by_node: dict[str, int] = {}
        for r in records:
            by_kind[r["kind"]] = by_kind.get(r["kind"], 0) + 1
            by_node[r["node"]] = by_node.get(r["node"], 0) + 1
        print(
            "by node: " + "  ".join(f"{n}={c}" for n, c in sorted(by_node.items()))
        )
        print("by kind:")
        for kind, count in sorted(by_kind.items(), key=lambda kv: (-kv[1], kv[0])):
            print(f"  {kind:<20} {count}")
        if bundle is not None and bundle.get("alerts"):
            print(render_alerts(bundle["alerts"]))
        return 0

    from repro.obs.scenario import run_quickstart

    run = run_quickstart(
        nodes=args.nodes,
        seed=args.seed,
        duration=args.duration,
        crash=not args.no_crash,
    )
    if args.obs_command == "export":
        from repro.obs import events_to_jsonl

        text = (
            run.registry.to_jsonl()
            if args.metrics
            else events_to_jsonl(run.events)
        )
        if args.out:
            try:
                with open(args.out, "w", encoding="utf-8") as fh:
                    fh.write(text + "\n")
            except OSError as exc:
                return _cli_error(f"cannot write {args.out}: {exc}")
            if not quiet:
                print(
                    f"{'metrics' if args.metrics else 'events'} "
                    f"written to {args.out}"
                )
        else:
            print(text)
        return 0

    # summary
    if quiet:
        return 0
    by_kind: dict[str, int] = {}
    by_node: dict[str, int] = {}
    for e in run.events:
        by_kind[e.kind] = by_kind.get(e.kind, 0) + 1
        by_node[e.node] = by_node.get(e.node, 0) + 1
    print(
        f"quickstart scenario: nodes={args.nodes} seed={args.seed} "
        f"duration={args.duration:g} (virtual {run.cluster.loop.now:.3f}s)"
    )
    print(f"probe events: {run.bus.events_emitted}")
    print("by node: " + "  ".join(f"{n}={c}" for n, c in sorted(by_node.items())))
    print("by kind:")
    for kind, count in sorted(by_kind.items(), key=lambda kv: (-kv[1], kv[0])):
        print(f"  {kind:<20} {count}")
    print("token inter-arrival (per node):")
    histograms = run.registry.to_dict()["histograms"]
    for node in sorted(histograms):
        s = histograms[node].get("token.interarrival")
        if s:
            print(
                f"  {node}: n={s['count']} mean={s['mean'] * 1e3:.2f}ms "
                f"p95={s.get('p95', 0.0) * 1e3:.2f}ms"
            )
    return 0


def cmd_watch(args) -> int:
    from repro.cluster.harness import RaincoreCluster
    from repro.core.config import RaincoreConfig
    from repro.obs import ContractMonitor, paper_contract_rules, render_alerts

    ids = [f"n{i:02d}" for i in range(args.nodes)]
    config = RaincoreConfig.tuned(ring_size=args.nodes)
    cluster = RaincoreCluster(
        ids, seed=args.seed, segments=args.segments, config=config
    )
    bus = cluster.enable_probes()
    rules = paper_contract_rules(
        config,
        args.nodes,
        segments=args.segments,
        detection_bound=args.detection_bound,
    )
    monitor = ContractMonitor(bus, rules)
    cluster.start_all()
    monitor.start()
    if not args.quiet:
        print(
            f"watching {args.nodes} nodes (seed={args.seed}, "
            f"segments={args.segments}) under {len(rules)} contract rules "
            f"for {args.seconds:g} virtual seconds"
        )
    if args.spike_at is not None:
        cluster.loop.call_later(
            args.spike_at,
            cluster.faults.set_delay_spikes,
            args.spike_prob,
            args.spike_extra,
        )
        if not args.quiet:
            print(
                f"will inject delay spikes at t+{args.spike_at:g}s "
                f"(prob={args.spike_prob:g}, extra={args.spike_extra:g}s)"
            )
    if args.blackout_at is not None:

        def blackout() -> None:
            # Default: silence the acks for some live token-forward edge —
            # the receiver (src of the acks) is the ring successor of its
            # forwarder (dst), resolved at injection time since ring order
            # is seed-dependent.
            src, dst = args.blackout_src, args.blackout_dst
            if src is None or dst is None:
                ring = cluster.node(ids[0]).members
                if len(ring) < 2:
                    ring = tuple(ids)
                dst = dst if dst is not None else ring[0]
                if src is None:
                    src = ring[(ring.index(dst) + 1) % len(ring)]
            print(
                f"injecting ack blackout {src} -> {dst} "
                f"for {args.blackout_duration:g}s"
            )
            cluster.faults.ack_blackout(src, dst, args.blackout_duration)

        cluster.loop.call_later(args.blackout_at, blackout)
        if not args.quiet:
            print(f"will inject an ack blackout at t+{args.blackout_at:g}s")

    seen_alerts = 0

    def report() -> None:
        nonlocal seen_alerts
        fresh = monitor.alerts[seen_alerts:]
        seen_alerts = len(monitor.alerts)
        for alert in fresh:
            print("ALERT " + alert.describe())
        if not args.quiet:
            print(monitor.status_line())
        cluster.loop.call_later(args.report_every, report)

    cluster.loop.call_later(args.report_every, report)
    cluster.run(args.seconds)
    monitor.evaluate()
    monitor.stop()
    for alert in monitor.alerts[seen_alerts:]:
        print("ALERT " + alert.describe())
    print(render_alerts(monitor.alerts))
    if args.expect_alerts and not monitor.alerts:
        print("expected at least one contract alert; none fired")
        return 1
    if args.fail_on_alerts and monitor.alerts:
        return 1
    return 0


def cmd_prof(args) -> int:
    import json as _json

    if args.shards is not None:
        from repro import perf
        from repro.obs.prof import render_epoch_stats
        from repro.parallel import ParallelSimulator

        if args.shards < 1:
            return _cli_error(f"--shards must be >= 1, got {args.shards}")
        sim = ParallelSimulator("multi_ring", seed=args.seed, params=perf.SCALING_WORKLOAD)
        mode = "serial" if args.shards == 1 else "process"
        result = sim.run(
            args.seconds,
            shards=args.shards,
            mode=mode,
            profile=True,
            aggregate=args.aggregate,
        )
        if args.json:
            print(_json.dumps(result.profiles, indent=2, sort_keys=True))
        elif not args.quiet:
            print(
                f"sharded profile: shards={args.shards} mode={mode} "
                f"events={result.events} epochs={result.epochs}"
            )
            print(render_epoch_stats(result.profiles))
        if args.aggregate and not args.quiet:
            from repro.obs import render_rollup

            print(render_rollup(result.rollup))
        return 0

    from repro.chaos import ChaosEngine, ChaosParams, Schedule
    from repro.obs.prof import Profiler

    schedule = Schedule.generate(
        ChaosParams(
            nodes=args.nodes,
            seconds=args.seconds,
            seed=args.seed,
            segments=args.segments,
            intensity=args.intensity,
        )
    )
    profiler = Profiler(timeline_limit=args.timeline_limit, label="chaos")
    aggregator = None

    def instrument(cluster, bus) -> None:
        nonlocal aggregator
        profiler.attach(cluster.loop).attach_bus(bus)
        if args.aggregate:
            from repro.obs import StreamAggregator

            aggregator = StreamAggregator().attach(bus)

    if not args.quiet:
        print(
            f"profiling chaos workload: nodes={args.nodes} "
            f"seconds={args.seconds:g} seed={args.seed} "
            f"ops={len(schedule.ops)}"
        )
    result = ChaosEngine(schedule, instrument=instrument).run()
    if args.json:
        print(_json.dumps(profiler.to_dict(), indent=2, sort_keys=True))
    elif not args.quiet:
        print(profiler.render_table(top=args.top))
    if aggregator is not None and not args.quiet:
        from repro.obs import render_rollup

        print(render_rollup(aggregator.to_dict()))
    if args.trace:
        try:
            with open(args.trace, "w", encoding="utf-8") as fh:
                fh.write(profiler.trace_json() + "\n")
        except OSError as exc:
            return _cli_error(f"cannot write {args.trace}: {exc}")
        if not args.quiet:
            print(f"Chrome trace written to {args.trace}")
    if not result.ok and not args.quiet:
        print(f"note: chaos run itself failed [{result.failure}] {result.detail}")
    return 0


def cmd_scaling(args) -> int:
    from repro.apps.rainwall import RainwallCluster, RainwallConfig

    print(f"{'nodes':>5} | {'Mbit/s':>8} | {'scaling':>7} | {'max CPU %':>9}")
    base = None
    for n in args.nodes:
        cfg = RainwallConfig(
            vips=[f"10.1.0.{i}" for i in range(1, n + 1)], arrival_rate=500.0
        )
        rw = RainwallCluster([f"g{i}" for i in range(n)], seed=args.seed, config=cfg)
        rw.start()
        rw.run(6.0)
        tp = rw.throughput_mbps(since=rw.loop.now - 4.0)
        cpu = max(rw.rainwall_cpu_percent(6.0).values())
        base = base if base is not None else tp
        print(f"{n:>5} | {tp:>8.1f} | {tp / base:>6.2f}x | {cpu:>8.2f}%")
    print("paper: 95 / 187 / 357 Mbit/s (1.97x, 3.76x), CPU < 1%")
    return 0


def cmd_failover(args) -> int:
    from repro.apps.rainwall import RainwallCluster, RainwallConfig

    rw = RainwallCluster(
        ["g0", "g1"], seed=args.seed, config=RainwallConfig(arrival_rate=300.0)
    )
    rw.start()
    rw.run(3.0)
    print(f"steady state: {rw.throughput_mbps(since=1.0):.1f} Mbit/s")
    rw.unplug_gateway("g1")
    rw.run(6.0)
    stalls = [f.total_stall for f in rw.engine.flows.values()]
    lost = sum(
        1 for f in rw.engine.flows.values() if not f.done and f.gateway is None
    )
    print(f"g1 unplugged: {rw.raincore.node('g1').shutdown_reason}")
    print(f"worst connection hiccup: {max(stalls):.3f}s (paper budget: 2s)")
    print(f"connections lost: {lost}")
    print(f"resumed at {rw.throughput_mbps(since=rw.loop.now - 2.0):.1f} Mbit/s")
    return 0 if max(stalls) < 2.0 and lost == 0 else 1


def cmd_merge(args) -> int:
    from repro.cluster.harness import RaincoreCluster

    cluster = RaincoreCluster(list("ABCDEF"), seed=args.seed)
    cluster.start_all()
    print(f"formed: {cluster.node('A').members}")
    cluster.faults.partition(["A", "B"], ["C", "D"], ["E", "F"])
    cluster.run(3.0)
    views = {v for v in cluster.membership_views().values()}
    print(f"split-brain: {len(views)} independent groups: {sorted(views)}")
    cluster.faults.heal_partition()
    ok = cluster.run_until_converged(20.0, expected=set("ABCDEF"))
    print(f"healed and merged: {cluster.node('A').members}")
    return 0 if ok else 1


def _parse_kill_spec(spec: str | None) -> dict[str, float]:
    """Parse ``--kill NODE@T[,NODE@T]`` into a node → seconds map."""
    kills: dict[str, float] = {}
    if not spec:
        return kills
    for part in spec.split(","):
        node, sep, at = part.strip().partition("@")
        if not sep or not node:
            raise ValueError(f"--kill takes NODE@T (e.g. n02@2.0), got {part!r}")
        try:
            kills[node] = float(at)
        except ValueError:
            raise ValueError(f"--kill {part!r}: {at!r} is not a number") from None
    return kills


def _run_live(args, *, on_line) -> "object":
    """Run a LiveCluster from parsed top/soak args (shared driver)."""
    import asyncio

    from repro.runtime.collector import LiveCluster

    cluster = LiveCluster(
        args.procs,
        seconds=args.seconds,
        hop_interval=args.hop_interval,
        kill_at=_parse_kill_spec(args.kill),
        capture_path=args.capture,
        postmortem_path=args.postmortem,
        metrics_port=getattr(args, "metrics_port", None),
        report_every=getattr(args, "every", 1.0),
        on_line=on_line,
    )
    return asyncio.run(cluster.run())


def _live_verdict(args, result, *, quiet: bool = False) -> int:
    """Shared top/soak exit-code logic over a LiveRunResult."""
    if not quiet:
        print(
            f"live cluster: {args.procs} procs, {args.seconds:g}s, "
            f"formed={result.formed}, events={result.events_released}, "
            f"alerts={len(result.alerts)}, killed={result.killed or 'none'}"
        )
        for alert in result.alerts:
            print("  " + alert.describe())
        if result.capture_path:
            print(f"capture: {result.capture_path}")
        if result.postmortem_path:
            print(f"postmortem bundle: {result.postmortem_path}")
    if getattr(args, "expect_alerts", False):
        ok = bool(result.alerts) and result.postmortem_path is not None
        if not quiet:
            print(f"expected alerts: {'fired' if ok else 'MISSING'}")
        return 0 if ok else 1
    return 0 if result.clean else 1


def cmd_top(args) -> int:
    try:
        _parse_kill_spec(args.kill)
    except ValueError as exc:
        return _cli_error(str(exc))
    result = _run_live(args, on_line=print)
    return _live_verdict(args, result)


def cmd_soak(args) -> int:
    from repro.cluster.harness import RaincoreCluster
    from repro.core.config import RaincoreConfig

    if args.procs is not None:
        # the real thing: N OS processes over UDP, raintap plane attached
        if args.procs < 2:
            return _cli_error(f"--procs must be >= 2, got {args.procs}")
        try:
            _parse_kill_spec(args.kill)
        except ValueError as exc:
            return _cli_error(str(exc))
        args.every = 1.0
        result = _run_live(args, on_line=print)
        if not result.metrics_text.strip():
            print("soak: /metrics exposition came back empty")
        rc = _live_verdict(args, result)
        verdict = "clean" if rc == 0 else "FAILED"
        print(f"soak --procs: {verdict}")
        return rc

    ids = [f"n{i:02d}" for i in range(args.nodes)]
    cluster = RaincoreCluster(
        ids, seed=args.seed, config=RaincoreConfig.tuned(ring_size=args.nodes)
    )
    cluster.start_all(form_time=30.0)
    rng = cluster.loop.rng
    rounds = int(args.duration)
    sent = 0
    for r in range(rounds):
        for _ in range(2):
            origin = ids[rng.randrange(args.nodes)]
            if cluster.node(origin).state.value != "down":
                cluster.node(origin).multicast(f"bg-{sent}")
                sent += 1
        roll = rng.random()
        live = [x.node_id for x in cluster.live_nodes()]
        if roll < 0.15 and len(live) > args.nodes // 2:
            cluster.faults.crash_node(live[rng.randrange(len(live))])
        elif roll < 0.30:
            down = [x for x in ids if x not in live]
            if down:
                cluster.faults.recover_node(down[rng.randrange(len(down))])
        elif roll < 0.40:
            cluster.faults.lose_token()
        cluster.run(1.0)
    for nid in ids:
        if cluster.node(nid).state.value == "down":
            cluster.faults.recover_node(nid)
    ok = cluster.run_until_converged(60.0, expected=set(ids))
    dupes = sum(
        len(cluster.listener(nid).delivery_keys)
        - len(set(cluster.listener(nid).delivery_keys))
        for nid in ids
    )
    print(
        f"soak: {rounds}s virtual churn on {args.nodes} nodes, {sent} multicasts"
    )
    print(f"converged after quiescence: {ok}; duplicate deliveries: {dupes}")
    regens = sum(cluster.node(nid).recovery.regenerations for nid in ids)
    print(f"token regenerations during run: {regens}")
    return 0 if ok and dupes == 0 else 1


def cmd_chaos(args) -> int:
    from repro.chaos import ChaosEngine, Schedule, run_campaign, shrink_schedule

    if args.shards is not None:
        from repro.parallel.campaign import run_sharded_campaign

        if args.shards < 1:
            return _cli_error(f"--shards must be >= 1, got {args.shards}")
        failed = 0
        alerted = 0
        for i in range(args.campaign):
            seed = args.seed + i
            print(f"--- sharded campaign seed={seed} shards={args.shards} ---")
            result = run_sharded_campaign(
                seed, args.shards, seconds=args.seconds, log=print
            )
            alerted += len(result.alerts)
            if result.ok:
                print(
                    f"clean ({result.result.events} events, "
                    f"{result.result.epochs} epochs)"
                )
            else:
                failed += 1
                for alert in result.alerts:
                    print(f"ALERT: {alert}")
        if failed:
            print(f"{failed}/{args.campaign} sharded campaigns alerted")
        if alerted and args.fail_on_alerts:
            print("failing: campaign alerts fired (--fail-on-alerts)")
            return 1
        return 0

    if args.replay:
        try:
            with open(args.replay, encoding="utf-8") as fh:
                schedule = Schedule.from_json(fh.read())
        except OSError as exc:
            return _cli_error(f"cannot read trace {args.replay}: {exc}")
        except ValueError as exc:
            return _cli_error(f"{args.replay} is not a chaos trace: {exc}")
        params = schedule.params
        if args.print_trace:
            print(schedule.to_json(), end="")
        print(
            f"replaying {args.replay}: nodes={params.nodes} "
            f"seconds={params.seconds:g} seed={params.seed} "
            f"ops={len(schedule.ops)}"
        )
        result = ChaosEngine(schedule).run()
        if result.alerts:
            from repro.obs import render_alerts

            print(render_alerts(result.alerts))
        if result.ok:
            print(f"clean ({result.stats['deliveries']} deliveries)")
            if args.fail_on_alerts and result.alerts:
                print("failing: contract alerts fired (--fail-on-alerts)")
                return 1
            return 0
        print(f"FAILED [{result.failure}] {result.detail}")
        if result.bundle is not None:
            import os

            from repro.obs import dump_bundle

            path = dump_bundle(
                result.bundle,
                os.path.join(
                    args.artifacts, f"replay-seed{params.seed}.bundle.json"
                ),
            )
            print(f"diagnostic bundle written to {path}")
            print(f"  inspect with: raincore-repro obs render {path}")
        if not args.no_shrink and len(schedule.ops) > 1:
            print("shrinking ...")
            minimal, tests = shrink_schedule(
                schedule, lambda s: not ChaosEngine(s).run().ok
            )
            print(
                f"shrunk {len(schedule.ops)} -> {len(minimal.ops)} ops "
                f"in {tests} engine runs:"
            )
            for op in minimal.ops:
                print(f"  t={op.at:<10g} {op.kind} {list(op.args)}")
        return 1

    if args.partition:
        from repro.chaos import ChaosParams, FaultOp

        try:
            spec, _, rest = args.partition.partition(":")
            isolated = tuple(n for n in spec.split(",") if n)
            duration_s, _, at_s = rest.partition(":")
            duration = float(duration_s)
            at = float(at_s) if at_s else 2.0
            if not isolated or duration <= 0.0 or at < 0.0:
                raise ValueError("empty node list or non-positive time")
        except ValueError as exc:
            return _cli_error(
                f"bad --partition spec {args.partition!r} "
                f"(want NODES:DURATION[:AT]): {exc}"
            )
        schedule = Schedule(
            params=ChaosParams(
                nodes=args.nodes,
                seconds=args.seconds,
                seed=args.seed,
                segments=args.segments,
                strict=args.strict,
            ),
            ops=[FaultOp(at=at, kind="long_partition", args=(isolated, duration))],
        )
        if args.print_trace:
            print(schedule.to_json(), end="")
        print(
            f"long partition: isolating {','.join(isolated)} for "
            f"{duration:g}s at t={at:g}s (window {args.seconds:g}s)"
        )
        result = ChaosEngine(schedule).run()
        if result.alerts:
            from repro.obs import render_alerts

            print(render_alerts(result.alerts))
        if result.ok:
            print(f"clean ({result.stats['deliveries']} deliveries)")
            if args.fail_on_alerts and result.alerts:
                print("failing: contract alerts fired (--fail-on-alerts)")
                return 1
            return 0
        print(f"FAILED [{result.failure}] {result.detail}")
        return 1

    if args.print_trace:
        from repro.chaos import ChaosParams

        print(
            Schedule.generate(
                ChaosParams(
                    nodes=args.nodes,
                    seconds=args.seconds,
                    seed=args.seed,
                    segments=args.segments,
                    intensity=args.intensity,
                    strict=args.strict,
                )
            ).to_json(),
            end="",
        )
    campaign = run_campaign(
        args.nodes,
        args.seconds,
        args.seed,
        campaign=args.campaign,
        segments=args.segments,
        intensity=args.intensity,
        strict=args.strict,
        artifacts_dir=args.artifacts,
        shrink=not args.no_shrink,
        log=print,
    )
    campaign.summary_table().print()
    if campaign.artifacts:
        print("artifacts:")
        for path in campaign.artifacts:
            print(f"  {path}")
    alerted = sum(len(r.alerts) for r in campaign.results)
    if alerted:
        print(f"contract alerts across campaign: {alerted}")
        if args.fail_on_alerts:
            print("failing: contract alerts fired (--fail-on-alerts)")
            return 1
    return 0 if campaign.ok else 1


def cmd_hierarchy(args) -> int:
    from repro.hierarchy import HierarchicalCluster

    groups = [
        [f"{chr(ord('a') + g)}{i}" for i in range(args.group_size)]
        for g in range(args.groups)
    ]
    h = HierarchicalCluster(groups, seed=args.seed)
    h.start()
    print(f"{args.groups} sub-rings of {args.group_size}; leaders: {h.current_leaders()}")
    print(f"top ring: {h.top_view()}")
    sender = groups[0][-1]
    h.members[sender].multicast_global("global hello")
    h.run(4.0)
    reach = sum(1 for nid in h.machine_ids if h.global_log[nid])
    print(f"global multicast from {sender} reached {reach}/{len(h.machine_ids)} machines")
    victim = h.current_leaders()[0]
    print(f"crashing leader {victim} ...")
    h.crash_machine(victim)
    ok = h.run_until_formed(20.0)
    print(f"re-formed: leaders {h.current_leaders()}, top ring {h.top_view()}")
    return 0 if ok and reach == len(h.machine_ids) else 1


def cmd_lint(args) -> int:
    from repro.lint.cli import cmd_lint as run_lint

    return run_lint(args)


def cmd_spec(args) -> int:
    from repro.spec.cli import cmd_spec as run_spec

    return run_spec(args)


def cmd_bench(args) -> int:
    import json

    from repro import perf

    if args.shards is not None:
        from repro.parallel import ParallelSimulator

        if args.shards < 1:
            return _cli_error(f"--shards must be >= 1, got {args.shards}")
        counts = tuple(k for k in (1, 2, 4, 8) if k <= args.shards)
        sim = ParallelSimulator("multi_ring", seed=11, params=perf.SCALING_WORKLOAD)
        print(sim.plan().render_report())
        knobs = perf.QUICK if args.quick else perf.FULL
        scaling = perf.bench_shard_scaling(
            knobs["scaling_sim_seconds"], shard_counts=counts
        )
        print(f"cpu_count: {scaling['cpu_count']}  events: {scaling['events']}")
        for shards, row in scaling["curve"].items():
            print(
                f"  shards={shards:>2}: wall={row['wall_seconds']:.3f}s "
                f"speedup={row['speedup']:.2f}x"
            )
        eff = scaling["shard_scaling_efficiency_4x"]
        if eff is not None:
            print(f"  efficiency_4x (speedup / min(4, cpus)): {eff:.2f}")
        if args.out:
            perf.write_report(args.out, {"schema": 1, "shard_scaling": scaling})
            print(f"report written to {args.out}")
        return 0

    report = perf.run_suite(quick=args.quick, repeats=args.repeats)
    for name, value in sorted(report["metrics"].items()):
        print(f"{name:>32}: {value:,}" if isinstance(value, int) else
              f"{name:>32}: {value}")
    if args.out:
        perf.write_report(args.out, report)
        print(f"report written to {args.out}")
    if args.record:
        import subprocess

        try:
            git_sha = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, check=True,
            ).stdout.strip()
        except (OSError, subprocess.CalledProcessError):
            git_sha = "unknown"
        row = perf.append_history(
            args.record, report, git_sha=git_sha, label=args.label
        )
        print(f"recorded {row['git_sha']} ({row['date']}) in {args.record}")
    if args.check:
        with open(args.check, encoding="utf-8") as fh:
            baseline = json.load(fh)
        problems = perf.compare(report, baseline, args.tolerance)
        if problems:
            print(f"PERF REGRESSION vs {args.check}:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"within {args.tolerance:.0%} of baseline {args.check}")
    return 0


_COMMANDS = {
    "info": cmd_info,
    "quickstart": cmd_quickstart,
    "trace": cmd_trace,
    "obs": cmd_obs,
    "prof": cmd_prof,
    "watch": cmd_watch,
    "scaling": cmd_scaling,
    "failover": cmd_failover,
    "merge": cmd_merge,
    "hierarchy": cmd_hierarchy,
    "soak": cmd_soak,
    "top": cmd_top,
    "chaos": cmd_chaos,
    "lint": cmd_lint,
    "spec": cmd_spec,
    "bench": cmd_bench,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
