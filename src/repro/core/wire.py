"""Control messages of the session layer: 911 and BODYODOR (paper §2.3–2.4).

These are the only session-layer messages besides the TOKEN itself.  The 911
message doubles as token-regeneration request and join request — the paper
makes a point of this unification (§2.3): it is what lets wrongly-removed
nodes and nodes behind broken links rejoin automatically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.transport.messages import session_message

__all__ = ["NineOneOne", "NineOneOneReply", "ReplyVerdict", "BodyOdor"]

#: Modelled wire sizes (bytes) of the small control messages.
_CONTROL_SIZE = 32


@session_message
@dataclass(frozen=True)
class NineOneOne:
    """A 911 message: request to regenerate the token — or to join.

    ``last_seq`` is the sequence number on the sender's last local copy of
    the TOKEN; ``-1`` for a fresh node that has never held one.  ``round_id``
    correlates replies to one STARVING episode so stale replies from an
    earlier round are ignored.
    """

    sender: str
    last_seq: int
    round_id: int

    def wire_size(self) -> int:
        return _CONTROL_SIZE


class ReplyVerdict(enum.Enum):
    """Outcome of a 911 request at one receiver."""

    GRANT = "grant"  #: receiver's copy is not newer and it has no token
    DENY_HAVE_TOKEN = "deny_have_token"  #: receiver currently holds the token
    DENY_NEWER_COPY = "deny_newer_copy"  #: receiver has a more recent copy
    JOIN_PENDING = "join_pending"  #: sender is not a member; treated as join


@session_message
@dataclass(frozen=True)
class NineOneOneReply:
    """Reply to a 911 request."""

    sender: str
    round_id: int
    verdict: ReplyVerdict
    seq_seen: int  #: replier's local-copy seq (diagnostic / tie reasoning)

    def wire_size(self) -> int:
        return _CONTROL_SIZE


@session_message
@dataclass(frozen=True)
class BodyOdor:
    """Discovery beacon (paper §2.4).

    Sent periodically by every healthy member to nodes that are in the
    *Eligible Membership* but not in the current group membership.  Carries
    the sender's id and its group id (lowest member id).  Treated as a join
    request by the receiver iff the sender's group id is **lower** than the
    receiver's — the deadlock-avoiding tie-break of the merge protocol.
    """

    sender: str
    group_id: str

    def wire_size(self) -> int:
        return _CONTROL_SIZE
