"""Split-brain discovery and group merge — paper §2.4.

When a partition heals, Raincore merges the surviving sub-groups:

* **Discovery** — every healthy member periodically sends a small BODYODOR
  beacon to each node that is in its configured *Eligible Membership* but
  not in its current group membership.  The beacon carries the sender's
  node id and group id (the lowest member id).
* **Tie-break** — a BODYODOR is treated as a join request iff the sender's
  group id is **lower** than the receiver's.  With k sub-groups this induces
  a total order on merges, so they complete without deadlock.
* **Merge handshake** — the receiver waits for its token, adds the BODYODOR
  sender to the membership, marks the **TBM** (To Be Merged) flag, and sends
  the TBM token to the sender.  The sender holds the TBM token until its own
  group's token arrives, then merges the two memberships and concatenates
  the two message queues into a single token (DESIGN.md §6.4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.membership import merge_rings
from repro.core.token import Token, derive_ancestry
from repro.core.wire import BodyOdor

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.session import RaincoreNode

__all__ = ["MergeProtocol"]


class MergeProtocol:
    """Per-node discovery beaconing and TBM merge state."""

    def __init__(self, node: "RaincoreNode") -> None:
        self.node = node
        self.eligible: set[str] = set()
        self._pending_merge_joins: list[str] = []
        self._held_tbm: Token | None = None
        self._tbm_timer = None
        self._beacon_timer = None
        self._running = False
        # Counters for tests/benchmarks.
        self.beacons_sent = 0
        self.merges_completed = 0
        self.merges_initiated = 0

    # ------------------------------------------------------------------
    # configuration & lifecycle
    # ------------------------------------------------------------------
    def set_eligible(self, node_ids: set[str] | list[str] | tuple[str, ...]) -> None:
        """Update the Eligible Membership online (paper: "the configuration
        can be changed and updated online")."""
        self.eligible = set(node_ids)

    def start(self) -> None:
        self._running = True
        self._arm_beacon()

    def stop(self) -> None:
        self._running = False
        if self._beacon_timer is not None:
            self._beacon_timer.cancel()
            self._beacon_timer = None
        if self._tbm_timer is not None:
            self._tbm_timer.cancel()
            self._tbm_timer = None
        self._held_tbm = None
        self._pending_merge_joins.clear()

    def _arm_beacon(self) -> None:
        if not self._running:
            return
        self._beacon_timer = self.node.loop.call_later(
            self.node.config.bodyodor_interval, self._beacon
        )

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------
    def _beacon(self) -> None:
        node = self.node
        if not self._running or not node.is_member:
            self._arm_beacon()
            return
        targets = self.eligible - set(node.members) - {node.node_id}
        if targets:
            node._gc_wakeup()
            beacon = BodyOdor(node.node_id, node.group_id)
            for target in sorted(targets):
                node.transport.send_best_effort(target, beacon)
                self.beacons_sent += 1
        self._arm_beacon()

    def handle_bodyodor(self, msg: BodyOdor) -> None:
        node = self.node
        if not node.is_member:
            return
        if msg.sender in node.members:
            return  # already merged; stale beacon
        if msg.sender not in self.eligible:
            return  # not configured as an eligible member
        if msg.sender in node.quarantined:
            return  # resync ladder quarantined it; wait out the backoff
        if msg.group_id >= node.group_id:
            # The other side has the higher group id; *they* will treat our
            # beacons as the join request.  Doing nothing here is what
            # prevents merge deadlocks (paper: group ids as tie-breakers).
            return
        if msg.sender not in self._pending_merge_joins:
            self._pending_merge_joins.append(msg.sender)

    # ------------------------------------------------------------------
    # token-visit hook (initiating side — the higher group id)
    # ------------------------------------------------------------------
    def maybe_initiate(self, token: Token) -> str | None:
        """If a discovered sub-group awaits, start the merge on this visit.

        Adds the BODYODOR sender to the token's membership, sets the TBM
        flag, and returns the sender's id as the forwarding override so the
        TBM token goes straight to it.
        """
        while self._pending_merge_joins:
            target = self._pending_merge_joins.pop(0)
            if token.has_member(target):
                continue  # merged through another path meanwhile
            token.insert_after(self.node.node_id, target)
            token.tbm = True
            self.merges_initiated += 1
            return target
        return None

    # ------------------------------------------------------------------
    # TBM handling (joining side — the lower group id)
    # ------------------------------------------------------------------
    def handle_tbm(self, tbm_token: Token) -> bool:
        """A TBM token arrived: hold it until our own group's token comes.

        Returns False when a TBM is already held — the caller then refuses
        the newcomer so the second initiator's ring routes around us
        instead of losing its token.
        """
        node = self.node
        if self._held_tbm is not None:
            return False
        self._held_tbm = tbm_token
        if self._tbm_timer is not None:
            self._tbm_timer.cancel()
        # Safety valve: if our own token never shows up (it may be lost at
        # the same time), drop the held TBM after the hungry timeout — the
        # initiating group regenerates and discovery retries.
        self._tbm_timer = node.loop.call_later(
            node.config.hungry_timeout, self._drop_held_tbm
        )
        if node.is_eating:
            node._merge_now()
        return True

    def _drop_held_tbm(self) -> None:
        if self._held_tbm is not None:
            self.node._gc_wakeup()
            self._held_tbm = None

    @property
    def holding_tbm(self) -> bool:
        return self._held_tbm is not None

    def merge_with_own(self, own: Token) -> Token:
        """Combine the held TBM token with our own token (paper §2.4).

        The merged ring uses the TBM token's ring as the base (it already
        contains us) and splices our own ring's other members in after us;
        the message queues are concatenated with pending sets pruned to the
        merged membership (each message still completes only within its
        original attach view — DESIGN.md §6.4).
        """
        tbm = self._held_tbm
        if tbm is None:
            raise RuntimeError("no held TBM token to merge")
        self._held_tbm = None
        if self._tbm_timer is not None:
            self._tbm_timer.cancel()
            self._tbm_timer = None

        merged_ring = merge_rings(tbm.membership, self.node.node_id, own.membership)
        merged = Token(
            seq=max(tbm.seq, own.seq) + 1,
            membership=merged_ring,
            messages=list(tbm.messages) + list(own.messages),
            tbm=False,
            view_id=max(tbm.view_id, own.view_id) + 1,
            gen=self.node._next_gen(),
            # Both parent gens head the chain: members of either side must
            # recognize the merged token as their lineage's continuation.
            ancestry=derive_ancestry(tbm, own),
        )
        probe = self.node.probe
        if probe is not None:
            # Both parent lineages are recorded here (probe stream only);
            # bundles use them to follow spans across the merge.
            probe.emit(
                self.node.node_id,
                "token.merge",
                merged.gen,
                tbm.gen,
                own.gen,
                merged.seq,
            )
        alive = set(merged_ring)
        messages = merged.messages
        for i, msg in enumerate(messages):
            if msg.shared:
                msg = messages[i] = msg.cow()
            msg.pending &= alive
        self.merges_completed += 1
        return merged
