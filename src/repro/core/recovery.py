"""The 911 token-recovery and join protocol — paper §2.3.

One message type serves three purposes, and the unification is the point:

* **Token regeneration** — a STARVING node asks every member of its local
  membership for the right to regenerate the TOKEN from its local copy,
  carrying the copy's sequence number.  Any node holding the token, or
  holding a *more recent* copy, denies.  Unanimous grant over reachable
  members means the requester's copy is the newest surviving state, so it —
  and only it — regenerates.  Local copies made at distinct hops have
  distinct sequence numbers; the one legitimate collision — a holder that
  lost the token shares its predecessor's forward seq — is resolved by the
  node-id tie-break in the grant rule, so no two requesters can both win.
* **Join** — a 911 from a node that is *not* in the receiver's membership is
  a join request: the receiver adds the sender to the token's ring right
  after itself on its next visit and forwards the token to the newcomer.
* **Self-healing** — a member removed by a failure-detector false alarm or a
  broken link starves, sends a 911, is treated as a joiner, and re-enters
  the ring at a position that bypasses the broken link (the paper's
  ABCD → ACD → ACBD example).

Design decision DESIGN.md §6.1: the 911 is fanned out to every member of the
requester's local membership (the paper requires approval "by all the live
nodes"); failure-on-delivery counts a peer as dead and excludes it from both
the vote and the regenerated membership.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.core.states import NodeState
from repro.core.token import derive_ancestry
from repro.core.wire import NineOneOne, NineOneOneReply, ReplyVerdict

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.session import RaincoreNode
    from repro.core.token import Token

__all__ = ["RecoveryProtocol"]

#: Extra seq margin for regenerated tokens so any straggler token from the
#: lost epoch is rejected by the strictly-greater acceptance guard.
REGEN_SEQ_MARGIN = 1


class RecoveryProtocol:
    """Per-node 911 state machine (starving rounds, joins, regeneration)."""

    def __init__(self, node: "RaincoreNode") -> None:
        self.node = node
        # Join requests received from non-members, applied at next token.
        self.pending_joins: list[str] = []
        # Outgoing starving round.
        self._round_ids = itertools.count(1)
        self._active_round: int | None = None
        self._awaiting: set[str] = set()
        self._dead_this_round: set[str] = set()
        self._grants_this_round = 0
        self._join_pending_this_round = 0
        self._round_timer = None
        # Outgoing join attempt.
        self._join_contacts: list[str] = []
        self._join_attempt = 0
        self._join_timer = None
        # Counters for tests/benchmarks.
        self.regenerations = 0
        self.rounds_started = 0
        self.rounds_denied = 0

    # ------------------------------------------------------------------
    # STARVING: token-loss recovery
    # ------------------------------------------------------------------
    def on_hungry_timeout(self) -> None:
        """HUNGRY timer expired: suspect token loss, start a 911 round."""
        node = self.node
        if node.state is not NodeState.HUNGRY:
            return
        node._transition(NodeState.STARVING)
        self._start_round()

    def _start_round(self) -> None:
        node = self.node
        if node.state is not NodeState.STARVING:
            return
        peers = [m for m in node.members if m != node.node_id]
        self.rounds_started += 1
        if not peers:
            # Alone in our view: nobody to ask; regenerate immediately.
            self._regenerate()
            return
        round_id = next(self._round_ids)
        self._active_round = round_id
        self._awaiting = set(peers)
        self._dead_this_round = set()
        self._grants_this_round = 0
        self._join_pending_this_round = 0
        probe = node.probe
        if probe is not None:
            probe.emit(
                node.node_id, "recovery.round", round_id, node.local_copy_seq, len(peers)
            )
        msg = NineOneOne(node.node_id, node.local_copy_seq, round_id)
        for peer in peers:
            node.transport.send(
                peer,
                msg,
                on_result=lambda ok, p=peer, r=round_id: self._on_send_result(
                    p, r, ok
                ),
            )
        # Safety net: a peer may ack the 911 but die before replying.
        self._round_timer = node.loop.call_later(
            node.config.starving_backoff, self._on_round_timeout, round_id
        )

    def _on_send_result(self, peer: str, round_id: int, ok: bool) -> None:
        if round_id != self._active_round:
            return
        if not ok:
            # Failure-on-delivery: the peer is dead from our local view;
            # it neither votes nor appears in a regenerated membership.
            self.node._gc_wakeup()
            self._dead_this_round.add(peer)
            self._awaiting.discard(peer)
            self._check_complete()

    def handle_reply(self, reply: NineOneOneReply) -> None:
        if reply.round_id != self._active_round:
            return
        if self.node.state is not NodeState.STARVING:
            self._abort_round()
            return
        if reply.verdict is ReplyVerdict.GRANT:
            self._grants_this_round += 1
            self._awaiting.discard(reply.sender)
            self._check_complete()
            return
        if reply.verdict is ReplyVerdict.JOIN_PENDING:
            # The replier does not consider us a member.  That is only
            # decisive if *everyone* says so (we really were removed —
            # false alarm or link failure; wait to be re-admitted).  With
            # divergent views after partition tangles, a single stale
            # replier must not veto the members who do recognize us:
            # treat it as an abstention and exclude the replier from the
            # membership we would regenerate.
            self._dead_this_round.add(reply.sender)
            self._awaiting.discard(reply.sender)
            self._join_pending_this_round += 1
            self._check_complete()
            return
        # DENY_HAVE_TOKEN / DENY_NEWER_COPY: the token is alive (or a better
        # candidate exists); go back to waiting for it.
        probe = self.node.probe
        if probe is not None:
            probe.emit(self.node.node_id, "recovery.denied", reply.round_id)
        self._abort_round()
        self.rounds_denied += 1
        self.node._transition(NodeState.HUNGRY)
        self.node._arm_hungry_timer()

    def _on_round_timeout(self, round_id: int) -> None:
        if round_id != self._active_round:
            return
        self.node._gc_wakeup()
        # Unresponsive peers (acked but never replied) are treated as dead,
        # exactly like failure-on-delivery.
        self._dead_this_round.update(self._awaiting)
        self._awaiting = set()
        self._check_complete()

    def _check_complete(self) -> None:
        if self._active_round is None or self._awaiting:
            return
        self._abort_round()
        if self._grants_this_round == 0 and self._join_pending_this_round > 0:
            # Unanimous "you are not one of us": we really were removed;
            # the repliers queued us as a joiner — wait for the token.
            self.rounds_denied += 1
            self.node._transition(NodeState.JOINING)
            self._arm_join_timer()
            return
        self._regenerate()

    def _abort_round(self) -> None:
        self._active_round = None
        if self._awaiting:
            self._awaiting = set()
        if self._round_timer is not None:
            self._round_timer.cancel()
            self._round_timer = None

    def _regenerate(self) -> None:
        """Unanimously granted: rebuild the token from our local copy."""
        node = self.node
        if node.state is not NodeState.STARVING:
            return
        copy = node.local_copy
        if copy is None:
            # Never held a token (fresh bootstrap race); form our own group.
            node._bootstrap_token()
            return
        token = copy.copy()
        for dead in self._dead_this_round:
            token.remove_member(dead)
        if not token.has_member(node.node_id):  # pragma: no cover - defensive
            token.membership = (node.node_id,) + token.membership
        token.seq = copy.seq + REGEN_SEQ_MARGIN
        token.tbm = False
        # The regenerated token starts a new lineage descending from the
        # copy's: the parent gen heads the ancestry chain, so every member
        # bound to the old lineage accepts this token as its continuation
        # (and a survivor of the old token, should it still circulate, is
        # diverted by the lineage guard instead of racing us).
        parent = token.gen
        token.ancestry = derive_ancestry(copy)
        token.gen = node._next_gen()
        probe = node.probe
        if probe is not None:
            probe.emit(node.node_id, "token.regen", token.gen, parent, token.seq)
        self.regenerations += 1
        node._accept_token(token)

    # ------------------------------------------------------------------
    # incoming 911s
    # ------------------------------------------------------------------
    def handle_911(self, msg: NineOneOne) -> None:
        node = self.node
        if msg.sender not in node.members:
            # Join request (new node, wrongly-removed node, or node behind a
            # broken link).  Queue it; the token visit applies it.  A
            # quarantined sender still gets JOIN_PENDING (so it keeps
            # politely knocking) but is not queued until the backoff lifts.
            if (
                msg.sender not in self.pending_joins
                and msg.sender not in node.quarantined
            ):
                self.pending_joins.append(msg.sender)
            verdict = ReplyVerdict.JOIN_PENDING
        elif node.is_eating:
            verdict = ReplyVerdict.DENY_HAVE_TOKEN
        else:
            my_seq = node.local_copy_seq
            if my_seq > msg.last_seq or (
                my_seq == msg.last_seq and node.node_id < msg.sender
            ):
                # Tie-break on node id makes the winner unique even in the
                # (theoretically impossible) equal-seq case.
                verdict = ReplyVerdict.DENY_NEWER_COPY
            else:
                verdict = ReplyVerdict.GRANT
        reply = NineOneOneReply(node.node_id, msg.round_id, verdict, node.local_copy_seq)
        node.transport.send(msg.sender, reply)

    # ------------------------------------------------------------------
    # joining a group
    # ------------------------------------------------------------------
    def start_join(self, contacts: list[str]) -> None:
        """Ask ``contacts`` (tried round-robin) to admit us to their group."""
        if not contacts:
            raise ValueError("need at least one contact to join")
        self._join_contacts = list(contacts)
        self._join_attempt = 0
        self._send_join_911()

    def _send_join_911(self) -> None:
        node = self.node
        if node.state is not NodeState.JOINING:
            return
        contact = self._join_contacts[self._join_attempt % len(self._join_contacts)]
        self._join_attempt += 1
        round_id = next(self._round_ids)
        probe = node.probe
        if probe is not None:
            probe.emit(node.node_id, "recovery.join", contact, self._join_attempt)
        msg = NineOneOne(node.node_id, node.local_copy_seq, round_id)
        node.transport.send(contact, msg)
        self._arm_join_timer()

    def _arm_join_timer(self) -> None:
        node = self.node
        if self._join_timer is not None:
            self._join_timer.cancel()
        self._join_timer = node.loop.call_later(
            node.config.join_retry, self._on_join_timeout
        )

    def _on_join_timeout(self) -> None:
        node = self.node
        if node.state is not NodeState.JOINING:
            return
        node._gc_wakeup()
        if not self._join_contacts:
            # We got here via JOIN_PENDING (we were a member and were
            # removed): keep knocking at our former peers.
            self._join_contacts = [m for m in node.members if m != node.node_id]
            if not self._join_contacts:
                node._transition(NodeState.STARVING)
                self._start_round()
                return
        # Escalation: if repeated knocking has gone nowhere and we still
        # hold a token copy, the neighbourhood may be wedged (everyone
        # JOINING at everyone after a partition tangle).  The node with
        # the newest copy must break the deadlock by attempting a proper
        # 911 regeneration round.
        if (
            node.local_copy is not None
            and self._join_attempt >= max(4, 2 * len(self._join_contacts))
        ):
            self._join_attempt = 0
            node._transition(NodeState.STARVING)
            self._start_round()
            return
        self._send_join_911()

    # ------------------------------------------------------------------
    # token-visit hook
    # ------------------------------------------------------------------
    def on_token(self, token: "Token") -> None:
        """Apply queued join requests: insert joiners right after us.

        The forwarding step then naturally hands the token to the first
        joiner — the paper's "It then sends the TOKEN to the new node."
        """
        me = self.node.node_id
        for joiner in self.pending_joins:
            if joiner != me and not token.has_member(joiner):
                token.insert_after(me, joiner)
        self.pending_joins.clear()
        # Quarantine eviction: a peer the resync ladder gave up on is
        # removed from the ring here, on the same visit joins apply.
        for peer in sorted(self.node.quarantined):
            if peer != me and token.has_member(peer):
                token.remove_member(peer)

    def cancel_timers(self) -> None:
        """Token arrived or node shut down: stop all recovery activity."""
        self._abort_round()
        if self._join_timer is not None:
            self._join_timer.cancel()
            self._join_timer = None
