"""Mutual exclusion via the token — paper §2.7.

    "Because of the uniqueness of the TOKEN, it guarantees that at most one
    node can be in the EATING state at any time. ...  When a node is in the
    EATING state, it is assured that no other node is EATING, and that its
    change to global data is authoritative."

The service exposes a queue of *critical sections*: callables executed the
next time this node holds the token.  Because the token visits every node in
ring order, the master lock is starvation-free — each node gets the token
once per roundtrip (fairness, paper §2.7).  The 911 protocol makes the lock
fault-tolerant: a token lost with its holder is regenerated, releasing the
lock in bounded time.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.session import RaincoreNode

__all__ = ["MutexService"]


class MutexService:
    """Per-node critical-section scheduler backed by token possession."""

    def __init__(self, node: "RaincoreNode") -> None:
        self.node = node
        self._queue: deque[Callable[[], None]] = deque()
        self.sections_run = 0

    def run_exclusive(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` while this node holds the token (EATING).

        If the node is EATING right now the section runs immediately;
        otherwise it is queued for the next token visit.  Sections queued
        during a visit (including from inside another section) run in the
        same visit, FIFO.
        """
        self._queue.append(fn)
        if self.node.is_eating:
            self.on_token()

    def pending(self) -> int:
        """Critical sections waiting for the token."""
        return len(self._queue)

    def on_token(self) -> None:
        """Drain the critical-section queue; called while EATING."""
        while self._queue:
            fn = self._queue.popleft()
            self.sections_run += 1
            fn()
