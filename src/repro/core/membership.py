"""Ring-membership helpers shared by the session sub-protocols.

The authoritative membership lives *on the token* (paper §2.2); each node
additionally keeps a local view — the membership as of the last token it
saw — used for 911 fan-out, BODYODOR targeting and application queries.
These are pure functions over ring tuples so they are trivially testable.
"""

from __future__ import annotations

__all__ = [
    "ring_successor",
    "ring_predecessor",
    "rotate_to",
    "merge_rings",
]


def ring_successor(ring: tuple[str, ...], node_id: str) -> str:
    """Next node after ``node_id`` in ring order (wrapping)."""
    idx = ring.index(node_id)
    return ring[(idx + 1) % len(ring)]


def ring_predecessor(ring: tuple[str, ...], node_id: str) -> str:
    """Node before ``node_id`` in ring order (wrapping)."""
    idx = ring.index(node_id)
    return ring[(idx - 1) % len(ring)]


def rotate_to(ring: tuple[str, ...], head: str) -> tuple[str, ...]:
    """Rotate the ring so it starts at ``head`` (same cyclic order)."""
    idx = ring.index(head)
    return ring[idx:] + ring[:idx]


def merge_rings(
    base: tuple[str, ...], joiner: str, other: tuple[str, ...]
) -> tuple[str, ...]:
    """Merge ``other``'s ring into ``base`` at ``joiner``'s position.

    Used by the group-merge protocol (paper §2.4): ``base`` is the TBM
    token's ring (the higher-group-id side, which already contains
    ``joiner``); ``other`` is the joiner's own sub-group ring.  Members of
    ``other`` not already in ``base`` are spliced in immediately after
    ``joiner``, preserving their cyclic order starting from ``joiner`` —
    so both rings' neighbour relationships survive the merge as much as
    possible.
    """
    if joiner not in base:
        raise ValueError(f"joiner {joiner!r} not in base ring")
    present = set(base)
    if joiner in other:
        ordered_other = rotate_to(other, joiner)
    else:  # pragma: no cover - defensive; joiner leads its own ring
        ordered_other = other
    to_insert = [m for m in ordered_other if m not in present]
    merged = list(base)
    at = merged.index(joiner) + 1
    for offset, member in enumerate(to_insert):
        merged.insert(at + offset, member)
    return tuple(merged)
