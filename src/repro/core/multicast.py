"""Reliable atomic multicast over the token — paper §2.6.

    "The token ring protocol also serves as a 'locomotive' for the reliable
    multicast transport.  In other words, reliable multicast is achieved by
    piggybacking the messages to the token, while the token traverses the
    ring."

Semantics implemented here (see DESIGN.md §6.2 for the bookkeeping scheme):

* **Atomicity** — every message tracks the audience members that have not
  yet received it; membership removals prune the set, so a message is
  received by every *surviving* audience member or (if the whole audience
  is gone) by none beyond those already reached.
* **Agreed ordering** (free) — all nodes deliver all messages in token
  attach order.  To keep the order uniform even when AGREED and SAFE
  messages interleave, each node buffers received messages in a local hold
  queue in token order and delivers only a deliverable *prefix*: an AGREED
  message behind a not-yet-confirmed SAFE message waits for it (the same
  discipline Totem uses).
* **Safe ordering** (one extra token round, paper §2.6) — a SAFE message is
  received by every audience member during its first round; the node that
  observes the receipt set empty marks it CONFIRMED and re-arms the set,
  and members deliver during the second round.

Duplicate suppression by message uid makes delivery idempotent across 911
token regeneration, which may legitimately replay a recent token state.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.events import Delivery
from repro.core.token import MSG_HEADER, Ordering, PiggybackedMessage, Token

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.session import RaincoreNode

__all__ = ["MulticastService", "DeferredPayload"]

#: Default modelled payload size when the payload has no length (bytes).
DEFAULT_PAYLOAD_SIZE = 64

#: Bound on remembered message uids for duplicate suppression.
SEEN_WINDOW = 65536


class DeferredPayload:
    """A payload materialized at token-attach time.

    The attach point *is* the message's position in the group's total
    order, and by then this node has delivered every message ordered before
    it.  A factory evaluated at attach therefore captures state consistent
    with the message's position — which is exactly what replicated-state
    snapshots (the Data Service's join-time state transfer) need.

    ``factory`` returns ``(payload, size_in_bytes)``.
    """

    __slots__ = ("factory",)

    def __init__(self, factory: Callable[[], tuple[object, int]]) -> None:
        self.factory = factory


@dataclass(slots=True)
class _Held:
    """A received message buffered locally until it is deliverable in order."""

    uid: int
    origin: str
    msg_no: int
    payload: object
    ordering: Ordering
    deliverable: bool


class MulticastService:
    """Per-node multicast send queue, receipt tracking and ordered delivery."""

    def __init__(self, node: "RaincoreNode") -> None:
        self.node = node
        self._msg_no = itertools.count(1)
        self._outbox: deque[PiggybackedMessage] = deque()
        self._hold: deque[_Held] = deque()
        self._seen: set[int] = set()
        self._seen_fifo: deque[int] = deque()

    # ------------------------------------------------------------------
    # public API (called by the application through RaincoreNode)
    # ------------------------------------------------------------------
    def multicast(
        self,
        payload: object,
        size: int | None = None,
        ordering: Ordering = Ordering.AGREED,
    ) -> tuple[str, int]:
        """Queue ``payload`` for reliable multicast to the group.

        The message is attached to the token on this node's next visit.
        Returns the multicast identity ``(origin, msg_no)``.  ``size`` is
        the modelled wire size in bytes; defaults to ``len(payload)`` for
        sized payloads, else ``DEFAULT_PAYLOAD_SIZE``.
        """
        if size is None:
            try:
                size = len(payload)  # type: ignore[arg-type]
            except TypeError:
                size = DEFAULT_PAYLOAD_SIZE
        if size < 0:
            raise ValueError("size must be non-negative")
        msg_no = next(self._msg_no)
        msg = PiggybackedMessage(
            origin=self.node.node_id,
            msg_no=msg_no,
            payload=payload,
            size=size,
            ordering=ordering,
        )
        self._outbox.append(msg)
        self.node.stats.messages_multicast += 1
        return (self.node.node_id, msg_no)

    def outbox_depth(self) -> int:
        """Messages queued locally, not yet attached to the token."""
        return len(self._outbox)

    def buffered_bytes(self) -> int:
        """Modelled bytes queued locally, not yet attached to the token.

        Deferred payloads count as their declared queue-time size (0 for
        snapshots materialized at attach) — the bound tracked here is the
        *backlog*, not the eventual wire cost.
        """
        return sum(m.size for m in self._outbox)

    def reset(self) -> None:
        """Drop queued and held messages (node restart).

        The duplicate-suppression window is kept: a rejoining incarnation
        must still ignore replays of messages it received before the crash.
        """
        self._outbox.clear()
        self._hold.clear()

    # ------------------------------------------------------------------
    # token-visit pipeline (called by RaincoreNode while EATING)
    # ------------------------------------------------------------------
    def on_token(self, token: Token) -> None:
        """Process one token visit: receive, confirm/retire, deliver, attach.

        Draining *before* the attach pass guarantees that a message attached
        this visit is ordered after — and its :class:`DeferredPayload`
        factory observes — every delivery that precedes it in the total
        order.  A second drain delivers this node's own fresh messages.
        """
        self._receive_pass(token)
        self._retire_pass(token)
        self._drain_deliverable()
        self._attach_pass(token)
        self._drain_deliverable()

    def _receive_pass(self, token: Token) -> None:
        me = self.node.node_id
        messages = token.messages
        for i, msg in enumerate(messages):
            if me not in msg.pending:
                # Not (or no longer) addressed to us this phase; but a SAFE
                # message we already hold may have become confirmed.
                if msg.confirmed:
                    self._mark_confirmed(msg.uid)
                continue
            # About to take our receipt step: un-alias any local-copy
            # snapshot before touching the pending set.
            if msg.shared:
                msg = messages[i] = msg.cow()
            if msg.confirmed:
                # SAFE phase 2: everyone has received it; deliverable now.
                msg.pending.discard(me)
                if not self._remember(msg.uid):
                    self._mark_confirmed(msg.uid)
                    continue
                self._hold.append(
                    _Held(msg.uid, msg.origin, msg.msg_no, msg.payload,
                          msg.ordering, deliverable=True)
                )
                continue
            # Phase 1 receipt (AGREED: also the delivery phase).
            msg.pending.discard(me)
            if not self._remember(msg.uid):
                continue
            self._hold.append(
                _Held(
                    msg.uid,
                    msg.origin,
                    msg.msg_no,
                    msg.payload,
                    msg.ordering,
                    deliverable=(msg.ordering is Ordering.AGREED),
                )
            )

    def _retire_pass(self, token: Token) -> None:
        messages = token.messages
        if not messages:
            return
        surviving: list[PiggybackedMessage] = []
        changed = False
        current: set[str] | None = None
        for msg in messages:
            if msg.pending:
                surviving.append(msg)
                continue
            if msg.ordering is Ordering.AGREED:
                changed = True
                continue  # fully received == fully delivered: retire
            if not msg.confirmed:
                # SAFE: first round complete — every audience member holds
                # it.  Confirm and start the delivery round (paper: "the
                # TOKEN travels one more round").
                if msg.shared:
                    msg = msg.cow()
                msg.confirmed = True
                probe = self.node.probe
                if probe is not None:
                    probe.emit(
                        self.node.node_id, "mcast.confirm", msg.origin, msg.msg_no
                    )
                if current is None:
                    current = set(token.membership)
                msg.pending = set(msg.audience) & current
                changed = True
                if msg.pending:
                    surviving.append(msg)
                # An empty re-armed set means the whole audience is gone or
                # it was a singleton self-delivery: retire immediately.
                continue
            # SAFE and confirmed with empty pending: second round done.
            changed = True
        if not changed:
            # Nothing retired or confirmed: the token's list (and its wire
            # cache) are already exactly right — skip the swap.
            return
        token.set_messages(surviving)
        # A confirmation produced above must be visible to this node's own
        # hold queue too (it is an audience member like any other).
        me = self.node.node_id
        for i, msg in enumerate(surviving):
            if msg.confirmed and me in msg.pending:
                # We have not run our phase-2 receipt for this message yet;
                # the receive pass on a later visit handles it — except when
                # the confirmation happened *at this very node*, in which
                # case we take our phase-2 step now so delivery needs
                # exactly one more round, not two.
                if msg.shared:
                    msg = surviving[i] = msg.cow()
                msg.pending.discard(me)
                self._mark_confirmed(msg.uid)

    def _attach_pass(self, token: Token) -> None:
        me = self.node.node_id
        budget = self.node.config.max_batch_per_visit
        byte_cap = self.node.config.max_token_bytes
        members = set(token.membership)
        while self._outbox and budget > 0:
            # Flow control: never grow the token past the byte budget; the
            # head message waits for a later (lighter) visit.  A single
            # oversized message still attaches onto an otherwise-empty
            # token rather than deadlocking.
            head = self._outbox[0]
            projected = token.wire_size() + MSG_HEADER + head.size
            if projected > byte_cap and token.messages:
                break
            msg = self._outbox.popleft()
            budget -= 1
            if isinstance(msg.payload, DeferredPayload):
                payload, size = msg.payload.factory()
                msg.payload = payload
                msg.size = size
            msg.audience = frozenset(members)
            msg.pending = set(members) - {me}
            token.attach_message(msg)
            probe = self.node.probe
            if probe is not None:
                # The attach is the root of the multicast's causal span
                # (origin, msg_no); the token's lineage id links it to the
                # hops that will carry it.
                probe.emit(
                    me,
                    "mcast.attach",
                    msg.origin,
                    msg.msg_no,
                    msg.ordering.value,
                    msg.size,
                    len(msg.audience),
                    token.gen,
                )
            # The originator receives its own message at attach time; this
            # keeps local delivery order identical to token order.
            self._remember(msg.uid)
            self._hold.append(
                _Held(
                    msg.uid,
                    msg.origin,
                    msg.msg_no,
                    msg.payload,
                    msg.ordering,
                    deliverable=(msg.ordering is Ordering.AGREED),
                )
            )
            if msg.ordering is Ordering.SAFE and not msg.pending:
                # Singleton group: received by all (just us); confirm now,
                # deliver via phase 2 on the next self-visit.
                msg.confirmed = True
                if probe is not None:
                    probe.emit(me, "mcast.confirm", msg.origin, msg.msg_no)
                msg.pending = {me}

    # ------------------------------------------------------------------
    # ordered local delivery
    # ------------------------------------------------------------------
    def _mark_confirmed(self, uid: int) -> None:
        for held in self._hold:
            if held.uid == uid:
                held.deliverable = True
                return

    def _drain_deliverable(self) -> None:
        listener = self.node.listener
        now = self.node.loop.now
        probe = self.node.probe
        while self._hold and self._hold[0].deliverable:
            held = self._hold.popleft()
            self.node.stats.messages_delivered += 1
            if probe is not None:
                probe.emit(
                    self.node.node_id,
                    "mcast.deliver",
                    held.origin,
                    held.msg_no,
                    held.ordering.value,
                )
            listener.on_deliver(
                Delivery(held.origin, held.msg_no, held.payload, held.ordering, now)
            )

    def _remember(self, uid: int) -> bool:
        """Record a uid; returns False when it was already seen (duplicate)."""
        if uid in self._seen:
            return False
        self._seen.add(uid)
        self._seen_fifo.append(uid)
        if len(self._seen_fifo) > SEEN_WINDOW:
            self._seen.discard(self._seen_fifo.popleft())
        return True
