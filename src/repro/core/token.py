"""The TOKEN and its piggybacked multicast messages (paper §2.2, §2.6).

The TOKEN is simultaneously four things in Raincore:

1. the carrier of the **authoritative group membership** (ring order);
2. the **locomotive of reliable multicast** — application messages are
   packed and attached to it;
3. the **failure-detection probe** — the transport's failure-on-delivery
   while forwarding it is what detects dead neighbours; and
4. the **master lock** — holding it is the mutual-exclusion primitive.

Wire-size modelling
-------------------
For the paper's §4.1 byte arithmetic we model: a fixed token header, 8 bytes
per member id on the membership list, and per attached message a fixed
header plus the payload size.  The ``pending`` / ``audience`` sets are
*implementation bookkeeping* for atomicity tracking (DESIGN.md §6.2) and are
not counted as wire bytes — the real protocol retires messages when the
token returns to the originator and carries no such sets.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

__all__ = ["Ordering", "PiggybackedMessage", "Token", "TOKEN_HEADER", "MSG_HEADER"]

#: Modelled fixed header of the token (seq, flags, counts).
TOKEN_HEADER = 24
#: Modelled per-member cost of the membership list on the wire.
MEMBER_ENTRY = 8
#: Modelled per-message header (origin, msg number, flags, length).
MSG_HEADER = 16


class Ordering(enum.Enum):
    """Consistency levels for reliable multicast (paper §2.6).

    ``AGREED`` — all nodes deliver all messages in the same (token) order;
    achieved at no extra cost and delivered on first token sight.
    ``SAFE`` — delivered only after every member has received the message;
    costs one extra token round.
    (Causal ordering is subsumed by agreed ordering in a single-token design,
    so no separate level is needed.)
    """

    AGREED = "agreed"
    SAFE = "safe"


_msg_uid = itertools.count(1)


@dataclass
class PiggybackedMessage:
    """One multicast message riding the token.

    Attributes
    ----------
    origin, msg_no:
        Identity of the multicast: per-origin sequence number.
    payload:
        Opaque application object.
    size:
        Modelled payload size in bytes.
    ordering:
        AGREED or SAFE.
    audience:
        Membership at attach time — the delivery view.  Atomicity (paper
        §2.6) is "delivered at every member of the audience that survives,
        or none".
    pending:
        Members of the audience that have not yet received (phase 1) or,
        once ``confirmed``, not yet delivered (phase 2, SAFE only) the
        message.  Pruned when members leave.
    confirmed:
        SAFE only: set when every audience member has received the message,
        starting the delivery round.
    uid:
        Process-local unique id for tracing and tests; not on the wire.
    """

    origin: str
    msg_no: int
    payload: object
    size: int
    ordering: Ordering = Ordering.AGREED
    audience: frozenset[str] = frozenset()
    pending: set[str] = field(default_factory=set)
    confirmed: bool = False
    uid: int = field(default_factory=lambda: next(_msg_uid))

    def wire_size(self) -> int:
        return MSG_HEADER + self.size

    def key(self) -> tuple[str, int]:
        """Stable multicast identity ``(origin, msg_no)``."""
        return (self.origin, self.msg_no)


@dataclass
class Token:
    """The unique circulating TOKEN of one Raincore group.

    ``seq`` increases by one on every hop; it arbitrates 911 regeneration
    (paper §2.3) and lets receivers discard stale duplicate tokens.
    ``membership`` is the authoritative ring order.  ``tbm`` marks a token
    sent to another sub-group's contact node for merging (paper §2.4).
    """

    seq: int = 0
    membership: tuple[str, ...] = ()
    messages: list[PiggybackedMessage] = field(default_factory=list)
    tbm: bool = False
    view_id: int = 0  #: bumped on every membership change, for listeners

    @property
    def group_id(self) -> str:
        """Group identity: the lowest node id in the membership (paper §2.4)."""
        if not self.membership:
            raise ValueError("token has empty membership")
        return min(self.membership)

    def wire_size(self) -> int:
        return (
            TOKEN_HEADER
            + MEMBER_ENTRY * len(self.membership)
            + sum(m.wire_size() for m in self.messages)
        )

    # ------------------------------------------------------------------
    # membership editing (ring order preserved)
    # ------------------------------------------------------------------
    def has_member(self, node_id: str) -> bool:
        return node_id in self.membership

    def next_after(self, node_id: str) -> str:
        """Ring successor of ``node_id``."""
        ring = self.membership
        idx = ring.index(node_id)
        return ring[(idx + 1) % len(ring)]

    def remove_member(self, node_id: str) -> None:
        """Remove a (failed) member and prune it from all pending sets."""
        if node_id not in self.membership:
            return
        self.membership = tuple(m for m in self.membership if m != node_id)
        self.view_id += 1
        for msg in self.messages:
            msg.pending.discard(node_id)

    def insert_after(self, anchor: str, node_id: str) -> None:
        """Insert a joiner immediately after ``anchor`` in the ring.

        This placement is what makes a broken link "naturally bypassed in
        the new ring" in the paper's ABCD → ACD → ACBD example (§2.3).
        """
        if node_id in self.membership:
            return
        if anchor not in self.membership:
            raise ValueError(f"anchor {anchor!r} not in membership")
        ring = list(self.membership)
        ring.insert(ring.index(anchor) + 1, node_id)
        self.membership = tuple(ring)
        self.view_id += 1

    def copy(self) -> "Token":
        """Deep-enough copy for a node's local TOKEN copy (paper §2.3).

        Message payloads are shared (immutable by convention); pending sets
        and the message list are copied so the local copy is unaffected by
        the live token's further travel.
        """
        return Token(
            seq=self.seq,
            membership=self.membership,
            messages=[
                PiggybackedMessage(
                    origin=m.origin,
                    msg_no=m.msg_no,
                    payload=m.payload,
                    size=m.size,
                    ordering=m.ordering,
                    audience=m.audience,
                    pending=set(m.pending),
                    confirmed=m.confirmed,
                    uid=m.uid,
                )
                for m in self.messages
            ],
            tbm=self.tbm,
            view_id=self.view_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Token(seq={self.seq}, ring={'-'.join(self.membership)}, "
            f"msgs={len(self.messages)}, tbm={self.tbm})"
        )
