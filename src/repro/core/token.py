"""The TOKEN and its piggybacked multicast messages (paper §2.2, §2.6).

The TOKEN is simultaneously four things in Raincore:

1. the carrier of the **authoritative group membership** (ring order);
2. the **locomotive of reliable multicast** — application messages are
   packed and attached to it;
3. the **failure-detection probe** — the transport's failure-on-delivery
   while forwarding it is what detects dead neighbours; and
4. the **master lock** — holding it is the mutual-exclusion primitive.

Wire-size modelling
-------------------
For the paper's §4.1 byte arithmetic we model: a fixed token header, 8 bytes
per member id on the membership list, and per attached message a fixed
header plus the payload size.  The ``pending`` / ``audience`` sets are
*implementation bookkeeping* for atomicity tracking (DESIGN.md §6.2) and are
not counted as wire bytes — the real protocol retires messages when the
token returns to the originator and carries no such sets.

Hot-path layout
---------------
Forwarding the token is the protocol's per-hop critical path, so three
things that used to be O(group) or O(messages) per hop are cached:

* **Local copies are copy-on-write.**  :meth:`Token.snapshot` marks every
  attached message *shared* and copies only the list of references — O(M)
  pointer work instead of reconstructing every message and its pending set.
  Whoever mutates a shared message first (the next holder's receive pass,
  a membership removal) clones it via :meth:`PiggybackedMessage.cow` and
  swaps the clone into its own list, so the snapshot never observes the
  live token's further travel.  :meth:`Token.copy` remains a full deep copy
  for the rare repair paths that will mutate the result immediately.
* **wire_size is incremental.**  The sum of message wire sizes is
  maintained on attach/retire instead of recomputed per hop; mutate
  ``messages`` through :meth:`attach_message` / :meth:`set_messages`.
* **Ring lookups are indexed.**  ``has_member``/``next_after`` consult a
  member→index map cached per membership tuple (identity-checked, so plain
  tuple reassignment invalidates it naturally).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.transport.messages import session_message

__all__ = [
    "Ordering",
    "PiggybackedMessage",
    "Token",
    "TOKEN_HEADER",
    "MSG_HEADER",
    "ANCESTRY_DEPTH",
    "derive_ancestry",
]

#: Modelled fixed header of the token (seq, flags, counts).
TOKEN_HEADER = 24
#: Modelled per-member cost of the membership list on the wire.
MEMBER_ENTRY = 8
#: Modelled per-message header (origin, msg number, flags, length).
MSG_HEADER = 16
#: Ancestor lineage ids retained on the token (see :attr:`Token.ancestry`).
#: Deep enough to cover both merge parents plus a few generations, so a
#: member that slept through several regenerations still recognizes the
#: current token as a continuation of the lineage it knew.
ANCESTRY_DEPTH = 6


class Ordering(enum.Enum):
    """Consistency levels for reliable multicast (paper §2.6).

    ``AGREED`` — all nodes deliver all messages in the same (token) order;
    achieved at no extra cost and delivered on first token sight.
    ``SAFE`` — delivered only after every member has received the message;
    costs one extra token round.
    (Causal ordering is subsumed by agreed ordering in a single-token design,
    so no separate level is needed.)
    """

    AGREED = "agreed"
    SAFE = "safe"


def derive_ancestry(*parents: "Token") -> tuple[str, ...]:
    """Ancestry chain for a token forked or merged from ``parents``.

    Parent gens come first (every node bound to a parent lineage must find
    its binding here), then the parents' own ancestors, deduplicated in
    order and truncated to :data:`ANCESTRY_DEPTH`.
    """
    chain: list[str] = []
    for parent in parents:
        if parent.gen and parent.gen not in chain:
            chain.append(parent.gen)
    for parent in parents:
        for gen in parent.ancestry:
            if gen not in chain:
                chain.append(gen)
    return tuple(chain[:ANCESTRY_DEPTH])


_msg_uid = itertools.count(1)


@dataclass(slots=True)
class PiggybackedMessage:
    """One multicast message riding the token.

    Attributes
    ----------
    origin, msg_no:
        Identity of the multicast: per-origin sequence number.
    payload:
        Opaque application object.
    size:
        Modelled payload size in bytes.
    ordering:
        AGREED or SAFE.
    audience:
        Membership at attach time — the delivery view.  Atomicity (paper
        §2.6) is "delivered at every member of the audience that survives,
        or none".
    pending:
        Members of the audience that have not yet received (phase 1) or,
        once ``confirmed``, not yet delivered (phase 2, SAFE only) the
        message.  Pruned when members leave.
    confirmed:
        SAFE only: set when every audience member has received the message,
        starting the delivery round.
    uid:
        Process-local unique id for tracing and tests; not on the wire.
    shared:
        Copy-on-write marker: True while a token snapshot may alias this
        object.  Mutators must clone (:meth:`cow`) before writing.
    """

    origin: str
    msg_no: int
    payload: object
    size: int
    ordering: Ordering = Ordering.AGREED
    audience: frozenset[str] = frozenset()
    pending: set[str] = field(default_factory=set)
    confirmed: bool = False
    uid: int = field(default_factory=lambda: next(_msg_uid))
    shared: bool = field(default=False, repr=False, compare=False)

    def wire_size(self) -> int:
        return MSG_HEADER + self.size

    def key(self) -> tuple[str, int]:
        """Stable multicast identity ``(origin, msg_no)``."""
        return (self.origin, self.msg_no)

    def span(self) -> str:
        """Human-readable span id for traces (``origin#msg_no``).

        The span identity *is* the wire-carried ``(origin, msg_no)`` pair;
        ``uid`` is process-local and never appears in exported streams.
        """
        return f"{self.origin}#{self.msg_no}"

    def cow(self) -> "PiggybackedMessage":
        """Return a privately mutable version of this message.

        Identity (``uid``) and immutable fields are carried over; the
        ``pending`` set is duplicated because it is the per-hop mutable
        state.  Returns ``self`` unchanged when no snapshot aliases it.
        """
        if not self.shared:
            return self
        clone = PiggybackedMessage.__new__(PiggybackedMessage)
        clone.origin = self.origin
        clone.msg_no = self.msg_no
        clone.payload = self.payload
        clone.size = self.size
        clone.ordering = self.ordering
        clone.audience = self.audience
        clone.pending = set(self.pending)
        clone.confirmed = self.confirmed
        clone.uid = self.uid
        clone.shared = False
        return clone


@session_message
@dataclass(slots=True)
class Token:
    """The unique circulating TOKEN of one Raincore group.

    ``seq`` increases by one on every hop; it arbitrates 911 regeneration
    (paper §2.3) and lets receivers discard stale duplicate tokens.
    ``membership`` is the authoritative ring order.  ``tbm`` marks a token
    sent to another sub-group's contact node for merging (paper §2.4).
    """

    seq: int = 0
    membership: tuple[str, ...] = ()
    messages: list[PiggybackedMessage] = field(default_factory=list)
    tbm: bool = False
    view_id: int = 0  #: bumped on every membership change, for listeners
    #: Lineage id ("<node>.<k>") stamped at bootstrap / 911 regeneration /
    #: merge and carried on the wire as the token's causal trace context.
    #: Deterministic (per-node counters), unlike ``PiggybackedMessage.uid``.
    gen: str = ""
    #: Recent ancestor lineage ids, newest first, bounded to
    #: :data:`ANCESTRY_DEPTH`.  A 911 regeneration records the lineage it
    #: forked from; a merge records both parents.  Nodes use this chain to
    #: accept only tokens that *continue* the lineage they last followed —
    #: the defence against two concurrently-live tokens (a regeneration
    #: racing the token it presumed lost) leapfrogging each other's seq
    #: space forever.  A real implementation would carry a fixed-width
    #: digest of this chain; like ``gen``, we model it inside the fixed
    #: :data:`TOKEN_HEADER` allowance.
    ancestry: tuple[str, ...] = ()
    #: Cached sum of message wire sizes (maintained incrementally).  The
    #: cache is tagged with the list object and length it was computed for,
    #: so direct ``token.messages`` mutation (tests, adversarial injection)
    #: degrades to a lazy recompute instead of a stale answer.
    _msgs_wire: int = field(default=0, init=False, repr=False, compare=False)
    _wire_list: list[PiggybackedMessage] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _wire_n: int = field(default=-1, init=False, repr=False, compare=False)
    #: Member → ring index map, valid only for the tuple it was built from.
    _ring_index: dict[str, int] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _ring_for: tuple[str, ...] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._refresh_wire_cache()

    def _refresh_wire_cache(self) -> None:
        messages = self.messages
        self._msgs_wire = sum(m.wire_size() for m in messages)
        self._wire_list = messages
        self._wire_n = len(messages)

    @property
    def group_id(self) -> str:
        """Group identity: the lowest node id in the membership (paper §2.4)."""
        if not self.membership:
            raise ValueError("token has empty membership")
        return min(self.membership)

    def wire_size(self) -> int:
        messages = self.messages
        if messages is not self._wire_list or len(messages) != self._wire_n:
            self._refresh_wire_cache()
        return (
            TOKEN_HEADER
            + MEMBER_ENTRY * len(self.membership)
            + self._msgs_wire
        )

    def recompute_wire_size(self) -> int:
        """Ground truth for the incremental cache (tests, debugging)."""
        return (
            TOKEN_HEADER
            + MEMBER_ENTRY * len(self.membership)
            + sum(m.wire_size() for m in self.messages)
        )

    # ------------------------------------------------------------------
    # message editing (keeps the wire-size cache honest)
    # ------------------------------------------------------------------
    def attach_message(self, msg: PiggybackedMessage) -> None:
        """Append one piggybacked message (the only growth path)."""
        messages = self.messages
        if messages is not self._wire_list or len(messages) != self._wire_n:
            self._refresh_wire_cache()
        messages.append(msg)
        self._msgs_wire += msg.wire_size()
        self._wire_n += 1

    def set_messages(self, messages: list[PiggybackedMessage]) -> None:
        """Replace the message list wholesale (the retire pass)."""
        self.messages = messages
        self._refresh_wire_cache()

    # ------------------------------------------------------------------
    # membership editing (ring order preserved)
    # ------------------------------------------------------------------
    def _index(self) -> dict[str, int]:
        ring = self.membership
        index = self._ring_index
        if index is None or self._ring_for is not ring:
            index = self._ring_index = {m: i for i, m in enumerate(ring)}
            self._ring_for = ring
        return index

    def has_member(self, node_id: str) -> bool:
        return node_id in self._index()

    def next_after(self, node_id: str) -> str:
        """Ring successor of ``node_id``."""
        ring = self.membership
        idx = self._index()[node_id]
        return ring[(idx + 1) % len(ring)]

    def remove_member(self, node_id: str) -> None:
        """Remove a (failed) member and prune it from all pending sets."""
        if node_id not in self._index():
            return
        self.membership = tuple(m for m in self.membership if m != node_id)
        self.view_id += 1
        messages = self.messages
        for i, msg in enumerate(messages):
            if node_id in msg.pending:
                if msg.shared:
                    msg = messages[i] = msg.cow()
                msg.pending.discard(node_id)

    def insert_after(self, anchor: str, node_id: str) -> None:
        """Insert a joiner immediately after ``anchor`` in the ring.

        This placement is what makes a broken link "naturally bypassed in
        the new ring" in the paper's ABCD → ACD → ACBD example (§2.3).
        """
        index = self._index()
        if node_id in index:
            return
        if anchor not in index:
            raise ValueError(f"anchor {anchor!r} not in membership")
        ring = list(self.membership)
        ring.insert(index[anchor] + 1, node_id)
        self.membership = tuple(ring)
        self.view_id += 1

    def trace_context(self) -> tuple:
        """Causal trace context read at transmit time (see transport.tx).

        Rides within the modelled :data:`TOKEN_HEADER` bytes — the header
        already accounts for seq/flags/counts, and the lineage id replaces
        slack in that fixed allowance, so wire sizes are unchanged.
        """
        return ("tok", self.gen, self.seq, len(self.messages), self.tbm)

    # ------------------------------------------------------------------
    # copying
    # ------------------------------------------------------------------
    def snapshot(self) -> "Token":
        """Cheap copy-on-write local copy for the per-hop forward path.

        Shares the message objects with the live token and marks them
        ``shared``; the next holder's receive/retire passes (and
        :meth:`remove_member`) clone a message before mutating it, so this
        snapshot stays exactly what was sent.  The message *list* is
        copied, making appends/retires on the live token invisible here.
        """
        if self.messages is not self._wire_list or len(self.messages) != self._wire_n:
            self._refresh_wire_cache()
        for m in self.messages:
            m.shared = True
        messages = list(self.messages)
        token = Token.__new__(Token)
        token.seq = self.seq
        token.membership = self.membership
        token.messages = messages
        token.tbm = self.tbm
        token.view_id = self.view_id
        token.gen = self.gen
        token.ancestry = self.ancestry
        token._msgs_wire = self._msgs_wire
        token._wire_list = messages
        token._wire_n = len(messages)
        token._ring_index = None
        token._ring_for = None
        return token

    def copy(self) -> "Token":
        """Deep-enough copy for a node's local TOKEN copy (paper §2.3).

        Message payloads are shared (immutable by convention); pending sets
        and the message list are copied so the local copy is unaffected by
        the live token's further travel.  Kept for the repair paths that
        mutate the result in place; the hot forward path uses
        :meth:`snapshot`.
        """
        return Token(
            seq=self.seq,
            membership=self.membership,
            messages=[
                PiggybackedMessage(
                    origin=m.origin,
                    msg_no=m.msg_no,
                    payload=m.payload,
                    size=m.size,
                    ordering=m.ordering,
                    audience=m.audience,
                    pending=set(m.pending),
                    confirmed=m.confirmed,
                    uid=m.uid,
                )
                for m in self.messages
            ],
            tbm=self.tbm,
            view_id=self.view_id,
            gen=self.gen,
            ancestry=self.ancestry,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Token(seq={self.seq}, ring={'-'.join(self.membership)}, "
            f"msgs={len(self.messages)}, tbm={self.tbm})"
        )
