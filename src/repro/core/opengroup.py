"""Open group communication — paper §2.6, second half.

    "In addition, open group communication between a node outside the
    Raincore group and the Raincore group can be achieved.  A node can send
    a message to any member of the Raincore group, and that member then
    forwards the message to the entire group using Raincore."

:class:`OpenGroupClient` is the outside node: it owns a transport endpoint
but participates in no ring.  It unicasts an :class:`OpenGroupMessage` to a
contact member; the member's session layer recognizes the envelope and
multicasts the payload with the requested ordering.  The contact replies
with an acceptance so the client can fail over to another contact when its
entry point dies — the natural client-side analogue of the cluster's own
fail-over story.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

from repro.net.datagram import DatagramNetwork
from repro.net.eventloop import EventLoop
from repro.transport.messages import session_message
from repro.transport.reliable import ReliableUnicast, TransportConfig

__all__ = ["OpenGroupMessage", "OpenGroupAck", "OpenGroupClient"]


@session_message
@dataclass(frozen=True)
class OpenGroupMessage:
    """Envelope an outside node hands to a member for group multicast."""

    client: str
    client_msg_no: int
    payload: Any
    size: int
    safe: bool = False  #: request safe instead of agreed ordering

    def wire_size(self) -> int:
        return 24 + self.size


@session_message
@dataclass(frozen=True)
class OpenGroupAck:
    """The contact member accepted (and multicast) the client's message."""

    member: str
    client_msg_no: int

    def wire_size(self) -> int:
        return 16


class OpenGroupClient:
    """An outside node injecting messages into a Raincore group.

    Contacts are tried in order; a contact that fails (failure-on-delivery
    or no acceptance within ``ack_timeout``) is skipped and the send is
    retried at the next one.  ``on_result(accepted_by | None)`` reports the
    outcome.
    """

    def __init__(
        self,
        node_id: str,
        loop: EventLoop,
        network: DatagramNetwork,
        contacts: list[str],
        *,
        transport_config: TransportConfig | None = None,
        ack_timeout: float = 0.5,
        max_attempts: int | None = None,
    ) -> None:
        if not contacts:
            raise ValueError("need at least one contact member")
        self.node_id = node_id
        self.loop = loop
        self.contacts = list(contacts)
        self.ack_timeout = ack_timeout
        self.max_attempts = (
            max_attempts if max_attempts is not None else 2 * len(contacts)
        )
        self.transport = ReliableUnicast(node_id, loop, network, transport_config)
        self.transport.set_receiver(self._receive)
        self.transport.start()
        self._msg_no = itertools.count(1)
        # client_msg_no -> (attempts so far, timer, callback)
        self._pending: dict[int, list] = {}
        self.accepted = 0

    def stop(self) -> None:
        self.transport.stop()
        for entry in self._pending.values():
            if entry[1] is not None:
                entry[1].cancel()
        self._pending.clear()

    # ------------------------------------------------------------------
    def send_to_group(
        self,
        payload: Any,
        size: int = 64,
        *,
        safe: bool = False,
        on_result: Callable[[str | None], None] | None = None,
    ) -> int:
        """Inject ``payload`` into the group via the first live contact."""
        msg_no = next(self._msg_no)
        self._pending[msg_no] = [0, None, on_result]
        self._attempt(msg_no, OpenGroupMessage(self.node_id, msg_no, payload, size, safe))
        return msg_no

    def _attempt(self, msg_no: int, msg: OpenGroupMessage) -> None:
        entry = self._pending.get(msg_no)
        if entry is None:
            return
        attempts, timer, on_result = entry
        if timer is not None:
            timer.cancel()
        if attempts >= self.max_attempts:
            del self._pending[msg_no]
            if on_result is not None:
                on_result(None)
            return
        contact = self.contacts[attempts % len(self.contacts)]
        entry[0] = attempts + 1
        self.transport.send(
            contact,
            msg,
            on_result=lambda ok: (None if ok else self._attempt(msg_no, msg)),
        )
        entry[1] = self.loop.call_later(self.ack_timeout, self._attempt, msg_no, msg)

    def _receive(self, src: str, payload: Any) -> None:
        if not isinstance(payload, OpenGroupAck):
            return
        entry = self._pending.pop(payload.client_msg_no, None)
        if entry is None:
            return
        if entry[1] is not None:
            entry[1].cancel()
        self.accepted += 1
        if entry[2] is not None:
            entry[2](payload.member)
