"""Node state machine of the token-ring protocol (paper §2.2–2.3).

    "When a node has a TOKEN, it is in the EATING state, when it does not
    have the TOKEN, it is in the HUNGRY state. ...  If a node remains in the
    HUNGRY state for a certain period of time, it enters the STARVING state."

Two additional states make the full lifecycle explicit in the
implementation: ``JOINING`` (a node that has asked to join but has never
held the token of its target group) and ``DOWN`` (crashed or self-shutdown
after a critical-resource failure).
"""

from __future__ import annotations

import enum

__all__ = ["NodeState", "VALID_TRANSITIONS"]


class NodeState(enum.Enum):
    """Lifecycle states of a Raincore session-service node."""

    JOINING = "joining"  #: sent a join 911, waiting for first token
    HUNGRY = "hungry"  #: in the ring, waiting for the token
    EATING = "eating"  #: holding the token (master lock held)
    STARVING = "starving"  #: HUNGRY timeout expired, running 911 protocol
    DOWN = "down"  #: crashed or shut down


#: Legal state transitions; the session layer asserts against this map so a
#: protocol bug that corrupts the lifecycle fails loudly in tests.
VALID_TRANSITIONS: dict[NodeState, frozenset[NodeState]] = {
    # JOINING -> STARVING is the deadlock-escape escalation: a joiner that
    # still holds a token copy and cannot get re-admitted attempts a 911
    # regeneration round (docs/PROTOCOL.md §4.2).
    NodeState.JOINING: frozenset(
        {NodeState.EATING, NodeState.JOINING, NodeState.STARVING, NodeState.DOWN}
    ),
    NodeState.HUNGRY: frozenset(
        {NodeState.EATING, NodeState.STARVING, NodeState.DOWN}
    ),
    NodeState.EATING: frozenset({NodeState.HUNGRY, NodeState.DOWN}),
    NodeState.STARVING: frozenset(
        {NodeState.EATING, NodeState.HUNGRY, NodeState.JOINING, NodeState.DOWN}
    ),
    NodeState.DOWN: frozenset({NodeState.JOINING}),
}
