"""Raincore Distributed Session Service — the paper's core contribution.

Fault-tolerant token-ring group communication for clusters of networking
elements: group membership, reliable atomic multicast with consistent
ordering, and mutual exclusion, all carried by a single circulating TOKEN
over unicast transport (Fan & Bruck, IPPS 2001, §2).
"""

from repro.core.config import RaincoreConfig
from repro.core.events import (
    Delivery,
    RecordingListener,
    SessionListener,
    ViewChange,
)
from repro.core.resources import CriticalResource, ResourceMonitor
from repro.core.session import RaincoreNode
from repro.core.states import NodeState
from repro.core.token import Ordering, PiggybackedMessage, Token
from repro.core.wire import BodyOdor, NineOneOne, NineOneOneReply, ReplyVerdict

__all__ = [
    "RaincoreConfig",
    "Delivery",
    "RecordingListener",
    "SessionListener",
    "ViewChange",
    "CriticalResource",
    "ResourceMonitor",
    "RaincoreNode",
    "NodeState",
    "Ordering",
    "PiggybackedMessage",
    "Token",
    "BodyOdor",
    "NineOneOne",
    "NineOneOneReply",
    "ReplyVerdict",
]
