"""Protocol timing configuration for the Raincore Distributed Session Service.

All the paper's behaviours are driven by a handful of timers:

* the **token hop interval** — "a TOKEN is a message that is being passed at
  a regular time interval from one node to the next node in the ring"
  (paper §2.2);
* the **HUNGRY timeout** — how long a node waits for the token before
  suspecting token loss and entering STARVING (paper §2.3);
* the **BODYODOR interval** — the low-frequency discovery beacon period
  (paper §2.4).

The defaults model the paper's environment: a low-latency switched LAN where
the token circulates tens of times per second.  :meth:`RaincoreConfig.tuned`
derives safe timeouts from the expected ring size, which is how a deployment
would provision them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.transport.reliable import TransportConfig

__all__ = ["RaincoreConfig"]


@dataclass(frozen=True)
class RaincoreConfig:
    """Timing and policy knobs for one Raincore node.

    Attributes
    ----------
    hop_interval:
        Seconds a node holds the token before forwarding it.  With N nodes
        the token makes ``1 / (N * hop_interval)`` roundtrips per second —
        the paper's *L*.
    hungry_timeout:
        Seconds in HUNGRY before entering STARVING and firing the 911
        protocol.  Must comfortably exceed one full ring traversal plus the
        transport's failure-detection bound, otherwise healthy operation
        triggers spurious 911 rounds.
    starving_backoff:
        Seconds to wait after a denied 911 round before trying again (the
        token is probably on its way).
    join_retry:
        Seconds a joining node waits for the token after its join-911 was
        accepted before asking again.
    bodyodor_interval:
        Discovery beacon period; "a small message sent with a regular, but
        low frequency, so that it does not impose a major overhead"
        (paper §2.4).
    max_batch_per_visit:
        Upper bound on how many queued multicast messages a node attaches
        per token visit; bounds token growth under bursty load.
    max_token_bytes:
        Flow control: a node stops attaching once the token's modelled wire
        size would exceed this budget (already-attached messages always
        ride).  Keeps the token within datagram-friendly sizes under load,
        the same role Totem's flow control plays; deferred messages attach
        on later visits.
    resync_window_bytes:
        Hard per-replica budget for the retained (prunable) op log that
        serves delta resync (docs/RESYNC.md).  Segments acknowledged by
        every live view member are pruned normally; when the retained
        bytes would exceed this budget anyway, the oldest segments are
        force-pruned — shrinking the delta window instead of growing
        memory.  ``0`` disables the window entirely: every resync attempt
        is out-of-window and the requester is quarantined immediately.
    resync_segment_ops:
        Ops per log segment.  A segment seals (and is acknowledged around
        the ring) once it holds this many ops; pruning is segment-granular.
    resync_quarantine_after:
        Consecutive failed resyncs (continuation-point snapshot fallbacks
        with no certified ack in between) a peer is allowed before it is
        quarantined from the view with a structured reason.
    resync_quarantine_backoff:
        Seconds a quarantined peer is refused re-admission (911 joins and
        BODYODOR merges are ignored) before the quarantine lifts.
    transport:
        Timing for the underlying Raincore Transport Service.
    """

    hop_interval: float = 0.010
    hungry_timeout: float = 0.500
    starving_backoff: float = 0.150
    join_retry: float = 0.400
    bodyodor_interval: float = 1.0
    max_batch_per_visit: int = 64
    max_token_bytes: int = 60_000  #: within a jumbo UDP datagram
    resync_window_bytes: int = 65_536
    resync_segment_ops: int = 32
    resync_quarantine_after: int = 3
    resync_quarantine_backoff: float = 5.0
    transport: TransportConfig = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.transport is None:
            object.__setattr__(self, "transport", TransportConfig())
        for name in (
            "hop_interval",
            "hungry_timeout",
            "starving_backoff",
            "join_retry",
            "bodyodor_interval",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.max_batch_per_visit < 1:
            raise ValueError("max_batch_per_visit must be at least 1")
        if self.max_token_bytes < 1024:
            raise ValueError("max_token_bytes must be at least 1024")
        if self.resync_window_bytes < 0:
            raise ValueError("resync_window_bytes must be non-negative")
        if self.resync_segment_ops < 1:
            raise ValueError("resync_segment_ops must be at least 1")
        if self.resync_quarantine_after < 1:
            raise ValueError("resync_quarantine_after must be at least 1")
        if self.resync_quarantine_backoff <= 0:
            raise ValueError("resync_quarantine_backoff must be positive")

    @classmethod
    def tuned(
        cls,
        ring_size: int,
        hop_interval: float = 0.010,
        transport: TransportConfig | None = None,
        **overrides,
    ) -> "RaincoreConfig":
        """Derive safe timeouts for an expected ring size.

        The HUNGRY timeout is set to three full ring traversals plus the
        transport failure bound: long enough that one slow hop or one
        failure detection does not trigger a spurious 911, short enough
        that token regeneration stays well under the paper's two-second
        fail-over budget.
        """
        if ring_size < 1:
            raise ValueError("ring_size must be at least 1")
        tcfg = transport if transport is not None else TransportConfig()
        traversal = ring_size * hop_interval
        hungry = 3.0 * traversal + 2.0 * tcfg.failure_detection_bound()
        cfg = cls(
            hop_interval=hop_interval,
            hungry_timeout=hungry,
            starving_backoff=max(1.5 * traversal, 0.05),
            join_retry=max(2.0 * traversal, 0.1),
            transport=tcfg,
        )
        if overrides:
            cfg = replace(cfg, **overrides)
        return cfg
