"""Observer interfaces of the session service.

Applications (the paper's Virtual IP Manager, Rainwall) react to three kinds
of events: group view changes, multicast deliveries, and local lifecycle
changes.  :class:`SessionListener` is the callback bundle; the default
implementation ignores everything, so applications override only what they
need.  :class:`RecordingListener` is the instrumented variant used
throughout the tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.states import NodeState
from repro.core.token import Ordering

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.session import RaincoreNode

__all__ = [
    "SessionListener",
    "RecordingListener",
    "CompositeListener",
    "ensure_composite",
    "Delivery",
    "ViewChange",
]


@dataclass(frozen=True)
class ViewChange:
    """One observed membership view: id and ring-ordered members."""

    view_id: int
    members: tuple[str, ...]
    at: float


@dataclass(frozen=True)
class Delivery:
    """One delivered multicast message."""

    origin: str
    msg_no: int
    payload: object
    ordering: Ordering
    at: float


class SessionListener:
    """Override any subset of these callbacks; defaults do nothing.

    Callbacks run synchronously inside the protocol's wakeup, so they must
    be fast and must not re-enter the protocol other than through the public
    API (multicast / critical-section scheduling), which is queue-based and
    re-entrancy safe.
    """

    def on_view_change(self, view: ViewChange) -> None:
        """Group membership changed (node joined, left, failed, or merged)."""

    def on_deliver(self, delivery: Delivery) -> None:
        """A reliable multicast message was delivered to this node."""

    def on_state_change(self, old: NodeState, new: NodeState) -> None:
        """Local node state machine transition."""

    def on_shutdown(self, reason: str) -> None:
        """Node shut itself down (critical resource lost, or crash)."""


class CompositeListener(SessionListener):
    """Fans every event out to an ordered list of listeners.

    The session node holds a single listener; services stacked on top of it
    (lock manager, shared dictionary, VIP manager, the tests' recorder)
    each want the event stream.  ``ensure_composite`` upgrades a node's
    listener in place so services can subscribe without disturbing whoever
    was installed first.
    """

    def __init__(self, *listeners: SessionListener) -> None:
        self.listeners: list[SessionListener] = list(listeners)

    def add(self, listener: SessionListener) -> None:
        self.listeners.append(listener)

    def remove(self, listener: SessionListener) -> None:
        self.listeners.remove(listener)

    def on_view_change(self, view: ViewChange) -> None:
        for listener in self.listeners:
            listener.on_view_change(view)

    def on_deliver(self, delivery: Delivery) -> None:
        for listener in self.listeners:
            listener.on_deliver(delivery)

    def on_state_change(self, old: NodeState, new: NodeState) -> None:
        for listener in self.listeners:
            listener.on_state_change(old, new)

    def on_shutdown(self, reason: str) -> None:
        for listener in self.listeners:
            listener.on_shutdown(reason)


def ensure_composite(node: "RaincoreNode") -> CompositeListener:
    """Upgrade ``node.listener`` to a :class:`CompositeListener` in place."""
    if isinstance(node.listener, CompositeListener):
        return node.listener
    composite = CompositeListener(node.listener)
    node.listener = composite
    return composite


@dataclass
class RecordingListener(SessionListener):
    """Listener that records everything — the tests' observation point."""

    views: list[ViewChange] = field(default_factory=list)
    deliveries: list[Delivery] = field(default_factory=list)
    transitions: list[tuple[NodeState, NodeState]] = field(default_factory=list)
    shutdowns: list[str] = field(default_factory=list)

    def on_view_change(self, view: ViewChange) -> None:
        self.views.append(view)

    def on_deliver(self, delivery: Delivery) -> None:
        self.deliveries.append(delivery)

    def on_state_change(self, old: NodeState, new: NodeState) -> None:
        self.transitions.append((old, new))

    def on_shutdown(self, reason: str) -> None:
        self.shutdowns.append(reason)

    # Convenience accessors used heavily by tests -----------------------
    @property
    def delivered_payloads(self) -> list[object]:
        return [d.payload for d in self.deliveries]

    @property
    def delivery_keys(self) -> list[tuple[str, int]]:
        return [(d.origin, d.msg_no) for d in self.deliveries]

    @property
    def current_members(self) -> tuple[str, ...]:
        return self.views[-1].members if self.views else ()
